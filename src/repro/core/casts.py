"""Down-cast / All-cast / Up-cast (Lemma 10).

The three layered communication sweeps over a good labeling L:

* Down-cast: for i = 0 .. max_layers-2, SR-communication with
  S = layer-i holders, R = layer-(i+1) non-holders.
* All-cast: one SR-communication with S = all holders, R = all others.
* Up-cast: for i = max_layers-1 .. 1, S = layer-i holders,
  R = layer-(i-1) non-holders.

"Holder" means the vertex's ``value`` is not None.  On reception the
vertex adopts ``transform(received)`` — identity for payload broadcast,
``m -> m + 1`` for the labeling computation of Section 5.

Participation scheduling: a vertex at layer l can only act in the frame
where layer l receives and the frame where layer l sends, which are
consecutive in sweep order; it sleeps through everything else in O(1)
yields.  That is what gives Lemma 10 its per-vertex energy bound.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.schemes import SRScheme
from repro.core.sr_comm import Role
from repro.sim.node import NodeCtx

__all__ = ["down_cast", "all_cast", "up_cast", "cast_sequence_slots", "identity"]


def identity(message: Any) -> Any:
    return message


def down_cast(
    ctx: NodeCtx,
    scheme: SRScheme,
    layer: int,
    value: Optional[Any],
    max_layers: int,
    transform: Callable[[Any], Any] = identity,
    accept=None,
):
    """One Down-cast sweep; returns the (possibly updated) value.

    Frames run i = 0..max_layers-2 in time order.  A vertex at ``layer``
    may receive in frame layer-1 (if it holds nothing) and send in frame
    ``layer`` (if it holds something — possibly something it just received
    one frame earlier, which is how a value washes down the layers).
    """
    frames = max_layers - 1
    frame_len = scheme.frame_length
    recv_frame = layer - 1  # I am in R = layer-(i+1) when i = layer-1
    send_frame = layer  # I am in S = layer-i when i = layer
    cursor = 0
    for i in (recv_frame, send_frame):
        if not 0 <= i < frames:
            continue
        if i > cursor:
            yield from scheme.idle_frames(i - cursor)
        if i == recv_frame and value is None:
            received = yield from scheme.communicate(ctx, Role.RECEIVER, accept=accept)
            if received is not None:
                value = transform(received)
        elif i == send_frame and value is not None:
            yield from scheme.communicate(ctx, Role.SENDER, value)
        else:
            yield from scheme.communicate(ctx, Role.IDLE)
        cursor = i + 1
    if frames > cursor:
        yield from scheme.idle_frames(frames - cursor)
    return value


def up_cast(
    ctx: NodeCtx,
    scheme: SRScheme,
    layer: int,
    value: Optional[Any],
    max_layers: int,
    transform: Callable[[Any], Any] = identity,
    accept=None,
):
    """One Up-cast sweep (frames i = max_layers-1 down to 1); returns the
    (possibly updated) value.  A vertex at ``layer`` may receive in frame
    i = layer+1 and send in frame i = layer; descending order makes those
    consecutive, so a value washes up toward layer 0."""
    frames = max_layers - 1  # frame indices i = max_layers-1 .. 1
    frame_len = scheme.frame_length
    del frame_len
    recv_frame = layer + 1  # I am in R = layer-(i-1) when i = layer+1
    send_frame = layer  # I am in S = layer-i when i = layer
    cursor = 0  # position in sweep order: position p handles i = max_layers-1-p
    for i in (recv_frame, send_frame):
        if not 1 <= i <= max_layers - 1:
            continue
        position = max_layers - 1 - i
        if position > cursor:
            yield from scheme.idle_frames(position - cursor)
        if i == recv_frame and value is None:
            received = yield from scheme.communicate(ctx, Role.RECEIVER, accept=accept)
            if received is not None:
                value = transform(received)
        elif i == send_frame and value is not None:
            yield from scheme.communicate(ctx, Role.SENDER, value)
        else:
            yield from scheme.communicate(ctx, Role.IDLE)
        cursor = position + 1
    if frames > cursor:
        yield from scheme.idle_frames(frames - cursor)
    return value


def all_cast(
    ctx: NodeCtx,
    scheme: SRScheme,
    value: Optional[Any],
    transform: Callable[[Any], Any] = identity,
    accept=None,
):
    """One All-cast frame: holders send, everyone else tries to receive."""
    if value is not None:
        yield from scheme.communicate(ctx, Role.SENDER, value)
        return value
    received = yield from scheme.communicate(ctx, Role.RECEIVER, accept=accept)
    if received is not None:
        return transform(received)
    return None


def cast_sequence_slots(scheme: SRScheme, max_layers: int, repeats: int) -> int:
    """Total slots of Lemma 10's schedule: one Up-cast, ``repeats`` rounds
    of (Down, All, Up), and one final Down-cast."""
    sweep = (max_layers - 1) * scheme.frame_length
    allc = scheme.frame_length
    return sweep + repeats * (2 * sweep + allc) + sweep
