"""Distributed coloring of G + G^2 and TDMA simulation (Section 3).

Three pieces:

* :func:`learn_degree` — Algorithm Learn-degree: for O(Delta log n) slots
  every vertex transmits its ID with probability 1/Delta, otherwise
  listens; by a coupon-collector bound every vertex learns all neighbor
  IDs (and hence its degree) w.h.p. (Lemma 4).
* :func:`two_hop_coloring` — Algorithm Two-Hop-Coloring: O(log n)
  iterations, each sampling a candidate color in [2 Delta^2], gossiping
  color vectors for O(Delta log Delta) slots, and permanently fixing the
  candidate when no conflict within distance two is visible (Lemmas 5-6).
* :func:`simulate_local` — Theorem 3's TDMA schedule: with a proper
  coloring of G + G^2 in k colors, a block of k slots simulates one LOCAL
  round with zero collisions: color j transmits in block-slot j; listeners
  tune to their neighbors' (pairwise distinct!) color slots.

Everything runs in No-CD (hence also CD).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Tuple

from repro.sim.actions import Idle, Listen, Send, SendListen
from repro.sim.feedback import is_message
from repro.sim.node import NodeCtx
from repro.util import ceil_log2

__all__ = [
    "ColoringParams",
    "learn_degree",
    "two_hop_coloring",
    "simulate_local",
    "coloring_preprocess",
]


@dataclass(frozen=True)
class ColoringParams:
    """Constants of the Section 3 preprocessing, shared network-wide.

    Attributes:
        max_degree: the paper's Delta (upper bound, >= 1).
        n: number of vertices.
        learn_factor: C in Learn-degree's C Delta log n slots.
        gossip_factor: C in Two-Hop-Coloring's C Delta log Delta slots.
        iterations: number of coloring iterations (paper: C log n).
    """

    max_degree: int
    n: int
    learn_factor: int = 6
    gossip_factor: int = 6
    iterations: Optional[int] = None

    @property
    def num_colors(self) -> int:
        return 2 * self.max_degree * self.max_degree

    @property
    def learn_slots(self) -> int:
        return self.learn_factor * self.max_degree * (ceil_log2(max(2, self.n)) + 1)

    @property
    def gossip_slots(self) -> int:
        log_d = ceil_log2(max(2, self.max_degree)) + 2
        return self.gossip_factor * self.max_degree * log_d

    @property
    def coloring_iterations(self) -> int:
        if self.iterations is not None:
            return self.iterations
        return 4 * (ceil_log2(max(2, self.n)) + 1) + 4


def learn_degree(ctx: NodeCtx, params: ColoringParams, my_id: int):
    """Learn the IDs of all neighbors w.h.p.; returns the set of IDs."""
    delta = max(1, params.max_degree)
    heard = set()
    for _ in range(params.learn_slots):
        if ctx.rng.random() < 1.0 / delta:
            yield Send(("ld", my_id))
        else:
            feedback = yield Listen()
            if is_message(feedback) and feedback[0] == "ld":
                heard.add(feedback[1])
    return heard


def two_hop_coloring(
    ctx: NodeCtx,
    params: ColoringParams,
    my_id: int,
    neighbor_ids: set,
):
    """Compute this vertex's color in a proper coloring of G + G^2.

    Returns ``(color, neighbor_colors)`` where ``neighbor_colors`` maps
    neighbor ID -> final announced color.  The returned color is the fixed
    one w.h.p.; if the vertex never fixed (probability 1/poly(n)) the last
    candidate is returned, which downstream users treat as best-effort.
    """
    delta = max(1, params.max_degree)
    color: Optional[int] = None
    fixed = False
    # L(v): most recently announced color per neighbor.
    my_vector: Dict[int, Optional[int]] = {w: None for w in neighbor_ids}
    # Copy of each neighbor's announced vector.
    their_vectors: Dict[int, Dict[int, Optional[int]]] = {}

    for _ in range(params.coloring_iterations):
        if not fixed:
            color = ctx.rng.randrange(params.num_colors)
        for _ in range(params.gossip_slots):
            if ctx.rng.random() < 1.0 / delta:
                yield Send(("thc", my_id, color, dict(my_vector)))
            else:
                feedback = yield Listen()
                if is_message(feedback) and feedback[0] == "thc":
                    _, w_id, w_color, w_vector = feedback
                    if w_id in my_vector:
                        my_vector[w_id] = w_color
                        their_vectors[w_id] = w_vector
        if fixed:
            continue
        # Step 4: reject the candidate on any visible conflict.
        reject = False
        for w_id in neighbor_ids:
            if my_vector[w_id] is None or my_vector[w_id] == color:
                reject = True
                break
            w_vector = their_vectors.get(w_id)
            if w_vector is None:
                reject = True
                break
            entries = list(w_vector.values())
            if any(entry is None for entry in entries):
                reject = True
                break
            if entries.count(color) >= 2:
                reject = True
                break
            # v itself appears in w's vector; another occurrence of color
            # among w's other neighbors is a distance-2 conflict.
            others = [c for u, c in w_vector.items() if u != my_id]
            if color in others:
                reject = True
                break
        if not reject:
            fixed = True
    return color, {w: c for w, c in my_vector.items()}


def simulate_local(
    ctx: NodeCtx,
    inner: Generator[Any, Any, Any],
    num_colors: int,
    my_color: int,
    neighbor_colors: Dict[int, int],
):
    """Drive a LOCAL-model protocol generator over the TDMA schedule.

    Each LOCAL round becomes a block of ``num_colors`` slots.  ``inner``
    yields the usual actions; Listen feedback is delivered as a tuple of
    messages (LOCAL semantics), collected collision-free from the
    neighbors' color slots.  Full-duplex SendListen is supported (the
    vertex transmits in its own slot and listens in the others).

    Returns ``inner``'s return value.
    """
    listen_slots = sorted(set(neighbor_colors.values()))
    feedback: Any = None
    first = True
    while True:
        try:
            action = next(inner) if first else inner.send(feedback)
        except StopIteration as stop:
            return stop.value
        first = False
        feedback = None
        if isinstance(action, Idle):
            yield Idle(action.duration * num_colors)
            continue
        sending = isinstance(action, (Send, SendListen))
        listening = isinstance(action, (Listen, SendListen))
        cursor = 0
        heard = []
        slots = sorted(
            set(listen_slots if listening else [])
            | ({my_color} if sending else set())
        )
        for slot in slots:
            if slot > cursor:
                yield Idle(slot - cursor)
            if sending and slot == my_color:
                yield Send(action.message)
            else:
                fb = yield Listen()
                if is_message(fb):
                    heard.append(fb)
            cursor = slot + 1
        if num_colors > cursor:
            yield Idle(num_colors - cursor)
        if listening:
            feedback = tuple(heard)


def coloring_preprocess(ctx: NodeCtx, params: ColoringParams):
    """Run Learn-degree then Two-Hop-Coloring with a random O(log n)-bit ID.

    Returns (my_color, neighbor_colors dict).
    """
    id_bits = 2 * (ceil_log2(max(2, params.n)) + 2)
    my_id = ctx.rng.getrandbits(id_bits)
    neighbor_ids = yield from learn_degree(ctx, params, my_id)
    color, neighbor_colors = yield from two_hop_coloring(
        ctx, params, my_id, neighbor_ids
    )
    return color, neighbor_colors
