"""Cluster-aware casts (Section 6.2, Lemma 17).

When casts must stay *inside* a cluster (or cross only cluster
boundaries), plain SR-communication is not enough: neighboring clusters
would collide forever.  The paper's fix is the shared random string: all
members of a cluster hold the same seed, so they can toss a common coin
and have the whole cluster enter the sender set S with probability 1/C in
each of O(C log n) repetitions.  For any receiver, w.h.p. some repetition
has exactly the relevant neighboring cluster active, and the underlying
SR-communication delivers.

Receivers filter by cluster id: ``accept`` decides which messages count
(same-cluster for Downward/Upward transmission, any-other-cluster for the
All-cast between clusters).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.core.schemes import SRScheme
from repro.core.sr_comm import Role
from repro.sim.node import NodeCtx

__all__ = [
    "cluster_coin",
    "cluster_sr",
    "cluster_down_cast",
    "cluster_up_cast",
    "cluster_all_cast",
]


def cluster_coin(seed: int, tag, rep: int, probability: float) -> bool:
    """A coin all members of a cluster can toss identically."""
    return random.Random(f"{seed}|{tag}|{rep}").random() < probability


def cluster_sr(
    ctx: NodeCtx,
    scheme: SRScheme,
    role: Role,
    message: Any,
    seed: Optional[int],
    tag,
    contention: int,
    reps: int,
    accept: Callable[[Any], bool],
):
    """``reps`` SR frames with cluster-level subsampling (Lemma 17).

    Senders participate in repetition r only when their cluster's coin
    (probability 1/contention) comes up; receivers listen every repetition
    until a message passing ``accept`` arrives, then idle out.  Returns the
    accepted message or None.
    """
    probability = 1.0 / max(1, contention)
    received: Optional[Any] = None
    for rep in range(reps):
        if role is Role.SENDER and cluster_coin(seed, tag, rep, probability):
            yield from scheme.communicate(ctx, Role.SENDER, message)
        elif role is Role.RECEIVER and received is None:
            candidate = yield from scheme.communicate(ctx, Role.RECEIVER)
            if candidate is not None and accept(candidate):
                received = candidate
        else:
            yield from scheme.idle_frames(1)
    return received


def _sweep(
    ctx: NodeCtx,
    scheme: SRScheme,
    recv_position: int,
    send_position: int,
    positions: int,
    value,
    send_message: Callable[[Any], Any],
    seed: Optional[int],
    tag,
    contention: int,
    reps: int,
    accept: Callable[[Any], bool],
    transform: Callable[[Any], Any],
):
    """Shared engine for layered cluster casts: one cast is ``positions``
    frames of ``reps`` SR repetitions; this vertex may receive at
    ``recv_position`` and send at ``send_position`` (either may be out of
    range, disabling it)."""
    cursor = 0
    for position in sorted({recv_position, send_position}):
        if not 0 <= position < positions:
            continue
        if position > cursor:
            yield from scheme.idle_frames((position - cursor) * reps)
        if position == recv_position and value is None:
            got = yield from cluster_sr(
                ctx, scheme, Role.RECEIVER, None, seed,
                (tag, position), contention, reps, accept,
            )
            if got is not None:
                value = transform(got)
        elif position == send_position and value is not None:
            yield from cluster_sr(
                ctx, scheme, Role.SENDER, send_message(value), seed,
                (tag, position), contention, reps, accept,
            )
        else:
            yield from scheme.idle_frames(reps)
        cursor = position + 1
    if positions > cursor:
        yield from scheme.idle_frames((positions - cursor) * reps)
    return value


def cluster_down_cast(
    ctx: NodeCtx,
    scheme: SRScheme,
    layer: int,
    cid: int,
    seed: int,
    value,
    max_layers: int,
    contention: int,
    reps: int,
    tag,
    transform: Callable[[Any], Any],
):
    """Downward transmission sweep: values flow layer i -> i+1 inside the
    cluster identified by ``cid`` (messages from other clusters are
    filtered out)."""

    def accept(message) -> bool:
        return message[0] == cid

    return _sweep(
        ctx, scheme,
        recv_position=layer - 1,
        send_position=layer,
        positions=max_layers - 1,
        value=value,
        send_message=lambda val: (cid, val),
        seed=seed, tag=("dc", tag), contention=contention, reps=reps,
        accept=accept,
        transform=lambda msg: transform(msg[1]),
    )


def cluster_up_cast(
    ctx: NodeCtx,
    scheme: SRScheme,
    layer: int,
    cid: int,
    seed: int,
    value,
    max_layers: int,
    contention: int,
    reps: int,
    tag,
    transform: Callable[[Any], Any],
):
    """Upward transmission sweep: values flow layer i -> i-1 inside the
    cluster (sweep positions run from the deepest layer toward 0)."""

    def accept(message) -> bool:
        return message[0] == cid

    return _sweep(
        ctx, scheme,
        recv_position=(max_layers - 1) - (layer + 1),
        send_position=(max_layers - 1) - layer if layer >= 1 else -1,
        positions=max_layers - 1,
        value=value,
        send_message=lambda val: (cid, val),
        seed=seed, tag=("uc", tag), contention=contention, reps=reps,
        accept=accept,
        transform=lambda msg: transform(msg[1]),
    )


def cluster_all_cast(
    ctx: NodeCtx,
    scheme: SRScheme,
    role: Role,
    message: Any,
    seed: Optional[int],
    contention: int,
    reps: int,
    tag,
    accept: Callable[[Any], bool],
):
    """All-cast between clusters: one frame of ``reps`` repetitions."""
    return cluster_sr(
        ctx, scheme, role, message, seed, ("ac", tag), contention, reps, accept
    )
