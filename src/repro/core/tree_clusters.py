"""Colored tree-cluster transmissions (Section 7.1, Lemma 19).

Section 7 upgrades the cluster machinery with c random (n^xi * Delta)-
colorings.  A vertex's identifier is its color tuple
ID(v) = (Color_1(v), ..., Color_c(v)); every child knows its designated
parent's tuple.  ``Ind(u, v)`` is the smallest coloring index j such that
no *other* neighbor of u shares the parent's color Color_j(v); it exists
w.h.p. when c = O(1/xi), and it buys:

* Downward transmission with zero failure probability: in the slot grid
  (j, k), a vertex transmits at its own color slots and each child listens
  at (Ind, parent color) — by definition of Ind, the parent is the only
  audible transmitter there.
* Upward transmission where only parent-child pairs contend (footnote 6):
  the (j, k) block runs Lemma 8's SR-communication with the probe and ack
  optimizations, so each block costs the sender O(log log Delta) energy in
  expectation.

Layered cast sweeps (tree_down_cast / tree_up_cast) then mirror Lemma 10's
participation scheduling, one (j, k) grid per layer position.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple

from repro.core.sr_comm import CDParams, Role, sr_cd
from repro.sim.actions import Idle, Listen, Send
from repro.sim.feedback import SILENCE, is_message
from repro.sim.node import NodeCtx

__all__ = [
    "TreeParams",
    "sample_colors",
    "learn_ind",
    "tree_downward",
    "tree_upward",
    "tree_down_cast",
    "tree_up_cast",
]


@dataclass(frozen=True)
class TreeParams:
    """Shared constants of the Section 7 machinery.

    Attributes:
        num_colorings: the paper's c = O(1/xi).
        num_colors: colors per coloring, the paper's n^xi * Delta.
        sr: Lemma 8 parameters for the upward blocks (probe+ack on).
    """

    num_colorings: int
    num_colors: int
    sr: CDParams

    @classmethod
    def for_graph(
        cls,
        n: int,
        max_degree: int,
        xi: float = 0.5,
        failure: float = 0.05,
        num_colorings: Optional[int] = None,
    ) -> "TreeParams":
        if not 0 < xi <= 1:
            raise ValueError(f"xi must be in (0,1], got {xi}")
        c = num_colorings if num_colorings is not None else max(2, round(2.0 / xi))
        colors = max(2, int(round(n**xi * max_degree)))
        sr = CDParams.for_graph(max_degree, failure, probe=True, ack=True)
        return cls(num_colorings=c, num_colors=colors, sr=sr)

    @property
    def downward_slots(self) -> int:
        return self.num_colorings * self.num_colors

    @property
    def upward_slots(self) -> int:
        return self.num_colorings * self.num_colors * self.sr.frame_length


def sample_colors(rng: random.Random, params: TreeParams) -> Tuple[int, ...]:
    """Draw this vertex's color tuple (its Section 7 identifier)."""
    return tuple(
        rng.randrange(params.num_colors) for _ in range(params.num_colorings)
    )


def learn_ind(
    ctx: NodeCtx,
    params: TreeParams,
    my_colors: Sequence[int],
    parent_colors: Optional[Sequence[int]],
):
    """Lemma 19: learn Ind(u, parent(u)) in O(c * num_colors) slots.

    Every vertex transmits at its own color slot of every coloring; a
    vertex with a parent listens at the parent's color slot (skipped when
    it coincides with its own, which makes that coloring unusable).
    Returns the smallest usable coloring index, or None.
    """
    ind: Optional[int] = None
    for j in range(params.num_colorings):
        own_k = my_colors[j]
        listen_k = None
        if parent_colors is not None and parent_colors[j] != own_k:
            listen_k = parent_colors[j]
        events = sorted({own_k} | ({listen_k} if listen_k is not None else set()))
        cursor = 0
        for k in events:
            if k > cursor:
                yield Idle(k - cursor)
            if k == own_k:
                yield Send(("ind", j, own_k))
            else:
                feedback = yield Listen()
                if ind is None and is_message(feedback):
                    ind = j
            cursor = k + 1
        if params.num_colors > cursor:
            yield Idle(params.num_colors - cursor)
    return ind


def tree_downward(
    ctx: NodeCtx,
    params: TreeParams,
    my_colors: Sequence[int],
    parent_colors: Optional[Sequence[int]],
    ind: Optional[int],
    value: Optional[Any],
    listening: bool,
):
    """One Downward-transmission grid: failure-free parent -> children.

    A vertex holding ``value`` transmits it at its own color slot in every
    coloring; a ``listening`` vertex tunes to (ind, parent color).
    Returns the received message or None.
    """
    received: Optional[Any] = None
    for j in range(params.num_colorings):
        send_k = my_colors[j] if value is not None else None
        listen_k = None
        if (
            listening
            and ind == j
            and parent_colors is not None
            and received is None
            and parent_colors[j] != send_k
        ):
            listen_k = parent_colors[j]
        events = sorted(
            ({send_k} if send_k is not None else set())
            | ({listen_k} if listen_k is not None else set())
        )
        cursor = 0
        for k in events:
            if k > cursor:
                yield Idle(k - cursor)
            if k == send_k:
                yield Send(value)
            else:
                feedback = yield Listen()
                if is_message(feedback):
                    received = feedback
            cursor = k + 1
        if params.num_colors > cursor:
            yield Idle(params.num_colors - cursor)
    return received


def tree_upward(
    ctx: NodeCtx,
    params: TreeParams,
    my_colors: Sequence[int],
    parent_colors: Optional[Sequence[int]],
    ind: Optional[int],
    value: Optional[Any],
    listening: bool,
):
    """One Upward-transmission grid: children -> parent via Lemma 8 blocks.

    A vertex holding ``value`` acts as SR sender in the single block
    (ind, parent color); a ``listening`` vertex acts as SR receiver in the
    c blocks (j, own color).  Footnote 6 guarantees only parent-child
    pairs meet inside a block; the probe and ack options keep bystander
    energy O(1) per block.  Returns the received message or None.
    """
    frame = params.sr.frame_length
    received: Optional[Any] = None
    send_block = None
    if value is not None and ind is not None and parent_colors is not None:
        send_block = (ind, parent_colors[ind])
    for j in range(params.num_colorings):
        listen_k = my_colors[j] if listening else None
        send_k = send_block[1] if (send_block is not None and send_block[0] == j) else None
        blocks = sorted(
            ({send_k} if send_k is not None else set())
            | ({listen_k} if listen_k is not None else set())
        )
        cursor = 0
        for k in blocks:
            if k > cursor:
                yield Idle((k - cursor) * frame)
            if k == send_k and k == listen_k:
                # Sending to the parent takes precedence; a vertex cannot
                # simultaneously run both SR roles in one block.
                yield from sr_cd(ctx, Role.SENDER, value, params.sr)
            elif k == send_k:
                yield from sr_cd(ctx, Role.SENDER, value, params.sr)
            else:
                got = yield from sr_cd(
                    ctx,
                    Role.RECEIVER if received is None else Role.IDLE,
                    None,
                    params.sr,
                )
                if got is not None:
                    received = got
            cursor = k + 1
        if params.num_colors > cursor:
            yield Idle((params.num_colors - cursor) * frame)
    return received


def _tree_sweep(
    ctx: NodeCtx,
    params: TreeParams,
    recv_position: int,
    send_position: int,
    positions: int,
    grid,
    grid_slots: int,
    value: Optional[Any],
    transform: Callable[[Any], Any],
    my_colors,
    parent_colors,
    ind,
):
    cursor = 0
    for position in sorted({recv_position, send_position}):
        if not 0 <= position < positions:
            continue
        if position > cursor:
            yield Idle((position - cursor) * grid_slots)
        if position == recv_position and value is None:
            got = yield from grid(
                ctx, params, my_colors, parent_colors, ind, None, True
            )
            if got is not None:
                value = transform(got)
        elif position == send_position and value is not None:
            yield from grid(
                ctx, params, my_colors, parent_colors, ind, value, False
            )
        else:
            yield Idle(grid_slots)
        cursor = position + 1
    if positions > cursor:
        yield Idle((positions - cursor) * grid_slots)
    return value


def tree_down_cast(
    ctx: NodeCtx,
    params: TreeParams,
    layer: int,
    value: Optional[Any],
    max_layers: int,
    my_colors,
    parent_colors,
    ind,
    transform: Callable[[Any], Any],
):
    """Layered Downward sweep: frame i moves values layer i -> i+1 along
    tree edges; every vertex is active in at most two positions."""
    return _tree_sweep(
        ctx, params,
        recv_position=layer - 1,
        send_position=layer,
        positions=max_layers - 1,
        grid=tree_downward,
        grid_slots=params.downward_slots,
        value=value,
        transform=transform,
        my_colors=my_colors, parent_colors=parent_colors, ind=ind,
    )


def tree_up_cast(
    ctx: NodeCtx,
    params: TreeParams,
    layer: int,
    value: Optional[Any],
    max_layers: int,
    my_colors,
    parent_colors,
    ind,
    transform: Callable[[Any], Any],
):
    """Layered Upward sweep: frame i moves values layer i -> i-1 along
    tree edges (deepest layer first)."""
    return _tree_sweep(
        ctx, params,
        recv_position=(max_layers - 1) - (layer + 1),
        send_position=(max_layers - 1) - layer if layer >= 1 else -1,
        positions=max_layers - 1,
        grid=tree_upward,
        grid_slots=params.upward_slots,
        value=value,
        transform=transform,
        my_colors=my_colors, parent_colors=parent_colors, ind=ind,
    )
