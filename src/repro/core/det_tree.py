"""Deterministic cluster-tree transmissions (Appendix A.3, Lemma 28).

Clusters are rooted trees; every vertex knows its parent's ID.  Time is
split into N intervals, one per ID:

* Downward: in interval j only the vertex with ID j+1 may transmit; its
  children (who know the parent ID) listen exactly there.  One slot per
  interval, zero failure.
* Upward: interval j is reserved for SR-communication between the vertex
  with ID j+1 and its children; children of the same parent contend, so
  the interval runs the deterministic Lemma 24 payload primitive — the
  parent learns the minimum-ID child's message.  O(N) slots per interval
  (the paper's min{M, N} factor with M >= N), O(log N) energy per
  participant.

``det_down_cast`` / ``det_up_cast`` sweep these grids over the layers of a
good labeling with the usual two-positions-per-vertex scheduling, and
``DetCDScheme`` adapts Lemma 24 to the SRScheme interface so the plain
Lemma 10 casts work deterministically for the final broadcast.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.sr_comm import Role, det_frame_length, sr_det_cd_payload
from repro.sim.actions import Idle, Listen, Send
from repro.sim.feedback import is_message
from repro.sim.node import NodeCtx

__all__ = [
    "det_downward",
    "det_upward",
    "det_down_cast",
    "det_up_cast",
    "DetCDScheme",
    "downward_slots",
    "upward_slots",
]


def downward_slots(id_space: int) -> int:
    return id_space


def upward_slots(id_space: int) -> int:
    return id_space * (det_frame_length(id_space) + id_space)


def det_downward(
    ctx: NodeCtx,
    parent_uid: Optional[int],
    value: Optional[Any],
    listening: bool,
    id_space: int,
):
    """One Downward grid: parent -> children, zero failure.

    A vertex holding ``value`` transmits at its own interval; a
    ``listening`` vertex with a parent listens at the parent's interval.
    Returns the received message or None.
    """
    send_slot = (ctx.uid - 1) if value is not None else None
    listen_slot = (parent_uid - 1) if (listening and parent_uid is not None) else None
    if listen_slot is not None and listen_slot == send_slot:
        listen_slot = None  # cannot happen for distinct IDs; defensive
    received: Optional[Any] = None
    cursor = 0
    for slot in sorted(
        ({send_slot} if send_slot is not None else set())
        | ({listen_slot} if listen_slot is not None else set())
    ):
        if slot > cursor:
            yield Idle(slot - cursor)
        if slot == send_slot:
            yield Send(("dt", value))
        else:
            feedback = yield Listen()
            if is_message(feedback) and feedback[0] == "dt":
                received = feedback[1]
        cursor = slot + 1
    if id_space > cursor:
        yield Idle(id_space - cursor)
    return received


def det_upward(
    ctx: NodeCtx,
    parent_uid: Optional[int],
    value: Optional[Any],
    listening: bool,
    id_space: int,
):
    """One Upward grid: children -> parent via Lemma 24 per interval.

    A vertex holding ``value`` acts as deterministic SR sender in its
    parent's interval; a ``listening`` vertex receives in its own interval.
    Returns (child_uid, message) or None.
    """
    frame = det_frame_length(id_space) + id_space
    send_block = (parent_uid - 1) if (value is not None and parent_uid is not None) else None
    listen_block = (ctx.uid - 1) if listening else None
    received = None
    cursor = 0
    for block in sorted(
        ({send_block} if send_block is not None else set())
        | ({listen_block} if listen_block is not None else set())
    ):
        if block > cursor:
            yield Idle((block - cursor) * frame)
        if block == send_block:
            yield from sr_det_cd_payload(
                ctx, Role.SENDER, ctx.uid, value, id_space
            )
        else:
            got = yield from sr_det_cd_payload(
                ctx, Role.RECEIVER, None, None, id_space
            )
            if got is not None:
                received = got
        cursor = block + 1
    if id_space > cursor:
        yield Idle((id_space - cursor) * frame)
    return received


def _det_sweep(
    ctx: NodeCtx,
    recv_position: int,
    send_position: int,
    positions: int,
    grid,
    grid_len: int,
    parent_uid,
    value,
    transform,
    id_space: int,
):
    cursor = 0
    for position in sorted({recv_position, send_position}):
        if not 0 <= position < positions:
            continue
        if position > cursor:
            yield Idle((position - cursor) * grid_len)
        if position == recv_position and value is None:
            got = yield from grid(ctx, parent_uid, None, True, id_space)
            if got is not None:
                value = transform(got)
        elif position == send_position and value is not None:
            yield from grid(ctx, parent_uid, value, False, id_space)
        else:
            yield Idle(grid_len)
        cursor = position + 1
    if positions > cursor:
        yield Idle((positions - cursor) * grid_len)
    return value


def det_down_cast(
    ctx: NodeCtx,
    layer: int,
    parent_uid,
    value,
    max_layers: int,
    id_space: int,
    transform: Callable[[Any], Any],
):
    """Layered Downward sweep along tree edges (deterministic)."""
    return _det_sweep(
        ctx,
        recv_position=layer - 1,
        send_position=layer,
        positions=max_layers - 1,
        grid=det_downward,
        grid_len=downward_slots(id_space),
        parent_uid=parent_uid,
        value=value,
        transform=transform,
        id_space=id_space,
    )


def det_up_cast(
    ctx: NodeCtx,
    layer: int,
    parent_uid,
    value,
    max_layers: int,
    id_space: int,
    transform: Callable[[Any], Any],
):
    """Layered Upward sweep along tree edges (deterministic).  The
    transform receives (child_uid, message) pairs."""
    return _det_sweep(
        ctx,
        recv_position=(max_layers - 1) - (layer + 1),
        send_position=(max_layers - 1) - layer if layer >= 1 else -1,
        positions=max_layers - 1,
        grid=det_upward,
        grid_len=upward_slots(id_space),
        parent_uid=parent_uid,
        value=value,
        transform=transform,
        id_space=id_space,
    )


class DetCDScheme:
    """Duck-typed :class:`~repro.core.schemes.SRScheme` replacement that
    runs Lemma 24's deterministic SR-communication, so the plain Lemma 10
    casts (and broadcast_on_labeling) work in deterministic CD.

    Receivers obtain (sender_uid, message); ``communicate`` unwraps to the
    message for cast compatibility.
    """

    model_name = "det-CD"

    def __init__(self, id_space: int) -> None:
        self.id_space = id_space

    @property
    def frame_length(self) -> int:
        return det_frame_length(self.id_space) + self.id_space

    def communicate(self, ctx: NodeCtx, role: Role, message: Any = None, accept=None):
        def run():
            got = yield from sr_det_cd_payload(
                ctx, role, ctx.uid if role is Role.SENDER else None,
                message, self.id_space,
            )
            if got is None:
                return None
            payload = got[1]
            if accept is not None and not accept(payload):
                return None
            return payload

        return run()

    def idle_frames(self, count: int):
        slots = count * self.frame_length
        if slots > 0:
            yield Idle(slots)
