"""Iterative clustering via good labelings (Section 5).

``refine_labeling`` is the paper's "Computing a New Labeling L' from L":
each layer-0 vertex survives independently with probability p; the
survivors' 0-labels wash over the graph through s rounds of
(Down-cast, All-cast, Up-cast) plus a final Down-cast, giving every
reached vertex a new label = its hop distance (through the cast schedule)
to a surviving root; unreached vertices keep their old label.

A layer-0 vertex remains layer-0 with probability at most
p + (1-p)^{min(s+1, w)} + negligible, so O(log n) refinements with
(p = 1/2, s = 1) leave a single cluster w.h.p. (Theorem 11), and
(p = log^{-eps/2} n, s = log n) trades fewer iterations of cheaper energy
(Theorem 12's CD accounting).
"""

from __future__ import annotations

from typing import Optional

from repro.core.casts import all_cast, down_cast, up_cast
from repro.core.schemes import SRScheme
from repro.sim.node import NodeCtx

__all__ = ["refine_labeling", "refine_slots", "broadcast_on_labeling"]


def _increment(message: int) -> int:
    return message + 1


def refine_labeling(
    ctx: NodeCtx,
    scheme: SRScheme,
    label: int,
    survive_p: float,
    spread_s: int,
    max_layers: int,
    survive: Optional[bool] = None,
):
    """One refinement; returns this vertex's new label.

    Every vertex must call this at the same slot with identical
    (scheme, survive_p, spread_s, max_layers) for the frames to align.
    ``survive`` overrides the survival coin (deterministic algorithms pass
    ruling-set membership here, Appendix A.1).
    """
    new_label: Optional[int] = None
    if label == 0:
        survives = survive if survive is not None else (
            ctx.rng.random() < survive_p
        )
        if survives:
            new_label = 0
    for _ in range(spread_s):
        new_label = yield from down_cast(
            ctx, scheme, label, new_label, max_layers, transform=_increment
        )
        new_label = yield from all_cast(ctx, scheme, new_label, transform=_increment)
        new_label = yield from up_cast(
            ctx, scheme, label, new_label, max_layers, transform=_increment
        )
    new_label = yield from down_cast(
        ctx, scheme, label, new_label, max_layers, transform=_increment
    )
    return new_label if new_label is not None else label


def refine_slots(scheme: SRScheme, spread_s: int, max_layers: int) -> int:
    """Slots one refinement consumes (for schedule bookkeeping)."""
    sweep = (max_layers - 1) * scheme.frame_length
    return spread_s * (2 * sweep + scheme.frame_length) + sweep


def broadcast_on_labeling(
    ctx: NodeCtx,
    scheme: SRScheme,
    label: int,
    value,
    max_layers: int,
    gl_diameter_bound: int,
):
    """Lemma 10: broadcast over an existing good labeling.

    (1) Up-cast carries the message from the source to a layer-0 root;
    (2) d rounds of (Down-cast, All-cast, Up-cast) pass it between
    clusters; (3) a final Down-cast floods every cluster.  Returns the
    vertex's final value (the payload, if delivery succeeded).
    """
    value = yield from up_cast(ctx, scheme, label, value, max_layers)
    for _ in range(gl_diameter_bound):
        value = yield from down_cast(ctx, scheme, label, value, max_layers)
        value = yield from all_cast(ctx, scheme, value)
        value = yield from up_cast(ctx, scheme, label, value, max_layers)
    value = yield from down_cast(ctx, scheme, label, value, max_layers)
    return value
