"""Core building blocks: SR-communication, casts, labelings, clusterings.

**Fixed-frame contract.**  Every generator in this package consumes an
identical, parameter-determined number of slots on every vertex (senders,
receivers, and bystanders alike), so protocols composed from these pieces
stay slot-synchronized across the network without any explicit barrier.
"""

from repro.core.casts import all_cast, cast_sequence_slots, down_cast, identity, up_cast
from repro.core.clustering import broadcast_on_labeling, refine_labeling, refine_slots
from repro.core.labeling import (
    clusters_from_labeling,
    gl_diameter,
    gl_graph_edges,
    is_good_labeling,
    layer_zero,
)
from repro.core.schemes import SRScheme
from repro.core.sr_comm import (
    CDParams,
    DecayParams,
    Role,
    det_frame_length,
    sr_cd,
    sr_det_cd,
    sr_det_cd_payload,
    sr_local,
    sr_nocd,
)

__all__ = [
    "all_cast",
    "cast_sequence_slots",
    "down_cast",
    "identity",
    "up_cast",
    "broadcast_on_labeling",
    "refine_labeling",
    "refine_slots",
    "clusters_from_labeling",
    "gl_diameter",
    "gl_graph_edges",
    "is_good_labeling",
    "layer_zero",
    "SRScheme",
    "CDParams",
    "DecayParams",
    "Role",
    "det_frame_length",
    "sr_cd",
    "sr_det_cd",
    "sr_det_cd_payload",
    "sr_local",
    "sr_nocd",
]
