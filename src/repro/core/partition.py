"""Partition(beta): random low-diameter clustering (Section 6, [28], [14]).

Every vertex draws delta_v ~ Exponential(beta) and conceptually joins the
cluster of the u maximizing delta_u - dist(u, v).  The distributed
implementation (following [14]): vertex v's start epoch is
T_max - ceil(delta_v) where T_max = ceil(2 log n / beta); in each epoch,
still-unclustered vertices whose start time has come found their own
cluster, then one SR-communication lets unclustered vertices adjacent to
clustered ones join the cluster they hear.

Properties reproduced in tests:
* Lemma 14(1): each edge is cut (endpoints in different clusters) with
  probability at most ~2 beta.
* Lemma 15: the cluster graph's diameter shrinks to O(beta * D) w.h.p.

This module is the *flat* version that runs directly on G (every vertex
its own prior cluster); the recursive cluster-graph version used by the
D^{1+eps} algorithm lives in :mod:`repro.broadcast.dtime`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.schemes import SRScheme
from repro.core.sr_comm import Role
from repro.sim.node import NodeCtx
from repro.util import ceil_log2

__all__ = ["PartitionParams", "partition_once", "partition_result_clusters"]


@dataclass(frozen=True)
class PartitionParams:
    """Shared parameters of one Partition(beta) execution.

    Attributes:
        beta: exponential rate in (0, 1).
        n: vertex count (start-time horizon uses 2 log2 n / beta).
        failure: SR-communication failure probability per epoch.
    """

    beta: float
    n: int
    failure: float = 0.01

    def __post_init__(self) -> None:
        if not 0 < self.beta < 1:
            raise ValueError(f"beta must be in (0,1), got {self.beta}")

    @property
    def epochs(self) -> int:
        return max(1, math.ceil(2 * ceil_log2(max(2, self.n)) / self.beta))


def partition_once(ctx: NodeCtx, scheme: SRScheme, params: PartitionParams):
    """Run one Partition(beta); returns (cluster_id, layer, is_center).

    ``cluster_id`` is the center's random 64-bit tag, ``layer`` the
    vertex's hop distance from the center along the join forest (a good
    labeling of the induced clustering: layer-0 exactly at centers).
    """
    t_max = params.epochs
    delta = ctx.rng.expovariate(params.beta)
    start = max(1, t_max - math.ceil(delta))
    my_tag = ctx.rng.getrandbits(64)

    cluster: Optional[int] = None
    layer = 0
    is_center = False
    for epoch in range(1, t_max + 1):
        if cluster is None and start == epoch:
            cluster = my_tag
            is_center = True
        if cluster is not None:
            yield from scheme.communicate(
                ctx, Role.SENDER, ("join", cluster, layer)
            )
        else:
            received = yield from scheme.communicate(ctx, Role.RECEIVER)
            if received is not None and received[0] == "join":
                cluster = received[1]
                layer = received[2] + 1
    if cluster is None:
        # Start times are >= 1 <= t_max, so an unclustered vertex becomes
        # its own center at the latest epoch; this branch is unreachable
        # but kept for defensive clarity.
        cluster, is_center = my_tag, True
    return cluster, layer, is_center


def partition_result_clusters(outputs) -> Tuple[dict, dict]:
    """Group a simulation's (cluster, layer, is_center) outputs.

    Returns (members, layers): members maps cluster tag -> vertex list,
    layers maps vertex -> layer.
    """
    members: dict = {}
    layers: dict = {}
    for v, (cluster, layer, _) in enumerate(outputs):
        members.setdefault(cluster, []).append(v)
        layers[v] = layer
    return members, layers
