"""Model-agnostic SR-communication dispatch.

Algorithms in the paper are described once and instantiated per collision
model (Lemma 10 lists LOCAL/CD/No-CD cost triples).  :class:`SRScheme`
binds a model name and failure parameter to the matching primitive from
:mod:`repro.core.sr_comm` so the cast/clustering layers are written once.

All vertices construct the identical scheme from shared knowledge
(n, Delta), so frame lengths agree network-wide — the fixed-frame
synchronization contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core import sr_comm
from repro.core.sr_comm import CDParams, DecayParams, Role
from repro.sim.node import NodeCtx

__all__ = ["SRScheme"]

_MODEL_NAMES = ("LOCAL", "CD", "No-CD")


@dataclass(frozen=True)
class SRScheme:
    """One SR-communication configuration shared by every vertex.

    Attributes:
        model_name: "LOCAL", "CD" or "No-CD".
        max_degree: the paper's Delta (shared knowledge).
        failure: per-invocation failure probability f (ignored by LOCAL).
        probe: CD only — prepend Remark 9's two probe slots so vertices
            without a counterpart pay O(1) energy.
        ack: CD only — Lemma 8's special-case ack slot per epoch.
    """

    model_name: str
    max_degree: int
    failure: float = 0.01
    probe: bool = False
    ack: bool = False

    def __post_init__(self) -> None:
        if self.model_name not in _MODEL_NAMES:
            raise ValueError(
                f"model_name must be one of {_MODEL_NAMES}, got {self.model_name!r}"
            )
        if self.model_name != "CD" and (self.probe or self.ack):
            raise ValueError("probe/ack are CD-only options")

    # -- geometry ----------------------------------------------------------

    @property
    def frame_length(self) -> int:
        """Slots consumed by one SR-communication invocation."""
        if self.model_name == "LOCAL":
            return 1
        if self.model_name == "CD":
            return self._cd_params().frame_length
        return self._decay_params().frame_length

    def _decay_params(self) -> DecayParams:
        return DecayParams.for_graph(self.max_degree, self.failure)

    def _cd_params(self) -> CDParams:
        return CDParams.for_graph(
            self.max_degree, self.failure, probe=self.probe, ack=self.ack
        )

    # -- execution ----------------------------------------------------------

    def communicate(self, ctx: NodeCtx, role: Role, message: Any = None, accept=None):
        """Run one SR-communication frame in this node's protocol.

        Generator; drive with ``yield from``.  Returns the received message
        for receivers (or None), None otherwise.  ``accept`` lets receivers
        skip messages that do not concern them (e.g. other clusters').
        """
        if self.model_name == "LOCAL":
            return sr_comm.sr_local(ctx, role, message, accept=accept)
        if self.model_name == "CD":
            return sr_comm.sr_cd(ctx, role, message, self._cd_params(), accept=accept)
        return sr_comm.sr_nocd(
            ctx, role, message, self._decay_params(), accept=accept
        )

    def idle_frames(self, count: int):
        """Idle through ``count`` whole frames (generator)."""
        slots = count * self.frame_length
        if slots > 0:
            from repro.sim.actions import Idle

            yield Idle(slots)
