"""SR-communication: the paper's basic building block (Section 4).

Given disjoint vertex sets S (senders) and R (receivers), every receiver
with at least one S-neighbor should, with probability 1 - f, receive a
message from some S-neighbor.  Three implementations:

* :func:`sr_nocd` — Lemma 7: the decay protocol of Bar-Yehuda et al. [4].
  Time and per-vertex energy O(log Delta log 1/f).
* :func:`sr_cd` — Lemma 8: the generic transformation of a uniform
  single-hop leader-election algorithm ([30]-style doubling + binary-search
  controller).  Receiver energy O(log log Delta + log 1/f); senders
  transmit at most twice per epoch.  Supports Remark 9's O(1) probe
  opt-out and the "ack" variant for the S-has-one-R-neighbor special case.
* :func:`sr_local` — trivial one-slot LOCAL variant.
* :func:`sr_det_cd` — Lemma 24: deterministic CD binary search over the
  message space; time O(min(M, N)), energy O(log min(M, N)).

Every function is a generator meant to be driven with ``yield from`` inside
a node protocol.  **Fixed-frame contract**: for fixed parameters, every
vertex — sender, receiver, or bystander (role IDLE) — consumes *exactly*
``frame_length`` slots, so concurrent invocations across the network stay
slot-synchronized.  Early finishers pad with Idle.

The hot frames are *phase-compiled* (:mod:`repro.sim.plan`): decay
senders pre-draw their burst length and yield one ``Repeat(Send, k)``
per phase, decay receivers yield a single padded ``ListenUntil`` for the
whole frame, and the CD / deterministic interval schedules yield
``Steps`` sequences — so a frame costs O(phases) generator entries
instead of O(frame_length).  All rewirings preserve the per-slot rng
draw order and slot-for-slot action sequence, so results are
byte-identical to the per-slot path (``stepping="slot"`` pins this).
Adaptive parts whose next slot depends on the previous feedback (probe
slots, ack slots, the Lemma 8 controller) stay per-slot — the escape
hatch plans are designed around.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from repro.sim.actions import Idle, Listen, Send
from repro.sim.feedback import NOISE, SILENCE, is_message
from repro.sim.node import NodeCtx
from repro.sim.plan import ListenUntil, Repeat, Steps
from repro.util import ceil_log2

__all__ = [
    "Role",
    "DecayParams",
    "CDParams",
    "sr_nocd",
    "sr_cd",
    "sr_local",
    "sr_det_cd",
    "det_frame_length",
]

_PROBE = ("sr-probe",)
_ACK = ("sr-ack",)


class Role(enum.Enum):
    """A vertex's part in one SR-communication frame.

    ``BOTH`` (sender and receiver simultaneously) is only meaningful for
    the deterministic primitive, whose Lemma 24 statement allows S and R
    to intersect.
    """

    SENDER = "sender"
    RECEIVER = "receiver"
    BOTH = "both"
    IDLE = "idle"


def _idle(slots: int):
    """Yield one Idle covering ``slots`` slots (no-op when slots == 0)."""
    if slots > 0:
        yield Idle(slots)


# ---------------------------------------------------------------------------
# Lemma 7: No-CD decay
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DecayParams:
    """Frame geometry for :func:`sr_nocd`.

    Attributes:
        slots_per_phase: ceil(log2 Delta) + 2 decay slots.
        phases: number of independent decay phases; each succeeds with
            constant probability, so phases = O(log 1/f).
    """

    slots_per_phase: int
    phases: int

    @classmethod
    def for_graph(cls, max_degree: int, failure: float) -> "DecayParams":
        """Parameters achieving failure probability <= ``failure`` for any
        receiver with between 1 and ``max_degree`` transmitting neighbors.

        One decay phase with K = ceil(log2 Delta) + 2 slots delivers with
        probability >= 1/4 for any contention level m <= Delta (standard
        decay analysis), hence phases = ceil(log_{4/3}(1/f)) suffices; we
        use the slightly conservative ceil(5 ln(1/f)).
        """
        if not 0 < failure < 1:
            raise ValueError(f"failure must be in (0,1), got {failure}")
        import math

        slots = ceil_log2(max(2, max_degree)) + 2
        phases = max(1, math.ceil(5.0 * math.log(1.0 / failure) / math.log(4.0)))
        return cls(slots_per_phase=slots, phases=phases)

    @property
    def frame_length(self) -> int:
        return self.slots_per_phase * self.phases


def sr_nocd(
    ctx: NodeCtx,
    role: Role,
    message: Any,
    params: DecayParams,
    accept=None,
):
    """One No-CD SR-communication frame (decay protocol, Lemma 7).

    Senders run decay in every phase: transmit in the first slot of the
    phase, keep transmitting with probability 1/2 per subsequent slot, then
    stay silent.  Receivers listen to every slot until they hear a message
    passing ``accept`` (default: any message), then idle out the rest of
    the frame.  Returns the received message (receivers) or None.

    Phase-compiled: the sender pre-draws each phase's geometric burst
    length (same draws, same order as the per-slot loop) and yields one
    ``Repeat(Send, length)`` burst per phase; the receiver's whole frame
    is a single padded ``ListenUntil`` — listen until an accepted
    message, idle out the rest — exactly the per-slot path's slot
    pattern with O(1) generator entries.
    """
    slots, phases = params.slots_per_phase, params.phases
    if role is Role.IDLE:
        yield from _idle(params.frame_length)
        return None
    if role is Role.SENDER:
        rand = ctx.rng.random
        for _ in range(phases):
            length = 1
            while length < slots and rand() < 0.5:
                length += 1
            if length == 1:
                yield Send(message)
            else:
                yield Repeat(Send(message), length)
            yield from _idle(slots - length)
        return None
    # Receiver: one plan for the whole frame.
    received = yield ListenUntil(slots * phases, accept=accept, pad=True)
    return received


# ---------------------------------------------------------------------------
# Lemma 8: CD generic transformation (uniform leader-election controller)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CDParams:
    """Frame geometry for :func:`sr_cd`.

    The frame is ``epochs`` epochs of ``slots_per_epoch`` decay-probability
    slots (senders transmit in slot i with probability 2^-(i+1), at most
    twice per epoch; the receiver listens at one controller-chosen slot),
    optionally preceded by two Remark 9 probe slots and optionally followed
    per-epoch by one ack slot (the Lemma 8 special case that lets senders
    stop early).
    """

    slots_per_epoch: int
    epochs: int
    probe: bool = False
    ack: bool = False

    @classmethod
    def for_graph(
        cls,
        max_degree: int,
        failure: float,
        probe: bool = False,
        ack: bool = False,
    ) -> "CDParams":
        """Epochs = O(log log Delta + log 1/f): doubling plus binary search
        over the O(log Delta) probability exponents takes 2 ceil(log2 K)
        epochs, after which each epoch succeeds with probability >= 1/8."""
        if not 0 < failure < 1:
            raise ValueError(f"failure must be in (0,1), got {failure}")
        import math

        slots = ceil_log2(max(2, max_degree)) + 2
        search = 2 * (ceil_log2(slots) + 1)
        steady = max(1, math.ceil(18.0 * math.log(1.0 / failure) / math.log(4.0)))
        return cls(
            slots_per_epoch=slots,
            epochs=search + steady,
            probe=probe,
            ack=ack,
        )

    @property
    def epoch_length(self) -> int:
        return self.slots_per_epoch + (1 if self.ack else 0)

    @property
    def frame_length(self) -> int:
        return (2 if self.probe else 0) + self.epoch_length * self.epochs


class _Controller:
    """The uniform [30]-style listening controller.

    Maintains which probability exponent k (1-based slot index) to listen
    at: doubling until the channel stops being noisy, then binary search,
    then alternate around the located contention level.  ``k`` depends only
    on past feedback, matching the paper's uniformity requirement.
    """

    def __init__(self, max_k: int) -> None:
        self.max_k = max_k
        self.lo = 0  # highest k known (or assumed) noisy
        self.hi: Optional[int] = None  # lowest k known silent
        self._doubling = 1
        self._flip = False

    def next_k(self) -> int:
        if self.hi is None:
            return min(self._doubling, self.max_k)
        if self.hi - self.lo > 1:
            return (self.hi + self.lo) // 2
        # Converged: alternate between the bracketing exponents.
        self._flip = not self._flip
        k = self.hi if self._flip else max(self.lo, 1)
        return min(max(k, 1), self.max_k)

    def observe(self, k: int, feedback: Any) -> None:
        if feedback is NOISE:
            self.lo = max(self.lo, k)
            if self.hi is None:
                if k >= self.max_k:
                    self.hi = self.max_k  # cap: treat top as bracket
                else:
                    self._doubling = min(self._doubling * 2, self.max_k)
            elif self.hi - self.lo <= 1:
                pass  # steady state; keep alternating
        elif feedback is SILENCE:
            if self.hi is None or k < self.hi:
                self.hi = k
            if self.hi <= self.lo:
                self.lo = max(0, self.hi - 1)


def sr_cd(
    ctx: NodeCtx,
    role: Role,
    message: Any,
    params: CDParams,
    accept=None,
):
    """One CD SR-communication frame (Lemma 8).

    Returns the received message for receivers, else None.  With
    ``params.probe`` (Remark 9), a sender with no listening neighbor and a
    receiver with no sending neighbor detect this in the two probe slots
    and spend O(1) energy.  With ``params.ack`` (the Lemma 8 special case),
    receivers that already got a message transmit an ack at the end of each
    epoch and their neighboring senders shut down.
    """
    total = params.frame_length
    spent = 0

    def idle_rest():
        yield from _idle(total - spent)

    if role is Role.IDLE:
        yield from idle_rest()
        return None

    if params.probe:
        # Probe slot 1: senders transmit, receivers listen.  In CD, any
        # feedback other than silence proves a sender neighbor exists.
        if role is Role.SENDER:
            yield Send(_PROBE)
            fb_r = None
        else:
            fb_r = yield Listen()
        # Probe slot 2: receivers transmit, senders listen.
        if role is Role.RECEIVER:
            yield Send(_PROBE)
        else:
            fb_s = yield Listen()
        spent += 2
        if role is Role.RECEIVER and fb_r is SILENCE:
            yield from idle_rest()
            return None
        if role is Role.SENDER and fb_s is SILENCE:
            yield from idle_rest()
            return None

    slots = params.slots_per_epoch
    if role is Role.SENDER:
        for _ in range(params.epochs):
            # Phase-compiled epoch: the picks are fully determined by the
            # (unchanged) rng draws, so the whole idle/send interval
            # schedule goes out as one Steps plan.  The ack slot stays
            # per-slot — its feedback decides the early exit.
            picks = [
                i for i in range(slots) if ctx.rng.random() < 2.0 ** -(i + 1)
            ][:2]
            acts = []
            cursor = 0
            for i in picks:
                if i > cursor:
                    acts.append(Idle(i - cursor))
                acts.append(Send(message))
                cursor = i + 1
            if slots > cursor:
                acts.append(Idle(slots - cursor))
            if len(acts) == 1:
                yield acts[0]
            else:
                yield Steps(tuple(acts))
            spent += slots
            if params.ack:
                feedback = yield Listen()
                spent += 1
                if feedback is not SILENCE:
                    # Some neighboring receiver is satisfied; stop early.
                    yield from idle_rest()
                    return None
        return None

    # Receiver: one listening slot per epoch, controller-chosen.  The
    # epoch's idle/listen/idle schedule is one Steps plan; the feedback
    # comes back at the epoch boundary, which is exactly when the
    # controller needs it (the per-slot path also only acted on it then).
    controller = _Controller(max_k=slots)
    received: Optional[Any] = None
    for _ in range(params.epochs):
        if received is None:
            k = controller.next_k()  # 1-based exponent = slot index k-1
            acts = []
            if k > 1:
                acts.append(Idle(k - 1))
            acts.append(Listen())
            if slots > k:
                acts.append(Idle(slots - k))
            if len(acts) == 1:
                feedback = yield acts[0]
            else:
                feedback = (yield Steps(tuple(acts)))[0]
            if is_message(feedback):
                if accept is None or accept(feedback):
                    received = feedback
                # A rejected message still proves a lone transmitter; do
                # not update the contention controller from it.
            else:
                controller.observe(k, feedback)
            spent += slots
            if params.ack:
                if received is not None:
                    yield Send(_ACK)
                else:
                    yield from _idle(1)
                spent += 1
        else:
            if params.ack:
                # Stay on schedule but free of charge once satisfied
                # (ack already sent in the epoch of reception).
                yield from idle_rest()
                break
            yield from _idle(slots)
            spent += slots
    return received


# ---------------------------------------------------------------------------
# LOCAL: trivial one-slot variant
# ---------------------------------------------------------------------------


def sr_local(ctx: NodeCtx, role: Role, message: Any, slots: int = 1, accept=None):
    """LOCAL-model SR-communication: no collisions, one slot.

    Receivers get the tuple of all neighboring transmissions; we return the
    first (lowest sender index) passing ``accept``, matching the "receive
    one message" contract.
    """
    del ctx
    if slots != 1:
        raise ValueError("sr_local uses exactly one slot")
    if role is Role.SENDER:
        yield Send(message)
        return None
    if role is Role.RECEIVER:
        feedback = yield Listen()
        for msg in feedback:
            if accept is None or accept(msg):
                return msg
        return None
    yield Idle(1)
    return None


def sr_local_all(ctx: NodeCtx, role: Role, message: Any):
    """LOCAL variant returning *all* messages heard (tuple), for protocols
    that exploit collision-freeness (e.g. deterministic ruling sets)."""
    del ctx
    if role is Role.SENDER:
        yield Send(message)
        return ()
    if role is Role.RECEIVER:
        feedback = yield Listen()
        return tuple(feedback)
    yield Idle(1)
    return ()


# ---------------------------------------------------------------------------
# Lemma 24: deterministic CD
# ---------------------------------------------------------------------------


def det_frame_length(space: int) -> int:
    """Slot count of :func:`sr_det_cd` for message space {0..space-1}:
    sum over bit positions x of 2^(x+1), i.e. 2*(2^ceil(log2 space) - 1),
    plus one final slot block is unnecessary since the value *is* the
    message."""
    bits = max(1, ceil_log2(max(2, space)))
    return 2 ** (bits + 1) - 2


def sr_det_cd(ctx: NodeCtx, role: Role, value: Optional[int], space: int):
    """Deterministic CD SR-communication of integer values (Lemma 24).

    Senders hold ``value`` in {0..space-1}.  Receivers learn
    f_v = min over values held by sending neighbors (and their own value,
    for ``Role.BOTH``).  Protocol, per bit position x = 0..bits-1
    (rounds of 2^(x+1) slots): a sender transmits at the slot indexed by
    the (x+1)-bit prefix of its value; a receiver listens at the two
    extensions p|0 and p|1 of its current prefix estimate p, skipping any
    slot its own value already certifies.  In CD, non-silence at a slot
    proves some neighbor holds that prefix, so receivers binary-search the
    minimum bit by bit.

    Returns the learned minimum (receivers/BOTH; None when no sender is
    audible and the vertex holds no value) or None (pure senders).
    Energy O(log space); time :func:`det_frame_length` (space) = O(space).
    """
    del ctx
    bits = max(1, ceil_log2(max(2, space)))
    total = det_frame_length(space)
    if role is Role.IDLE:
        yield from _idle(total)
        return None

    sending = role in (Role.SENDER, Role.BOTH)
    listening = role in (Role.RECEIVER, Role.BOTH)
    if sending and value is None:
        raise ValueError("a sending vertex needs a value")
    if value is not None and not 0 <= value < space:
        raise ValueError(f"value {value} outside message space {space}")

    prefix = 0
    dead = False  # receiver's branch has no audible sender and no own value

    for x in range(bits):
        round_slots = 2 ** (x + 1)
        shift = bits - x - 1
        own_prefix = (value >> shift) if value is not None else None

        events = []  # (slot, is_send)
        cand0 = cand1 = None
        if sending:
            events.append((own_prefix, True))
        if listening and not dead:
            cand0, cand1 = 2 * prefix, 2 * prefix + 1
            for cand in (cand0, cand1):
                if cand != own_prefix:
                    events.append((cand, False))

        # Phase-compiled round: the interval schedule is fixed once the
        # events are known, so it goes out as one Steps plan; the listen
        # outcomes come back as the plan result (they are only consumed
        # at the round boundary below, like the per-slot path).
        occupied = {}
        acts = []
        listen_slots = []
        cursor = 0
        for slot, is_send in sorted(events):
            if slot > cursor:
                acts.append(Idle(slot - cursor))
            if is_send:
                acts.append(Send(("det", slot)))
            else:
                acts.append(Listen())
                listen_slots.append(slot)
            cursor = slot + 1
        if round_slots > cursor:
            acts.append(Idle(round_slots - cursor))
        if listen_slots:
            heard = yield Steps(tuple(acts))
            for slot, feedback in zip(listen_slots, heard):
                occupied[slot] = feedback is not SILENCE
        elif len(acts) == 1:
            yield acts[0]
        elif acts:
            yield Steps(tuple(acts))

        if listening and not dead:
            occ0 = occupied.get(cand0, False) or own_prefix == cand0
            occ1 = occupied.get(cand1, False) or own_prefix == cand1
            if occ0:
                prefix = cand0
            elif occ1:
                prefix = cand1
            else:
                dead = True

    if not listening:
        return None
    if dead:
        return value  # None when the vertex held nothing and heard nothing
    if value is not None:
        return min(prefix, value)
    return prefix


def sr_det_cd_payload(
    ctx: NodeCtx,
    role: Role,
    uid: Optional[int],
    payload: Any,
    id_space: int,
):
    """Lemma 24's M > N case: deliver arbitrary payloads deterministically.

    Phase 1 runs :func:`sr_det_cd` over the ID space so every receiver
    learns the minimum sender ID among its neighbors; phase 2 allocates one
    slot per ID, each sender transmits its payload at its own ID's slot
    (collision-free because IDs are distinct), and each receiver listens at
    the slot of the ID it learned.

    ``uid`` is 1-based (paper IDs live in {1..N}).  Returns (sender_uid,
    payload) for receivers that heard someone, else None.
    """
    sending = role in (Role.SENDER, Role.BOTH)
    value = (uid - 1) if (uid is not None and sending) else None
    learned = yield from sr_det_cd(
        ctx, role, value, id_space
    )
    # Phase 2 is a fixed one-slot-per-ID schedule once ``learned`` is
    # known: emit it as a single Steps plan and read the (at most one)
    # listen outcome from the plan result.
    result = None
    own_payload = False
    listened = False
    acts = []
    cursor = 0
    if role in (Role.RECEIVER, Role.BOTH) and learned is not None:
        if learned > cursor:
            acts.append(Idle(learned - cursor))
        if sending and learned == value:
            # Own payload is the minimum; nothing to hear.
            acts.append(Send(("payload", uid, payload)))
            own_payload = True
        else:
            acts.append(Listen())
            listened = True
        cursor = learned + 1
        if sending and learned != value:
            if value > cursor:
                acts.append(Idle(value - cursor))
            acts.append(Send(("payload", uid, payload)))
            cursor = value + 1
    elif sending:
        if value > cursor:
            acts.append(Idle(value - cursor))
        acts.append(Send(("payload", uid, payload)))
        cursor = value + 1
    if id_space > cursor:
        acts.append(Idle(id_space - cursor))
    if acts:
        if len(acts) == 1 and not listened:
            yield acts[0]
            heard = ()
        else:
            heard = yield Steps(tuple(acts))
    else:
        heard = ()
    if own_payload:
        result = (uid, payload)
    elif listened:
        feedback = heard[0]
        if is_message(feedback) and feedback[0] == "payload":
            result = (feedback[1], feedback[2])
    return result
