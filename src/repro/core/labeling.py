"""Good labelings (Section 5): data model, validation, and the graph G_L.

A labeling L : V -> {0..n-1} is *good* when every vertex v with L(v) > 0
has a neighbor u with L(u) = L(v) - 1.  A good labeling encodes a
clustering: layer-0 vertices are cluster roots and every other vertex can
pick a parent one layer down.

These helpers run *outside* protocols (tests, experiments, verification);
the in-protocol state is just each node's integer label.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

from repro.graphs.graph import Graph

__all__ = [
    "is_good_labeling",
    "layer_zero",
    "gl_graph_edges",
    "gl_diameter",
    "clusters_from_labeling",
]


def is_good_labeling(graph: Graph, labels: Sequence[int]) -> bool:
    """Check the Section 5 definition."""
    if len(labels) != graph.n:
        return False
    for v in range(graph.n):
        lv = labels[v]
        if lv < 0:
            return False
        if lv > 0 and not any(labels[u] == lv - 1 for u in graph.neighbors(v)):
            return False
    return True


def layer_zero(labels: Sequence[int]) -> List[int]:
    return [v for v, value in enumerate(labels) if value == 0]


def gl_graph_edges(graph: Graph, labels: Sequence[int]) -> Set[Tuple[int, int]]:
    """Edges of G_L: layer-0 vertices u, v are L-adjacent when a path
    u, u_1..u_a, v_b..v_1, v exists with L(u_i) = i and L(v_j) = j.

    Computed by growing monotone-label regions from each root and marking
    roots whose regions touch.  A vertex may belong to several regions.
    """
    roots = layer_zero(labels)
    # region[v] = set of roots reachable from v by a strictly descending
    # label path v -> ... -> root (labels decreasing by exactly 1).
    region: List[Set[int]] = [set() for _ in range(graph.n)]
    order = sorted(range(graph.n), key=lambda v: labels[v])
    for v in order:
        if labels[v] == 0:
            region[v].add(v)
            continue
        for u in graph.neighbors(v):
            if labels[u] == labels[v] - 1:
                region[v] |= region[u]

    edges: Set[Tuple[int, int]] = set()
    for u, v in graph.edges:
        for ru in region[u]:
            for rv in region[v]:
                if ru != rv:
                    edges.add((min(ru, rv), max(ru, rv)))
    # L-adjacency also allows the "bent" path through a shared edge where
    # one endpoint serves both ascents; the loop above covers it because
    # region[] already contains all descent targets of each endpoint.
    del roots
    return edges


def gl_diameter(graph: Graph, labels: Sequence[int]) -> int:
    """Diameter of G_L (0 for a single root; -1 if G_L is disconnected)."""
    roots = layer_zero(labels)
    if len(roots) <= 1:
        return 0
    edges = gl_graph_edges(graph, labels)
    adj: Dict[int, List[int]] = {r: [] for r in roots}
    for a, b in edges:
        adj[a].append(b)
        adj[b].append(a)
    best = 0
    for source in roots:
        dist = {source: 0}
        queue = deque([source])
        while queue:
            x = queue.popleft()
            for y in adj[x]:
                if y not in dist:
                    dist[y] = dist[x] + 1
                    queue.append(y)
        if len(dist) < len(roots):
            return -1
        best = max(best, max(dist.values()))
    return best


def clusters_from_labeling(graph: Graph, labels: Sequence[int]) -> List[int]:
    """Assign each vertex to a root by following minimum-index parents.

    Returns ``assignment`` with assignment[v] = root vertex.  One of the
    (generally non-unique) clusterings a good labeling induces.
    """
    assignment = [-1] * graph.n
    order = sorted(range(graph.n), key=lambda v: labels[v])
    for v in order:
        if labels[v] == 0:
            assignment[v] = v
            continue
        parents = [u for u in graph.neighbors(v) if labels[u] == labels[v] - 1]
        if not parents:
            raise ValueError("not a good labeling")
        assignment[v] = assignment[min(parents)]
    return assignment
