"""Graph measurements: BFS, distances, diameter, connectivity.

These supply the parameters the paper assumes devices know (n, Delta, D)
and the verification logic used by tests and experiments.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.graphs.graph import Graph

__all__ = [
    "bfs_distances",
    "bfs_layers",
    "eccentricity",
    "diameter",
    "is_connected",
    "distance",
]


def bfs_distances(graph: Graph, source: int) -> List[int]:
    """Distances from ``source``; unreachable vertices get -1.

    Scans the graph's cached CSR adjacency — diameter computation runs a
    BFS per vertex, so the flat layout matters for workload labeling on
    larger graphs.
    """
    indptr, indices = graph.csr()
    dist = [-1] * graph.n
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        d = dist[u] + 1
        for w in indices[indptr[u]:indptr[u + 1]]:
            if dist[w] < 0:
                dist[w] = d
                queue.append(w)
    return dist


def bfs_layers(graph: Graph, source: int) -> Dict[int, List[int]]:
    """Vertices grouped by BFS distance from ``source``."""
    layers: Dict[int, List[int]] = {}
    for v, d in enumerate(bfs_distances(graph, source)):
        if d >= 0:
            layers.setdefault(d, []).append(v)
    return layers


def distance(graph: Graph, u: int, v: int) -> int:
    """Hop distance between u and v; -1 if disconnected."""
    return bfs_distances(graph, u)[v]


def eccentricity(graph: Graph, v: int) -> int:
    """Maximum distance from ``v``; raises if the graph is disconnected."""
    dist = bfs_distances(graph, v)
    if min(dist) < 0:
        raise ValueError("eccentricity undefined: graph is disconnected")
    return max(dist)


def diameter(graph: Graph, exact: bool = True, sample: Optional[int] = None) -> int:
    """The paper's D = max_{u,v} dist(u, v).

    Args:
        exact: run BFS from every vertex (O(nm)).
        sample: if ``exact`` is False, number of BFS sources to sample
            (lower-bounds the diameter; good enough for workload labeling).
    """
    if graph.n == 1:
        return 0
    if exact:
        return max(eccentricity(graph, v) for v in range(graph.n))
    sources = range(min(graph.n, sample or 8))
    return max(eccentricity(graph, v) for v in sources)


def is_connected(graph: Graph) -> bool:
    return min(bfs_distances(graph, 0)) >= 0
