"""Lightweight undirected graph used by the simulator.

Vertices are integers ``0..n-1``.  The structure is immutable after
construction; adjacency lists are sorted tuples so channel resolution and
LOCAL-model message ordering are deterministic.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

__all__ = ["Graph"]


class Graph:
    """An immutable simple undirected graph on vertices ``0..n-1``."""

    __slots__ = ("_n", "_adj", "_edges")

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]]) -> None:
        if n < 1:
            raise ValueError(f"graph needs at least one vertex, got n={n}")
        adj = [set() for _ in range(n)]
        edge_set = set()
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise ValueError(f"self-loop at vertex {u} is not allowed")
            a, b = (u, v) if u < v else (v, u)
            if (a, b) in edge_set:
                continue
            edge_set.add((a, b))
            adj[u].add(v)
            adj[v].add(u)
        self._n = n
        self._adj = tuple(tuple(sorted(s)) for s in adj)
        self._edges = tuple(sorted(edge_set))

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """Sorted tuple of edges (u, v) with u < v."""
        return self._edges

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbors of ``v``."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    @property
    def max_degree(self) -> int:
        """The paper's Delta."""
        return max(len(a) for a in self._adj)

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u] if len(self._adj[u]) < 8 else self._bsearch(u, v)

    def _bsearch(self, u: int, v: int) -> bool:
        import bisect

        a = self._adj[u]
        i = bisect.bisect_left(a, v)
        return i < len(a) and a[i] == v

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={len(self._edges)})"
