"""Lightweight undirected graph used by the simulator.

Vertices are integers ``0..n-1``.  The structure is immutable after
construction; adjacency lists are sorted tuples so channel resolution and
LOCAL-model message ordering are deterministic.

Two derived representations are computed lazily and cached, because the
engine resolves receptions against the same graph for every slot of every
trial of a sweep:

* a CSR (compressed sparse row) adjacency — one flat ``array`` of neighbor
  indices plus an offset table, cache-friendlier than tuple-of-tuples for
  whole-graph scans (BFS, connectivity);
* per-vertex neighbor bitmasks — arbitrary-precision ints with bit ``w``
  set iff ``w`` is a neighbor, so "which of my neighbors transmitted" is a
  single ``mask & transmit_mask`` instead of a per-neighbor loop;
* (when numpy is installed) the same masks packed into an ``(n, ceil(n/64))``
  ``uint64`` table, so a whole slot's contention counts resolve as one
  vectorized AND + popcount sweep (the ``resolution="numpy"`` backend).
"""

from __future__ import annotations

from array import array
from typing import Iterable, Sequence, Tuple

__all__ = ["Graph"]


class Graph:
    """An immutable simple undirected graph on vertices ``0..n-1``."""

    __slots__ = ("_n", "_adj", "_edges", "_csr", "_masks", "_mask_array")

    def __init__(self, n: int, edges: Iterable[Tuple[int, int]]) -> None:
        if n < 1:
            raise ValueError(f"graph needs at least one vertex, got n={n}")
        adj = [set() for _ in range(n)]
        edge_set = set()
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise ValueError(f"self-loop at vertex {u} is not allowed")
            a, b = (u, v) if u < v else (v, u)
            if (a, b) in edge_set:
                continue
            edge_set.add((a, b))
            adj[u].add(v)
            adj[v].add(u)
        self._n = n
        self._adj = tuple(tuple(sorted(s)) for s in adj)
        self._edges = tuple(sorted(edge_set))
        self._csr = None
        self._masks = None
        self._mask_array = None

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """Sorted tuple of edges (u, v) with u < v."""
        return self._edges

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbors of ``v``."""
        return self._adj[v]

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    @property
    def max_degree(self) -> int:
        """The paper's Delta."""
        return max(len(a) for a in self._adj)

    def csr(self) -> Tuple[array, array]:
        """CSR adjacency ``(indptr, indices)``; computed once and cached.

        ``indices[indptr[v]:indptr[v + 1]]`` are the sorted neighbors of
        ``v``.  Both arrays are typed ``array('l')`` for a compact,
        cache-friendly layout.
        """
        if self._csr is None:
            indptr = array("l", [0])
            indices = array("l")
            total = 0
            for neighbors in self._adj:
                total += len(neighbors)
                indptr.append(total)
                indices.extend(neighbors)
            self._csr = (indptr, indices)
        return self._csr

    def neighbor_mask(self, v: int) -> int:
        """Bitmask of ``v``'s neighborhood: bit ``w`` set iff ``{v,w}`` is
        an edge.  Never includes ``v`` itself (no self-loops)."""
        return self.neighbor_masks()[v]

    def neighbor_masks(self) -> Tuple[int, ...]:
        """All neighbor bitmasks, indexed by vertex; computed once and
        cached so every simulation over this graph shares them."""
        if self._masks is None:
            masks = []
            for neighbors in self._adj:
                mask = 0
                for w in neighbors:
                    mask |= 1 << w
                masks.append(mask)
            self._masks = tuple(masks)
        return self._masks

    def neighbor_mask_array(self):
        """The neighbor bitmasks packed into an ``(n, ceil(n/64))``
        ``uint64`` numpy array — row ``v``, word ``w`` holds bits
        ``64w .. 64w+63`` of :meth:`neighbor_mask`.  Computed once and
        cached; raises ``ImportError`` when numpy is not installed (the
        numpy resolution backend is optional)."""
        if self._mask_array is None:
            import numpy as np

            words = (self._n + 63) >> 6
            flat = []
            mask_word = (1 << 64) - 1
            for mask in self.neighbor_masks():
                for _ in range(words):
                    flat.append(mask & mask_word)
                    mask >>= 64
            self._mask_array = np.array(
                flat, dtype=np.uint64
            ).reshape(self._n, words)
        return self._mask_array

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj[u] if len(self._adj[u]) < 8 else self._bsearch(u, v)

    def _bsearch(self, u: int, v: int) -> bool:
        import bisect

        a = self._adj[u]
        i = bisect.bisect_left(a, v)
        return i < len(a) and a[i] == v

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={len(self._edges)})"
