"""Graph substrate: immutable graphs, generators, and measurements."""

from repro.graphs.graph import Graph
from repro.graphs.properties import (
    bfs_distances,
    bfs_layers,
    diameter,
    distance,
    eccentricity,
    is_connected,
)
from repro.graphs.topologies import (
    binary_tree,
    caterpillar,
    clique,
    cycle_graph,
    grid_graph,
    k2k_gadget,
    lollipop,
    path_graph,
    random_gnp,
    random_regular,
    random_tree,
    star_graph,
)

__all__ = [
    "Graph",
    "bfs_distances",
    "bfs_layers",
    "diameter",
    "distance",
    "eccentricity",
    "is_connected",
    "binary_tree",
    "caterpillar",
    "clique",
    "cycle_graph",
    "grid_graph",
    "k2k_gadget",
    "lollipop",
    "path_graph",
    "random_gnp",
    "random_regular",
    "random_tree",
    "star_graph",
]
