"""Topology generators for the paper's workloads.

Covers every graph family the paper's proofs and algorithms reference:
paths (Theorem 1, Section 8), cliques / single-hop networks (Section 1.1),
the K_{2,k} lower-bound gadget (Theorem 2), plus the standard families used
to exercise multi-hop broadcast (grids, cycles, random graphs, trees,
bounded-degree expanders via random regular graphs).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.graphs.graph import Graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "clique",
    "star_graph",
    "k2k_gadget",
    "grid_graph",
    "random_gnp",
    "random_tree",
    "random_regular",
    "caterpillar",
    "lollipop",
    "binary_tree",
]


def path_graph(n: int) -> Graph:
    """Path v_0 - v_1 - ... - v_{n-1} (paper's hard instance for Theorem 1)."""
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """Cycle on n >= 3 vertices; diameter floor(n/2)."""
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    return Graph(n, [(i, (i + 1) % n) for i in range(n)])


def clique(n: int) -> Graph:
    """Single-hop network: every pair of devices is adjacent."""
    return Graph(n, [(i, j) for i in range(n) for j in range(i + 1, n)])


def star_graph(n: int) -> Graph:
    """Star with center 0 and n-1 leaves."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    return Graph(n, [(0, i) for i in range(1, n)])


def k2k_gadget(k: int) -> Tuple[Graph, int, int]:
    """The K_{2,k} gadget of Theorem 2.

    Vertices: s=0, t=1, middle vertices 2..k+1; s and t are each adjacent to
    every middle vertex (and not to each other).

    Returns:
        (graph, s, t) with s the broadcast source.
    """
    if k < 1:
        raise ValueError("K_{2,k} needs k >= 1")
    edges = [(0, i) for i in range(2, k + 2)] + [(1, i) for i in range(2, k + 2)]
    return Graph(k + 2, edges), 0, 1


def grid_graph(rows: int, cols: int) -> Graph:
    """rows x cols 4-neighbor grid; max degree 4, diameter rows+cols-2."""
    if rows < 1 or cols < 1:
        raise ValueError("grid needs rows, cols >= 1")

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return Graph(rows * cols, edges)


def random_tree(n: int, rng: Optional[random.Random] = None) -> Graph:
    """Uniform random recursive tree (connected, n-1 edges)."""
    rng = rng or random.Random(0)
    edges = [(rng.randrange(i), i) for i in range(1, n)]
    return Graph(n, edges)


def random_gnp(
    n: int, p: float, rng: Optional[random.Random] = None, ensure_connected: bool = True
) -> Graph:
    """Erdos-Renyi G(n, p); optionally patched to be connected via a
    random recursive tree backbone (broadcast requires connectivity)."""
    rng = rng or random.Random(0)
    edges: List[Tuple[int, int]] = []
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                edges.append((i, j))
    if ensure_connected:
        edges.extend((rng.randrange(i), i) for i in range(1, n))
    return Graph(n, edges)


def random_regular(n: int, d: int, rng: Optional[random.Random] = None) -> Graph:
    """Random d-regular-ish graph via the configuration model with retries.

    Self-loops and multi-edges are discarded, so a few vertices may end up
    with degree slightly below d; connectivity is patched with a path
    backbone only if needed.  Good enough as a bounded-degree expander-like
    workload.
    """
    if n * d % 2 != 0:
        raise ValueError("n*d must be even")
    rng = rng or random.Random(0)
    stubs = [v for v in range(n) for _ in range(d)]
    for _ in range(50):
        rng.shuffle(stubs)
        pairs = {
            (min(a, b), max(a, b))
            for a, b in zip(stubs[::2], stubs[1::2])
            if a != b
        }
        graph = Graph(n, pairs)
        from repro.graphs.properties import is_connected

        if is_connected(graph):
            return graph
    # Fall back: add a path backbone to guarantee connectivity.
    edges = set(pairs)
    edges.update((i, i + 1) for i in range(n - 1))
    return Graph(n, edges)


def caterpillar(spine: int, legs: int) -> Graph:
    """Path of length ``spine`` with ``legs`` pendant vertices per spine node.

    High-Delta, high-D workload that stresses both cost sources the paper
    identifies (synchronization and local contention).
    """
    edges = [(i, i + 1) for i in range(spine - 1)]
    nxt = spine
    for s in range(spine):
        for _ in range(legs):
            edges.append((s, nxt))
            nxt += 1
    return Graph(spine * (legs + 1), edges)


def lollipop(clique_size: int, tail: int) -> Graph:
    """Clique with a path tail: small D inside, long D outside."""
    edges = [(i, j) for i in range(clique_size) for j in range(i + 1, clique_size)]
    prev = 0
    nxt = clique_size
    for _ in range(tail):
        edges.append((prev, nxt))
        prev = nxt
        nxt += 1
    return Graph(clique_size + tail, edges)


def binary_tree(depth: int) -> Graph:
    """Complete binary tree of the given depth (root = 0)."""
    n = 2 ** (depth + 1) - 1
    edges = []
    for v in range(1, n):
        edges.append(((v - 1) // 2, v))
    return Graph(n, edges)
