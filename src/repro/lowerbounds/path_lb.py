"""The Theorem 1 hard instance: Omega(log n) energy on a path.

Theorem 1 proves that on an n-vertex path, *any* randomized LOCAL
Broadcast algorithm has, with probability 1/2, some vertex spending at
least (1/5) log n energy before it receives the message.  We cannot
enumerate all algorithms, but we can (a) measure the quantity the theorem
bounds — the worst, over vertices, energy spent strictly before receiving
the payload — on our algorithms' runs, and (b) check it indeed grows
logarithmically, pinning both sides: the path algorithm of Section 8 is
O(log n) in expectation, so the measured curve is sandwiched into
Theta(log n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.broadcast.base import BroadcastOutcome
from repro.sim.feedback import is_message

__all__ = ["PreReceptionEnergy", "energy_before_reception"]


@dataclass(frozen=True)
class PreReceptionEnergy:
    """Per-vertex energy spent before first learning the payload."""

    per_vertex: List[int]
    worst: int
    worst_vertex: int


def _payload_arrival_slots(outcome: BroadcastOutcome) -> Dict[int, int]:
    """First slot each vertex heard the payload (source: slot -1)."""
    trace = outcome.sim.trace
    if trace is None:
        raise ValueError("energy_before_reception needs record_trace=True")
    payload = outcome.payload
    arrival: Dict[int, int] = {}

    def mentions_payload(msg) -> bool:
        if msg == payload:
            return True
        if isinstance(msg, tuple):
            return any(mentions_payload(part) for part in msg)
        if isinstance(msg, (list, dict)):
            items = msg.values() if isinstance(msg, dict) else msg
            return any(mentions_payload(part) for part in items)
        return False

    for event in trace:
        if event.kind in ("listen", "duplex") and is_message(event.feedback):
            if mentions_payload(event.feedback) and event.node not in arrival:
                arrival[event.node] = event.slot
    return arrival


def energy_before_reception(
    outcome: BroadcastOutcome, source: int = 0
) -> PreReceptionEnergy:
    """Measure Theorem 1's quantity on a traced broadcast run."""
    trace = outcome.sim.trace
    arrival = _payload_arrival_slots(outcome)
    n = len(outcome.sim.outputs)
    spent = [0] * n
    for event in trace:
        cutoff: Optional[int] = arrival.get(event.node)
        if event.node == source:
            cutoff = -1
        if cutoff is None or event.slot < cutoff:
            spent[event.node] += 1
    worst_vertex = max(range(n), key=lambda v: spent[v])
    return PreReceptionEnergy(
        per_vertex=spent, worst=spent[worst_vertex], worst_vertex=worst_vertex
    )
