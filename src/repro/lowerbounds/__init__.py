"""Executable lower-bound harnesses (Section 2)."""

from repro.lowerbounds.path_lb import PreReceptionEnergy, energy_before_reception
from repro.lowerbounds.reduction import ReductionReport, derive_leader_election

__all__ = [
    "PreReceptionEnergy",
    "energy_before_reception",
    "ReductionReport",
    "derive_leader_election",
]
