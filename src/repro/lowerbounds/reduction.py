"""The Theorem 2 reduction: Broadcast on K_{2,k} -> single-hop LeaderElection.

The paper's argument: on the gadget K_{2,k} (source s and sink t, both
adjacent to every middle vertex, s and t non-adjacent), the middle
vertices can treat {s, t} as "the channel": given shared randomness they
can simulate s's and t's behaviour perfectly, every slot in which neither
s nor t listens is meaningless and can be skipped, and t first receives
the message exactly when one middle vertex transmits alone while t
listens — the success condition of full-duplex leader election.  Hence a
Broadcast algorithm with energy E yields a LeaderElection algorithm
running in at most 2E (meaningful) slots, and single-hop LE time lower
bounds [31, 18] become Broadcast energy lower bounds.

This module executes the reduction on a real run: it extracts the derived
leader-election transcript from a traced Broadcast execution and checks
the paper's accounting inequality  T_LE <= energy(s) + energy(t) <= 2E.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.broadcast.base import BroadcastOutcome

__all__ = ["ReductionReport", "derive_leader_election"]


@dataclass(frozen=True)
class ReductionReport:
    """The derived leader-election transcript and its accounting.

    Attributes:
        election_slot: first slot where t hears a *unique* middle-vertex
            transmission (None if t never received).
        winner: the middle vertex elected by that slot.
        le_time: number of meaningful slots (some of {s, t} listening) up
            to and including the election slot — the derived LE's time.
        st_energy: energy(s) + energy(t) over the same window.
        broadcast_energy: worst-vertex energy of the Broadcast run (E).
        bound_holds: the paper's inequality le_time <= 2 E.
    """

    election_slot: Optional[int]
    winner: Optional[int]
    le_time: int
    st_energy: int
    broadcast_energy: int
    bound_holds: bool

    @property
    def elected(self) -> bool:
        return self.election_slot is not None


def derive_leader_election(
    outcome: BroadcastOutcome, s: int = 0, t: int = 1
) -> ReductionReport:
    """Extract the derived LE transcript from a traced K_{2,k} run.

    Requires ``outcome`` to have been produced with ``record_trace=True``
    on a gadget from :func:`repro.graphs.k2k_gadget` (middle vertices are
    2..k+1; s and t are not adjacent).
    """
    trace = outcome.sim.trace
    if trace is None:
        raise ValueError("reduction needs record_trace=True")

    # Per-slot activity.
    listens: Dict[int, Set[int]] = {}
    sends: Dict[int, Set[int]] = {}
    for event in trace:
        if event.kind in ("listen", "duplex"):
            listens.setdefault(event.slot, set()).add(event.node)
        if event.kind in ("send", "duplex"):
            sends.setdefault(event.slot, set()).add(event.node)

    slots = sorted(set(listens) | set(sends))
    election_slot: Optional[int] = None
    winner: Optional[int] = None
    meaningful = 0
    st_energy = 0
    for slot in slots:
        slot_listens = listens.get(slot, set())
        slot_sends = sends.get(slot, set())
        st_active = ({s, t} & (slot_listens | slot_sends))
        st_energy_slot = len(st_active)
        is_meaningful = bool({s, t} & slot_listens)
        if is_meaningful:
            meaningful += 1
        st_energy += st_energy_slot
        middle_senders = {v for v in slot_sends if v not in (s, t)}
        if t in slot_listens and len(middle_senders) == 1:
            election_slot = slot
            winner = next(iter(middle_senders))
            break

    return ReductionReport(
        election_slot=election_slot,
        winner=winner,
        le_time=meaningful,
        st_energy=st_energy,
        broadcast_energy=outcome.max_energy,
        bound_holds=meaningful <= 2 * outcome.max_energy,
    )
