"""repro — a reproduction of "The Energy Complexity of Broadcast" (PODC 2018).

A slot-synchronous multi-hop radio-network simulator with per-device energy
accounting, the paper's broadcast algorithms in every collision model
(LOCAL / CD / No-CD / CD*), the single-hop substrates they build on,
experiment harnesses reproducing Table 1 and Figure 1, and a campaign
subsystem for config-driven, sharded, resumable sweeps
(``python -m repro campaign run configs/table1.json --jobs 4``).
"""

__version__ = "1.1.0"

from repro.graphs import (
    Graph,
    clique,
    cycle_graph,
    diameter,
    grid_graph,
    k2k_gadget,
    path_graph,
    random_gnp,
    random_regular,
    random_tree,
)
from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    aggregate_campaign,
    run_campaign,
)
from repro.sim import (
    BEEPING,
    CD,
    CD_STAR,
    LOCAL,
    NO_CD,
    NOISE,
    SILENCE,
    ExecutionConfig,
    Idle,
    Knowledge,
    Listen,
    NodeCtx,
    Send,
    SendListen,
    Simulator,
    SimResult,
)

__all__ = [
    "__version__",
    "CampaignSpec",
    "CampaignStore",
    "aggregate_campaign",
    "run_campaign",
    "Graph",
    "clique",
    "cycle_graph",
    "diameter",
    "grid_graph",
    "k2k_gadget",
    "path_graph",
    "random_gnp",
    "random_regular",
    "random_tree",
    "BEEPING",
    "CD",
    "CD_STAR",
    "LOCAL",
    "NO_CD",
    "NOISE",
    "SILENCE",
    "ExecutionConfig",
    "Idle",
    "Knowledge",
    "Listen",
    "NodeCtx",
    "Send",
    "SendListen",
    "Simulator",
    "SimResult",
]
