"""``ExecutionConfig``: one validated description of *how* a run executes.

The engine grew four orthogonal execution knobs — ``resolution`` backend,
``stepping`` mode, ``lockstep`` trial batching, and observer/analytics
wiring — and each used to be hand-threaded through six parallel
signatures (``Simulator``, ``run_trials``, ``run_trials_lockstep``,
``run_broadcast_trials``, ``sweep``, ``run_cells``), a hand-maintained
option-key tuple in :mod:`repro.campaign.cells`, and per-subcommand CLI
flags.  This module replaces that plumbing with config-as-data:

* :class:`ExecutionConfig` is a frozen dataclass that validates on
  construction (unknown modes fail fast, listing the allowed values) and
  round-trips via :meth:`~ExecutionConfig.to_dict` /
  :meth:`~ExecutionConfig.from_dict`;
* the dataclass *fields themselves* are the schema: per-field metadata
  marks which fields are campaign cell options
  (:meth:`~ExecutionConfig.option_keys` feeds
  ``repro.campaign.cells.EXECUTION_OPTION_KEYS``) and which get CLI
  flags (:func:`add_execution_args` builds one shared argparse group for
  the ``table1``, ``campaign``, ``ablations``, ``figure1``, and
  ``bench`` subcommands);
* every entry point takes ``exec_config=``; the legacy per-knob kwargs
  keep working through :func:`resolve_exec_config`, which folds them
  into a config and emits a :class:`DeprecationWarning` attributed to
  the caller (CI escalates warnings raised from ``repro.*`` modules, so
  no internal caller can quietly keep using them).

Adding the next knob is one edit here: a new field (with metadata) shows
up in validation, serialization, the campaign option schema, and the CLI
group automatically — engine code then reads it off the config.

Semantics contract: ``resolution``, ``stepping``, and ``lockstep`` steer
*how* a cell executes, never what it measures (byte-identical results,
pinned by the differential suites).  The remaining fields are
honest-by-name exceptions: ``record_trace`` feeds trace-derived extras
and ``contention_hist`` adds ``ch_*`` extras (which is why the latter is
part of a campaign cell's content-hash identity), while
``meter_energy=False`` zeroes the energy meters and ``time_limit`` can
abort a run — neither is a campaign cell option for exactly that reason.
"""

from __future__ import annotations

import argparse
import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.sim.resolution import RESOLUTION_MODES

__all__ = [
    "STEPPING_MODES",
    "ExecutionConfig",
    "ExecutionConfigError",
    "UNSET",
    "add_execution_args",
    "add_runner_args",
    "config_from_args",
    "execution_overrides",
    "runner_overrides",
    "normalize_execution_options",
    "resolve_exec_config",
    "validate_execution_options",
]

#: ``"phase"`` executes yielded plans natively (slots-at-a-time);
#: ``"slot"`` expands them into per-slot yields — the oracle path.
#: (Defined here, not in the engine, so the schema layer stays import-
#: cycle-free; :mod:`repro.sim.engine` re-exports it.)
STEPPING_MODES = ("phase", "slot")


class _Unset:
    """Sentinel distinguishing 'kwarg not passed' from any real value."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<unset>"


#: Default value of every deprecated legacy kwarg: the shim only fires
#: (warns and overrides the config) when a caller actually passed one.
UNSET = _Unset()


class ExecutionConfigError(ValueError):
    """An ExecutionConfig is invalid, or a layer was handed a config
    field it cannot honor.

    A ``ValueError`` subclass so existing ``except ValueError`` callers
    keep working, but distinct enough that CLI handlers can convert
    *configuration* mistakes into clean one-line messages while genuine
    runtime ``ValueError``\\ s keep their tracebacks.
    """


def _meta(
    help: str,
    choices: Optional[Tuple[str, ...]] = None,
    cell_option: bool = False,
    cli: bool = False,
    hook: bool = False,
    runner: bool = False,
    fault: bool = False,
) -> Dict[str, Any]:
    return {
        "help": help,
        "choices": choices,
        "cell_option": cell_option,
        "cli": cli,
        "hook": hook,
        "runner": runner,
        "fault": fault,
    }


@dataclass(frozen=True)
class ExecutionConfig:
    """How a simulation cell executes — never *what* it measures.

    Construct directly, via :meth:`from_dict` (campaign JSON / stored
    options), or via :func:`config_from_args` (CLI); derive variants
    with :meth:`replace`.  Validation happens on construction, so an
    invalid mode never travels into an engine loop.
    """

    resolution: str = field(default="bitmask", metadata=_meta(
        "reception-resolution backend (see repro.sim.resolution)",
        choices=RESOLUTION_MODES, cell_option=True, cli=True,
    ))
    stepping: str = field(default="phase", metadata=_meta(
        "phase-compiled (slots-at-a-time) vs per-slot protocol stepping "
        "(see repro.sim.plan)",
        choices=STEPPING_MODES, cell_option=True, cli=True,
    ))
    lockstep: bool = field(default=False, metadata=_meta(
        "advance all seeds of a trial batch in lock-step slot batches "
        "(repro.sim.lockstep); byte-identical results",
        cell_option=True, cli=True,
    ))
    time_limit: Optional[int] = field(default=None, metadata=_meta(
        "slot budget per run; None uses the entry point's default",
    ))
    record_trace: bool = field(default=False, metadata=_meta(
        "record a per-slot event trace (repro.sim.trace)",
    ))
    meter_energy: bool = field(default=True, metadata=_meta(
        "account per-device energy; False returns all-zero meters "
        "(throughput benchmarking only)",
    ))
    contention_hist: bool = field(default=False, metadata=_meta(
        "attach a per-trial ContentionHistogramObserver and fold its "
        "summary into cell extras as ch_* keys (changes cell identity)",
        cell_option=True, cli=True,
    ))
    churn: Optional[str] = field(default=None, metadata=_meta(
        "node churn schedule: 'periodic:period=P,down=D[,stagger=S]' or "
        "'random:p=R,period=P,down=D' — down nodes neither transmit nor "
        "hear; deterministic per trial seed (repro.sim.faults; changes "
        "what cells measure, like any fault knob)",
        cell_option=True, cli=True, fault=True,
    ))
    jam: Optional[str] = field(default=None, metadata=_meta(
        "slot-level jamming adversary: 'periodic:period=P[,offset=K]', "
        "'random:rate=R', or 'reactive[:min=K]' — jammed slots resolve "
        "to the model's collision feedback (repro.sim.faults)",
        cell_option=True, cli=True, fault=True,
    ))
    burst_loss: Optional[str] = field(default=None, metadata=_meta(
        "Gilbert-Elliott bursty loss: 'p_gb=R,p_bg=R[,good=R][,bad=R]' "
        "— two-state Markov fade wrapping the row's model "
        "(repro.sim.faults)",
        cell_option=True, cli=True, fault=True,
    ))
    workers: int = field(default=1, metadata=_meta(
        "campaign fabric worker processes (1 = in-process serial; "
        "consumed by repro.campaign.fabric, never by the engine)",
        runner=True,
    ))
    retries: int = field(default=2, metadata=_meta(
        "per-block retry budget before the campaign fabric quarantines "
        "the block instead of aborting the sweep",
        runner=True,
    ))
    heartbeat: float = field(default=1.0, metadata=_meta(
        "seconds between fabric worker heartbeats; a worker silent for "
        "several beats is declared hung and replaced (0 disables)",
        runner=True,
    ))
    observer_factory: Optional[Callable[[int], Sequence[Any]]] = field(
        default=None, metadata=_meta(
            "per-seed SlotObserver constructor (seed -> observers); the "
            "required observer form under lockstep",
            hook=True,
        ))
    model_factory: Optional[Callable[[int], Any]] = field(
        default=None, metadata=_meta(
            "per-seed ChannelModel constructor for stateful channels "
            "(seed -> model); under lockstep, factories producing "
            "LossyModel wrappers of one shared stock inner model stay "
            "on the trial-SoA fast path (vectorized drop masks)",
            hook=True,
        ))

    def __post_init__(self) -> None:
        for spec in dataclasses.fields(self):
            value = getattr(self, spec.name)
            meta = spec.metadata
            if meta["choices"] is not None:
                if value not in meta["choices"]:
                    raise ExecutionConfigError(
                        f"{spec.name} must be one of {meta['choices']}, "
                        f"got {value!r}"
                    )
            elif meta["hook"]:
                if value is not None and not callable(value):
                    raise ExecutionConfigError(
                        f"{spec.name} must be a callable (seed -> ...) or "
                        f"None, got {value!r}"
                    )
            elif meta["fault"]:
                if value is None:
                    continue
                if not isinstance(value, str) or not value:
                    raise ExecutionConfigError(
                        f"{spec.name} must be a fault spec string or None "
                        f"(see repro.sim.faults), got {value!r}"
                    )
                # Lazy import: faults builds on models; keeping the
                # schema layer import-light avoids any cycle risk.
                from repro.sim.faults import validate_fault_spec

                try:
                    validate_fault_spec(spec.name, value)
                except ValueError as exc:
                    raise ExecutionConfigError(
                        f"{spec.name}: {exc}"
                    ) from None
            elif spec.name == "time_limit":
                if value is not None and (
                    isinstance(value, bool)
                    or not isinstance(value, int)
                    or value <= 0
                ):
                    raise ExecutionConfigError(
                        f"time_limit must be a positive int or None, "
                        f"got {value!r}"
                    )
            elif meta["runner"]:
                if spec.name == "heartbeat":
                    if (
                        isinstance(value, bool)
                        or not isinstance(value, (int, float))
                        or value < 0
                    ):
                        raise ExecutionConfigError(
                            f"heartbeat must be a number of seconds >= 0 "
                            f"(0 disables liveness checks), got {value!r}"
                        )
                else:
                    minimum = 1 if spec.name == "workers" else 0
                    if (
                        isinstance(value, bool)
                        or not isinstance(value, int)
                        or value < minimum
                    ):
                        raise ExecutionConfigError(
                            f"{spec.name} must be an int >= {minimum}, "
                            f"got {value!r}"
                        )
            elif not isinstance(value, bool):
                raise ExecutionConfigError(
                    f"{spec.name} must be true or false, got {value!r}"
                )

    # -- schema self-description -------------------------------------

    @classmethod
    def field_specs(cls) -> Tuple[dataclasses.Field, ...]:
        """The schema: dataclass fields with their steering metadata."""
        return dataclasses.fields(cls)

    @classmethod
    def option_keys(cls) -> Tuple[str, ...]:
        """Fields that ride in a campaign cell's ``options`` dict."""
        return tuple(
            spec.name for spec in cls.field_specs()
            if spec.metadata["cell_option"]
        )

    @classmethod
    def runner_keys(cls) -> Tuple[str, ...]:
        """Fields consumed by the campaign fabric runner, never by the
        engine layers (which reject them when set to non-defaults)."""
        return tuple(
            spec.name for spec in cls.field_specs()
            if spec.metadata["runner"]
        )

    @classmethod
    def describe(cls) -> str:
        """One line per field — name, default, allowed values, help."""
        lines = []
        for spec in cls.field_specs():
            allowed = (
                "/".join(spec.metadata["choices"])
                if spec.metadata["choices"] else
                ("hook" if spec.metadata["hook"] else
                 ("fault spec" if spec.metadata["fault"] else
                  type(spec.default).__name__))
            )
            lines.append(
                f"{spec.name} (default {spec.default!r}, {allowed}): "
                f"{spec.metadata['help']}"
            )
        return "\n".join(lines)

    # -- serialization ------------------------------------------------

    def to_dict(self, include_defaults: bool = False) -> Dict[str, Any]:
        """JSON-safe dict of the serializable fields.

        Hooks (``observer_factory``, ``model_factory``) are process-local
        callables and are always excluded.  By default only non-default
        values are emitted, so the dict is a *minimal* description — the
        shape campaign cell options and content-hash keys are built
        from (an option explicitly set to its default serializes the
        same as an omitted one).
        """
        data: Dict[str, Any] = {}
        for spec in self.field_specs():
            if spec.metadata["hook"]:
                continue
            value = getattr(self, spec.name)
            if include_defaults or value != spec.default:
                data[spec.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExecutionConfig":
        """Build and validate a config from a dict; unknown keys fail."""
        allowed = {
            spec.name for spec in cls.field_specs()
            if not spec.metadata["hook"]
        }
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ExecutionConfigError(
                f"unknown execution option(s) {unknown}; "
                f"allowed: {sorted(allowed)}"
            )
        return cls(**data)

    @classmethod
    def from_options(cls, options: Optional[Dict]) -> "ExecutionConfig":
        """Extract and validate the execution subset of a mixed cell
        ``options`` dict (protocol knobs like ``failure`` are ignored)."""
        if not options:
            return cls()
        keys = cls.option_keys()
        return cls(**{key: options[key] for key in keys if key in options})

    def cell_options(self, include_defaults: bool = False) -> Dict[str, Any]:
        """The campaign-cell-option view of this config (minimal by
        default — the content-hash-stable shape)."""
        keys = set(self.option_keys())
        return {
            key: value
            for key, value in self.to_dict(include_defaults=include_defaults).items()
            if key in keys
        }

    def replace(self, **changes: Any) -> "ExecutionConfig":
        """A validated copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def resolved_time_limit(self, default: int) -> int:
        """The effective slot budget given an entry point's default."""
        return default if self.time_limit is None else self.time_limit


_OPTION_DEFAULTS = {
    spec.name: spec.default
    for spec in ExecutionConfig.field_specs()
    if spec.metadata["cell_option"]
}

# Execution fields that are NOT campaign cell options (record_trace is a
# row-definition property, time_limit a runner property, hooks are
# process-local).  They are reserved names: a cell options dict using
# one would otherwise pass as an opaque protocol knob — silently
# ignored, yet still part of the content-hash identity.
_RESERVED_NON_OPTION_FIELDS = frozenset(
    spec.name for spec in ExecutionConfig.field_specs()
) - set(ExecutionConfig.option_keys())


def _check_cell_options(options: Optional[Dict]) -> None:
    if not options:
        return
    reserved = sorted(set(options) & _RESERVED_NON_OPTION_FIELDS)
    if reserved:
        raise ExecutionConfigError(
            f"{reserved} are execution fields but not campaign cell "
            f"options (tracing follows the row definition; time limits, "
            f"hooks, and the fabric's workers/retries/heartbeat belong "
            f"to the runner); cell options are "
            f"{sorted(ExecutionConfig.option_keys())}"
        )
    ExecutionConfig.from_options(options)
    # loss_rate is a channel knob consumed by the campaign registry (it
    # wraps the row's model in per-seed LossyModel factories), not an
    # ExecutionConfig field — but a bad rate should still fail at config
    # load like the fault specs do, not mid-sweep as a cell error.
    if "loss_rate" in options:
        raw = options["loss_rate"]
        try:
            rate = float(raw)
        except (TypeError, ValueError):
            raise ExecutionConfigError(
                f"loss_rate must be a number in [0, 1], got {raw!r}"
            ) from None
        if not 0 <= rate <= 1:
            raise ExecutionConfigError(
                f"loss_rate must be in [0, 1], got {rate!r}"
            )


def validate_execution_options(options: Optional[Dict]) -> None:
    """Fail fast on an invalid or reserved execution option in a mixed
    cell options dict (raises ``ValueError`` naming the allowed values)."""
    _check_cell_options(options)


def normalize_execution_options(options: Dict) -> Dict:
    """Validate a mixed cell options dict and drop execution options
    explicitly set to their default value.

    Campaign content-hash keys are built from the options dict, so
    ``{"resolution": "bitmask"}`` and ``{}`` must alias the same stored
    cell — the minimal shape is the durable identity.  Non-execution
    entries (protocol knobs) pass through untouched, in order.
    """
    _check_cell_options(options)
    return {
        key: value for key, value in options.items()
        if key not in _OPTION_DEFAULTS or value != _OPTION_DEFAULTS[key]
    }


def resolve_exec_config(
    exec_config: Optional[ExecutionConfig],
    legacy: Dict[str, Any],
    where: str,
    stacklevel: int = 3,
) -> ExecutionConfig:
    """Fold deprecated per-knob kwargs into an :class:`ExecutionConfig`.

    ``legacy`` maps kwarg name to the received value, with :data:`UNSET`
    marking "not passed".  Passing any legacy kwarg warns (once per call
    site — the warning is attributed to the caller via ``stacklevel``,
    so CI's ``repro``-module DeprecationWarning escalation catches
    internal callers) and overrides the corresponding config field, so
    behavior is byte-identical to the historical signature.
    """
    passed = {
        key: value for key, value in legacy.items() if value is not UNSET
    }
    if passed:
        warnings.warn(
            f"{where}: keyword argument(s) {sorted(passed)} are deprecated; "
            f"pass exec_config=ExecutionConfig(...) instead "
            f"(see repro.sim.config)",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    base = ExecutionConfig() if exec_config is None else exec_config
    if not isinstance(base, ExecutionConfig):
        raise ExecutionConfigError(
            f"exec_config must be an ExecutionConfig (or None), got "
            f"{base!r}; build one with ExecutionConfig(...) or "
            f"ExecutionConfig.from_dict(...)"
        )
    return base.replace(**passed) if passed else base


# -- shared CLI surface ----------------------------------------------------


def _flag(name: str) -> str:
    return "--" + name.replace("_", "-")


def add_execution_args(
    parser: argparse.ArgumentParser,
    exclude: Sequence[str] = (),
):
    """Add the shared execution-options group to an argparse parser.

    One flag per CLI-enabled :class:`ExecutionConfig` field, generated
    from the field schema — subcommands share identical flags and help
    text, and a new knob added to the schema appears everywhere at once.
    Defaults are ``None`` ("not given"), so :func:`execution_overrides`
    can layer CLI > cell options > defaults.  ``exclude`` names fields a
    subcommand cannot honor (e.g. ``contention_hist`` on ``figure1``):
    better no flag at all than one that fails after work has started.
    """
    group = parser.add_argument_group(
        "execution",
        "how cells execute — measurements are identical unless a field's "
        "help says otherwise (see repro.sim.config.ExecutionConfig)",
    )
    for spec in ExecutionConfig.field_specs():
        if not spec.metadata["cli"] or spec.name in exclude:
            continue
        if spec.metadata["choices"] is not None:
            group.add_argument(
                _flag(spec.name),
                dest=spec.name,
                choices=list(spec.metadata["choices"]),
                default=None,
                help=f"{spec.metadata['help']} (default: {spec.default})",
            )
        elif spec.metadata["fault"]:
            group.add_argument(
                _flag(spec.name),
                dest=spec.name,
                metavar="SPEC",
                default=None,
                help=f"{spec.metadata['help']} (default: off)",
            )
        else:
            group.add_argument(
                _flag(spec.name),
                dest=spec.name,
                action=argparse.BooleanOptionalAction,
                default=None,
                help=f"{spec.metadata['help']} (default: {spec.default})",
            )
    return group


def add_runner_args(parser: argparse.ArgumentParser):
    """Add the campaign-fabric runner flags (``--workers``, ``--retries``,
    ``--heartbeat``) to an argparse parser.

    Generated from the ``runner``-flagged :class:`ExecutionConfig`
    fields, the same way :func:`add_execution_args` generates the
    execution group.  These steer the *fabric* (how work is dispatched),
    never the cells, so they are not part of any content-hash identity
    and only the ``campaign run``/``run-all`` subcommands expose them.
    """
    group = parser.add_argument_group(
        "fabric",
        "how the campaign fabric dispatches work — results are identical "
        "to a serial run (see repro.campaign.fabric)",
    )
    for spec in ExecutionConfig.field_specs():
        if not spec.metadata["runner"]:
            continue
        kind = float if spec.name == "heartbeat" else int
        group.add_argument(
            _flag(spec.name),
            dest=spec.name,
            type=kind,
            default=None,
            help=f"{spec.metadata['help']} (default: {spec.default})",
        )
    return group


def runner_overrides(args: argparse.Namespace) -> Dict[str, Any]:
    """The fabric runner options explicitly given on the command line."""
    overrides: Dict[str, Any] = {}
    for spec in ExecutionConfig.field_specs():
        if not spec.metadata["runner"]:
            continue
        value = getattr(args, spec.name, None)
        if value is not None:
            overrides[spec.name] = value
    return overrides


def execution_overrides(args: argparse.Namespace) -> Dict[str, Any]:
    """The execution options explicitly given on the command line."""
    overrides: Dict[str, Any] = {}
    for spec in ExecutionConfig.field_specs():
        if not spec.metadata["cli"]:
            continue
        value = getattr(args, spec.name, None)
        if value is not None:
            overrides[spec.name] = value
    return overrides


def config_from_args(
    args: argparse.Namespace,
    base: Optional[ExecutionConfig] = None,
) -> ExecutionConfig:
    """Build a config from parsed CLI args layered over ``base``."""
    base = ExecutionConfig() if base is None else base
    overrides = execution_overrides(args)
    return base.replace(**overrides) if overrides else base
