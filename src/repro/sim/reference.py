"""Reference (oracle) simulator: naive slot-by-slot execution.

This implementation advances *every* slot explicitly and keeps no event
heap — trivially correct, O(total slots x n) slow.  It exists purely as a
differential-testing oracle for :class:`repro.sim.engine.Simulator`: both
must produce identical outputs, energy meters, and durations on any
protocol (tests/test_reference_equivalence.py drives them with random
protocols).  Keep the semantics here boring and obviously right.

Phase plans (:mod:`repro.sim.plan`) are supported by always running
every protocol through :func:`~repro.sim.plan.expand_plans`, which
interprets plans back into per-slot primitive yields — so the oracle
never needs (or has) a slots-at-a-time fast path of its own.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence

from repro.graphs.graph import Graph
from repro.sim.actions import Idle, Listen, Send, SendListen
from repro.sim.energy import EnergyMeter
from repro.sim.engine import ProtocolError, SimResult, SimulationTimeout
from repro.sim.feedback import SILENCE
from repro.sim.models import ChannelModel
from repro.sim.node import Knowledge, NodeCtx, validate_input_keys
from repro.sim.plan import expand_plans

__all__ = ["ReferenceSimulator"]


class _Node:
    def __init__(self, gen, ctx) -> None:
        self.gen = gen
        self.ctx = ctx
        self.meter = EnergyMeter()
        self.done = False
        self.output: Any = None
        self.finish_slot = -1
        self.action = None
        self.idle_left = 0
        self.entries = 0

    def advance(self, feedback, now: int) -> None:
        self.ctx.time = now
        self.entries += 1
        try:
            self.action = self.gen.send(feedback)
        except StopIteration as stop:
            self.done = True
            self.output = stop.value
            self.finish_slot = now - 1
            self.action = None


class ReferenceSimulator:
    """Drop-in (slow) replacement for :class:`Simulator`."""

    def __init__(
        self,
        graph: Graph,
        model: ChannelModel,
        seed: int = 0,
        time_limit: int = 1_000_000,
        knowledge: Optional[Knowledge] = None,
        uids: Optional[Sequence[int]] = None,
        churn=None,
    ) -> None:
        self.graph = graph
        self.model = model
        self.seed = seed
        self.time_limit = time_limit
        # Oracle-form fault injection: a CrashSchedule built by the same
        # FaultPlan.for_trial the engines use (repro.sim.faults), so the
        # differential tests compare identical fault realizations.
        self.churn = churn
        self.knowledge = knowledge or Knowledge(
            n=graph.n, max_degree=max(graph.max_degree, 1), diameter=None
        )
        self.uids = list(uids) if uids is not None else list(range(1, graph.n + 1))

    def run(self, protocol_factory, inputs=None) -> SimResult:
        master = random.Random(self.seed)
        inputs = inputs or {}
        validate_input_keys(inputs, self.graph.n)
        nodes: List[_Node] = []
        for v in range(self.graph.n):
            ctx = NodeCtx(
                index=v,
                uid=self.uids[v],
                knowledge=self.knowledge,
                rng=random.Random(master.getrandbits(64)),
                inputs=dict(inputs.get(v, ())),
            )
            node = _Node(expand_plans(protocol_factory(ctx), ctx.rng), ctx)
            nodes.append(node)
            node.entries += 1
            try:
                node.action = next(node.gen)
            except StopIteration as stop:
                node.done = True
                node.output = stop.value

        slot = 0
        duration = 0
        if self.churn is not None:
            from repro.sim.faults import down_feedback

            down_fb = down_feedback(self.model)
        else:
            down_fb = SILENCE
        while any(not node.done for node in nodes):
            if slot > self.time_limit:
                raise SimulationTimeout("reference simulator exceeded time limit")
            # Begin idle periods.
            for node in nodes:
                if node.done or node.idle_left:
                    continue
                if isinstance(node.action, Idle):
                    node.idle_left = node.action.duration
                elif isinstance(node.action, SendListen):
                    if not self.model.full_duplex:
                        raise ProtocolError("SendListen in half-duplex model")
                elif not isinstance(node.action, (Send, Listen)):
                    raise ProtocolError(f"bad action {node.action!r}")

            transmitting: Dict[int, Any] = {}
            for v, node in enumerate(nodes):
                if node.done or node.idle_left:
                    continue
                if isinstance(node.action, (Send, SendListen)):
                    transmitting[v] = node.action.message

            # Churn: a down node's transmission never reaches the air
            # (and, below, its listens hear forced silence).  Its plan
            # and meters advance normally — a crash is a radio outage,
            # not an execution freeze.
            churn = self.churn
            if churn is None:
                air = transmitting
            else:
                air = {
                    v: m for v, m in transmitting.items()
                    if not churn.down(v, slot)
                }
            if getattr(self.model, "slot_aware", False):
                self.model.begin_slot(slot, len(air))

            # Resolve and advance.
            for v, node in enumerate(nodes):
                if node.done:
                    continue
                if node.idle_left:
                    node.idle_left -= 1
                    if node.idle_left == 0:
                        node.advance(None, slot + 1)
                        if node.done:
                            # Match the engine: an idle-then-return
                            # protocol extends the run to its wake slot.
                            duration = max(duration, slot + 1)
                    continue
                action = node.action
                if isinstance(action, Send):
                    node.meter.charge_send(slot)
                    feedback = None
                else:
                    if churn is not None and churn.down(v, slot):
                        feedback = down_fb
                    else:
                        heard = [
                            air[w]
                            for w in self.graph.neighbors(v)
                            if w in air
                        ]
                        feedback = self.model.resolve(heard)
                    if isinstance(action, Listen):
                        node.meter.charge_listen(slot)
                    else:
                        node.meter.charge_duplex(slot)
                duration = max(duration, slot + 1)
                node.advance(feedback, slot + 1)
            slot += 1

        return SimResult(
            outputs=[node.output for node in nodes],
            energy=[node.meter.snapshot() for node in nodes],
            finish_slot=[node.finish_slot for node in nodes],
            duration=duration,
            trace=None,
            seed=self.seed,
            gen_entries=sum(node.entries for node in nodes),
        )
