"""Pluggable reception-resolution backends.

Channel resolution — "what does each listener hear, given who
transmitted this slot?" — is the engine's hot path, and the best
implementation depends on the workload.  This module packages the three
strategies behind one interface so the engine (and the lock-step batch
driver) can swap them via the existing ``resolution=`` switch:

* ``"list"`` — the legacy per-neighbor scan: for every listener, walk
  its adjacency list and collect transmitting neighbors.  O(degree) per
  listener, no precomputation beyond the adjacency itself.  Baseline
  and semantic cross-check.
* ``"bitmask"`` — arbitrary-precision int masks: OR the transmitters
  into one big-int ``transmit_mask``; each listener's contention count
  is ``popcount(neighbor_mask & transmit_mask)``.  One AND per listener
  regardless of degree.  The default.
* ``"numpy"`` — the same mask algebra over a packed ``uint64`` table
  (:meth:`repro.graphs.graph.Graph.neighbor_mask_array`): every
  listener's count comes out of one vectorized AND + popcount sweep,
  and the channel model classifies the whole count vector at once via
  :meth:`~repro.sim.models.ChannelModel.resolve_count_array`.  Wins
  when many listeners resolve per slot (dense graphs, large n); falls
  back per-listener for ``NEEDS_MESSAGES`` entries (LOCAL with >= 2
  transmitters) and for per-transmission models (``LossyModel``).

A backend is constructed once per (graph, resolution) pair; its
:meth:`ResolutionBackend.slot_resolver` specializes a per-slot closure
for one channel model, so per-run setup (silence caching, count-path
dispatch) happens once, not per slot.  All backends must produce
byte-identical feedback for identical inputs — the differential suite
(tests/test_reference_equivalence.py, tests/test_resolution.py) pins
every backend to the reference oracle.

numpy is an optional dependency (``pip install -e .[fast]``).  When it
is missing, requesting ``resolution="numpy"`` warns once and silently
serves the bitmask backend instead, so configs and campaigns stay
portable across environments.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, List

from repro.graphs.graph import Graph
from repro.sim.models import NEEDS_MESSAGES, ChannelModel

try:  # optional acceleration dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

__all__ = [
    "RESOLUTION_MODES",
    "ResolutionBackend",
    "ListBackend",
    "BitmaskBackend",
    "NumpyBackend",
    "create_backend",
    "numpy_available",
]

RESOLUTION_MODES = ("bitmask", "list", "numpy")

# A slot resolver fills ``feedbacks[v]`` for every v in ``receivers``
# given the slot's ``transmitting`` map (vertex -> message).
SlotResolver = Callable[[Dict[int, Any], List[int], Dict[int, Any]], None]

try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - exercised on older CI pythons
    def _popcount(x: int) -> int:
        return bin(x).count("1")


def numpy_available() -> bool:
    return _np is not None


def _mask_messages(masked: int, transmitting: Dict[int, Any]) -> List[Any]:
    """Materialize the transmissions selected by ``masked``, ordered by
    sender index ascending (lowest set bit first)."""
    messages = []
    while masked:
        low = masked & -masked
        messages.append(transmitting[low.bit_length() - 1])
        masked ^= low
    return messages


class ResolutionBackend:
    """One strategy for resolving every reception of a slot.

    Instances are per-graph; :meth:`slot_resolver` binds one to a
    channel model, returning the closure the engine calls once per
    active slot.  Stateful models (``supports_count`` False) consume
    channel randomness per reception, so callers must pass their
    receivers in ascending vertex order — the engine sorts them, and
    every backend resolves in the order given.
    """

    name = "?"

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    def slot_resolver(self, model: ChannelModel) -> SlotResolver:
        raise NotImplementedError

    def batch_resolver(self, model: ChannelModel):
        """Resolve a *batch* of independent slots — one per lock-step
        trial — in a single call: ``resolve_batch(batch)`` where batch is
        a list of ``(transmitting, receivers, feedbacks)`` triples.

        The base implementation loops the per-slot resolver; the numpy
        backend overrides it with one vectorized sweep over the whole
        batch (one transmit mask per trial, shared mask table).
        """
        resolver = self.slot_resolver(model)

        def resolve_batch(batch):
            for transmitting, receivers, feedbacks in batch:
                resolver(transmitting, receivers, feedbacks)

        return resolve_batch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.graph.n})"


class ListBackend(ResolutionBackend):
    """Legacy per-neighbor scan; O(degree) per listener."""

    name = "list"

    def slot_resolver(self, model: ChannelModel) -> SlotResolver:
        neighbors = self.graph.neighbors
        resolve = model.resolve

        def resolve_slot(transmitting, receivers, feedbacks):
            for v in receivers:
                feedbacks[v] = resolve([
                    transmitting[w]
                    for w in neighbors(v)
                    if w in transmitting
                ])

        return resolve_slot


class BitmaskBackend(ResolutionBackend):
    """Big-int neighbor masks + popcount; the default backend."""

    name = "bitmask"

    def __init__(self, graph: Graph) -> None:
        super().__init__(graph)
        self._masks = graph.neighbor_masks()
        self._bits = [1 << v for v in range(graph.n)]

    def slot_resolver(self, model: ChannelModel) -> SlotResolver:
        masks = self._masks
        bits = self._bits
        resolve = model.resolve

        if not model.supports_count:
            def resolve_slot(transmitting, receivers, feedbacks):
                transmit_mask = 0
                for v in transmitting:
                    transmit_mask |= bits[v]
                for v in receivers:
                    feedbacks[v] = resolve(
                        _mask_messages(masks[v] & transmit_mask, transmitting)
                    )

            return resolve_slot

        resolve_count = model.resolve_count
        # All count-based models map k == 0 to a fixed value; cache it so
        # the (typical) silent reception is branch + dict-store only.
        silence = resolve_count(0, None)

        def resolve_slot(transmitting, receivers, feedbacks):
            if not transmitting:
                for v in receivers:
                    feedbacks[v] = silence
                return
            transmit_mask = 0
            for v in transmitting:
                transmit_mask |= bits[v]
            for v in receivers:
                masked = masks[v] & transmit_mask
                if not masked:
                    feedbacks[v] = silence
                    continue
                first = transmitting[(masked & -masked).bit_length() - 1]
                feedback = resolve_count(_popcount(masked), first)
                if feedback is NEEDS_MESSAGES:
                    feedback = resolve(_mask_messages(masked, transmitting))
                feedbacks[v] = feedback

        return resolve_slot


# --- numpy backend ---------------------------------------------------------


def _popcount_rows_native(masked):
    """Per-row popcount over a (R, W) uint64 array via numpy >= 2.0."""
    return _np.bitwise_count(masked).sum(axis=1)


_BYTE_POPCOUNT = None


def _popcount_rows_table(masked):
    """Per-row popcount via a 256-entry byte table (numpy < 2.0)."""
    global _BYTE_POPCOUNT
    if _BYTE_POPCOUNT is None:
        _BYTE_POPCOUNT = _np.array(
            [bin(i).count("1") for i in range(256)], dtype=_np.uint8
        )
    rows = masked.shape[0]
    return _BYTE_POPCOUNT[masked.view(_np.uint8).reshape(rows, -1)].sum(
        axis=1, dtype=_np.int64
    )


def _popcount_rows(masked):
    if hasattr(_np, "bitwise_count"):
        return _popcount_rows_native(masked)
    return _popcount_rows_table(masked)


def _first_transmitters(masked, rows):
    """Lowest set-bit index (= lowest transmitting neighbor) per selected
    row of a (R, W) uint64 mask array.  Every selected row must be
    nonzero (the caller filters on count > 0)."""
    np = _np
    sub = masked[rows]
    # Two's-complement trick per word; uint64 arithmetic wraps mod 2^64.
    low = sub & (np.uint64(0) - sub)
    word = (low != 0).argmax(axis=1)
    lowvals = low[np.arange(sub.shape[0]), word]
    # Powers of two are exact in float64 up to 2^63, so log2 is exact.
    bit = np.log2(lowvals.astype(np.float64)).astype(np.int64)
    return word.astype(np.int64) * 64 + bit


class NumpyBackend(ResolutionBackend):
    """Vectorized mask-table resolution; requires numpy.

    One slot is resolved as a single sweep: gather the receivers' rows
    of the packed ``uint64`` mask table, AND with the slot's transmit
    mask, popcount per row, locate first transmitters where the model
    needs them, and let the model classify the whole count vector.
    """

    name = "numpy"

    def __init__(self, graph: Graph) -> None:
        if _np is None:
            raise ImportError("the numpy resolution backend requires numpy")
        super().__init__(graph)
        self._table = graph.neighbor_mask_array()
        self._words = self._table.shape[1]
        self._masks = graph.neighbor_masks()

    def transmit_mask_words(self, transmitting: Dict[int, Any]):
        """Pack one slot's transmitter set into a (W,) uint64 word array.

        Built as a Python big int first — a handful of small-int ORs —
        then reinterpreted: ``int.to_bytes`` + ``frombuffer`` beats
        scattering bits into the array elementwise.  The result is
        read-only (it aliases the bytes object); use it as an operand.
        """
        mask = 0
        for v in transmitting:
            mask |= 1 << v
        return _np.frombuffer(
            mask.to_bytes(self._words * 8, "little"), dtype=_np.uint64
        )

    def resolve_rows(self, model, counts, firsts_of, batch):
        """Classify pre-computed counts for one or more slots.

        Args:
            model: a count-supporting channel model shared by the batch.
            counts: int64 array, receivers of all batch entries
                concatenated.
            firsts_of: callable slice -> int64 first-transmitter indices
                for that slice (or None when the model never needs them).
            batch: list of ``(transmitting, receivers, feedbacks)``
                triples, in concatenation order.
        """
        resolve = model.resolve
        masks = self._masks
        offset = 0
        for transmitting, receivers, feedbacks in batch:
            length = len(receivers)
            span = slice(offset, offset + length)
            offset += length
            out, needs = model.resolve_count_array(
                counts[span],
                None if firsts_of is None else firsts_of(span),
                transmitting,
            )
            if needs:
                transmit_mask = 0
                for v in transmitting:
                    transmit_mask |= 1 << v
                for i in needs:
                    out[i] = resolve(_mask_messages(
                        masks[receivers[i]] & transmit_mask, transmitting
                    ))
            feedbacks.update(zip(receivers, out))

    def slot_resolver(self, model: ChannelModel) -> SlotResolver:
        np = _np
        table = self._table

        if not model.supports_count:
            # Per-transmission models need the ordered message list per
            # listener; the vector sweep cannot help, so resolve exactly
            # like the bitmask backend's slow path.
            masks = self._masks
            resolve = model.resolve

            def resolve_slot(transmitting, receivers, feedbacks):
                transmit_mask = 0
                for v in transmitting:
                    transmit_mask |= 1 << v
                for v in receivers:
                    feedbacks[v] = resolve(
                        _mask_messages(masks[v] & transmit_mask, transmitting)
                    )

            return resolve_slot

        silence = model.resolve_count(0, None)
        needs_first = model.needs_first_message

        def resolve_slot(transmitting, receivers, feedbacks):
            if not transmitting:
                for v in receivers:
                    feedbacks[v] = silence
                return
            if not receivers:
                return
            recv = np.fromiter(receivers, dtype=np.intp, count=len(receivers))
            masked = np.take(table, recv, axis=0)
            np.bitwise_and(masked, self.transmit_mask_words(transmitting),
                           out=masked)
            counts = _popcount_rows(masked)
            firsts_of = None
            if needs_first != "none":
                select = counts == 1 if needs_first == "one" else counts > 0
                rows = np.nonzero(select)[0]
                # Only the selected rows are ever read (the model's
                # selection is a subset by contract), so the rest of the
                # buffer can stay uninitialized.
                firsts = np.empty(len(receivers), dtype=np.int64)
                if rows.size:
                    firsts[rows] = _first_transmitters(masked, rows)
                firsts_of = firsts.__getitem__
            self.resolve_rows(
                model, counts, firsts_of, [(transmitting, receivers, feedbacks)]
            )

        return resolve_slot


    def trial_matrix_resolver(self):
        """Whole-trial-matrix resolution for the SoA lock-step engine.

        Returns ``resolve(send) -> (counts, masked)`` where ``send`` is a
        boolean ``[trials, nodes]`` matrix of this slot's transmitters
        (one row per in-flight trial) and

        * ``counts`` is the int64 ``[trials, nodes]`` matrix of
          transmitting-neighbor counts — every cell of every trial in one
          AND + popcount sweep over the shared mask table, and
        * ``masked`` is the ``[trials, nodes, words]`` uint64 array of
          per-cell transmitting-neighbor masks (feed it to
          :meth:`first_transmitter_matrix`; extract the transmitting
          senders' bit columns — ``(masked[..., s >> 6] >> (s & 63)) &
          1`` — for the lossy drop-mask path's (receiver, sender) pair
          enumeration; or walk a row's bits for the ordered-message
          slow path).

        Unlike :meth:`batch_resolver` this returns arrays shaped like the
        caller's state matrices — reception results scatter straight into
        struct-of-arrays trial state with no per-trial dict hops.
        """
        np = _np
        table = self._table
        words = self._words

        def resolve(send):
            packed = np.packbits(send, axis=1, bitorder="little")
            tmask = np.zeros((send.shape[0], words * 8), dtype=np.uint8)
            tmask[:, : packed.shape[1]] = packed
            masked = table[None, :, :] & tmask.view(np.uint64)[:, None, :]
            counts = _popcount_rows(masked.reshape(-1, words)).reshape(
                send.shape
            )
            return counts, masked

        return resolve

    def first_transmitter_matrix(self, masked, select):
        """Lowest transmitting neighbor per selected cell of a
        ``[trials, nodes, words]`` mask array (from
        :meth:`trial_matrix_resolver`).  Only the cells picked by the
        boolean ``select`` matrix are computed (they must have nonzero
        masks — the caller filters on count); the rest of the returned
        ``[trials, nodes]`` int64 matrix is uninitialized."""
        np = _np
        flat = masked.reshape(-1, masked.shape[-1])
        rows = np.nonzero(select.reshape(-1))[0]
        firsts = np.empty(select.shape, dtype=np.int64)
        if rows.size:
            firsts.reshape(-1)[rows] = _first_transmitters(flat, rows)
        return firsts

    def batch_resolver(self, model: ChannelModel):
        if not model.supports_count:
            return super().batch_resolver(model)
        np = _np
        table = self._table
        silence = model.resolve_count(0, None)
        needs_first = model.needs_first_message

        def resolve_batch(batch):
            work = []
            recv_parts = []
            tmasks = []
            for entry in batch:
                transmitting, receivers, feedbacks = entry
                if not transmitting:
                    for v in receivers:
                        feedbacks[v] = silence
                    continue
                if not receivers:
                    continue
                work.append(entry)
                recv_parts.append(np.fromiter(
                    receivers, dtype=np.intp, count=len(receivers)
                ))
                tmasks.append(self.transmit_mask_words(transmitting))
            if not work:
                return
            recv = np.concatenate(recv_parts)
            trial_of_row = np.repeat(
                np.arange(len(work)), [len(part) for part in recv_parts]
            )
            masked = np.take(table, recv, axis=0)
            np.bitwise_and(masked, np.stack(tmasks)[trial_of_row], out=masked)
            counts = _popcount_rows(masked)
            firsts_of = None
            if needs_first != "none":
                select = counts == 1 if needs_first == "one" else counts > 0
                rows = np.nonzero(select)[0]
                firsts = np.empty(len(recv), dtype=np.int64)
                if rows.size:
                    firsts[rows] = _first_transmitters(masked, rows)
                firsts_of = firsts.__getitem__
            self.resolve_rows(model, counts, firsts_of, work)

        return resolve_batch


_BACKENDS = {
    "list": ListBackend,
    "bitmask": BitmaskBackend,
    "numpy": NumpyBackend,
}

_warned_numpy_fallback = False


def create_backend(resolution: str, graph: Graph) -> ResolutionBackend:
    """Instantiate the named backend for ``graph``.

    ``"numpy"`` degrades gracefully: when numpy is not importable the
    bitmask backend is returned instead (warning once per process), so
    code written against the fast path still runs everywhere.
    """
    if resolution not in _BACKENDS:
        raise ValueError(
            f"resolution must be one of {RESOLUTION_MODES}, got {resolution!r}"
        )
    if resolution == "numpy" and _np is None:
        global _warned_numpy_fallback
        if not _warned_numpy_fallback:
            _warned_numpy_fallback = True
            warnings.warn(
                "numpy is not installed; resolution='numpy' falls back to "
                "the bitmask backend (pip install -e .[fast] to enable it)",
                RuntimeWarning,
                stacklevel=2,
            )
        resolution = "bitmask"
    return _BACKENDS[resolution](graph)
