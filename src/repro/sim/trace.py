"""Execution traces for debugging and for rendering Figure 1.

Tracing is off by default (it costs memory proportional to the number of
active slots); experiments that draw timelines enable it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One active slot of one device."""

    slot: int
    node: int
    kind: str  # "send", "listen", or "duplex"
    message: Any = None  # outgoing message for send/duplex
    feedback: Any = None  # what a listener heard


class Trace:
    """Append-only list of :class:`TraceEvent` with simple query helpers."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        self._events.append(event)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events_for(self, node: int) -> List[TraceEvent]:
        return [e for e in self._events if e.node == node]

    def sends(self) -> List[TraceEvent]:
        return [e for e in self._events if e.kind in ("send", "duplex")]

    def receptions(self) -> List[TraceEvent]:
        from repro.sim.feedback import is_message

        return [
            e
            for e in self._events
            if e.kind in ("listen", "duplex") and is_message(e.feedback)
        ]

    def last_slot(self) -> int:
        return max((e.slot for e in self._events), default=-1)
