"""Slot-synchronous radio-network simulator with energy accounting."""

from repro.sim.actions import Idle, Listen, Send, SendListen
from repro.sim.batch import run_trials
from repro.sim.config import (
    ExecutionConfig,
    ExecutionConfigError,
    add_execution_args,
    config_from_args,
    execution_overrides,
    normalize_execution_options,
    validate_execution_options,
)
from repro.sim.energy import EnergyMeter, EnergyReport
from repro.sim.engine import (
    RESOLUTION_MODES,
    STEPPING_MODES,
    ProtocolError,
    Simulator,
    SimResult,
    SimulationTimeout,
)
from repro.sim.plan import (
    ListenUntil,
    Plan,
    Repeat,
    SendProb,
    Steps,
    as_slot_protocol,
    expand_plans,
)
from repro.sim.feedback import BEEP, NOISE, SILENCE, is_message
from repro.sim.models import (
    BEEPING,
    CD,
    CD_FD,
    CD_STAR,
    LOCAL,
    MODELS,
    NEEDS_MESSAGES,
    NO_CD,
    NO_CD_FD,
    ChannelModel,
)
from repro.sim.node import Knowledge, NodeCtx
from repro.sim.observers import (
    ContentionHistogramObserver,
    EnergyObserver,
    SlotObserver,
    TraceObserver,
)
from repro.sim.resolution import ResolutionBackend, create_backend, numpy_available
from repro.sim.trace import Trace, TraceEvent

__all__ = [
    "Idle",
    "Listen",
    "Send",
    "SendListen",
    "EnergyMeter",
    "EnergyReport",
    "ProtocolError",
    "RESOLUTION_MODES",
    "STEPPING_MODES",
    "Simulator",
    "SimResult",
    "SimulationTimeout",
    "run_trials",
    "ExecutionConfig",
    "ExecutionConfigError",
    "add_execution_args",
    "config_from_args",
    "execution_overrides",
    "normalize_execution_options",
    "validate_execution_options",
    "Plan",
    "Repeat",
    "SendProb",
    "ListenUntil",
    "Steps",
    "expand_plans",
    "as_slot_protocol",
    "SlotObserver",
    "EnergyObserver",
    "TraceObserver",
    "ContentionHistogramObserver",
    "ResolutionBackend",
    "create_backend",
    "numpy_available",
    "NEEDS_MESSAGES",
    "BEEP",
    "NOISE",
    "SILENCE",
    "is_message",
    "BEEPING",
    "CD",
    "CD_FD",
    "CD_STAR",
    "NO_CD_FD",
    "LOCAL",
    "MODELS",
    "NO_CD",
    "ChannelModel",
    "Knowledge",
    "NodeCtx",
    "Trace",
    "TraceEvent",
]
