"""Per-node context handed to protocol generators.

A protocol is a generator function ``proto(ctx)`` that yields
:mod:`repro.sim.actions` actions and receives channel feedback through
``generator.send``.  ``NodeCtx`` carries everything the paper allows a
device to know (Section 1, "The Model"): the global parameters n, Delta, D,
the ID space N and the device's own ID (deterministic variants), private
randomness, and per-node problem inputs (e.g. "you are the broadcast
source").  It deliberately does *not* expose the topology.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Knowledge", "NodeCtx", "validate_input_keys"]


def validate_input_keys(inputs: Dict[int, Dict[str, Any]], n: int) -> None:
    """Reject per-node ``inputs`` keys that are not vertex indices in
    ``[0, n)`` — shared by the engine and the reference oracle so their
    accepted domains cannot drift apart."""
    invalid = [
        key for key in inputs if not (isinstance(key, int) and 0 <= key < n)
    ]
    if invalid:
        raise ValueError(
            f"inputs keys must be vertex indices in [0, {n}); "
            f"got {sorted(invalid, key=repr)!r}"
        )


@dataclass(frozen=True)
class Knowledge:
    """Global parameters all devices agree on.

    Attributes:
        n: number of vertices (upper bound is fine; the paper lets devices
            substitute n for unknown Delta or D).
        max_degree: the paper's Delta (upper bound).
        diameter: the paper's D (upper bound), or None when unknown.
        id_space: the paper's N for deterministic algorithms, or None.
    """

    n: int
    max_degree: int
    diameter: Optional[int] = None
    id_space: Optional[int] = None


@dataclass
class NodeCtx:
    """Everything one device can see.

    Attributes:
        index: vertex index 0..n-1 (simulator-internal identity; protocols
            for the randomized model must not use it to break symmetry —
            they get ``rng`` for that).
        uid: device ID in {1..N}; only meaningful for deterministic
            algorithms, but always assigned.
        knowledge: shared global parameters.
        rng: private random stream, seeded from the run's master seed.
        inputs: per-node problem inputs (e.g. ``{"source": True,
            "payload": m}`` for Broadcast).
        time: current slot (maintained by the engine: equals the start slot
            of the action about to be yielded).
    """

    index: int
    uid: int
    knowledge: Knowledge
    rng: random.Random
    inputs: Dict[str, Any] = field(default_factory=dict)
    time: int = 0

    def rand_bernoulli_block(self, p: float, k: int) -> List[bool]:
        """Pre-draw ``k`` Bernoulli(``p``) decisions in bulk.

        The audited way for protocols to front-load a phase's transmit
        randomness before yielding a phase plan (:mod:`repro.sim.plan`):
        draw ``i`` is ``rng.random() < p``, consumed in index order —
        exactly the stream a per-slot ``if ctx.rng.random() < p`` loop
        over the same ``k`` slots would consume, so a protocol that
        pre-draws stays byte-identical to its per-slot form.
        (:class:`~repro.sim.plan.SendProb` uses the same draw order
        internally.)
        """
        if k < 0:
            raise ValueError(f"block size must be >= 0, got {k}")
        rand = self.rng.random
        return [rand() < p for _ in range(k)]

    @property
    def n(self) -> int:
        return self.knowledge.n

    @property
    def max_degree(self) -> int:
        return self.knowledge.max_degree

    @property
    def diameter(self) -> Optional[int]:
        return self.knowledge.diameter

    @property
    def id_space(self) -> Optional[int]:
        return self.knowledge.id_space
