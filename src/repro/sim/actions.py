"""Per-slot device actions.

The paper's model (Section 1, "The Model") gives each device three choices
per time slot: send a message, listen, or remain idle.  Sending and
listening cost one unit of energy; idling is free.  We add a fourth action,
:class:`SendListen`, for the full-duplex variants the paper uses in its
lower-bound reductions (Theorem 2) and in the path algorithm (Section 8,
"full duplex LOCAL model").

Protocols are generators that ``yield`` one action per step and receive the
channel feedback for that action via ``generator.send``.  ``Idle`` may span
many slots so that sleeping devices cost the simulator O(1) work, mirroring
the model's "idle time is free".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Send", "Listen", "SendListen", "Idle", "Action"]


@dataclass(frozen=True)
class Send:
    """Transmit ``message`` this slot.  Costs 1 energy.  Feedback: ``None``."""

    message: Any


@dataclass(frozen=True)
class Listen:
    """Listen this slot.  Costs 1 energy.

    Feedback depends on the collision model; see :mod:`repro.sim.models`.
    """


@dataclass(frozen=True)
class SendListen:
    """Transmit ``message`` and listen in the same slot (full duplex).

    Costs 1 energy (one slot of transceiver usage).  Only legal in models
    whose :attr:`~repro.sim.models.ChannelModel.full_duplex` flag is set.
    The sender does not hear its own transmission.
    """

    message: Any


@dataclass(frozen=True)
class Idle:
    """Sleep for ``duration`` consecutive slots.  Free.  Feedback: ``None``."""

    duration: int = 1

    def __post_init__(self) -> None:
        if self.duration < 1:
            raise ValueError(f"Idle duration must be >= 1, got {self.duration}")


Action = (Send, Listen, SendListen, Idle)
