"""Per-device energy accounting.

The paper defines energy complexity as the number of time slots a device
transmits or listens (Abstract; Section 1).  :class:`EnergyMeter` counts
those slots, split by kind so experiments can report send vs. listen
breakdowns, and records the device's last active slot for latency studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EnergyMeter", "EnergyReport"]


@dataclass
class EnergyMeter:
    """Mutable per-node counter updated by the engine."""

    sends: int = 0
    listens: int = 0
    duplex: int = 0
    last_active_slot: int = -1

    @property
    def total(self) -> int:
        """Total energy: one unit per slot spent sending and/or listening."""
        return self.sends + self.listens + self.duplex

    def charge_send(self, slot: int) -> None:
        self.sends += 1
        self.last_active_slot = slot

    def charge_listen(self, slot: int) -> None:
        self.listens += 1
        self.last_active_slot = slot

    def charge_duplex(self, slot: int) -> None:
        self.duplex += 1
        self.last_active_slot = slot

    def snapshot(self) -> "EnergyReport":
        return EnergyReport(
            sends=self.sends,
            listens=self.listens,
            duplex=self.duplex,
            total=self.total,
            last_active_slot=self.last_active_slot,
        )


@dataclass(frozen=True)
class EnergyReport:
    """Immutable snapshot of a node's energy usage at the end of a run."""

    sends: int
    listens: int
    duplex: int
    total: int
    last_active_slot: int = field(default=-1)
