"""Slot observers: energy metering and trace recording as engine hooks.

The engine's inner loop stays pure channel semantics — collect actions,
resolve receptions, advance generators.  Everything that merely *watches*
a slot (charging energy meters, appending trace events, custom
instrumentation) is a :class:`SlotObserver` invoked once per active slot.
Observers the run doesn't need are simply not installed, so e.g. tracing
costs nothing when disabled instead of an ``if trace`` branch per slot.

Observer call order is the installation order; the engine always installs
:class:`EnergyObserver` first (energy is part of :class:`SimResult`), then
:class:`TraceObserver` when tracing is on, then any user observers.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.sim.energy import EnergyReport
from repro.sim.trace import Trace, TraceEvent

__all__ = ["SlotObserver", "EnergyObserver", "TraceObserver"]


class SlotObserver:
    """Base class: sees every active slot of a run.

    ``on_slot`` receives the slot number and the slot's complete activity:
    ``senders``/``duplexers`` map vertex -> outgoing message, ``listeners``
    is the list of listening vertices, and ``feedbacks`` maps every active
    vertex to what it heard (None for pure senders).  Iteration order of
    the collections is unspecified (the engine classifies actions as
    generators yield them); observers that need a canonical order sort,
    as :class:`TraceObserver` does.
    """

    def on_run_start(self, n: int) -> None:
        """Called once before the first slot; ``n`` is the vertex count."""

    def on_slot(
        self,
        slot: int,
        senders: Dict[int, Any],
        listeners: List[int],
        duplexers: Dict[int, Any],
        feedbacks: Dict[int, Any],
    ) -> None:
        """Called once per slot in which at least one device was active."""


class EnergyObserver(SlotObserver):
    """Owns the per-node energy counters and charges them.

    The paper's energy measure — one unit per slot spent sending and/or
    listening (Section 1) — lives here, out of the engine's hot loop.
    Counters are flat integer arrays rather than :class:`EnergyMeter`
    objects: charging is the single hottest observer operation (every
    active device, every active slot), and ``listens[v] += 1`` beats a
    method call per charge.  :meth:`reports` snapshots the arrays into
    the same :class:`EnergyReport` records the meters produce.
    """

    def __init__(self) -> None:
        self.sends: List[int] = []
        self.listens: List[int] = []
        self.duplex: List[int] = []
        self.last_active: List[int] = []

    def on_run_start(self, n: int) -> None:
        self.sends = [0] * n
        self.listens = [0] * n
        self.duplex = [0] * n
        self.last_active = [-1] * n

    def on_slot(self, slot, senders, listeners, duplexers, feedbacks) -> None:
        last = self.last_active
        counts = self.sends
        for v in senders:
            counts[v] += 1
            last[v] = slot
        counts = self.listens
        for v in listeners:
            counts[v] += 1
            last[v] = slot
        counts = self.duplex
        for v in duplexers:
            counts[v] += 1
            last[v] = slot

    def reports(self) -> List[EnergyReport]:
        return [
            EnergyReport(
                sends=s,
                listens=l,
                duplex=d,
                total=s + l + d,
                last_active_slot=a,
            )
            for s, l, d, a in zip(
                self.sends, self.listens, self.duplex, self.last_active
            )
        ]


class _ZeroEnergyObserver(EnergyObserver):
    """Metering disabled: never charges; reports all-zero meters.

    Used by throughput benchmarks that want the engine's raw slot rate;
    normal runs keep the real meter bank.
    """

    def on_slot(self, slot, senders, listeners, duplexers, feedbacks) -> None:
        pass


class TraceObserver(SlotObserver):
    """Appends one :class:`TraceEvent` per active device per slot.

    Event order within a slot is senders, then listeners, then duplexers
    (each ascending by vertex) — the order Figure 1 and the lower-bound
    trace consumers have always seen.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace

    def on_slot(self, slot, senders, listeners, duplexers, feedbacks) -> None:
        record = self.trace.record
        for v in sorted(senders):
            record(TraceEvent(slot, v, "send", senders[v]))
        for v in sorted(listeners):
            record(TraceEvent(slot, v, "listen", None, feedbacks[v]))
        for v in sorted(duplexers):
            record(TraceEvent(slot, v, "duplex", duplexers[v], feedbacks[v]))
