"""Slot observers: energy metering and trace recording as engine hooks.

The engine's inner loop stays pure channel semantics — collect actions,
resolve receptions, advance generators.  Everything that merely *watches*
a slot (charging energy meters, appending trace events, custom
instrumentation) is a :class:`SlotObserver` invoked once per active slot.
Observers the run doesn't need are simply not installed, so e.g. tracing
costs nothing when disabled instead of an ``if trace`` branch per slot.

Observer call order is the installation order; the engine always installs
:class:`EnergyObserver` first (energy is part of :class:`SimResult`), then
:class:`TraceObserver` when tracing is on, then any user observers.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.sim.energy import EnergyReport
from repro.sim.resolution import _popcount
from repro.sim.trace import Trace, TraceEvent

__all__ = [
    "SlotObserver",
    "EnergyObserver",
    "TraceObserver",
    "ContentionHistogramObserver",
]


class SlotObserver:
    """Base class: sees every active slot of a run.

    ``on_slot`` receives the slot number and the slot's complete activity:
    ``senders``/``duplexers`` map vertex -> outgoing message, ``listeners``
    is the list of listening vertices, and ``feedbacks`` maps every active
    vertex to what it heard (None for pure senders).  Iteration order of
    the collections is unspecified (the engine classifies actions as
    generators yield them); observers that need a canonical order sort,
    as :class:`TraceObserver` does.

    **Batch ABI (optional).**  Observers that can consume a whole slot as
    boolean/count rows may set ``batch_capable = True`` and implement
    :meth:`observe_matrix`; the trial-SoA engine
    (:mod:`repro.sim.trialsoa`) then keeps batches with observers on the
    vectorized path instead of falling back to the per-trial driver.
    Both entry points must tally identically — the differential suite
    compares runs across the two drivers.
    """

    #: True when :meth:`observe_matrix` is implemented and equivalent to
    #: :meth:`on_slot`; the SoA engine checks this per observer instance.
    batch_capable = False

    def on_run_start(self, n: int) -> None:
        """Called once before the first slot; ``n`` is the vertex count."""

    def on_slot(
        self,
        slot: int,
        senders: Dict[int, Any],
        listeners: List[int],
        duplexers: Dict[int, Any],
        feedbacks: Dict[int, Any],
    ) -> None:
        """Called once per slot in which at least one device was active."""

    def observe_matrix(self, slot: int, sending, receiving, counts) -> None:
        """Batch form of :meth:`on_slot`, used by the SoA engine when
        ``batch_capable``: one call per trial per active slot with the
        trial's rows — ``sending``/``receiving`` are boolean ``[node]``
        vectors (senders + duplexers / listeners + duplexers) and
        ``counts`` is the per-node count of transmitting neighbors
        *on the air* (pre-erasure under lossy channels, matching
        :meth:`on_slot`'s neighbor-bitmask view)."""
        raise NotImplementedError


class EnergyObserver(SlotObserver):
    """Owns the per-node energy counters and charges them.

    The paper's energy measure — one unit per slot spent sending and/or
    listening (Section 1) — lives here, out of the engine's hot loop.
    Counters are flat integer arrays rather than :class:`EnergyMeter`
    objects: charging is the single hottest observer operation (every
    active device, every active slot), and ``listens[v] += 1`` beats a
    method call per charge.  :meth:`reports` snapshots the arrays into
    the same :class:`EnergyReport` records the meters produce.
    """

    def __init__(self) -> None:
        self.sends: List[int] = []
        self.listens: List[int] = []
        self.duplex: List[int] = []
        self.last_active: List[int] = []

    def on_run_start(self, n: int) -> None:
        self.sends = [0] * n
        self.listens = [0] * n
        self.duplex = [0] * n
        self.last_active = [-1] * n

    def on_slot(self, slot, senders, listeners, duplexers, feedbacks) -> None:
        last = self.last_active
        counts = self.sends
        for v in senders:
            counts[v] += 1
            last[v] = slot
        counts = self.listens
        for v in listeners:
            counts[v] += 1
            last[v] = slot
        counts = self.duplex
        for v in duplexers:
            counts[v] += 1
            last[v] = slot

    def reports(self) -> List[EnergyReport]:
        return [
            EnergyReport(
                sends=s,
                listens=l,
                duplex=d,
                total=s + l + d,
                last_active_slot=a,
            )
            for s, l, d, a in zip(
                self.sends, self.listens, self.duplex, self.last_active
            )
        ]


class _ZeroEnergyObserver(EnergyObserver):
    """Metering disabled: never charges; reports all-zero meters.

    Used by throughput benchmarks that want the engine's raw slot rate;
    normal runs keep the real meter bank.
    """

    def on_slot(self, slot, senders, listeners, duplexers, feedbacks) -> None:
        pass


class ContentionHistogramObserver(SlotObserver):
    """Per-slot channel-load and collision analytics.

    Rides along as an opt-in observer (``repro table1 --contention-hist``,
    ``campaign ... --contention-hist``, or the ``contention_hist`` cell
    option) and costs nothing when not installed.  Per active slot it
    records

    * the **channel load** — how many devices transmitted — into a
      histogram, and
    * every reception's contention count *k* (via the graph's neighbor
      bitmasks), bucketed into silent (k = 0), clean (k = 1), and
      collided (k >= 2) receptions.

    Model-independent by design: it counts transmissions on the air, not
    what the model turned them into, so the same numbers overlay any
    channel model (Figure 1 overlays, model-mismatch studies).  That is
    also why :meth:`observe_matrix` reduces over the SoA engine's
    *pre-drop* count matrix: erasures are the model's doing.
    """

    batch_capable = True

    def __init__(self, graph) -> None:
        self.graph = graph
        self._masks = graph.neighbor_masks()
        self.load_histogram: Dict[int, int] = {}
        self.active_slots = 0
        self.transmissions = 0
        self.silent_receptions = 0
        self.clean_receptions = 0
        self.collisions = 0

    def on_run_start(self, n: int) -> None:
        self.load_histogram = {}
        self.active_slots = 0
        self.transmissions = 0
        self.silent_receptions = 0
        self.clean_receptions = 0
        self.collisions = 0

    def on_slot(self, slot, senders, listeners, duplexers, feedbacks) -> None:
        load = len(senders) + len(duplexers)
        self.active_slots += 1
        self.transmissions += load
        histogram = self.load_histogram
        histogram[load] = histogram.get(load, 0) + 1
        receivers = (
            list(listeners) + list(duplexers) if duplexers else listeners
        )
        if not load:
            self.silent_receptions += len(receivers)
            return
        transmit_mask = 0
        for v in senders:
            transmit_mask |= 1 << v
        for v in duplexers:
            transmit_mask |= 1 << v
        masks = self._masks
        for v in receivers:
            k = _popcount(masks[v] & transmit_mask)
            if k == 0:
                self.silent_receptions += 1
            elif k == 1:
                self.clean_receptions += 1
            else:
                self.collisions += 1

    def observe_matrix(self, slot, sending, receiving, counts) -> None:
        load = int(sending.sum())
        self.active_slots += 1
        self.transmissions += load
        histogram = self.load_histogram
        histogram[load] = histogram.get(load, 0) + 1
        receivers = int(receiving.sum())
        if not load:
            self.silent_receptions += receivers
            return
        k = counts[receiving]
        silent = int((k == 0).sum())
        clean = int((k == 1).sum())
        self.silent_receptions += silent
        self.clean_receptions += clean
        self.collisions += receivers - silent - clean

    @property
    def receptions(self) -> int:
        return self.silent_receptions + self.clean_receptions + self.collisions

    def summary(self) -> Dict[str, float]:
        """Flat float metrics, ready to merge into a cell's ``extras``."""
        receptions = self.receptions
        return {
            "active_slots": float(self.active_slots),
            "mean_load": (
                self.transmissions / self.active_slots
                if self.active_slots else 0.0
            ),
            "max_load": float(max(self.load_histogram, default=0)),
            "collisions": float(self.collisions),
            "clean_receptions": float(self.clean_receptions),
            "collision_rate": (
                self.collisions / receptions if receptions else 0.0
            ),
        }


class TraceObserver(SlotObserver):
    """Appends one :class:`TraceEvent` per active device per slot.

    Event order within a slot is senders, then listeners, then duplexers
    (each ascending by vertex) — the order Figure 1 and the lower-bound
    trace consumers have always seen.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace

    def on_slot(self, slot, senders, listeners, duplexers, feedbacks) -> None:
        record = self.trace.record
        for v in sorted(senders):
            record(TraceEvent(slot, v, "send", senders[v]))
        for v in sorted(listeners):
            record(TraceEvent(slot, v, "listen", None, feedbacks[v]))
        for v in sorted(duplexers):
            record(TraceEvent(slot, v, "duplex", duplexers[v], feedbacks[v]))
