"""Phase plans: slots-at-a-time protocol stepping.

After the PR-3 resolution backends, whole-run profiles are dominated by
generator stepping (``gen.send``), not channel resolution: every slot of
every active device costs one full generator resume through the
protocol's ``yield from`` chain.  The paper's protocols are overwhelmingly
*phase-structured* — fixed-length Send bursts (decay), "listen until you
hear something, then sleep out the frame" receivers, deterministic
interval schedules — so most of those resumes re-derive a decision the
protocol already made at the phase boundary.

A *phase plan* lets a protocol yield one object covering many slots:

* :class:`Repeat` — the same ``Send``/``Listen``/``SendListen`` action
  for ``count`` consecutive slots (``Repeat(Idle(d), k)`` normalizes to
  one idle block);
* :class:`SendProb` — "transmit with probability p, else idle, for
  ``rounds`` slots", with all Bernoulli decisions drawn in bulk from the
  node's rng at plan start (one ``rng.random()`` per round, in round
  order — exactly the stream a per-slot loop would consume);
* :class:`ListenUntil` — listen up to ``slots`` slots, stopping at the
  first feedback that :func:`~repro.sim.feedback.is_message` and passes
  ``accept``; with ``pad=True`` the remaining slots are idled out so the
  plan always occupies exactly ``slots`` slots (the SR fixed-frame
  contract);
* :class:`Steps` — an arbitrary fixed sequence of per-slot actions
  (the heterogeneous escape hatch for interval schedules à la Lemma 24).

The engine (:mod:`repro.sim.engine`) and the lock-step driver
(:mod:`repro.sim.lockstep`) cache each node's active plan in a compact
mutable state record and advance it with plain list/dict operations,
re-entering the generator only at feedback-relevant boundaries: a k-slot
phase costs O(1) generator entries instead of k.  Yielding plain per-slot
actions remains fully supported (and is the right choice for adaptive
protocols such as the single-hop controllers, whose every slot depends on
the previous feedback).

**Resume values** (what ``yield <plan>`` evaluates to):

=============== =====================================================
``Repeat(Send)``   ``None``
``Repeat(Listen)`` tuple of the ``count`` feedbacks, in slot order
``Repeat(SendListen)`` tuple of the ``count`` feedbacks
``SendProb``       ``None``
``ListenUntil``    the matched feedback, or ``None`` if none matched
``Steps``          tuple of feedbacks of the listening slots
                   (``Listen``/``SendListen``), in slot order
=============== =====================================================

**Oracle**: :func:`expand_plans` interprets any plan-yielding protocol
back into per-slot primitive yields, byte-identically (same slots, same
rng consumption).  ``Simulator(stepping="slot")`` runs every protocol
through it, and the reference simulator always does — so the per-slot
path remains the differential-testing oracle for the phase-compiled
path.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from repro.sim.actions import Idle, Listen, Send, SendListen
from repro.sim.feedback import is_message

__all__ = [
    "Plan",
    "Repeat",
    "SendProb",
    "ListenUntil",
    "Steps",
    "ProtocolError",
    "expand_plans",
    "as_slot_protocol",
]


class ProtocolError(RuntimeError):
    """A protocol yielded an illegal action for the active channel model.

    (Defined here so the plan compiler can raise it without importing the
    engine; :mod:`repro.sim.engine` re-exports it under its historical
    name.)
    """


# The plan classes are deliberately plain __slots__ classes, not
# dataclasses: protocols construct one per phase on the hot path, and a
# frozen-dataclass __init__ (object.__setattr__ per field) costs several
# times a plain attribute store.  Treat instances as immutable anyway.


class Plan:
    """Marker base class for multi-slot phase plans."""

    __slots__ = ()


class Repeat(Plan):
    """Perform ``action`` for ``count`` consecutive slots.

    ``action`` must be a primitive per-slot action.  Repeating a ``Send``
    resumes with ``None``; repeating ``Listen``/``SendListen`` resumes
    with the tuple of all ``count`` feedbacks.
    """

    __slots__ = ("action", "count")

    def __init__(self, action: Any, count: int) -> None:
        self.action = action
        self.count = count

    def __repr__(self) -> str:
        return f"Repeat({self.action!r}, {self.count!r})"

    def __eq__(self, other: Any) -> bool:
        return (
            other.__class__ is Repeat
            and other.action == self.action
            and other.count == self.count
        )

    __hash__ = None  # type: ignore[assignment]


class SendProb(Plan):
    """Transmit ``message`` with probability ``p`` (else idle) for
    ``rounds`` slots.

    The Bernoulli decisions are drawn in bulk when the plan starts —
    one ``rng.random() < p`` per round, in round order, from the node's
    private rng — so the stream consumption is identical to a per-slot
    ``if ctx.rng.random() < p`` loop over the same rounds.
    """

    __slots__ = ("message", "p", "rounds")

    def __init__(self, message: Any, p: float, rounds: int) -> None:
        self.message = message
        self.p = p
        self.rounds = rounds

    def __repr__(self) -> str:
        return f"SendProb({self.message!r}, {self.p!r}, {self.rounds!r})"

    def __eq__(self, other: Any) -> bool:
        return (
            other.__class__ is SendProb
            and other.message == self.message
            and other.p == self.p
            and other.rounds == self.rounds
        )

    __hash__ = None  # type: ignore[assignment]


class ListenUntil(Plan):
    """Listen for up to ``slots`` slots, stopping at the first feedback
    that is a message (:func:`~repro.sim.feedback.is_message`) and passes
    ``accept`` (when given).

    Resumes with the matched feedback, or ``None`` when all ``slots``
    slots passed without a match.  With ``pad=True`` the remaining slots
    after a match are idled out, so the plan occupies exactly ``slots``
    slots either way — the SR-communication fixed-frame contract.
    """

    __slots__ = ("slots", "accept", "pad")

    def __init__(
        self,
        slots: int,
        accept: Optional[Callable[[Any], bool]] = None,
        pad: bool = False,
    ) -> None:
        self.slots = slots
        self.accept = accept
        self.pad = pad

    def __repr__(self) -> str:
        return (
            f"ListenUntil({self.slots!r}, accept={self.accept!r}, "
            f"pad={self.pad!r})"
        )

    def __eq__(self, other: Any) -> bool:
        return (
            other.__class__ is ListenUntil
            and other.slots == self.slots
            and other.accept == self.accept
            and other.pad == self.pad
        )

    __hash__ = None  # type: ignore[assignment]


class Steps(Plan):
    """Perform a fixed sequence of per-slot actions, one per slot.

    ``actions`` may mix ``Send``/``Listen``/``SendListen``/``Idle``.
    Resumes with the tuple of feedbacks received by the listening
    actions (``Listen``/``SendListen``), in slot order.
    """

    __slots__ = ("actions",)

    def __init__(self, actions: Tuple[Any, ...]) -> None:
        self.actions = actions

    def __repr__(self) -> str:
        return f"Steps({self.actions!r})"

    def __eq__(self, other: Any) -> bool:
        return other.__class__ is Steps and other.actions == self.actions

    __hash__ = None  # type: ignore[assignment]


# --- compiled plan state ---------------------------------------------------
#
# A started plan is a 9-slot mutable list (no attribute lookups in the
# engines' hot loops):
#
#   ps[0] op       active opcode (see OP_*): what the node is doing *now*
#   ps[1] rem      remaining slots in the active run (incl. the slot being
#                  performed), or the *next* action index for OP_STEPS
#   ps[2] payload  message (send/duplex runs), accept (OP_UNTIL),
#                  actions tuple (OP_STEPS)
#   ps[3] acc      collected listen feedbacks
#   ps[4] segs     compiled segment tuple
#   ps[5] si       index of the next segment to load
#   ps[6] mode     result mode (RESULT_*)
#   ps[7] value    ListenUntil matched feedback
#   ps[8] pad      ListenUntil pad flag
#
# Segments: (OP_SEND, count, message) | (OP_LISTEN, count)
#         | (OP_DUPLEX, count, message) | (OP_IDLE, count)
#         | (OP_UNTIL, count, accept, pad) | (OP_STEPS, actions)
#
# The engines inline the within-run continuations (send run, listen run,
# unmatched listen-until, steps) and fall back to plan_feedback /
# plan_resume at segment boundaries, so the semantics live here once.

OP_PENDING = 0  # nothing active: the next emission loads segs[si]
OP_SEND = 1
OP_LISTEN = 2
OP_DUPLEX = 3
OP_UNTIL = 4
OP_STEPS = 5
OP_IDLE = 6

RESULT_NONE = 0
RESULT_COLLECT = 1
RESULT_UNTIL = 2

_LISTEN = Listen()  # shared: Listen carries no per-slot state

_PRIMITIVES = (Send, Listen, SendListen, Idle)


_EMPTY_SEGS = ()


def start_plan(plan: Plan, rng):
    """Start ``plan``: returns ``(ps, first_action)`` — the fresh plan
    state and the primitive action for the plan's first slot.

    Raises :class:`ProtocolError` on malformed plans.  This is the only
    place plan randomness is drawn (:class:`SendProb`), so the engine and
    the :func:`expand_plans` oracle consume identical rng streams.  The
    single-segment plans (``Repeat``, ``ListenUntil``, ``Steps``) are
    constructed without touching the segment machinery at all — one list
    allocation, first action emitted for free (``Repeat`` re-emits the
    protocol's own action object) — because protocols start one plan per
    phase on the hot path.
    """
    cls = plan.__class__
    if cls is ListenUntil:
        slots = plan.slots
        if slots.__class__ is not int or slots < 1:
            raise ProtocolError(
                f"ListenUntil slots must be >= 1, got {slots!r}"
            )
        return (
            [OP_UNTIL, slots, plan.accept, None, _EMPTY_SEGS, 0,
             RESULT_UNTIL, None, plan.pad],
            _LISTEN,
        )
    if cls is Repeat:
        count = plan.count
        if count.__class__ is not int or count < 1:
            raise ProtocolError(f"Repeat count must be >= 1, got {count!r}")
        action = plan.action
        acls = action.__class__
        if acls is Send:
            return (
                [OP_SEND, count, action.message, None, _EMPTY_SEGS, 0,
                 RESULT_NONE, None, False],
                action,
            )
        if acls is Listen:
            return (
                [OP_LISTEN, count, None, [], _EMPTY_SEGS, 0,
                 RESULT_COLLECT, None, False],
                action,
            )
        if acls is SendListen:
            return (
                [OP_DUPLEX, count, action.message, [], _EMPTY_SEGS, 0,
                 RESULT_COLLECT, None, False],
                action,
            )
        if acls is Idle:
            total = count * action.duration
            return (
                [OP_PENDING, 0, None, None, _EMPTY_SEGS, 0,
                 RESULT_NONE, None, False],
                action if total == action.duration else Idle(total),
            )
        if isinstance(action, _PRIMITIVES):
            # Action subclass: normalize and retry on the exact class.
            if isinstance(action, Send):
                base: Any = Send(action.message)
            elif isinstance(action, Listen):
                base = _LISTEN
            elif isinstance(action, SendListen):
                base = SendListen(action.message)
            else:
                base = Idle(action.duration)
            return start_plan(Repeat(base, count), rng)
        raise ProtocolError(f"Repeat of non-action {action!r}")
    if cls is Steps or isinstance(plan, Steps):
        actions = tuple(plan.actions)
        if not actions:
            raise ProtocolError("Steps needs at least one action")
        normalize = False
        for action in actions:
            acls = action.__class__
            if (
                acls is not Send
                and acls is not Listen
                and acls is not SendListen
                and acls is not Idle
            ):
                if not isinstance(action, _PRIMITIVES):
                    raise ProtocolError(
                        f"Steps may only contain per-slot actions, "
                        f"got {action!r}"
                    )
                normalize = True
        if normalize:
            # Action subclasses: rebuild on the exact base classes so the
            # engines' exact-class fast paths dispatch them correctly.
            actions = tuple(
                Send(a.message) if isinstance(a, Send)
                else _LISTEN if isinstance(a, Listen)
                else SendListen(a.message) if isinstance(a, SendListen)
                else Idle(a.duration)
                for a in actions
            )
        return (
            [OP_STEPS, 1, actions, [], _EMPTY_SEGS, 0,
             RESULT_COLLECT, None, False],
            actions[0],
        )
    if cls is SendProb or isinstance(plan, SendProb):
        rounds = plan.rounds
        if rounds.__class__ is not int or rounds < 1:
            raise ProtocolError(
                f"SendProb rounds must be >= 1, got {rounds!r}"
            )
        # Bulk Bernoulli block: one draw per round, in round order (the
        # audited pre-draw order; NodeCtx.rand_bernoulli_block matches).
        p = plan.p
        random = rng.random
        decisions = [random() < p for _ in range(rounds)]
        segs = []
        message = plan.message
        i = 0
        while i < rounds:
            j = i + 1
            if decisions[i]:
                while j < rounds and decisions[j]:
                    j += 1
                segs.append((OP_SEND, j - i, message))
            else:
                while j < rounds and not decisions[j]:
                    j += 1
                segs.append((OP_IDLE, j - i))
            i = j
        ps = [OP_PENDING, 0, None, None, tuple(segs), 0,
              RESULT_NONE, None, False]
        action, _ = plan_resume(ps)
        return ps, action
    if isinstance(plan, ListenUntil):
        return start_plan(ListenUntil(plan.slots, plan.accept, plan.pad), rng)
    if isinstance(plan, Repeat):
        return start_plan(Repeat(plan.action, plan.count), rng)
    raise ProtocolError(f"unsupported plan {plan!r}")


def plan_resume(ps: list):
    """Emit the plan's next per-slot action.

    Returns ``(action, None)`` with a primitive action for the next slot,
    or ``(None, result)`` when the plan has finished.  Called at idle
    wake-ups and after :func:`plan_feedback` consumed a segment's last
    slot.
    """
    op = ps[0]
    if op == OP_STEPS:
        acts = ps[2]
        i = ps[1]
        if i < len(acts):
            ps[1] = i + 1
            return acts[i], None
        ps[0] = OP_PENDING
    segs = ps[4]
    si = ps[5]
    if si < len(segs):
        seg = segs[si]
        ps[5] = si + 1
        sop = seg[0]
        if sop == OP_SEND:
            ps[0] = OP_SEND
            ps[1] = seg[1]
            ps[2] = seg[2]
            return Send(seg[2]), None
        if sop == OP_LISTEN:
            ps[0] = OP_LISTEN
            ps[1] = seg[1]
            return _LISTEN, None
        if sop == OP_IDLE:
            ps[0] = OP_PENDING
            return Idle(seg[1]), None
        if sop == OP_UNTIL:
            ps[0] = OP_UNTIL
            ps[1] = seg[1]
            ps[2] = seg[2]
            ps[8] = seg[3]
            return _LISTEN, None
        if sop == OP_DUPLEX:
            ps[0] = OP_DUPLEX
            ps[1] = seg[1]
            ps[2] = seg[2]
            return SendListen(seg[2]), None
        # OP_STEPS segment
        acts = seg[1]
        ps[0] = OP_STEPS
        ps[1] = 1
        ps[2] = acts
        return acts[0], None
    mode = ps[6]
    if mode == RESULT_COLLECT:
        return None, tuple(ps[3])
    if mode == RESULT_UNTIL:
        return None, ps[7]
    return None, None


def plan_feedback(ps: list, feedback):
    """Consume the feedback of the slot the plan just performed and emit
    the next action.  Same return convention as :func:`plan_resume`.

    This is the complete referee for every opcode; the engines inline
    only the hot within-run continuations and delegate the rest here.
    """
    op = ps[0]
    if op == OP_SEND:
        rem = ps[1]
        if rem > 1:
            ps[1] = rem - 1
            return Send(ps[2]), None
        return plan_resume(ps)
    if op == OP_LISTEN:
        ps[3].append(feedback)
        rem = ps[1]
        if rem > 1:
            ps[1] = rem - 1
            return _LISTEN, None
        return plan_resume(ps)
    if op == OP_UNTIL:
        accept = ps[2]
        if is_message(feedback) and (accept is None or accept(feedback)):
            ps[7] = feedback
            left = ps[1] - 1
            ps[0] = OP_PENDING
            ps[5] = len(ps[4])  # an UNTIL segment is always the last one
            if ps[8] and left > 0:
                return Idle(left), None
            return plan_resume(ps)
        rem = ps[1]
        if rem > 1:
            ps[1] = rem - 1
            return _LISTEN, None
        return plan_resume(ps)
    if op == OP_STEPS:
        acts = ps[2]
        i = ps[1]
        prev = acts[i - 1]
        if isinstance(prev, (Listen, SendListen)):
            ps[3].append(feedback)
        if i < len(acts):
            ps[1] = i + 1
            return acts[i], None
        ps[0] = OP_PENDING
        return plan_resume(ps)
    if op == OP_DUPLEX:
        ps[3].append(feedback)
        rem = ps[1]
        if rem > 1:
            ps[1] = rem - 1
            return SendListen(ps[2]), None
        return plan_resume(ps)
    # OP_PENDING: an idle just elapsed; nothing to consume.
    return plan_resume(ps)


# --- array-compilable run descriptors --------------------------------------
#
# The trial-SoA lock-step engine (:mod:`repro.sim.trialsoa`) executes a
# started plan as *runs*: maximal stretches of slots the plan performs
# without a decision point, advanced by whole-array countdowns instead of
# per-slot plan_feedback calls.  run_descriptor() is the compiler from a
# plan state to its current run; it lives here, next to the referee whose
# semantics it must mirror, so a new opcode cannot land without its run
# shape being decided in the same file.

RUN_SEND = 0
RUN_LISTEN = 1
RUN_DUPLEX = 2
RUN_UNTIL = 3


def run_descriptor(ps: list, action):
    """Describe the maximal fixed run behind ``action``, which ``ps``
    just emitted (via :func:`start_plan` / :func:`plan_resume` /
    :func:`plan_feedback`) and which is not an ``Idle``.

    Returns ``(kind, count, payload, resume_index)`` or None when the
    state has no array-compilable run (the caller then executes one slot
    at a time through :func:`plan_feedback`):

    * ``kind`` — one of ``RUN_SEND``/``RUN_LISTEN``/``RUN_DUPLEX``
      (perform the same action for ``count`` slots; ``payload`` is the
      message for send/duplex runs) or ``RUN_UNTIL`` (listen up to
      ``count`` slots with early exit on an accepted message;
      ``payload`` is the accept callback or None).
    * ``resume_index`` — for runs carved out of an ``OP_STEPS`` action
      list, the ``ps[1]`` value to restore before handing the run's last
      feedback to :func:`plan_feedback`; ``-1`` for whole-opcode runs
      (restore ``ps[1]`` to 1, or to the remaining count for
      ``RUN_UNTIL``).

    ``ps`` must not be advanced between the emission and this call: the
    descriptor reads the post-emission counters (``OP_STEPS`` has
    already stepped ``ps[1]`` past the emitted action).
    """
    op = ps[0]
    if op == OP_SEND:
        return (RUN_SEND, ps[1], ps[2], -1)
    if op == OP_LISTEN:
        return (RUN_LISTEN, ps[1], None, -1)
    if op == OP_UNTIL:
        return (RUN_UNTIL, ps[1], ps[2], -1)
    if op == OP_DUPLEX:
        return (RUN_DUPLEX, ps[1], ps[2], -1)
    if op == OP_STEPS:
        acts = ps[2]
        i = ps[1] - 1  # index of the action just emitted
        first = acts[i]
        cls = first.__class__
        end = len(acts)
        j = i + 1
        if cls is Send:
            message = first.message
            # Group only identical message *objects*: the run transmits
            # one message reference for all its slots, and `is` grouping
            # keeps that reference the very object the per-slot path
            # would have delivered.
            while (
                j < end
                and acts[j].__class__ is Send
                and acts[j].message is message
            ):
                j += 1
            return (RUN_SEND, j - i, message, j)
        if cls is Listen:
            while j < end and acts[j].__class__ is Listen:
                j += 1
            return (RUN_LISTEN, j - i, None, j)
        if cls is SendListen:
            message = first.message
            while (
                j < end
                and acts[j].__class__ is SendListen
                and acts[j].message is message
            ):
                j += 1
            return (RUN_DUPLEX, j - i, message, j)
    return None


# --- per-slot oracle -------------------------------------------------------


def expand_plans(gen, rng):
    """Interpret a (possibly plan-yielding) protocol generator per slot.

    A driver generator that yields only primitive per-slot actions,
    compiling each yielded plan with the same :func:`start_plan` the
    engine uses (so :class:`SendProb` randomness is drawn at the same
    point of the same stream) and walking it one slot at a time.  By
    construction this is byte-identical to the engine's phase-compiled
    execution: same slots, same energy, same rng consumption — the
    differential-testing oracle for ``stepping="phase"``.
    """
    try:
        action = next(gen)
        while True:
            if isinstance(action, Plan):
                ps, act = start_plan(action, rng)
                result = None
                while act is not None:
                    fb = yield act
                    act, result = plan_feedback(ps, fb)
                action = gen.send(result)
            else:
                fb = yield action
                action = gen.send(fb)
    except StopIteration as stop:
        return stop.value


def as_slot_protocol(protocol_factory):
    """Wrap a protocol factory so every node runs through
    :func:`expand_plans` — for drivers without native plan support
    (e.g. the frozen legacy engine in the benchmarks)."""

    def factory(ctx):
        return expand_plans(protocol_factory(ctx), ctx.rng)

    return factory
