"""FROZEN pre-refactor engine (PR 1 state) - benchmark baseline ONLY.

This is a verbatim copy of the event-heap engine as it existed before the
bitmask/batched refactor (git f71d51e), kept so `repro bench` can measure
the refactored engine against the true pre-refactor baseline rather than
a proxy.  Do not use it for experiments and do not improve it: its whole
value is standing still.  Semantics are pinned by the same differential
tests that pin the current engine.

Original module docstring follows.


This is the substrate everything else runs on.  Devices are generator-based
protocols; each yielded action occupies one slot (``Send``/``Listen``/
``SendListen``) or several (``Idle(k)``).  The engine keeps an event heap
keyed by the slot at which each device next acts, so long sleeps cost O(1)
work — mirroring the paper's "idle time is free" in both the energy model
and simulator wall time.

Channel semantics are delegated to a :class:`~repro.sim.models.ChannelModel`
(LOCAL, CD, No-CD, CD*, BEEP).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from repro.graphs.graph import Graph
from repro.sim.actions import Idle, Listen, Send, SendListen
from repro.sim.energy import EnergyMeter
from repro.sim.engine import ProtocolError, SimResult, SimulationTimeout
from repro.sim.models import ChannelModel
from repro.sim.node import Knowledge, NodeCtx
from repro.sim.trace import Trace, TraceEvent

__all__ = ["LegacySimulator"]

Protocol = Generator[Any, Any, Any]
ProtocolFactory = Callable[[NodeCtx], Protocol]

_RESUME = object()  # heap payload marker: wake a sleeping generator


@dataclass
class _NodeState:
    gen: Protocol
    ctx: NodeCtx
    meter: EnergyMeter = field(default_factory=EnergyMeter)
    done: bool = False
    output: Any = None
    finish_slot: int = -1


class LegacySimulator:
    """Runs one protocol on one graph under one collision model.

    Example:
        >>> from repro.graphs import path_graph
        >>> from repro.sim import Simulator, NO_CD, Send, Listen, Idle
        >>> def proto(ctx):
        ...     if ctx.inputs.get("source"):
        ...         yield Send("hello")
        ...         return "hello"
        ...     fb = yield Listen()
        ...     return fb
        >>> sim = Simulator(path_graph(2), NO_CD, seed=1)
        >>> result = sim.run(proto, inputs={0: {"source": True}})
        >>> result.outputs
        ['hello', 'hello']
    """

    def __init__(
        self,
        graph: Graph,
        model: ChannelModel,
        seed: int = 0,
        time_limit: int = 50_000_000,
        knowledge: Optional[Knowledge] = None,
        uids: Optional[Sequence[int]] = None,
        record_trace: bool = False,
    ) -> None:
        self.graph = graph
        self.model = model
        self.seed = seed
        self.time_limit = time_limit
        self.record_trace = record_trace
        if knowledge is None:
            knowledge = Knowledge(
                n=graph.n, max_degree=max(graph.max_degree, 1), diameter=None
            )
        self.knowledge = knowledge
        if uids is None:
            uids = list(range(1, graph.n + 1))
        if len(uids) != graph.n or len(set(uids)) != graph.n:
            raise ValueError("uids must be distinct and cover every vertex")
        self.uids = list(uids)

    def run(
        self,
        protocol_factory: ProtocolFactory,
        inputs: Optional[Dict[int, Dict[str, Any]]] = None,
    ) -> SimResult:
        """Execute the protocol on every vertex until all terminate.

        Args:
            protocol_factory: called once per vertex with its
                :class:`NodeCtx`; returns the protocol generator.
            inputs: optional per-vertex input dictionaries.

        Raises:
            SimulationTimeout: if any protocol is still running at
                ``time_limit`` slots.
            ProtocolError: on full-duplex actions in half-duplex models or
                other illegal yields.
        """
        graph, model = self.graph, self.model
        master = random.Random(self.seed)
        trace = Trace() if self.record_trace else None
        inputs = inputs or {}

        states: List[_NodeState] = []
        heap: List = []  # entries: (slot, node_index, payload)
        remaining = 0
        for v in range(graph.n):
            ctx = NodeCtx(
                index=v,
                uid=self.uids[v],
                knowledge=self.knowledge,
                rng=random.Random(master.getrandbits(64)),
                inputs=dict(inputs.get(v, ())),
            )
            state = _NodeState(gen=protocol_factory(ctx), ctx=ctx)
            states.append(state)
            try:
                action = next(state.gen)
            except StopIteration as stop:
                state.done = True
                state.output = stop.value
                continue
            remaining += 1
            self._schedule(heap, v, action, start=0)

        duration = 0
        while remaining:
            slot = heap[0][0]
            if slot > self.time_limit:
                raise SimulationTimeout(
                    f"simulation exceeded {self.time_limit} slots "
                    f"({remaining} protocols still running)"
                )

            # Collect everything happening at this slot.  Resumed sleepers
            # may immediately act in this same slot, so drain until the heap
            # front moves past `slot`.
            senders: Dict[int, Any] = {}
            listeners: List[int] = []
            duplexers: Dict[int, Any] = {}
            while heap and heap[0][0] == slot:
                _, v, payload = heapq.heappop(heap)
                state = states[v]
                if payload is _RESUME:
                    state.ctx.time = slot
                    finished = self._advance(
                        heap, state, v, feedback=None, next_start=slot
                    )
                    if finished:
                        remaining -= 1
                        duration = max(duration, slot)
                elif isinstance(payload, Send):
                    senders[v] = payload.message
                elif isinstance(payload, Listen):
                    listeners.append(v)
                elif isinstance(payload, SendListen):
                    duplexers[v] = payload.message
                else:  # pragma: no cover - schedule() filters action types
                    raise ProtocolError(f"unknown action {payload!r}")

            transmitting = dict(senders)
            transmitting.update(duplexers)

            # Resolve receptions, charge energy, record trace.
            feedbacks: Dict[int, Any] = {}
            for v in listeners:
                heard = [
                    transmitting[w]
                    for w in graph.neighbors(v)
                    if w in transmitting
                ]
                feedbacks[v] = model.resolve(heard)
                states[v].meter.charge_listen(slot)
            for v in duplexers:
                heard = [
                    transmitting[w]
                    for w in graph.neighbors(v)
                    if w in transmitting
                ]
                feedbacks[v] = model.resolve(heard)
                states[v].meter.charge_duplex(slot)
            for v in senders:
                states[v].meter.charge_send(slot)
                feedbacks[v] = None

            if trace is not None:
                for v in senders:
                    trace.record(TraceEvent(slot, v, "send", senders[v]))
                for v in listeners:
                    trace.record(TraceEvent(slot, v, "listen", None, feedbacks[v]))
                for v in duplexers:
                    trace.record(
                        TraceEvent(slot, v, "duplex", duplexers[v], feedbacks[v])
                    )

            # Advance every actor; their next action starts at slot+1.
            for v in list(senders) + listeners + list(duplexers):
                state = states[v]
                state.ctx.time = slot + 1
                finished = self._advance(
                    heap, state, v, feedback=feedbacks[v], next_start=slot + 1
                )
                if finished:
                    remaining -= 1
                    duration = max(duration, slot + 1)
                else:
                    duration = max(duration, slot + 1)

        return SimResult(
            outputs=[s.output for s in states],
            energy=[s.meter.snapshot() for s in states],
            finish_slot=[s.finish_slot for s in states],
            duration=duration,
            trace=trace,
            seed=self.seed,
        )

    def _advance(
        self, heap: List, state: _NodeState, v: int, feedback: Any, next_start: int
    ) -> bool:
        """Feed ``feedback`` to the node's generator; schedule its next
        action starting at ``next_start``.  Returns True if it finished."""
        try:
            action = state.gen.send(feedback)
        except StopIteration as stop:
            state.done = True
            state.output = stop.value
            state.finish_slot = next_start - 1
            return True
        self._schedule(heap, v, action, start=next_start)
        return False

    def _schedule(self, heap: List, v: int, action: Any, start: int) -> None:
        if isinstance(action, Idle):
            heapq.heappush(heap, (start + action.duration, v, _RESUME))
        elif isinstance(action, (Send, Listen)):
            heapq.heappush(heap, (start, v, action))
        elif isinstance(action, SendListen):
            if not self.model.full_duplex:
                raise ProtocolError(
                    f"SendListen is illegal in the {self.model.name} model"
                )
            heapq.heappush(heap, (start, v, action))
        else:
            raise ProtocolError(f"protocol yielded non-action {action!r}")
