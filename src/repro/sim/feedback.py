"""Channel feedback values.

A listener receives one of:

* a message object (exactly one neighbor transmitted, or the model picked
  one for CD*),
* :data:`SILENCE` — the paper's lambda_S,
* :data:`NOISE` — the paper's lambda_N (CD model only),
* :data:`BEEP` — the beeping model's "someone beeped" indicator,
* a tuple of messages — LOCAL model, which has no collisions and delivers
  every transmitted message.

``SILENCE``/``NOISE``/``BEEP`` are singleton sentinels so protocols can use
identity checks (``fb is SILENCE``).
"""

from __future__ import annotations

__all__ = ["SILENCE", "NOISE", "BEEP", "is_message"]


class _Sentinel:
    """A named singleton used for channel feedback."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name

    def __reduce__(self):
        # Preserve singleton identity across pickling.
        return (_lookup, (self._name,))


SILENCE = _Sentinel("SILENCE")
NOISE = _Sentinel("NOISE")
BEEP = _Sentinel("BEEP")

_BY_NAME = {"SILENCE": SILENCE, "NOISE": NOISE, "BEEP": BEEP}


def _lookup(name: str) -> _Sentinel:
    return _BY_NAME[name]


def is_message(feedback: object) -> bool:
    """Return True if ``feedback`` is an actual received message.

    LOCAL-model tuples count as a message exactly when they are non-empty.
    """
    if feedback is SILENCE or feedback is NOISE or feedback is BEEP:
        return False
    if feedback is None:
        return False
    if isinstance(feedback, tuple) and not feedback:
        return False
    return True
