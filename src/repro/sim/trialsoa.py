"""Trial-axis struct-of-arrays (SoA) lock-step execution.

The per-trial lock-step driver (:mod:`repro.sim.lockstep`) is byte-exact
but break-even: with resolution and stepping cheap, its profile is
per-trial Python bookkeeping — dict churn in collect/apply, one
``gen.send`` per node per slot on per-slot protocols, one plan-state poke
per node per slot on phase protocols.  This module keeps the *whole
batch* of trials in 2-D numpy arrays indexed ``[trial, node]`` and
advances every vectorizable run with whole-array operations per slot:

====================  =====================================================
array                 meaning
====================  =====================================================
``st``      int8      state code: done / send / listen / listen-until /
                      duplex / idle
``rem``     int64     slots remaining in the active run (incl. current)
``wake``    int64     wake slot for idle cells (sentinel elsewhere)
``run_start`` int64   global round index of the run's first slot (for
                      deferred feedback delivery out of the history ring)
``steps_next`` int64  ``Steps`` resume index (-1: whole-opcode run,
                      -2: no descriptor — per-slot referee)
``msg``     object    message transmitted by send/duplex runs
``e_send``/``e_listen``/``e_duplex``/``e_last``  int64  energy meters
====================  =====================================================

Per global round, every unfinished trial stages exactly one slot (its
own clock — trials at different slot numbers share a round).  The slot
is resolved through :meth:`repro.sim.resolution.NumpyBackend.
trial_matrix_resolver` — one packbits over the send matrix, one AND +
popcount sweep over the shared uint64 mask table for *all* trials — and
classified into a ``[trial, node]`` feedback object array by per-model
vectorized rules.  Countdowns (``rem -= 1``), energy charging, duration
bookkeeping, and ``ListenUntil`` match detection are array operations;
Python runs only at *run boundaries* (a run's last slot, an early
``ListenUntil`` match, idle wake-ups, generator re-entries), where the
node syncs its plan state and delegates to the same
:func:`~repro.sim.plan.plan_feedback` / :func:`~repro.sim.plan.
plan_resume` referee the serial engine uses.

Feedback for multi-slot listen runs is delivered *deferred*: each
round's feedback matrix is appended to a history list, and a run's
feedbacks are gathered as a column slice when the run ends (every live
trial stages one slot per round, so a k-slot run spans k consecutive
rounds).  The history is truncated to the oldest in-flight collecting
run, bounding memory.

What vectorizes (runs longer than one slot): ``Repeat`` of
Send/Listen/SendListen, ``SendProb`` pre-drawn segments, ``ListenUntil``
countdowns (accept callbacks are evaluated only on message-bearing
candidate cells), and maximal same-action stretches inside ``Steps``.
Everything else — plain per-slot yields from adaptive generators, plan
starts, idle wake-ups — takes the per-node Python path, one call per
boundary, which is exactly the serial engine's cost for those states.

rng draw-order identity holds by construction: generator entries and
``start_plan`` calls (the only rng consumers) happen at exactly the
slots the serial engine performs them; only within-run continuations are
vectorized.  The differential matrix in tests/test_lockstep.py pins the
results byte-identical to the serial engine across models x backends x
stepping modes.

Eligibility: numpy importable, ``resolution == "numpy"``, no trace
recording, and a vectorizable channel — either a shared count-based
stateless model (:func:`soa_engaged`, the PR-7 core), or a per-seed
``model_factory`` producing :class:`~repro.sim.models.LossyModel`
wrappers around one shared stateless inner model (the erasure channel is
lowered to per-trial Bernoulli drop masks, see below).  Batches with
observers stay eligible when every observer advertises the batch ABI
(``SlotObserver.batch_capable``); the dispatch in
:func:`repro.sim.lockstep.run_trials_lockstep` probes the materialized
factory products and records its decision as ``SimResult.soa_reason``.
Everything else — including every no-numpy environment — runs the
per-trial fallback driver in :mod:`repro.sim.lockstep`, unchanged.

**Lossy channels.**  The serial oracle draws one ``rng.random()`` per
on-the-air transmission per reception, receivers ascending (the
lock-step driver sorts receivers for non-count models), senders
ascending within each receiver (``_mask_messages`` walks the neighbor
mask lowest-bit-first).  The SoA engine reproduces that stream exactly:
each trial's ``LossyModel`` rng is transplanted into a
``numpy.random.RandomState`` (same MT19937 state, and
``random_sample(k)`` is the same genrand_res53 double stream as
``random.random()``), and per round each staged trial enumerates its
(receiver, sender) reception pairs in that order via one
``unpackbits``/``nonzero`` sweep, draws the whole slot's Bernoulli mask
in one call, and classifies *post-drop* counts/firsts under the inner
model's stock spec.  ``ListenUntil`` early exit also matches on
post-drop counts (a dropped transmission cannot end a listen).  The
consumed rng state is written back into each ``LossyModel`` after the
run, so trailing draws continue the serial stream.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence

from repro.graphs.graph import Graph
from repro.sim.actions import Idle, Listen, Send, SendListen
from repro.sim.config import ExecutionConfig
from repro.sim.energy import EnergyReport
from repro.sim.engine import (
    ProtocolError,
    ProtocolFactory,
    SimResult,
    SimulationTimeout,
)
from repro.sim.faults import GilbertElliottModel
from repro.sim.feedback import BEEP, NOISE, SILENCE, is_message
from repro.sim.models import (
    BEEPING,
    CD,
    CD_STAR,
    LOCAL,
    NO_CD,
    ChannelModel,
)
from repro.sim.node import Knowledge, NodeCtx
from repro.sim.plan import (
    OP_DUPLEX,
    OP_LISTEN,
    OP_SEND,
    OP_UNTIL,
    RUN_DUPLEX,
    RUN_LISTEN,
    RUN_SEND,
    RUN_UNTIL,
    Plan,
    expand_plans,
    plan_feedback,
    plan_resume,
    run_descriptor,
    start_plan,
)

try:  # optional acceleration dependency (mirrors resolution.py)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the no-numpy CI leg
    _np = None

__all__ = ["run_trials_soa", "soa_engaged"]

# State codes.  The active band [_SEND, _DUPLEX] is contiguous so
# "has any staged action" is one range test per cell.
_DONE = 0
_SEND = 1
_LISTEN = 2
_UNTIL = 3
_DUPLEX = 4
_IDLE = 5

_FAR = 1 << 62  # wake sentinel for cells that are not idle

if _np is not None:
    _WRAP1 = _np.frompyfunc(lambda m: (m,), 1, 1)  # message -> (message,)
else:  # pragma: no cover - no-numpy environments never reach the engine
    _WRAP1 = None


def soa_engaged(model: ChannelModel, config: ExecutionConfig) -> bool:
    """Whether :func:`repro.sim.lockstep.run_trials_lockstep` will execute
    this cell through the SoA engine (vs the per-trial fallback driver).

    The SoA path engages only where it is provably byte-identical and
    actually vectorizable: the numpy backend requested and importable, a
    shared count-based stateless channel (stateful channels consume
    randomness per reception), and no per-slot observation hooks.

    This predicate is the *static* core.  The dispatch in
    :func:`repro.sim.lockstep.run_trials_lockstep` additionally engages
    two cases it cannot see statically — per-seed ``LossyModel``
    factories over a shared stateless inner, and observer factories
    whose every product is ``batch_capable`` — by probing the
    materialized per-seed products; the decision either way is recorded
    in ``SimResult.soa_reason``.
    """
    return (
        _np is not None
        and config.resolution == "numpy"
        and model.supports_count
        and not model.stateful
        and config.model_factory is None
        and config.observer_factory is None
        and not config.record_trace
        # Churn and jamming fall back to the per-trial driver; burst
        # loss does NOT disqualify — a uniform Gilbert-Elliott wrap of
        # a shared stateless count model runs on the vectorized
        # drop-mask path (see _classify_lossy).
        and not config.churn
        and not config.jam
    )


def _cell(value):
    """Box ``value`` in a 0-d object array so broadcast-assignment stores
    the object itself (a bare tuple would be unpacked elementwise)."""
    box = _np.empty((), dtype=object)
    box[()] = value
    return box


def _transplant_rng(rng: random.Random):
    """Clone a CPython ``Random``'s MT19937 state into a
    ``numpy.random.RandomState`` whose ``random_sample`` emits the exact
    double stream the source's ``random()`` would (both are
    genrand_res53 over the same generator)."""
    _, internal, _ = rng.getstate()
    rs = _np.random.RandomState()
    rs.set_state((
        "MT19937",
        _np.asarray(internal[:624], dtype=_np.uint32),
        int(internal[624]),
    ))
    return rs


def _store_rng(rng: random.Random, rs) -> None:
    """Write a consumed ``RandomState`` back into the CPython ``Random``
    it was transplanted from, so post-run draws continue the stream at
    the serial position (the trailing-draw identity the property suite
    pins)."""
    state = rs.get_state()
    keys, pos = state[1], state[2]
    rng.setstate((3, tuple(int(x) for x in keys) + (int(pos),), None))


def _stock_spec(model: ChannelModel):
    """``(k0_cell, one_mode, many_mode, until_rule)`` for the five paper
    models: the zero-count feedback plus how counts of 1 / >= 2 classify.

    Modes: ``("obj", cell)`` — a fixed sentinel; ``"first"`` — the lowest
    transmitting neighbor's message; ``"first_tuple"`` — that message
    wrapped in a 1-tuple (LOCAL); ``"needs"`` — the full ordered message
    list (LOCAL under contention).  ``until_rule`` names which counts
    *can* carry a message for ``ListenUntil`` early exit ("eq1"/"ge1"/
    "never"); candidate cells are still re-checked per element with
    :func:`is_message` + accept, so a ``Send(None)`` cannot fake a match.

    Keyed on exact type: a subclass overriding resolution semantics
    falls back to the generic ``resolve_count_array`` path.
    """
    tp = type(model)
    if tp is type(NO_CD):
        return (_cell(SILENCE), "first", ("obj", _cell(SILENCE)), "eq1")
    if tp is type(CD):
        return (_cell(SILENCE), "first", ("obj", _cell(NOISE)), "eq1")
    if tp is type(CD_STAR):
        return (_cell(SILENCE), "first", "first", "ge1")
    if tp is type(BEEPING):
        beep = ("obj", _cell(BEEP))
        return (_cell(SILENCE), beep, beep, "never")
    if tp is type(LOCAL):
        return (_cell(()), "first_tuple", "needs", "ge1")
    return None


def _cell_messages(mask_words, msg_row) -> List[Any]:
    """Materialize one cell's transmitting-neighbor messages, lowest
    sender index first — the exact order of the backends'
    ``_mask_messages``."""
    messages = []
    for wi, word in enumerate(mask_words.tolist()):
        base = wi << 6
        while word:
            low = word & -word
            messages.append(msg_row[base + low.bit_length() - 1])
            word ^= low
    return messages


class _RowMap:
    """Dict-shaped view of one trial's message row for
    ``ChannelModel.resolve_count_array`` (which looks up
    ``transmitting[vertex]`` for clean receptions only)."""

    __slots__ = ("row",)

    def __init__(self, row) -> None:
        self.row = row

    def __getitem__(self, v):
        return self.row[v]


class _SoAEngine:
    """The batched executor.  Mirrors the serial engine's semantics state
    for state; any divergence is a bug the differential suite catches."""

    def __init__(
        self,
        graph: Graph,
        model: ChannelModel,
        protocol_factory: ProtocolFactory,
        seeds: Sequence[int],
        *,
        knowledge: Knowledge,
        uids: Sequence[int],
        inputs: Dict[int, Dict[str, Any]],
        time_limit: int,
        meter_energy: bool,
        stepping: str,
        backend,
        trial_models: Optional[Sequence[Any]] = None,
        trial_observers: Optional[Sequence[Sequence[Any]]] = None,
    ) -> None:
        np = _np
        T = len(seeds)
        N = graph.n
        self.T = T
        self.N = N
        self.graph = graph
        if trial_models is not None:
            # Lossy batch: per-trial LossyModel wrappers over one shared
            # stateless inner (the dispatch validated this).  The wrapper
            # supplies full_duplex/name; classification runs under the
            # *inner* model's spec on post-drop counts.
            model = trial_models[0]
        self.model = model
        self.seeds = list(seeds)
        self.time_limit = time_limit
        self.meter = meter_energy
        self.full_duplex = model.full_duplex
        self.backend = backend
        self._resolve = backend.trial_matrix_resolver()
        self.lossy_models = (
            list(trial_models) if trial_models is not None else None
        )
        if self.lossy_models is not None:
            first = self.lossy_models[0]
            inner = first.inner
            self.inner = inner
            self.loss_rates = [float(m.loss_rate) for m in self.lossy_models]
            self._lossy_rs = [
                _transplant_rng(m._rng) for m in self.lossy_models
            ]
            if type(first) is GilbertElliottModel:
                # Bursty-loss batch (uniform params, validated by the
                # dispatch): the chain state/slot live here as plain
                # lists and advance lazily per trial in _classify_lossy,
                # consuming transition draws from the same transplanted
                # stream as the drop draws — the serial path-independence
                # contract (see repro.sim.faults).
                self.ge = (
                    first.p_gb, first.p_bg, first.good_rate, first.bad_rate
                )
                self.ge_state = [m._state for m in self.lossy_models]
                self.ge_slot = [m._slot for m in self.lossy_models]
            else:
                self.ge = None
            # Post-drop firsts are computed inside _classify_lossy; the
            # whole-matrix pre-drop firsts would name dropped senders.
            self.needs_first = None
            self.spec = _stock_spec(inner)
        else:
            self.inner = None
            self.ge = None
            self.needs_first = model.needs_first_message
            self.spec = _stock_spec(model)
        self.until_rule = self.spec[3] if self.spec is not None else None
        self.observers = (
            [tuple(obs) for obs in trial_observers]
            if trial_observers is not None else None
        )
        if self.observers is not None:
            for obs_row in self.observers:
                for observer in obs_row:
                    observer.on_run_start(N)

        self.st = np.zeros((T, N), dtype=np.int8)
        self.rem = np.zeros((T, N), dtype=np.int64)
        self.wake = np.full((T, N), _FAR, dtype=np.int64)
        self.run_start = np.zeros((T, N), dtype=np.int64)
        self.steps_next = np.full((T, N), -1, dtype=np.int64)
        self.msg = np.empty((T, N), dtype=object)
        self.finish = np.full((T, N), -1, dtype=np.int64)
        self.e_send = np.zeros((T, N), dtype=np.int64)
        self.e_listen = np.zeros((T, N), dtype=np.int64)
        self.e_duplex = np.zeros((T, N), dtype=np.int64)
        self.e_last = np.full((T, N), -1, dtype=np.int64)
        self.cur = np.zeros(T, dtype=np.int64)
        self.bucket = np.zeros(T, dtype=np.int64)
        self.duration = np.zeros(T, dtype=np.int64)
        self.remaining = np.zeros(T, dtype=np.int64)

        self.gens: List[List[Any]] = [[None] * N for _ in range(T)]
        self.ctxs: List[List[Any]] = [[None] * N for _ in range(T)]
        self.plans: List[List[Any]] = [[None] * N for _ in range(T)]
        self.outputs: List[List[Any]] = [[None] * N for _ in range(T)]
        self.entries = [0] * T
        self.hist: List[Any] = []
        self.hist_base = 0
        # Write-combining buffer for _load: per-cell scalar stores into
        # six arrays are ~1us of numpy dispatch each; batching a whole
        # boundary/wake batch into one fancy-indexed store per array
        # makes run loading O(arrays), not O(cells * arrays).
        self._pend: List[List[Any]] = [[], [], [], [], [], [], []]

        slot_stepping = stepping == "slot"
        for t, seed in enumerate(self.seeds):
            master = random.Random(seed)
            ctxs_row = self.ctxs[t]
            gens_row = self.gens[t]
            outputs_row = self.outputs[t]
            remaining_t = 0
            for v in range(N):
                ctx = NodeCtx(
                    index=v,
                    uid=uids[v],
                    knowledge=knowledge,
                    rng=random.Random(master.getrandbits(64)),
                    inputs=dict(inputs.get(v, ())),
                )
                ctxs_row[v] = ctx
                gen = protocol_factory(ctx)
                if slot_stepping:
                    gen = expand_plans(gen, ctx.rng)
                gens_row[v] = gen
                self.entries[t] += 1
                try:
                    action = next(gen)
                except StopIteration as stop:
                    outputs_row[v] = stop.value
                    continue
                remaining_t += 1
                self._load(t, v, action, 0, 0)
            self.remaining[t] = remaining_t
        self._flush()

    # --- per-node boundary machinery (the non-vectorizable states) -----

    def _load(self, t: int, v: int, action, base_slot: int,
              base_round: int) -> None:
        """Classify an emitted action into array state: start plans
        (consuming their rng at exactly the serial draw point), compile
        the current run via :func:`run_descriptor`, or record a
        single-slot generator-path run.  Array stores are buffered —
        callers flush via :meth:`_flush` before any array is re-read."""
        plans_row = self.plans[t]
        pend = self._pend
        while True:
            cls = action.__class__
            if cls is Send:
                kind = RUN_SEND
            elif cls is Listen:
                kind = RUN_LISTEN
            elif cls is Idle:
                pend[0].append(t)
                pend[1].append(v)
                pend[2].append(_IDLE)
                pend[3].append(1)
                pend[4].append(base_slot + action.duration)
                pend[5].append(base_round)
                pend[6].append(-1)
                return
            elif cls is SendListen:
                if not self.full_duplex:
                    raise ProtocolError(
                        f"SendListen is illegal in the {self.model.name} model"
                    )
                kind = RUN_DUPLEX
            elif isinstance(action, Plan):
                plans_row[v], action = start_plan(action, self.ctxs[t][v].rng)
                continue
            elif isinstance(action, Idle):
                pend[0].append(t)
                pend[1].append(v)
                pend[2].append(_IDLE)
                pend[3].append(1)
                pend[4].append(base_slot + action.duration)
                pend[5].append(base_round)
                pend[6].append(-1)
                return
            elif isinstance(action, Send):
                kind = RUN_SEND
            elif isinstance(action, Listen):
                kind = RUN_LISTEN
            elif isinstance(action, SendListen):
                if not self.full_duplex:
                    raise ProtocolError(
                        f"SendListen is illegal in the {self.model.name} model"
                    )
                kind = RUN_DUPLEX
            else:
                raise ProtocolError(f"protocol yielded non-action {action!r}")
            break
        count = 1
        snext = -1
        ps = plans_row[v]
        desc = run_descriptor(ps, action) if ps is not None else None
        if desc is not None:
            kind, count, message, snext = desc
            if kind == RUN_SEND or kind == RUN_DUPLEX:
                self.msg[t, v] = message
            code = (
                _SEND if kind == RUN_SEND
                else _LISTEN if kind == RUN_LISTEN
                else _UNTIL if kind == RUN_UNTIL
                else _DUPLEX
            )
            snext = -1 if kind == RUN_UNTIL else snext
        else:
            if ps is not None:
                snext = -2  # no compiled run: per-slot plan_feedback
            if kind != RUN_LISTEN:
                self.msg[t, v] = action.message
            code = (
                _SEND if kind == RUN_SEND
                else _LISTEN if kind == RUN_LISTEN
                else _DUPLEX
            )
        pend[0].append(t)
        pend[1].append(v)
        pend[2].append(code)
        pend[3].append(count)
        pend[4].append(_FAR)
        pend[5].append(base_round)
        pend[6].append(snext)

    def _flush(self) -> None:
        """Commit buffered :meth:`_load` stores: one fancy-indexed
        assignment per state array for the whole batch."""
        pend = self._pend
        ti = pend[0]
        if not ti:
            return
        np = _np
        rows = np.array(ti, dtype=np.intp)
        cols = np.array(pend[1], dtype=np.intp)
        self.st[rows, cols] = np.array(pend[2], dtype=np.int8)
        self.rem[rows, cols] = np.array(pend[3], dtype=np.int64)
        self.wake[rows, cols] = np.array(pend[4], dtype=np.int64)
        self.run_start[rows, cols] = np.array(pend[5], dtype=np.int64)
        self.steps_next[rows, cols] = np.array(pend[6], dtype=np.int64)
        self._pend = [[], [], [], [], [], [], []]

    def _wake(self, t: int, v: int, slot: int, round_idx: int) -> None:
        """Resume a sleeper due at ``slot`` — the engine's wake path:
        plans continue via plan_resume, exhausted plans re-enter the
        generator with their result."""
        ps = self.plans[t][v]
        action = None
        result = None
        if ps is not None:
            action, result = plan_resume(ps)
            if action is None:
                self.plans[t][v] = None
        if action is None:
            ctx = self.ctxs[t][v]
            ctx.time = slot
            self.entries[t] += 1
            try:
                action = self.gens[t][v].send(result)
            except StopIteration as stop:
                self.outputs[t][v] = stop.value
                self.finish[t, v] = slot - 1
                self.remaining[t] -= 1
                if self.duration[t] < slot:
                    self.duration[t] = slot
                self.st[t, v] = _DONE
                self.wake[t, v] = _FAR
                return
        self._load(t, v, action, slot, round_idx)

    def _boundaries(self, boundary, round_idx: int, cur_list) -> None:
        """Advance every cell whose run ended this round: sync the plan
        counters from the arrays, hand the run's feedbacks to the shared
        referee, re-enter generators at plan exhaustion, and load the
        next run."""
        np = _np
        bt, bv = np.nonzero(boundary)
        ts = bt.tolist()
        vs = bv.tolist()
        sts = self.st[bt, bv].tolist()
        rems = self.rem[bt, bv].tolist()
        starts = self.run_start[bt, bv].tolist()
        nexts = self.steps_next[bt, bv].tolist()
        last_fb = self.hist[-1]
        fbs = last_fb[bt, bv].tolist()
        hist = self.hist
        hist_base = self.hist_base
        plans = self.plans
        next_round = round_idx + 1

        # Pre-gather the earlier feedbacks of every multi-slot listen run
        # ending this round, vectorized: one fancy-indexed gather per
        # history row over *all* such cells at once, one bulk tolist(),
        # then a cheap per-cell list slice — instead of a numpy scalar
        # read per (cell, slot) pair.
        prefetch: Dict[int, List[Any]] = {}
        gather_ks = [
            k for k in range(len(ts))
            if (sts[k] == _LISTEN or sts[k] == _DUPLEX)
            and starts[k] < round_idx
        ]
        if gather_ks:
            min_start = min(starts[k] for k in gather_ks)
            base = min_start - hist_base
            gt = bt[gather_ks]
            gv = bv[gather_ks]
            rows = [
                hist[base + i][gt, gv]
                for i in range(round_idx - min_start)
            ]
            per_cell = np.stack(rows, axis=0).T.tolist()
            for j, k in enumerate(gather_ks):
                offset = starts[k] - min_start
                prefetch[k] = (
                    per_cell[j][offset:] if offset else per_cell[j]
                )

        for k in range(len(ts)):
            t = ts[k]
            v = vs[k]
            st_cell = sts[k]
            slot = cur_list[t]
            fb_cell = None if st_cell == _SEND else fbs[k]
            ps = plans[t][v]
            action = None
            result = fb_cell
            if ps is not None:
                snext = nexts[k]
                if snext >= 0:  # a run carved out of an OP_STEPS list
                    if st_cell != _SEND:
                        earlier = prefetch.get(k)
                        if earlier:
                            ps[3].extend(earlier)
                    ps[1] = snext
                    action, result = plan_feedback(ps, fb_cell)
                elif snext == -1:
                    op = ps[0]
                    if op == OP_SEND:
                        ps[1] = 1
                        action, result = plan_feedback(ps, None)
                    elif op == OP_LISTEN or op == OP_DUPLEX:
                        earlier = prefetch.get(k)
                        if earlier:
                            ps[3].extend(earlier)
                        ps[1] = 1
                        action, result = plan_feedback(ps, fb_cell)
                    elif op == OP_UNTIL:
                        # rem still holds the slots left including this
                        # one — what plan_feedback expects in ps[1] both
                        # at an early match and at exhaustion.
                        ps[1] = rems[k]
                        action, result = plan_feedback(ps, fb_cell)
                    else:
                        action, result = plan_feedback(ps, fb_cell)
                else:  # snext == -2: descriptor-less, generic referee
                    action, result = plan_feedback(ps, fb_cell)
                if action is not None:
                    self._load(t, v, action, slot + 1, next_round)
                    continue
                plans[t][v] = None
            ctx = self.ctxs[t][v]
            ctx.time = slot + 1
            self.entries[t] += 1
            try:
                action = self.gens[t][v].send(result)
            except StopIteration as stop:
                self.outputs[t][v] = stop.value
                self.finish[t, v] = slot
                self.remaining[t] -= 1
                self.st[t, v] = _DONE
                self.wake[t, v] = _FAR
                continue
            self._load(t, v, action, slot + 1, next_round)
        self._flush()

    # --- vectorized round machinery ------------------------------------

    def _stage(self, round_idx: int):
        """Bring every unfinished trial to its next active slot (firing
        due wake-ups), mirroring the engine's bucket/heap scheduling.
        Returns the boolean [T] mask of staged trials."""
        np = _np
        st = self.st
        wake = self.wake
        staged = np.zeros(self.T, dtype=bool)
        while True:
            alive = self.remaining > 0
            todo = alive & ~staged
            if not todo.any():
                return staged
            has_active = ((st >= _SEND) & (st <= _DUPLEX)).any(axis=1)
            cand = np.where(has_active, self.bucket, wake.min(axis=1))
            over = todo & (cand > self.time_limit)
            if over.any():
                t = int(np.nonzero(over)[0][0])
                raise SimulationTimeout(
                    f"simulation exceeded {self.time_limit} slots "
                    f"({int(self.remaining[t])} protocols still running, "
                    f"seed {self.seeds[t]})"
                )
            self.cur[todo] = cand[todo]
            due = (st == _IDLE) & (wake == cand[:, None]) & todo[:, None]
            if due.any():
                dt, dv = np.nonzero(due)
                cand_list = cand.tolist()
                for t, v in zip(dt.tolist(), dv.tolist()):
                    self._wake(t, v, cand_list[t], round_idx)
                self._flush()
            now_active = ((st >= _SEND) & (st <= _DUPLEX)).any(axis=1)
            staged |= todo & now_active
            # Trials still all-idle re-lap onto their (strictly later)
            # next wake; finished trials drop out via `alive`.

    def run(self) -> None:
        np = _np
        st = self.st
        rem = self.rem
        round_idx = 0
        while True:
            staged = self._stage(round_idx)
            if not staged.any():
                break
            run_col = staged[:, None]
            sending = ((st == _SEND) | (st == _DUPLEX)) & run_col
            receiving = (
                (st == _LISTEN) | (st == _UNTIL) | (st == _DUPLEX)
            ) & run_col
            counts, masked = self._resolve(sending)
            if self.observers is not None:
                self._observe(staged, sending, receiving, counts)
            if self.lossy_models is not None:
                # Erasure channel: draw each staged trial's Bernoulli
                # mask in serial order, classify post-drop.
                fb, match_counts = self._classify_lossy(
                    staged, sending, receiving, masked
                )
            else:
                firsts = None
                if self.needs_first == "one":
                    firsts = self.backend.first_transmitter_matrix(
                        masked, receiving & (counts == 1)
                    )
                elif self.needs_first == "any":
                    firsts = self.backend.first_transmitter_matrix(
                        masked, receiving & (counts > 0)
                    )
                fb = self._classify(counts, receiving, firsts, masked)
                match_counts = counts
            self.hist.append(fb)

            cur = self.cur
            active = sending | receiving
            if self.meter:
                self.e_send[sending & (st == _SEND)] += 1
                self.e_listen[
                    receiving & ((st == _LISTEN) | (st == _UNTIL))
                ] += 1
                self.e_duplex[sending & (st == _DUPLEX)] += 1
                np.copyto(self.e_last, cur[:, None], where=active)
            np.maximum(
                self.duration, cur + 1, out=self.duration, where=staged
            )
            self.bucket[staged] = cur[staged] + 1

            boundary = active & (rem == 1)
            until_cells = (st == _UNTIL) & run_col
            if until_cells.any():
                matched = self._until_matches(until_cells, match_counts, fb)
                if matched is not None:
                    boundary = boundary | matched
            rem[active & ~boundary] -= 1
            if boundary.any():
                self._boundaries(boundary, round_idx, cur.tolist())
            round_idx += 1
            if (round_idx & 63) == 0:
                self._truncate_hist(round_idx)
        if self.lossy_models is not None:
            # Leave each trial's channel rng exactly where the serial
            # oracle would: the next draw continues the same stream.
            for m, rs in zip(self.lossy_models, self._lossy_rs):
                _store_rng(m._rng, rs)
            if self.ge is not None:
                # Persist the chain position too (note the *slot* is
                # the last drop slot, not the last processed slot — an
                # engine-dependent detail the lazy catch-up makes
                # observationally irrelevant).
                for i, m in enumerate(self.lossy_models):
                    m._state = self.ge_state[i]
                    m._slot = self.ge_slot[i]

    def _until_matches(self, until_cells, counts, fb):
        """Boolean [T, N] mask of ListenUntil cells whose current
        feedback ends their run early, or None.  The per-model count rule
        prunes candidates vectorized; the survivors are re-checked per
        element (is_message + accept), exactly the referee's condition."""
        np = _np
        rule = self.until_rule
        if rule == "eq1":
            cand = until_cells & (counts == 1)
        elif rule == "ge1":
            cand = until_cells & (counts >= 1)
        elif rule == "never":
            return None
        else:  # unknown model: inspect every until feedback
            cand = until_cells
        if not cand.any():
            return None
        matched = np.zeros(cand.shape, dtype=bool)
        ts, vs = np.nonzero(cand)
        vals = fb[ts, vs].tolist()
        plans = self.plans
        any_hit = False
        for t, v, x in zip(ts.tolist(), vs.tolist(), vals):
            if is_message(x):
                accept = plans[t][v][2]
                if accept is None or accept(x):
                    matched[t, v] = True
                    any_hit = True
        return matched if any_hit else None

    def _observe(self, staged, sending, receiving, counts) -> None:
        """Fire each staged trial's batch-capable observers for this
        round — one :meth:`SlotObserver.observe_matrix` call per observer
        per trial, at the trial's own slot number, with the *pre-drop*
        count row (on-the-air semantics, matching ``on_slot``)."""
        np = _np
        cur = self.cur
        observers = self.observers
        for t in np.nonzero(staged)[0].tolist():
            obs_row = observers[t]
            if not obs_row:
                continue
            slot = int(cur[t])
            srow = sending[t]
            rrow = receiving[t]
            crow = counts[t]
            for observer in obs_row:
                observer.observe_matrix(slot, srow, rrow, crow)

    # --- feedback classification ---------------------------------------

    def _classify_lossy(self, staged, sending, receiving, masked):
        """Erasure-channel classification: returns the ``[T, N]``
        feedback matrix plus the post-drop count matrix (the counts
        ``ListenUntil`` early exit must match on).

        Per staged trial, in trial order: enumerate this slot's
        (receiver, sender) reception pairs in serial draw order —
        receivers ascending, senders ascending within each receiver —
        draw the whole slot's Bernoulli mask from the trial's
        transplanted rng in one ``random_sample`` call, then classify
        the surviving counts and first-surviving senders under the
        *inner* model's stock spec.  Pairs come from extracting just the
        transmitting senders' bit columns out of the reception bitmask
        (columns ascending, so row-major ``nonzero`` order *is* the
        serial order) — never from unpacking the full ``N``-bit mask
        width, which profiles as the round's dominant cost on dense
        cliques.  Zero-pair cells draw nothing, exactly like the serial
        ``LossyModel.resolve([])``.
        """
        np = _np
        spec = self.spec
        fb = np.empty((self.T, self.N), dtype=object)
        if spec is not None:
            fb[...] = spec[0]
        post = np.zeros((self.T, self.N), dtype=np.int64)
        msg = self.msg
        inner = self.inner
        rates = self.loss_rates
        rss = self._lossy_rs
        ge = self.ge
        if ge is not None:
            p_gb, p_bg, good_rate, bad_rate = ge
            ge_state = self.ge_state
            ge_slot = self.ge_slot
            cur = self.cur
        one = np.uint64(1)
        for t in np.nonzero(staged)[0].tolist():
            rows = np.nonzero(receiving[t])[0]
            n_rows = rows.size
            if not n_rows:
                continue
            send_idx = np.nonzero(sending[t])[0]
            if send_idx.size:
                sub = masked[t][rows]
                bits = (
                    sub[:, send_idx >> 6]
                    >> (send_idx & 63).astype(np.uint64)
                ) & one
                pair_row, pair_col = np.nonzero(bits)
            else:
                pair_row = pair_col = send_idx
            if pair_row.size:
                if ge is not None:
                    # Lazy Gilbert-Elliott catch-up: exactly one
                    # transition draw per simulated slot since the chain
                    # was last advanced, consumed *before* this slot's
                    # drop draws — the same absolute stream positions as
                    # the serial begin_slot/resolve pair.
                    slot = int(cur[t])
                    state = ge_state[t]
                    steps = slot - ge_slot[t]
                    if steps > 0:
                        for r in rss[t].random_sample(steps).tolist():
                            if state == 0:
                                if r < p_gb:
                                    state = 1
                            elif r < p_bg:
                                state = 0
                        ge_state[t] = state
                        ge_slot[t] = slot
                    rate = bad_rate if state else good_rate
                else:
                    rate = rates[t]
                draws = rss[t].random_sample(pair_row.size)
                keep = draws >= rate
                kept_rows = pair_row[keep]
                kept_senders = send_idx[pair_col[keep]]
            else:
                kept_rows = pair_row
                kept_senders = pair_row
            if spec is not None and not kept_rows.size:
                continue  # every cell keeps k0 feedback, zero count
            counts_row = np.bincount(kept_rows, minlength=n_rows)
            post[t, rows] = counts_row
            msg_row = msg[t]
            if spec is None:
                # Non-stock inner: materialize each cell's surviving
                # messages (already in lowest-sender-first order) and
                # delegate, exactly the serial wrapper's call.
                lists: List[List[Any]] = [[] for _ in range(n_rows)]
                for r, s in zip(kept_rows.tolist(), kept_senders.tolist()):
                    lists[r].append(msg_row[s])
                resolve = inner.resolve
                cells = np.empty(n_rows, dtype=object)
                for i in range(n_rows):
                    cells[i] = resolve(lists[i])
                fb[t, rows] = cells
                continue
            _, one_mode, many_mode, _ = spec
            # First surviving sender per cell: pairs are in (receiver,
            # sender) ascending order and np.unique returns the first
            # occurrence index, so this is the lowest survivor.
            uniq, first_idx = np.unique(kept_rows, return_index=True)
            first_sender = np.zeros(n_rows, dtype=np.int64)
            first_sender[uniq] = kept_senders[first_idx]
            ones = np.nonzero(counts_row == 1)[0]
            if ones.size:
                if one_mode.__class__ is tuple:
                    fb[t, rows[ones]] = one_mode[1]
                elif one_mode == "first":
                    fb[t, rows[ones]] = msg_row[first_sender[ones]]
                else:  # "first_tuple" (LOCAL)
                    fb[t, rows[ones]] = _WRAP1(msg_row[first_sender[ones]])
            manys = np.nonzero(counts_row >= 2)[0]
            if manys.size:
                if many_mode.__class__ is tuple:
                    fb[t, rows[manys]] = many_mode[1]
                elif many_mode == "first":
                    fb[t, rows[manys]] = msg_row[first_sender[manys]]
                else:  # "needs": full surviving list (LOCAL contention)
                    many_set = set(manys.tolist())
                    lists = {r: [] for r in many_set}
                    for r, s in zip(
                        kept_rows.tolist(), kept_senders.tolist()
                    ):
                        if r in many_set:
                            lists[r].append(msg_row[s])
                    resolve = inner.resolve
                    for r in manys.tolist():
                        fb[t, rows[r]] = resolve(lists[r])
        return fb, post

    def _classify(self, counts, receiving, firsts, masked):
        """[T, N] feedback object matrix for this round's receivers."""
        np = _np
        spec = self.spec
        if spec is None:
            return self._classify_generic(counts, receiving, firsts, masked)
        k0, one_mode, many_mode, _ = spec
        fb = np.empty(counts.shape, dtype=object)
        fb[...] = k0
        one = receiving & (counts == 1)
        if one.any():
            self._apply_mode(fb, one, one_mode, firsts, masked)
        many = receiving & (counts >= 2)
        if many.any():
            self._apply_mode(fb, many, many_mode, firsts, masked)
        return fb

    def _apply_mode(self, fb, mask, mode, firsts, masked):
        np = _np
        if mode.__class__ is tuple:  # ("obj", cell): a fixed sentinel
            fb[mask] = mode[1]
            return
        ts, vs = np.nonzero(mask)
        if mode == "first":
            fb[ts, vs] = self.msg[ts, firsts[ts, vs]]
        elif mode == "first_tuple":
            fb[ts, vs] = _WRAP1(self.msg[ts, firsts[ts, vs]])
        else:  # "needs": full ordered message list (LOCAL contention)
            msg = self.msg
            resolve = self.model.resolve
            for t, v in zip(ts.tolist(), vs.tolist()):
                fb[t, v] = resolve(_cell_messages(masked[t, v], msg[t]))

    def _classify_generic(self, counts, receiving, firsts, masked):
        """Correctness path for count-based models without a stock spec:
        one ``resolve_count_array`` call per trial per round."""
        np = _np
        fb = np.empty(counts.shape, dtype=object)
        model = self.model
        resolve = model.resolve
        msg = self.msg
        for t in range(self.T):
            row = np.nonzero(receiving[t])[0]
            if not row.size:
                continue
            out, needs = model.resolve_count_array(
                counts[t, row],
                None if firsts is None else firsts[t, row],
                _RowMap(msg[t]),
            )
            if needs:
                for i in needs:
                    out[i] = resolve(
                        _cell_messages(masked[t, row[i]], msg[t])
                    )
            cells = np.empty(len(out), dtype=object)
            for i, value in enumerate(out):
                cells[i] = value
            fb[t, row] = cells
        return fb

    def _truncate_hist(self, next_round: int) -> None:
        """Drop history rounds no in-flight collecting run still needs."""
        collecting = (self.st == _LISTEN) | (self.st == _DUPLEX)
        if collecting.any():
            keep_from = int(self.run_start[collecting].min())
        else:
            keep_from = next_round
        drop = keep_from - self.hist_base
        if drop > 0:
            del self.hist[:drop]
            self.hist_base = keep_from

    # --- results --------------------------------------------------------

    def results(self) -> List[SimResult]:
        N = self.N
        finish = self.finish.tolist()
        durations = self.duration.tolist()
        entries = self.entries
        if self.meter:
            sends = self.e_send.tolist()
            listens = self.e_listen.tolist()
            duplex = self.e_duplex.tolist()
            last = self.e_last.tolist()
        out = []
        for t, seed in enumerate(self.seeds):
            if self.meter:
                srow, lrow, drow, arow = (
                    sends[t], listens[t], duplex[t], last[t]
                )
                energy = [
                    EnergyReport(
                        sends=srow[v],
                        listens=lrow[v],
                        duplex=drow[v],
                        total=srow[v] + lrow[v] + drow[v],
                        last_active_slot=arow[v],
                    )
                    for v in range(N)
                ]
            else:
                energy = [
                    EnergyReport(
                        sends=0, listens=0, duplex=0, total=0,
                        last_active_slot=-1,
                    )
                    for _ in range(N)
                ]
            out.append(SimResult(
                outputs=self.outputs[t],
                energy=energy,
                finish_slot=finish[t],
                duration=durations[t],
                trace=None,
                seed=seed,
                gen_entries=entries[t],
            ))
        return out


def run_trials_soa(
    graph: Graph,
    model: ChannelModel,
    protocol_factory: ProtocolFactory,
    seeds: Sequence[int],
    *,
    knowledge: Knowledge,
    uids: Sequence[int],
    inputs: Dict[int, Dict[str, Any]],
    time_limit: int,
    meter_energy: bool,
    stepping: str,
    backend,
    trial_models: Optional[Sequence[Any]] = None,
    trial_observers: Optional[Sequence[Sequence[Any]]] = None,
) -> List[SimResult]:
    """Run one cell's seeds through the SoA batched executor.

    Called by :func:`repro.sim.lockstep.run_trials_lockstep` after its
    shared validation and eligibility probe; ``backend`` is the
    already-constructed :class:`~repro.sim.resolution.NumpyBackend`.
    ``trial_models`` (when given) are the materialized per-seed
    ``model_factory`` products — uniform ``LossyModel`` wrappers over one
    shared stateless inner, run via vectorized drop masks.
    ``trial_observers`` (when given) are the materialized per-seed
    observer tuples, every one batch-capable, fired through
    ``observe_matrix``.  Results are byte-identical to the serial
    engine, in ``seeds`` order.
    """
    engine = _SoAEngine(
        graph,
        model,
        protocol_factory,
        seeds,
        knowledge=knowledge,
        uids=uids,
        inputs=inputs,
        time_limit=time_limit,
        meter_energy=meter_energy,
        stepping=stepping,
        backend=backend,
        trial_models=trial_models,
        trial_observers=trial_observers,
    )
    engine.run()
    return engine.results()
