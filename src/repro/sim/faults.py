"""Composable fault injection: churn, jamming, and bursty loss.

The paper's protocols are analyzed on clean, static channels; this
module makes network adversity a first-class, reproducible workload.
Three fault families, each deterministic per trial seed and
sharding-independent (a fault decision is a pure function of the spec,
the trial seed, and the slot — never of which worker or block ran it):

* **Node churn** — :class:`CrashSchedule` and its seeded policies
  (:class:`PeriodicChurn`, :class:`RandomChurn`) mark per-node down
  intervals.  A crash is a *radio outage*: while down, a node neither
  transmits nor hears (its transmissions are removed from the air, its
  listens hear the model's empty-reception value — see
  :func:`down_feedback`), but its plan
  keeps stepping and its energy meters keep charging — the device keeps
  attempting operations, the radio just fails.  Recovery therefore
  re-enters the plan at a well-defined resume point (wherever the plan
  is at the recovery slot), identically in every engine.

* **Adversarial jamming** — :class:`Jammer` policies
  (:class:`PeriodicJammer`, :class:`RandomJammer`,
  :class:`ReactiveJammer`) decide per slot whether the adversary floods
  the spectrum.  :class:`JammedModel` applies the decision in
  ``ChannelModel``-composition form, so it stacks on all paper models:
  on a jammed slot every listener gets the wrapped model's collision
  feedback (see :data:`JAM_FEEDBACK`), and the inner model's rng is
  *not* consumed (the jammer drowns the channel before reception).

* **Correlated (bursty) loss** — :class:`GilbertElliottModel` extends
  :class:`~repro.sim.models.LossyModel` with the classic two-state
  Markov chain: a shared channel fade alternates between a *good* state
  (loss ``good_rate``, default 0.0) and a *bad* state (loss
  ``bad_rate``, default 1.0), with per-slot transition probabilities
  ``p_gb`` / ``p_bg``.  This models burst loss at the trial level (one
  fade per channel per slot); per-edge / per-receiver chains are the
  named next extension (they need receiver identity threaded through
  ``resolve``, which the resolution backends do not expose today).

Slot context reaches the models through the
:meth:`~repro.sim.models.ChannelModel.begin_slot` hook (models with
``slot_aware = True``).  Engines may skip slots nothing happens in, so
slot-aware state must be *path-independent*: ``GilbertElliottModel``
advances its chain lazily — catching up from the last seen slot to the
current one always consumes exactly ``(current - last)`` rng draws — so
every drop draw at slot ``t`` sits at the same absolute rng-stream
position (after exactly ``t + 1`` transition draws plus all earlier
drop draws) no matter which engine ran the trial.  That invariant is
what keeps the reference simulator, the event-heap engine, the
lock-step driver, and the trial-SoA engine byte-identical.

Campaign/CLI entry: the ``churn``, ``jam``, and ``burst_loss``
:class:`~repro.sim.config.ExecutionConfig` fields hold spec strings
(grammar below), parsed by :func:`parse_churn_spec` /
:func:`parse_jam_spec` / :func:`parse_burst_loss_spec` and materialized
per trial by :meth:`FaultPlan.for_trial`.

Spec grammar (``key=value`` lists; numbers validated on config
construction, so an invalid spec never reaches an engine loop)::

    churn      = "periodic:period=P,down=D[,stagger=S]"
               | "random:p=R,period=P,down=D"
    jam        = "periodic:period=P[,offset=K]"
               | "random:rate=R"
               | "reactive[:min=K]"
    burst_loss = "p_gb=R,p_bg=R[,good=R][,bad=R]"
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.sim.feedback import BEEP, NOISE, SILENCE
from repro.sim.models import ChannelModel, LossyModel

__all__ = [
    "CrashSchedule",
    "PeriodicChurn",
    "RandomChurn",
    "Jammer",
    "PeriodicJammer",
    "RandomJammer",
    "ReactiveJammer",
    "JammedModel",
    "GilbertElliottModel",
    "JAM_FEEDBACK",
    "jam_feedback",
    "down_feedback",
    "FaultPlan",
    "parse_fault_specs",
    "parse_churn_spec",
    "parse_jam_spec",
    "parse_burst_loss_spec",
    "validate_fault_spec",
]


# --- seeded-process helpers ------------------------------------------------

# Large odd multipliers decorrelate the (seed, node, epoch) and
# (seed, slot) key spaces fed to random.Random below.  int seeding is
# platform- and version-stable (init_by_array), so fault decisions are
# reproducible across hosts — a requirement for resumable campaigns.
_MIX_A = 1_000_003
_MIX_B = 1_000_033
_SLOT_MIX = 1_000_000_007


def _mix(seed: int, a: int, b: int) -> int:
    return (seed * _MIX_A + a) * _MIX_B + b


# --- churn -----------------------------------------------------------------


class CrashSchedule:
    """Per-node down intervals, given explicitly.

    ``intervals`` maps vertex -> iterable of half-open ``(start, stop)``
    slot ranges during which that node's radio is down.  Policies that
    *draw* schedules from a seeded process subclass this and override
    :meth:`down`.
    """

    __slots__ = ("intervals",)

    def __init__(
        self,
        intervals: Optional[Mapping[int, Iterable[Tuple[int, int]]]] = None,
    ) -> None:
        self.intervals: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        for v, spans in (intervals or {}).items():
            spans = tuple(sorted((int(a), int(b)) for a, b in spans))
            for a, b in spans:
                if a < 0 or b < a:
                    raise ValueError(
                        f"crash interval ({a}, {b}) for node {v} is not a "
                        f"half-open slot range with 0 <= start <= stop"
                    )
            self.intervals[int(v)] = spans

    def down(self, v: int, slot: int) -> bool:
        """True when node ``v``'s radio is down during ``slot``."""
        spans = self.intervals.get(v)
        if not spans:
            return False
        for a, b in spans:
            if a > slot:
                return False
            if slot < b:
                return True
        return False


class PeriodicChurn(CrashSchedule):
    """Every node is down for the first ``down`` slots of each
    ``period``-slot cycle; ``stagger`` shifts node ``v``'s cycle by
    ``v * stagger`` slots so outages roll across the network instead of
    freezing it wholesale.  Deterministic — no seed involved."""

    __slots__ = ("period", "down_len", "stagger")

    def __init__(self, period: int, down: int, stagger: int = 0) -> None:
        super().__init__()
        if period < 1:
            raise ValueError(f"churn period must be >= 1, got {period}")
        if not 0 <= down <= period:
            raise ValueError(
                f"churn down length must be in [0, period], got {down}"
            )
        if stagger < 0:
            raise ValueError(f"churn stagger must be >= 0, got {stagger}")
        self.period = period
        self.down_len = down
        self.stagger = stagger

    def down(self, v: int, slot: int) -> bool:
        return (slot - v * self.stagger) % self.period < self.down_len


class RandomChurn(CrashSchedule):
    """Seeded crash/recovery process: time is cut into ``period``-slot
    epochs; in each epoch each node independently crashes with
    probability ``p`` for ``down`` slots starting at a uniform offset.

    Every decision comes from ``random.Random(_mix(seed, v, epoch))`` —
    a pure function of (seed, node, epoch) — so queries in any order
    (serial, sharded, engines skipping slots) see the same schedule.
    """

    __slots__ = ("p", "period", "down_len", "seed", "_cache")

    def __init__(self, p: float, period: int, down: int, seed: int = 0) -> None:
        super().__init__()
        if not 0 <= p <= 1:
            raise ValueError(f"churn probability must be in [0,1], got {p}")
        if period < 1:
            raise ValueError(f"churn period must be >= 1, got {period}")
        if not 0 <= down <= period:
            raise ValueError(
                f"churn down length must be in [0, period], got {down}"
            )
        self.p = p
        self.period = period
        self.down_len = down
        self.seed = seed
        self._cache: Dict[Tuple[int, int], int] = {}

    def _start(self, v: int, epoch: int) -> int:
        """Down-interval start offset within the epoch, or -1 (up)."""
        key = (v, epoch)
        cached = self._cache.get(key)
        if cached is None:
            rng = random.Random(_mix(self.seed, v, epoch))
            if rng.random() < self.p:
                cached = rng.randrange(self.period - self.down_len + 1)
            else:
                cached = -1
            self._cache[key] = cached
        return cached

    def down(self, v: int, slot: int) -> bool:
        if not self.down_len:
            return False
        epoch, offset = divmod(slot, self.period)
        start = self._start(v, epoch)
        return start >= 0 and start <= offset < start + self.down_len


# --- jamming ---------------------------------------------------------------


class Jammer:
    """Slot-level adversary policy: :meth:`jams` decides per slot.

    ``n_transmitters`` is the number of on-air transmitters this slot
    (after churn), so reactive policies can key on observed activity.
    Policies must be pure in (slot, n_transmitters) given their
    construction parameters — no cross-slot state — which is what makes
    jam schedules identical across engines and shards.
    """

    __slots__ = ()

    def jams(self, slot: int, n_transmitters: int) -> bool:
        raise NotImplementedError


class PeriodicJammer(Jammer):
    """Jam every slot congruent to ``offset`` modulo ``period``."""

    __slots__ = ("period", "offset")

    def __init__(self, period: int, offset: int = 0) -> None:
        if period < 1:
            raise ValueError(f"jam period must be >= 1, got {period}")
        self.period = period
        self.offset = offset % period

    def jams(self, slot: int, n_transmitters: int) -> bool:
        return slot % self.period == self.offset


class RandomJammer(Jammer):
    """Jam each slot independently with probability ``rate``.

    The decision for slot ``t`` is drawn from a throwaway
    ``random.Random(seed * _SLOT_MIX + t)`` — stateless in the slot, so
    engines that skip empty slots see the same jam schedule as engines
    that process every slot.
    """

    __slots__ = ("rate", "seed")

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0 <= rate <= 1:
            raise ValueError(f"jam rate must be in [0,1], got {rate}")
        self.rate = rate
        self.seed = seed

    def jams(self, slot: int, n_transmitters: int) -> bool:
        if not self.rate:
            return False
        return random.Random(self.seed * _SLOT_MIX + slot).random() < self.rate


class ReactiveJammer(Jammer):
    """Jam exactly the slots with at least ``minimum`` transmitters —
    the classic energy-efficient adversary that only burns power when
    someone is trying to talk."""

    __slots__ = ("minimum",)

    def __init__(self, minimum: int = 1) -> None:
        if minimum < 1:
            raise ValueError(f"reactive jam minimum must be >= 1, got {minimum}")
        self.minimum = minimum

    def jams(self, slot: int, n_transmitters: int) -> bool:
        return n_transmitters >= self.minimum


#: What a listener hears on a jammed slot, per stock model: the model's
#: own collision/noise feedback.  CD-class listeners detect the jammer
#: as noise; No-CD listeners cannot tell jamming from silence (the
#: paper's point about missing collision detection); BEEP listeners
#: hear a beep; CD* collision resolution is drowned (noise, like CD);
#: LOCAL has no native collision feedback, so jamming manifests as
#: NOISE — the one place the adversary adds a symbol the clean model
#: never produces.
JAM_FEEDBACK = {
    "LOCAL": NOISE,
    "CD": NOISE,
    "CD-FD": NOISE,
    "No-CD": SILENCE,
    "No-CD-FD": SILENCE,
    "CD*": NOISE,
    "BEEP": BEEP,
}


def jam_feedback(model: ChannelModel) -> Any:
    """The jammed-slot feedback for ``model`` (wrappers are unwrapped)."""
    inner = model
    while hasattr(inner, "inner"):
        inner = inner.inner
    try:
        return JAM_FEEDBACK[inner.name]
    except KeyError:
        raise ValueError(
            f"no jam feedback defined for channel model {inner.name!r}; "
            f"add it to repro.sim.faults.JAM_FEEDBACK"
        ) from None


def down_feedback(model: ChannelModel) -> Any:
    """What a crashed (down) listener hears: the model's own
    empty-reception value — ``()`` under LOCAL (whose protocols iterate
    feedback tuples), :data:`~repro.sim.feedback.SILENCE` elsewhere.

    Computed as ``resolve([])`` on the unwrapped stock model: stock
    models are stateless, so this consumes no rng and is safe to probe
    once per run.
    """
    inner = model
    while hasattr(inner, "inner"):
        inner = inner.inner
    return inner.resolve([])


class JammedModel(ChannelModel):
    """``ChannelModel`` composition form of a :class:`Jammer`: stacks on
    any model (including :class:`~repro.sim.models.LossyModel` /
    :class:`GilbertElliottModel` wrappings).

    On a jammed slot every reception resolves to the wrapped model's
    collision feedback and the inner model's rng is *not* consumed —
    byte-identically in every engine, because the jam decision is made
    once per slot in :meth:`begin_slot` from (slot, on-air count).
    """

    __slots__ = ("inner", "jammer", "needs_first_message", "_jam_feedback",
                 "_jammed")

    stateful = True
    slot_aware = True

    def __init__(self, inner: ChannelModel, jammer: Jammer) -> None:
        super().__init__(f"jammed({inner.name})", inner.full_duplex)
        self.inner = inner
        self.jammer = jammer
        self.needs_first_message = inner.needs_first_message
        self._jam_feedback = jam_feedback(inner)
        self._jammed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JammedModel({self.inner.name!r}, {type(self.jammer).__name__})"

    def begin_slot(self, slot: int, n_transmitters: int) -> None:
        inner = self.inner
        if inner.slot_aware:
            inner.begin_slot(slot, n_transmitters)
        self._jammed = self.jammer.jams(slot, n_transmitters)

    def resolve(self, transmissions: Sequence[Any]) -> Any:
        if self._jammed:
            return self._jam_feedback
        return self.inner.resolve(transmissions)


# --- correlated (bursty) loss ---------------------------------------------


class GilbertElliottModel(LossyModel):
    """Two-state Markov (Gilbert-Elliott) bursty-loss channel.

    One shared fade per trial: each slot the chain sits in *good*
    (per-transmission loss ``good_rate``) or *bad* (``bad_rate``) and
    transitions with probability ``p_gb`` (good->bad) / ``p_bg``
    (bad->good).  The chain starts good at slot -1 and advances lazily
    in :meth:`begin_slot` — exactly one transition draw per slot of
    simulated time, consumed from the *same* rng as the drop draws, so
    the draw at any point has a fixed absolute stream position
    regardless of which slots an engine actually processed
    (path-independence; see the module docstring).

    The nominal ``loss_rate`` attribute is the stationary loss rate
    ``pi_g * good_rate + pi_b * bad_rate`` — what the chain's empirical
    loss converges to (pinned by a hypothesis property).
    """

    __slots__ = ("p_gb", "p_bg", "good_rate", "bad_rate", "_state", "_slot")

    slot_aware = True

    def __init__(
        self,
        inner: ChannelModel,
        p_gb: float,
        p_bg: float,
        good_rate: float = 0.0,
        bad_rate: float = 1.0,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        for label, value in (
            ("p_gb", p_gb), ("p_bg", p_bg),
            ("good", good_rate), ("bad", bad_rate),
        ):
            if not (
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                and 0 <= value <= 1
            ):
                raise ValueError(
                    f"Gilbert-Elliott rate {label} must be in [0,1], "
                    f"got {value!r}"
                )
        total = p_gb + p_bg
        pi_bad = p_gb / total if total else 0.0
        stationary = (1.0 - pi_bad) * good_rate + pi_bad * bad_rate
        super().__init__(inner, stationary, seed=seed, rng=rng)
        self.name = f"ge({inner.name},{p_gb},{p_bg},{good_rate},{bad_rate})"
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.good_rate = good_rate
        self.bad_rate = bad_rate
        self._state = 0  # 0 = good, 1 = bad
        self._slot = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GilbertElliottModel({self.inner.name!r}, p_gb={self.p_gb}, "
            f"p_bg={self.p_bg}, good={self.good_rate}, bad={self.bad_rate})"
        )

    def begin_slot(self, slot: int, n_transmitters: int) -> None:
        steps = slot - self._slot
        if steps <= 0:
            return
        state, rng = self._state, self._rng
        p_gb, p_bg = self.p_gb, self.p_bg
        for _ in range(steps):
            # One draw per slot, unconditionally, so the stream position
            # never depends on the state sequence.
            r = rng.random()
            if state == 0:
                if r < p_gb:
                    state = 1
            elif r < p_bg:
                state = 0
        self._state = state
        self._slot = slot

    def resolve(self, transmissions: Sequence[Any]) -> Any:
        rate = self.bad_rate if self._state else self.good_rate
        rng = self._rng
        surviving = [m for m in transmissions if rng.random() >= rate]
        return self.inner.resolve(surviving)


# --- spec-string parsing ---------------------------------------------------


def _parse_kv(body: str, what: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    if not body:
        return params
    for part in body.split(","):
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep or not key or not value.strip():
            raise ValueError(
                f"malformed {what} parameter {part!r} (expected key=value)"
            )
        if key in params:
            raise ValueError(f"duplicate {what} parameter {key!r}")
        params[key] = value.strip()
    return params


def _take(
    params: Dict[str, str],
    what: str,
    required: Sequence[str],
    optional: Sequence[str] = (),
) -> None:
    missing = [key for key in required if key not in params]
    if missing:
        raise ValueError(f"{what} spec is missing parameter(s) {missing}")
    unknown = sorted(set(params) - set(required) - set(optional))
    if unknown:
        raise ValueError(
            f"unknown {what} parameter(s) {unknown}; "
            f"allowed: {sorted(set(required) | set(optional))}"
        )


def _num(params: Dict[str, str], key: str, what: str, kind=float):
    try:
        return kind(params[key])
    except ValueError:
        raise ValueError(
            f"{what} parameter {key}={params[key]!r} is not a valid "
            f"{kind.__name__}"
        ) from None


def parse_churn_spec(spec: str) -> Dict[str, Any]:
    """Parse a ``churn`` spec string; raises ``ValueError`` on nonsense.

    Returns ``{"policy": "periodic"|"random", ...numeric params...}``.
    Validation happens here *and* on construction of the schedule, so
    both the config door and direct API use fail fast.
    """
    policy, _, body = spec.partition(":")
    params = _parse_kv(body, "churn")
    if policy == "periodic":
        _take(params, "churn periodic", ("period", "down"), ("stagger",))
        parsed: Dict[str, Any] = {
            "policy": "periodic",
            "period": _num(params, "period", "churn", int),
            "down": _num(params, "down", "churn", int),
            "stagger": (
                _num(params, "stagger", "churn", int)
                if "stagger" in params else 0
            ),
        }
        PeriodicChurn(parsed["period"], parsed["down"], parsed["stagger"])
        return parsed
    if policy == "random":
        _take(params, "churn random", ("p", "period", "down"))
        parsed = {
            "policy": "random",
            "p": _num(params, "p", "churn"),
            "period": _num(params, "period", "churn", int),
            "down": _num(params, "down", "churn", int),
        }
        RandomChurn(parsed["p"], parsed["period"], parsed["down"])
        return parsed
    raise ValueError(
        f"unknown churn policy {policy!r}; expected "
        f"'periodic:period=P,down=D[,stagger=S]' or "
        f"'random:p=R,period=P,down=D'"
    )


def parse_jam_spec(spec: str) -> Dict[str, Any]:
    """Parse a ``jam`` spec string; raises ``ValueError`` on nonsense."""
    policy, _, body = spec.partition(":")
    params = _parse_kv(body, "jam")
    if policy == "periodic":
        _take(params, "jam periodic", ("period",), ("offset",))
        parsed: Dict[str, Any] = {
            "policy": "periodic",
            "period": _num(params, "period", "jam", int),
            "offset": (
                _num(params, "offset", "jam", int)
                if "offset" in params else 0
            ),
        }
        PeriodicJammer(parsed["period"], parsed["offset"])
        return parsed
    if policy == "random":
        _take(params, "jam random", ("rate",))
        parsed = {"policy": "random", "rate": _num(params, "rate", "jam")}
        RandomJammer(parsed["rate"])
        return parsed
    if policy == "reactive":
        _take(params, "jam reactive", (), ("min",))
        parsed = {
            "policy": "reactive",
            "min": _num(params, "min", "jam", int) if "min" in params else 1,
        }
        ReactiveJammer(parsed["min"])
        return parsed
    raise ValueError(
        f"unknown jam policy {policy!r}; expected "
        f"'periodic:period=P[,offset=K]', 'random:rate=R', or "
        f"'reactive[:min=K]'"
    )


def parse_burst_loss_spec(spec: str) -> Dict[str, Any]:
    """Parse a ``burst_loss`` (Gilbert-Elliott) spec string."""
    params = _parse_kv(spec, "burst_loss")
    _take(params, "burst_loss", ("p_gb", "p_bg"), ("good", "bad"))
    parsed = {
        "p_gb": _num(params, "p_gb", "burst_loss"),
        "p_bg": _num(params, "p_bg", "burst_loss"),
        "good": _num(params, "good", "burst_loss") if "good" in params else 0.0,
        "bad": _num(params, "bad", "burst_loss") if "bad" in params else 1.0,
    }
    for label in ("p_gb", "p_bg", "good", "bad"):
        if not 0 <= parsed[label] <= 1:
            raise ValueError(
                f"Gilbert-Elliott rate {label} must be in [0,1], "
                f"got {parsed[label]}"
            )
    return parsed


_PARSERS = {
    "churn": parse_churn_spec,
    "jam": parse_jam_spec,
    "burst_loss": parse_burst_loss_spec,
}


def validate_fault_spec(field: str, spec: str) -> None:
    """Validate one fault spec string (the ExecutionConfig door)."""
    _PARSERS[field](spec)


# --- per-trial materialization ---------------------------------------------


class FaultPlan:
    """Parsed fault configuration, shared by every execution layer.

    Built once per batch from an
    :class:`~repro.sim.config.ExecutionConfig` via
    :func:`parse_fault_specs`; :meth:`for_trial` materializes the
    per-trial fault objects (model wrappers seeded by the trial seed,
    plus that trial's :class:`CrashSchedule`).  The reference simulator,
    the engine, and the lock-step driver all call the same method, so
    "the same faults in oracle form" is a construction guarantee, not a
    convention.
    """

    __slots__ = ("churn_params", "jam_params", "burst_params")

    def __init__(
        self,
        churn: Optional[str] = None,
        jam: Optional[str] = None,
        burst_loss: Optional[str] = None,
    ) -> None:
        self.churn_params = parse_churn_spec(churn) if churn else None
        self.jam_params = parse_jam_spec(jam) if jam else None
        self.burst_params = parse_burst_loss_spec(burst_loss) if burst_loss else None

    def wraps_model(self) -> bool:
        """True when the plan replaces the channel model per trial
        (jamming or burst loss); churn alone leaves the model shared."""
        return self.jam_params is not None or self.burst_params is not None

    def build_churn(self, seed: int) -> Optional[CrashSchedule]:
        params = self.churn_params
        if params is None:
            return None
        if params["policy"] == "periodic":
            return PeriodicChurn(
                params["period"], params["down"], params["stagger"]
            )
        return RandomChurn(
            params["p"], params["period"], params["down"], seed=seed
        )

    def build_jammer(self, seed: int) -> Optional[Jammer]:
        params = self.jam_params
        if params is None:
            return None
        if params["policy"] == "periodic":
            return PeriodicJammer(params["period"], params["offset"])
        if params["policy"] == "random":
            return RandomJammer(params["rate"], seed=seed)
        return ReactiveJammer(params["min"])

    def for_trial(
        self, model: ChannelModel, seed: int
    ) -> Tuple[ChannelModel, Optional[CrashSchedule]]:
        """(possibly wrapped model, churn schedule) for one trial seed."""
        burst = self.burst_params
        if burst is not None:
            model = GilbertElliottModel(
                model, burst["p_gb"], burst["p_bg"],
                burst["good"], burst["bad"], seed=seed,
            )
        jammer = self.build_jammer(seed)
        if jammer is not None:
            model = JammedModel(model, jammer)
        return model, self.build_churn(seed)


def parse_fault_specs(config) -> Optional[FaultPlan]:
    """The :class:`FaultPlan` for an ExecutionConfig, or None when no
    fault field is set (the clean path stays byte-untouched)."""
    churn = getattr(config, "churn", None)
    jam = getattr(config, "jam", None)
    burst = getattr(config, "burst_loss", None)
    if not (churn or jam or burst):
        return None
    return FaultPlan(churn, jam, burst)
