"""Collision models: LOCAL, CD, No-CD, CD*, BEEP — plus fault injection.

Each model resolves what a listener hears given the multiset of messages
transmitted by its neighbors in a slot (paper Section 1, "The Model";
CD* is defined in Section 6.3; the beeping model in [8]).
:class:`LossyModel` wraps any model with i.i.d. per-transmission erasure,
for robustness experiments (the paper's algorithms tolerate per-frame
failure probability f; erasures stress exactly that budget).
"""

from __future__ import annotations

import random
from typing import Any, Optional, Sequence

from repro.sim.feedback import BEEP, NOISE, SILENCE

__all__ = [
    "ChannelModel",
    "NEEDS_MESSAGES",
    "LOCAL",
    "CD",
    "NO_CD",
    "CD_STAR",
    "BEEPING",
    "MODELS",
    "LossyModel",
]


class _NeedsMessages:
    """Sentinel a count-based model returns from :meth:`resolve_count`
    when it cannot decide from ``(k, first_message)`` alone and needs the
    full transmission list (e.g. LOCAL with >= 2 transmitters)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NEEDS_MESSAGES"


NEEDS_MESSAGES = _NeedsMessages()


class ChannelModel:
    """A named collision-resolution rule.

    Attributes:
        name: Human-readable model name as used in the paper.
        full_duplex: Whether :class:`~repro.sim.actions.SendListen` is legal.
            The paper's LOCAL model permits full duplex (Section 8); the
            single-hop networks of Theorem 2's reduction do too.
        supports_count: Whether :meth:`resolve_count` implements the
            model.  True for the five paper models — their outcome depends
            only on *how many* neighbors transmitted plus (sometimes) the
            lowest-index transmitter's message — so the engine can resolve
            via ``popcount(neighbor_mask & transmit_mask)`` without ever
            materializing the message list.  False for per-transmission
            models such as :class:`LossyModel`, which keep the list-based
            slow path.
        stateful: Whether resolving a reception mutates model state
            (e.g. :class:`LossyModel` consumes channel randomness).
            Stateful models reused across batched trials without a
            ``model_factory`` carry state from trial to trial;
            :func:`repro.sim.batch.run_trials` warns about that footgun.
        needs_first_message: Which contention counts require the lowest
            transmitter's message for :meth:`resolve_count` /
            :meth:`resolve_count_array` — ``"none"``, ``"one"`` (only
            ``k == 1``), or ``"any"`` (every ``k >= 1``).  The numpy
            backend uses this to skip the first-transmitter bit scan
            where the model cannot need it.
    """

    __slots__ = ("name", "full_duplex")

    supports_count = False
    stateful = False
    needs_first_message = "any"
    #: Whether the model needs per-slot context (:meth:`begin_slot`)
    #: before resolving receptions.  False for every stock model; fault
    #: wrappers (:mod:`repro.sim.faults`) set it to thread the slot
    #: number and on-air transmitter count into jamming decisions and
    #: Gilbert-Elliott chain advancement.
    slot_aware = False

    def __init__(self, name: str, full_duplex: bool = False) -> None:
        self.name = name
        self.full_duplex = full_duplex

    def resolve(self, transmissions: Sequence[Any]) -> Any:
        """Return what a listener hears.

        Args:
            transmissions: messages sent by the listener's transmitting
                neighbors this slot, ordered by sender index (ascending).
        """
        raise NotImplementedError

    def resolve_count(self, k: int, first_message: Any) -> Any:
        """Count-based fast path: resolve from the transmitter count alone.

        Args:
            k: number of transmitting neighbors.
            first_message: the message of the lowest-index transmitting
                neighbor (None when ``k == 0``).  With ``k == 1`` this is
                the sole transmission.

        Returns:
            The feedback, or :data:`NEEDS_MESSAGES` if the model needs the
            full ordered transmission list for this ``k``.

        Only called when :attr:`supports_count` is True; must agree with
        :meth:`resolve` on every input (the differential tests drive both
        paths against the reference simulator).
        """
        raise NotImplementedError

    def resolve_count_array(self, counts, firsts, transmitting):
        """Vectorized :meth:`resolve_count` over a whole slot (or batch).

        Args:
            counts: int64 numpy array of per-listener transmitter counts.
            firsts: int64 numpy array of the lowest transmitting
                neighbor's *vertex index* per listener.  Only the
                positions selected by :attr:`needs_first_message` are
                computed — everything else is uninitialized and must not
                be read.  None when the model declared
                ``needs_first_message == "none"``.
            transmitting: this slot's vertex -> message map.

        Returns:
            ``(out, needs)`` where ``out`` is a list of feedbacks (same
            length/order as ``counts``) and ``needs`` is a list of
            positions whose entry is :data:`NEEDS_MESSAGES` (the caller
            materializes the full ordered message list for those), or
            None when there are none.

        The base implementation loops :meth:`resolve_count`, so any
        count-supporting model works under the numpy backend; the five
        paper models override it with bulk classification.  Only called
        when :attr:`supports_count` is True.  ``first_message`` is
        looked up only for the counts selected by
        :attr:`needs_first_message` — the backend computes nothing else,
        so positions outside the selection must never be read.
        """
        need = self.needs_first_message
        counts_list = counts.tolist()
        firsts_list = (
            [None] * len(counts_list) if firsts is None else firsts.tolist()
        )
        out = []
        needs = []
        resolve_count = self.resolve_count
        for i, (k, f) in enumerate(zip(counts_list, firsts_list)):
            if k and (need == "any" or (need == "one" and k == 1)):
                first_message = transmitting[f]
            else:
                first_message = None
            feedback = resolve_count(k, first_message)
            if feedback is NEEDS_MESSAGES:
                needs.append(i)
            out.append(feedback)
        return out, (needs or None)

    def begin_slot(self, slot: int, n_transmitters: int) -> None:
        """Per-slot context hook for :attr:`slot_aware` models.

        Engines call this at most once per processed slot, with slots in
        ascending order, *before* any :meth:`resolve` call of that slot.
        ``n_transmitters`` is the number of on-air transmitters (after
        churn removed crashed nodes).  Engines may legally skip slots in
        which nothing transmits or listens, so implementations must be
        *path-independent*: the feedback produced at slot ``t`` may not
        depend on which earlier slots received a ``begin_slot`` call
        (see :class:`repro.sim.faults.GilbertElliottModel` for the lazy
        catch-up pattern that preserves rng-stream identity).
        """

    def __repr__(self) -> str:
        return f"ChannelModel({self.name})"


def _first_pairs(counts, firsts, select):
    """Iterate ``(position, first_vertex)`` over the rows selected by the
    boolean numpy array ``select``."""
    rows = select.nonzero()[0]
    return zip(rows.tolist(), firsts[rows].tolist())


class _LocalModel(ChannelModel):
    """No collisions: every listener hears every neighboring transmission."""

    supports_count = True
    needs_first_message = "one"

    def resolve(self, transmissions: Sequence[Any]) -> Any:
        return tuple(transmissions)

    def resolve_count(self, k: int, first_message: Any) -> Any:
        if k == 0:
            return ()
        if k == 1:
            return (first_message,)
        return NEEDS_MESSAGES

    def resolve_count_array(self, counts, firsts, transmitting):
        out = [()] * len(counts)
        for i, f in _first_pairs(counts, firsts, counts == 1):
            out[i] = (transmitting[f],)
        needs = (counts >= 2).nonzero()[0].tolist()
        for i in needs:
            out[i] = NEEDS_MESSAGES
        return out, (needs or None)


class _CDModel(ChannelModel):
    """Collision detection: 0 -> silence, 1 -> message, >=2 -> noise."""

    supports_count = True
    needs_first_message = "one"

    def resolve(self, transmissions: Sequence[Any]) -> Any:
        if not transmissions:
            return SILENCE
        if len(transmissions) == 1:
            return transmissions[0]
        return NOISE

    def resolve_count(self, k: int, first_message: Any) -> Any:
        if k == 0:
            return SILENCE
        if k == 1:
            return first_message
        return NOISE

    def resolve_count_array(self, counts, firsts, transmitting):
        out = [SILENCE] * len(counts)
        for i in (counts >= 2).nonzero()[0].tolist():
            out[i] = NOISE
        for i, f in _first_pairs(counts, firsts, counts == 1):
            out[i] = transmitting[f]
        return out, None


class _NoCDModel(ChannelModel):
    """No collision detection: 0 or >=2 -> silence, 1 -> message."""

    supports_count = True
    needs_first_message = "one"

    def resolve(self, transmissions: Sequence[Any]) -> Any:
        if len(transmissions) == 1:
            return transmissions[0]
        return SILENCE

    def resolve_count(self, k: int, first_message: Any) -> Any:
        return first_message if k == 1 else SILENCE

    def resolve_count_array(self, counts, firsts, transmitting):
        out = [SILENCE] * len(counts)
        for i, f in _first_pairs(counts, firsts, counts == 1):
            out[i] = transmitting[f]
        return out, None


class _CDStarModel(ChannelModel):
    """CD*: on any contention the listener receives one arbitrary message.

    We deterministically pick the message of the lowest-index transmitting
    neighbor (a legal adversarial choice, reproducible across runs).
    """

    supports_count = True
    needs_first_message = "any"

    def resolve(self, transmissions: Sequence[Any]) -> Any:
        if not transmissions:
            return SILENCE
        return transmissions[0]

    def resolve_count(self, k: int, first_message: Any) -> Any:
        return SILENCE if k == 0 else first_message

    def resolve_count_array(self, counts, firsts, transmitting):
        out = [SILENCE] * len(counts)
        for i, f in _first_pairs(counts, firsts, counts > 0):
            out[i] = transmitting[f]
        return out, None


class _BeepModel(ChannelModel):
    """Beeping model [8]: listeners only learn whether anyone transmitted."""

    supports_count = True
    needs_first_message = "none"

    def resolve(self, transmissions: Sequence[Any]) -> Any:
        return BEEP if transmissions else SILENCE

    def resolve_count(self, k: int, first_message: Any) -> Any:
        return BEEP if k else SILENCE

    def resolve_count_array(self, counts, firsts, transmitting):
        out = [SILENCE] * len(counts)
        for i in counts.nonzero()[0].tolist():
            out[i] = BEEP
        return out, None


LOCAL = _LocalModel("LOCAL", full_duplex=True)
CD = _CDModel("CD")
NO_CD = _NoCDModel("No-CD")
CD_STAR = _CDStarModel("CD*")
BEEPING = _BeepModel("BEEP")

class LossyModel(ChannelModel):
    """Erasure-channel wrapper: each incoming transmission is dropped
    independently with probability ``loss_rate`` *before* the inner model
    resolves collisions.  A dropped transmission neither delivers nor
    collides (deep fade), so CD listeners may hear spurious silence or a
    message despite contention — the harshest fault mode for the paper's
    detection-based protocols.

    Erasure is decided per transmission, so the outcome is not a function
    of the transmitter count: ``supports_count`` stays False and the
    engine materializes the full message list (the slow path) for every
    reception under this model.
    """

    __slots__ = ("inner", "loss_rate", "_rng")

    stateful = True

    def __init__(
        self,
        inner: ChannelModel,
        loss_rate: float,
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not (
            isinstance(loss_rate, (int, float))
            and not isinstance(loss_rate, bool)
            and 0 <= loss_rate <= 1
        ):
            raise ValueError(f"loss_rate must be in [0,1], got {loss_rate!r}")
        if seed is not None and rng is not None:
            raise ValueError(
                "LossyModel takes seed= or rng=, not both (a seed builds "
                "a fresh random.Random(seed); an rng is used as-is)"
            )
        super().__init__(f"lossy({inner.name},{loss_rate})", inner.full_duplex)
        self.inner = inner
        self.loss_rate = loss_rate
        self._rng = rng if rng is not None else random.Random(
            0 if seed is None else seed
        )

    def __repr__(self) -> str:
        return (
            f"LossyModel({self.inner.name!r}, "
            f"loss_rate={self.loss_rate})"
        )

    def resolve(self, transmissions: Sequence[Any]) -> Any:
        surviving = [
            message
            for message in transmissions
            if self._rng.random() >= self.loss_rate
        ]
        return self.inner.resolve(surviving)


# Full-duplex variants used by the paper's single-hop settings: Theorem 2's
# reduction explicitly allows devices to "send and listen simultaneously
# (the full duplex model)", and the uniform leader-election substrate of
# [30] assumes every station observes the channel status.
CD_FD = _CDModel("CD-FD", full_duplex=True)
NO_CD_FD = _NoCDModel("No-CD-FD", full_duplex=True)

MODELS = {m.name: m for m in (LOCAL, CD, NO_CD, CD_STAR, BEEPING, CD_FD, NO_CD_FD)}
