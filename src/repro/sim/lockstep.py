"""Lock-step batched trials: many seeds advance slot-by-slot together.

A sweep cell runs one (graph, model, protocol) configuration across many
seeds.  The serial path (:func:`repro.sim.batch.run_trials`) replays the
engine once per seed; this module instead keeps *all* trials in flight
and alternates two phases:

1. **collect** — every live trial advances its private event loop to its
   next active slot (waking sleepers, classifying yielded actions),
   stopping right before reception resolution;
2. **resolve** — all pending slots are resolved in one call through a
   :mod:`repro.sim.resolution` backend's ``batch_resolver``.  Under the
   numpy backend that is a single vectorized sweep: one transmit mask
   per trial, one gather over the shared ``uint64`` mask table, one
   popcount pass for every listener of every trial.

Trials are independent (each has its own rng chain seeded from its own
master seed), so lock-step interleaving cannot change any trial's
outcome: results are byte-identical to the serial path, and the
differential suite (tests/test_lockstep.py) pins that.

The per-trial state machine below mirrors :meth:`repro.sim.engine.
Simulator.run` exactly — same bucket/heap scheduling, same wake
semantics, same phase-plan caching, same duration bookkeeping.  Any
semantic change to the engine loop must be made in both places; the
equivalence tests will catch a drift.

The per-trial bookkeeping *is* now vectorized across trials:
:func:`run_trials_lockstep` dispatches eligible cells (numpy resolution,
shared count-based stateless model, no per-slot observation hooks — see
:func:`repro.sim.trialsoa.soa_engaged`) to the struct-of-arrays engine in
:mod:`repro.sim.trialsoa`, which holds plan counters, wake times, and
energy meters as 2-D ``[trial, node]`` arrays and advances whole runs
per slot as array operations.  That flip took the ``lockstep_trials``
curve in ``BENCH_engine.json`` from break-even to multiplicative
(CI-gated at >= 2x on the dense many-seed workload).  The per-trial
driver below remains both the universal fallback (bitmask/list backends,
per-seed model/observer factories, traces, no-numpy environments) and
the lock-step differential oracle the SoA engine is pinned against.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Dict, List, Optional, Sequence

from repro.graphs.graph import Graph
from repro.sim.actions import Idle, Listen, Send, SendListen
from repro.sim.config import (
    UNSET,
    ExecutionConfig,
    ExecutionConfigError,
    resolve_exec_config,
)
from repro.sim.engine import (
    DEFAULT_TIME_LIMIT,
    ProtocolError,
    ProtocolFactory,
    SimResult,
    SimulationTimeout,
    _RESUME,
)
from repro.sim.faults import GilbertElliottModel, parse_fault_specs
from repro.sim.feedback import BEEP, NOISE, SILENCE
from repro.sim.models import ChannelModel, LossyModel
from repro.sim.node import Knowledge, NodeCtx, validate_input_keys
from repro.sim.observers import (
    EnergyObserver,
    SlotObserver,
    TraceObserver,
    _ZeroEnergyObserver,
)
from repro.sim.plan import (
    OP_LISTEN,
    OP_SEND,
    OP_STEPS,
    OP_UNTIL,
    Plan,
    expand_plans,
    plan_feedback,
    plan_resume,
    start_plan,
)
from repro.sim.resolution import NumpyBackend, create_backend
from repro.sim.trace import Trace
from repro.sim.trialsoa import run_trials_soa, soa_engaged

__all__ = ["run_trials_lockstep"]


class _LockstepTrial:
    """One seed's engine state, advanced in externally resolved steps."""

    __slots__ = (
        "graph", "model", "seed", "time_limit", "count_based",
        "gens", "ctxs", "plans", "outputs", "finish_slot", "remaining",
        "duration", "entries",
        "heap", "bucket_slot", "bucket_senders", "bucket_listeners",
        "bucket_duplexers", "observers", "energy", "trace",
        "slot", "senders", "listeners", "duplexers",
        "transmitting", "receivers", "feedbacks",
        "churn", "slot_aware", "air", "live", "down_fb",
    )

    def __init__(
        self,
        graph: Graph,
        model: ChannelModel,
        protocol_factory: ProtocolFactory,
        seed: int,
        *,
        knowledge: Knowledge,
        uids: Sequence[int],
        inputs: Dict[int, Dict[str, Any]],
        time_limit: int,
        meter_energy: bool,
        record_trace: bool,
        extra_observers: Sequence[SlotObserver],
        stepping: str = "phase",
        churn=None,
    ) -> None:
        self.graph = graph
        self.model = model
        self.seed = seed
        self.time_limit = time_limit
        self.count_based = model.supports_count
        self.churn = churn
        self.slot_aware = getattr(model, "slot_aware", False)
        if churn is None:
            self.down_fb = SILENCE
        else:
            from repro.sim.faults import down_feedback

            self.down_fb = down_feedback(model)
        master = random.Random(seed)

        energy = EnergyObserver() if meter_energy else _ZeroEnergyObserver()
        self.energy = energy
        observers: List[SlotObserver] = [energy]
        self.trace = Trace() if record_trace else None
        if self.trace is not None:
            observers.append(TraceObserver(self.trace))
        observers.extend(extra_observers)
        self.observers = observers
        for observer in observers:
            observer.on_run_start(graph.n)

        n = graph.n
        self.gens = gens = [None] * n
        self.ctxs = ctxs = [None] * n
        self.plans = plans = [None] * n
        self.outputs = outputs = [None] * n
        self.finish_slot = [-1] * n
        self.entries = 0
        self.heap = heap = []
        self.bucket_slot = 0
        self.bucket_senders: Dict[int, Any] = {}
        self.bucket_listeners: List[int] = []
        self.bucket_duplexers: Dict[int, Any] = {}
        self.duration = 0
        full_duplex = model.full_duplex
        slot_stepping = stepping == "slot"

        remaining = 0
        for v in range(n):
            ctx = NodeCtx(
                index=v,
                uid=uids[v],
                knowledge=knowledge,
                rng=random.Random(master.getrandbits(64)),
                inputs=dict(inputs.get(v, ())),
            )
            ctxs[v] = ctx
            gen = protocol_factory(ctx)
            if slot_stepping:
                gen = expand_plans(gen, ctx.rng)
            gens[v] = gen
            self.entries += 1
            try:
                action = next(gen)
            except StopIteration as stop:
                outputs[v] = stop.value
                continue
            remaining += 1
            while True:
                if isinstance(action, Idle):
                    heapq.heappush(heap, (action.duration, v, _RESUME))
                elif isinstance(action, Send):
                    self.bucket_senders[v] = action.message
                elif isinstance(action, Listen):
                    self.bucket_listeners.append(v)
                elif isinstance(action, SendListen):
                    if not full_duplex:
                        raise ProtocolError(
                            f"SendListen is illegal in the {model.name} model"
                        )
                    self.bucket_duplexers[v] = action.message
                elif isinstance(action, Plan):
                    plans[v], action = start_plan(action, ctx.rng)
                    continue
                else:
                    raise ProtocolError(
                        f"protocol yielded non-action {action!r}"
                    )
                break
        self.remaining = remaining

    def collect(self) -> bool:
        """Advance to the next slot with at least one active device.

        Returns True with the slot's activity staged in ``transmitting``
        / ``receivers`` / ``feedbacks`` (feedbacks empty, to be filled by
        the resolver), or False when every protocol has terminated.
        """
        heap = self.heap
        heappush, heappop = heapq.heappush, heapq.heappop
        gens, ctxs, outputs = self.gens, self.ctxs, self.outputs
        plans = self.plans
        finish_slot = self.finish_slot
        full_duplex = self.model.full_duplex
        model_name = self.model.name
        while self.remaining:
            if self.bucket_senders or self.bucket_listeners or self.bucket_duplexers:
                slot = self.bucket_slot
                senders = self.bucket_senders
                listeners = self.bucket_listeners
                duplexers = self.bucket_duplexers
            else:
                slot = heap[0][0]
                senders, listeners, duplexers = {}, [], {}
            self.bucket_senders, self.bucket_listeners, self.bucket_duplexers = (
                {}, [], {}
            )
            if slot > self.time_limit:
                raise SimulationTimeout(
                    f"simulation exceeded {self.time_limit} slots "
                    f"({self.remaining} protocols still running, "
                    f"seed {self.seed})"
                )

            # Wake every sleeper due at this slot; a resumed generator
            # (or plan) may immediately act, joining the slot it woke
            # in.  The bucket references were swapped out above, so
            # wake-joiners go into the local senders/listeners — exactly
            # like the engine loop.
            while heap and heap[0][0] == slot:
                _, v, _ = heappop(heap)
                ps = plans[v]
                result = None
                if ps is not None:
                    action, result = plan_resume(ps)
                    if action is None:
                        plans[v] = None
                if ps is None or action is None:
                    ctxs[v].time = slot
                    self.entries += 1
                    try:
                        action = gens[v].send(result)
                    except StopIteration as stop:
                        outputs[v] = stop.value
                        finish_slot[v] = slot - 1
                        self.remaining -= 1
                        if self.duration < slot:
                            self.duration = slot
                        continue
                while True:
                    cls = action.__class__
                    if cls is Idle or isinstance(action, Idle):
                        heappush(heap, (slot + action.duration, v, _RESUME))
                    elif cls is Send or isinstance(action, Send):
                        senders[v] = action.message
                    elif cls is Listen or isinstance(action, Listen):
                        listeners.append(v)
                    elif cls is SendListen or isinstance(action, SendListen):
                        if not full_duplex:
                            raise ProtocolError(
                                f"SendListen is illegal in the {model_name} model"
                            )
                        duplexers[v] = action.message
                    elif isinstance(action, Plan):
                        plans[v], action = start_plan(action, ctxs[v].rng)
                        continue
                    else:
                        raise ProtocolError(
                            f"protocol yielded non-action {action!r}"
                        )
                    break

            if not (senders or listeners or duplexers):
                continue

            if duplexers:
                transmitting = dict(senders)
                transmitting.update(duplexers)
                receivers = listeners + list(duplexers)
            else:
                transmitting = senders
                receivers = listeners
            if not self.count_based:
                # Stateful models consume channel randomness per
                # reception: ascending vertex order, like the oracle.
                receivers = sorted(receivers)

            # Churn filter, mirroring the engine: crashed transmissions
            # vanish from the air, crashed listeners leave the live set
            # (apply() forces their feedback to silence).  The clean
            # path aliases the unfiltered sets.
            churn = self.churn
            if churn is None:
                air = transmitting
                live = receivers
            else:
                down = churn.down
                air = {
                    v: m for v, m in transmitting.items()
                    if not down(v, slot)
                }
                live = [v for v in receivers if not down(v, slot)]
            if self.slot_aware:
                self.model.begin_slot(slot, len(air))

            self.slot = slot
            self.senders = senders
            self.listeners = listeners
            self.duplexers = duplexers
            self.transmitting = transmitting
            self.receivers = receivers
            self.air = air
            self.live = live
            self.feedbacks = {}
            return True
        return False

    def apply(self) -> None:
        """Consume the resolved feedbacks: observers fire, actors advance."""
        slot = self.slot
        senders = self.senders
        feedbacks = self.feedbacks
        if self.live is not self.receivers:
            for v in self.receivers:
                if v not in feedbacks:
                    feedbacks[v] = self.down_fb
        for v in senders:
            feedbacks[v] = None
        for observer in self.observers:
            observer.on_slot(
                slot, senders, self.listeners, self.duplexers, feedbacks
            )
        next_slot = slot + 1
        self.bucket_slot = next_slot
        if self.duration < next_slot:
            self.duration = next_slot
        receivers = self.receivers
        gens, ctxs, outputs = self.gens, self.ctxs, self.outputs
        plans = self.plans
        finish_slot = self.finish_slot
        heap = self.heap
        heappush = heapq.heappush
        bucket_senders = self.bucket_senders
        bucket_listeners = self.bucket_listeners
        bucket_duplexers = self.bucket_duplexers
        full_duplex = self.model.full_duplex
        model_name = self.model.name
        for v in list(senders) + receivers if senders else receivers:
            # Mirror of the engine's advance loop, inline plan fast
            # paths included — see Simulator.run for the commentary.
            ps = plans[v]
            if ps is not None:
                op = ps[0]
                if op == OP_SEND:
                    rem = ps[1]
                    if rem > 1:
                        ps[1] = rem - 1
                        bucket_senders[v] = ps[2]
                        continue
                    action, result = plan_feedback(ps, None)
                elif op == OP_LISTEN:
                    ps[3].append(feedbacks[v])
                    rem = ps[1]
                    if rem > 1:
                        ps[1] = rem - 1
                        bucket_listeners.append(v)
                        continue
                    action, result = plan_resume(ps)
                elif op == OP_UNTIL:
                    fb = feedbacks[v]
                    if (
                        fb is None
                        or fb is SILENCE
                        or fb is NOISE
                        or fb is BEEP
                        or (fb.__class__ is tuple and not fb)
                    ):
                        rem = ps[1]
                        if rem > 1:
                            ps[1] = rem - 1
                            bucket_listeners.append(v)
                            continue
                    action, result = plan_feedback(ps, fb)
                elif op == OP_STEPS:
                    acts = ps[2]
                    i = ps[1]
                    pcls = acts[i - 1].__class__
                    if pcls is Listen or pcls is SendListen:
                        ps[3].append(feedbacks[v])
                    if i < len(acts):
                        act = acts[i]
                        ps[1] = i + 1
                        acls = act.__class__
                        if acls is Send:
                            bucket_senders[v] = act.message
                            continue
                        if acls is Listen:
                            bucket_listeners.append(v)
                            continue
                        if acls is Idle:
                            heappush(
                                heap, (next_slot + act.duration, v, _RESUME)
                            )
                            continue
                        if not full_duplex:
                            raise ProtocolError(
                                f"SendListen is illegal in the "
                                f"{model_name} model"
                            )
                        bucket_duplexers[v] = act.message
                        continue
                    action, result = plan_resume(ps)
                else:
                    action, result = plan_feedback(ps, feedbacks[v])
                if action is None:
                    plans[v] = None
                    ctxs[v].time = next_slot
                    self.entries += 1
                    try:
                        action = gens[v].send(result)
                    except StopIteration as stop:
                        outputs[v] = stop.value
                        finish_slot[v] = slot
                        self.remaining -= 1
                        continue
            else:
                ctxs[v].time = next_slot
                self.entries += 1
                try:
                    action = gens[v].send(feedbacks[v])
                except StopIteration as stop:
                    outputs[v] = stop.value
                    finish_slot[v] = slot
                    self.remaining -= 1
                    continue
            while True:
                cls = action.__class__
                if cls is Idle or isinstance(action, Idle):
                    heappush(heap, (next_slot + action.duration, v, _RESUME))
                elif cls is Send or isinstance(action, Send):
                    bucket_senders[v] = action.message
                elif cls is Listen or isinstance(action, Listen):
                    bucket_listeners.append(v)
                elif cls is SendListen or isinstance(action, SendListen):
                    if not full_duplex:
                        raise ProtocolError(
                            f"SendListen is illegal in the {model_name} model"
                        )
                    bucket_duplexers[v] = action.message
                elif isinstance(action, Plan):
                    plans[v], action = start_plan(action, ctxs[v].rng)
                    continue
                else:
                    raise ProtocolError(
                        f"protocol yielded non-action {action!r}"
                    )
                break

    def result(self) -> SimResult:
        return SimResult(
            outputs=self.outputs,
            energy=self.energy.reports(),
            finish_slot=self.finish_slot,
            duration=self.duration,
            trace=self.trace,
            seed=self.seed,
            gen_entries=self.entries,
        )


def run_trials_lockstep(
    graph: Graph,
    model: ChannelModel,
    protocol_factory: ProtocolFactory,
    seeds: Sequence[int],
    *,
    inputs: Optional[Dict[int, Dict[str, Any]]] = None,
    knowledge: Optional[Knowledge] = None,
    uids: Optional[Sequence[int]] = None,
    exec_config: Optional[ExecutionConfig] = None,
    time_limit: Any = UNSET,
    record_trace: Any = UNSET,
    resolution: Any = UNSET,
    stepping: Any = UNSET,
    meter_energy: Any = UNSET,
    observer_factory: Any = UNSET,
    model_factory: Any = UNSET,
) -> List[SimResult]:
    """Run one cell's seeds in lock-step slot batches.

    Semantics and arguments match :func:`repro.sim.batch.run_trials`
    (which delegates here for ``exec_config.lockstep=True``); results
    are byte-identical to the serial path, in ``seeds`` order.
    ``exec_config.observer_factory(seed)`` builds per-trial observers —
    lock-step trials interleave, so sharing one observer instance across
    seeds would scramble its per-run state.  The per-knob keyword
    arguments are the deprecated forms of the matching config fields.
    """
    config = resolve_exec_config(
        exec_config,
        dict(
            time_limit=time_limit,
            record_trace=record_trace,
            resolution=resolution,
            stepping=stepping,
            meter_energy=meter_energy,
            observer_factory=observer_factory,
            model_factory=model_factory,
        ),
        where="run_trials_lockstep",
    )
    if config.contention_hist:
        raise ExecutionConfigError(
            "contention_hist is consumed by run_cells()/sweep(); pass "
            "observer_factory= here instead"
        )
    model_factory = config.model_factory
    observer_factory = config.observer_factory
    time_limit = config.resolved_time_limit(DEFAULT_TIME_LIMIT)
    record_trace = config.record_trace
    meter_energy = config.meter_energy
    stepping = config.stepping
    if knowledge is None:
        knowledge = Knowledge(
            n=graph.n, max_degree=max(graph.max_degree, 1), diameter=None
        )
    if uids is None:
        uids = list(range(1, graph.n + 1))
    if len(uids) != graph.n or len(set(uids)) != graph.n:
        raise ValueError("uids must be distinct and cover every vertex")
    inputs = inputs or {}
    validate_input_keys(inputs, graph.n)

    backend = create_backend(config.resolution, graph)

    shared_model = model_factory is None
    # Materialize every per-seed factory product exactly once, before
    # routing: factories may carry side effects (run_cells' contention
    # wrapper registers each seed's histogram observer at build time),
    # and both the SoA path and the fallback driver reuse these same
    # instances.
    trial_models = (
        None if shared_model else [model_factory(seed) for seed in seeds]
    )
    trial_observers = (
        None if observer_factory is None
        else [tuple(observer_factory(seed)) for seed in seeds]
    )

    # Fault injection (repro.sim.faults): realize the per-trial fault
    # objects from each trial seed — the same FaultPlan.for_trial the
    # serial engine and the oracle-form reference use, so all paths see
    # identical fault realizations.  Jam/burst wrap the channel model
    # (per-trial state), churn rides alongside as a slot filter.
    fault_plan = parse_fault_specs(config)
    churns = None
    if fault_plan is not None:
        base_models = (
            trial_models if trial_models is not None
            else [model] * len(seeds)
        )
        faulted = [
            fault_plan.for_trial(m, seed)
            for m, seed in zip(base_models, seeds)
        ]
        if fault_plan.wraps_model():
            trial_models = [m for m, _ in faulted]
            shared_model = False
        if fault_plan.churn_params is not None:
            churns = [c for _, c in faulted]

    soa_reason = _soa_fallback_reason(
        model, config, backend, trial_models, trial_observers
    )
    if seeds and soa_reason is None:
        # Vectorizable cell: hand the whole batch to the trial-axis
        # struct-of-arrays engine (byte-identical, see trialsoa.py).
        results = run_trials_soa(
            graph,
            model,
            protocol_factory,
            seeds,
            knowledge=knowledge,
            uids=uids,
            inputs=inputs,
            time_limit=time_limit,
            meter_energy=meter_energy,
            stepping=stepping,
            backend=backend,
            trial_models=trial_models,
            trial_observers=trial_observers,
        )
        for result in results:
            result.soa_reason = "ok"
        return results
    trials = []
    for i, seed in enumerate(seeds):
        trial_model = model if shared_model else trial_models[i]
        trials.append(_LockstepTrial(
            graph,
            trial_model,
            protocol_factory,
            seed,
            knowledge=knowledge,
            uids=uids,
            inputs=inputs,
            time_limit=time_limit,
            meter_energy=meter_energy,
            record_trace=record_trace,
            extra_observers=(
                trial_observers[i] if trial_observers is not None else ()
            ),
            stepping=stepping,
            churn=churns[i] if churns is not None else None,
        ))

    if shared_model:
        batch_fn = backend.batch_resolver(model)

        def resolve_live(live):
            batch_fn([
                (trial.air, trial.live, trial.feedbacks)
                for trial in live
            ])
    else:
        # Per-trial models (stateful channels): resolve each trial's slot
        # with its own model-bound resolver, in trial order.
        resolvers = {
            id(trial): backend.slot_resolver(trial.model) for trial in trials
        }

        def resolve_live(live):
            for trial in live:
                resolvers[id(trial)](
                    trial.air, trial.live, trial.feedbacks
                )

    live = [trial for trial in trials if trial.collect()]
    while live:
        resolve_live(live)
        for trial in live:
            trial.apply()
        live = [trial for trial in live if trial.collect()]
    results = [trial.result() for trial in trials]
    for result in results:
        result.soa_reason = soa_reason
    return results


def _soa_fallback_reason(
    model: ChannelModel,
    config: ExecutionConfig,
    backend,
    trial_models: Optional[Sequence[ChannelModel]],
    trial_observers: Optional[Sequence[Sequence[SlotObserver]]],
) -> Optional[str]:
    """Why this batch must run on the per-trial fallback driver, or None
    when the SoA engine can take it.

    This is the dispatch-level superset of :func:`~repro.sim.trialsoa.
    soa_engaged`: with the per-seed factory products already
    materialized it can additionally admit uniform ``LossyModel``
    batches over a shared stateless inner (vectorized drop masks) and
    observer sets whose every member advertises the batch ABI.  The
    returned string lands in ``SimResult.soa_reason`` so fallbacks are
    diagnosable instead of silent.
    """
    if config.resolution != "numpy" or not isinstance(backend, NumpyBackend):
        return "resolution"
    if config.record_trace:
        return "record_trace"
    # Fault verdicts: churn needs per-trial slot filtering and jamming
    # per-slot adversary state — neither is vectorized yet, so both fall
    # back with their own reason.  Burst loss (Gilbert-Elliott) *is*
    # vectorizable when the batch is uniform over one shared stateless
    # count-based inner (admitted below); anything else reports
    # "burst_loss".
    if config.churn:
        return "churn"
    if config.jam:
        return "jammer"
    if trial_models is not None:
        first = trial_models[0] if trial_models else None
        if first is not None and type(first) is GilbertElliottModel:
            if not (
                first.inner.supports_count
                and not first.inner.stateful
                and all(
                    type(m) is GilbertElliottModel
                    and m.inner is first.inner
                    and m.p_gb == first.p_gb
                    and m.p_bg == first.p_bg
                    and m.good_rate == first.good_rate
                    and m.bad_rate == first.bad_rate
                    for m in trial_models
                )
            ):
                return "burst_loss"
        elif not (
            first is not None
            and type(first) is LossyModel
            and first.inner.supports_count
            and not first.inner.stateful
            and all(
                type(m) is LossyModel and m.inner is first.inner
                for m in trial_models
            )
        ):
            return "burst_loss" if config.burst_loss else "model_factory"
    elif model.stateful:
        # A shared stateful channel consumes one rng stream across
        # interleaved trials; neither lock-step driver can reorder that
        # (run_trials rejects it outright under lockstep).
        return "stateful_model"
    elif not model.supports_count:
        return "model"
    if trial_observers is not None and not all(
        getattr(observer, "batch_capable", False)
        for observers in trial_observers
        for observer in observers
    ):
        return "observers"
    return None
