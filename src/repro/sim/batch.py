"""Batched trial execution: one prepared simulator, many seeds.

Every sweep in the repo — Table 1 rows, ablations, campaigns — runs the
same (graph, model, protocol) cell across a list of seeds.  Constructing a
fresh :class:`~repro.sim.engine.Simulator` per seed re-did the per-graph
setup (uid validation, knowledge defaults, resolution-backend build)
every time; :func:`run_trials` does it once and reuses the engine, so
per-trial overhead is just the run itself.

Two execution shapes share this entry point:

* **serial** (default) — one engine replayed seed after seed; and
* **lock-step** (``lockstep=True``) — all seeds advance slot-by-slot
  together (:mod:`repro.sim.lockstep`), so a resolution backend can
  resolve every trial's receptions in one batched sweep (one transmit
  mask per trial over the shared mask table, under
  ``resolution="numpy"``).  Results are byte-identical either way.

Both sweep drivers ride on this core: the serial
:func:`repro.experiments.harness.sweep` driver batches all seeds of a
size through one call, and the sharded campaign path
(:mod:`repro.campaign.cells`) runs seed-block batches — same code,
parallelism layered on top.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.graphs.graph import Graph
from repro.sim.engine import ProtocolFactory, Simulator, SimResult
from repro.sim.models import ChannelModel
from repro.sim.node import Knowledge
from repro.sim.observers import SlotObserver

__all__ = ["run_trials"]

_warned_stateful_reuse = False


def _warn_stateful_reuse(model: ChannelModel) -> None:
    """Warn (once per process) about the shared-stateful-model footgun:
    a stateful channel reused across seeds carries its rng state from
    trial to trial, so individual trials are not independently
    reproducible from their seed alone."""
    global _warned_stateful_reuse
    if _warned_stateful_reuse:
        return
    _warned_stateful_reuse = True
    warnings.warn(
        f"stateful channel model {model.name!r} is shared across trials; "
        f"its internal rng state carries over from seed to seed.  Pass "
        f"model_factory=lambda seed: ... to give every trial fresh, "
        f"seed-reproducible channel state.",
        RuntimeWarning,
        stacklevel=3,
    )


def run_trials(
    graph: Graph,
    model: ChannelModel,
    protocol_factory: ProtocolFactory,
    seeds: Sequence[int],
    *,
    inputs: Optional[Dict[int, Dict[str, Any]]] = None,
    knowledge: Optional[Knowledge] = None,
    uids: Optional[Sequence[int]] = None,
    time_limit: int = 50_000_000,
    record_trace: bool = False,
    resolution: str = "bitmask",
    stepping: str = "phase",
    meter_energy: bool = True,
    observers: Sequence[SlotObserver] = (),
    observer_factory: Optional[Callable[[int], Sequence[SlotObserver]]] = None,
    model_factory: Optional[Callable[[int], ChannelModel]] = None,
    lockstep: bool = False,
) -> List[SimResult]:
    """Run one protocol cell once per seed, amortizing setup.

    Args:
        seeds: master seeds, one trial each; results come back in the
            same order (each :class:`SimResult` carries its seed).
        observer_factory: optional per-seed observer constructor
            (``seed -> sequence of SlotObservers``) for instrumentation
            that accumulates per-trial state (e.g.
            :class:`~repro.sim.observers.ContentionHistogramObserver`).
            Required instead of ``observers`` under ``lockstep=True``,
            where trials interleave and shared instances would scramble.
        model_factory: optional per-seed model constructor for stateful
            channels (e.g. ``lambda seed: LossyModel(NO_CD, 0.1, seed)``)
            so each trial starts from a fresh, reproducible channel state.
            When omitted, all trials share ``model`` (stateless paper
            models are unaffected; sharing a *stateful* model across
            several seeds warns once — trial outcomes then depend on the
            whole batch, as a serial loop always did).
        lockstep: advance all seeds in lock-step slot batches
            (:func:`repro.sim.lockstep.run_trials_lockstep`) so the
            resolution backend can resolve all trials' receptions per
            step in one batched call.  Byte-identical results.
        stepping: ``"phase"`` (default) executes yielded phase plans
            slots-at-a-time; ``"slot"`` expands them per slot — the
            byte-identical oracle path (:mod:`repro.sim.plan`).
        Remaining arguments match :class:`~repro.sim.engine.Simulator`.

    Returns:
        One :class:`SimResult` per seed, in ``seeds`` order.
    """
    if (
        not lockstep
        and model_factory is None
        and len(seeds) > 1
        and getattr(model, "stateful", False)
    ):
        _warn_stateful_reuse(model)

    if lockstep:
        if observers:
            raise ValueError(
                "lockstep=True interleaves trials; pass observer_factory= "
                "(per-seed observers) instead of shared observers="
            )
        if (
            model_factory is None
            and len(seeds) > 1
            and getattr(model, "stateful", False)
        ):
            # A shared stateful channel consumes rng in trial order; the
            # lock-step schedule interleaves trials per slot, so results
            # could not match the serial path.  Refuse rather than
            # silently break the byte-identical contract.
            raise ValueError(
                f"lockstep=True cannot share stateful model {model.name!r} "
                f"across trials (rng consumption order would change); pass "
                f"model_factory=lambda seed: ... for per-trial channel state"
            )
        from repro.sim.lockstep import run_trials_lockstep

        return run_trials_lockstep(
            graph,
            model,
            protocol_factory,
            seeds,
            inputs=inputs,
            knowledge=knowledge,
            uids=uids,
            time_limit=time_limit,
            record_trace=record_trace,
            resolution=resolution,
            stepping=stepping,
            meter_energy=meter_energy,
            observer_factory=observer_factory,
            model_factory=model_factory,
        )

    simulator = Simulator(
        graph,
        model,
        time_limit=time_limit,
        knowledge=knowledge,
        uids=uids,
        record_trace=record_trace,
        resolution=resolution,
        stepping=stepping,
        meter_energy=meter_energy,
        observers=observers,
    )
    base_observers = list(observers)
    results: List[SimResult] = []
    for seed in seeds:
        if model_factory is not None:
            simulator.model = model_factory(seed)
        if observer_factory is not None:
            simulator.extra_observers = base_observers + list(
                observer_factory(seed)
            )
        results.append(simulator.run(protocol_factory, inputs=inputs, seed=seed))
    return results
