"""Batched trial execution: one prepared simulator, many seeds.

Every sweep in the repo — Table 1 rows, ablations, campaigns — runs the
same (graph, model, protocol) cell across a list of seeds.  Constructing a
fresh :class:`~repro.sim.engine.Simulator` per seed re-did the per-graph
setup (uid validation, knowledge defaults, resolution-backend build)
every time; :func:`run_trials` does it once and reuses the engine, so
per-trial overhead is just the run itself.

Two execution shapes share this entry point:

* **serial** (default) — one engine replayed seed after seed; and
* **lock-step** (``lockstep=True``) — all seeds advance slot-by-slot
  together (:mod:`repro.sim.lockstep`), so a resolution backend can
  resolve every trial's receptions in one batched sweep (one transmit
  mask per trial over the shared mask table, under
  ``resolution="numpy"``).  Results are byte-identical either way.

Both sweep drivers ride on this core: the serial
:func:`repro.experiments.harness.sweep` driver batches all seeds of a
size through one call, and the sharded campaign path
(:mod:`repro.campaign.cells`) runs seed-block batches — same code,
parallelism layered on top.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, List, Optional, Sequence

from repro.graphs.graph import Graph
from repro.sim.config import (
    UNSET,
    ExecutionConfig,
    ExecutionConfigError,
    resolve_exec_config,
)
from repro.sim.engine import ProtocolFactory, Simulator, SimResult
from repro.sim.models import ChannelModel
from repro.sim.node import Knowledge
from repro.sim.observers import SlotObserver

__all__ = ["run_trials"]

_warned_stateful_reuse = False


def _warn_stateful_reuse(model: ChannelModel) -> None:
    """Warn (once per process) about the shared-stateful-model footgun:
    a stateful channel reused across seeds carries its rng state from
    trial to trial, so individual trials are not independently
    reproducible from their seed alone."""
    global _warned_stateful_reuse
    if _warned_stateful_reuse:
        return
    _warned_stateful_reuse = True
    warnings.warn(
        f"stateful channel model {model.name!r} is shared across trials; "
        f"its internal rng state carries over from seed to seed.  Pass "
        f"model_factory=lambda seed: ... to give every trial fresh, "
        f"seed-reproducible channel state.",
        RuntimeWarning,
        stacklevel=3,
    )


def run_trials(
    graph: Graph,
    model: ChannelModel,
    protocol_factory: ProtocolFactory,
    seeds: Sequence[int],
    *,
    inputs: Optional[Dict[int, Dict[str, Any]]] = None,
    knowledge: Optional[Knowledge] = None,
    uids: Optional[Sequence[int]] = None,
    exec_config: Optional[ExecutionConfig] = None,
    observers: Sequence[SlotObserver] = (),
    time_limit: Any = UNSET,
    record_trace: Any = UNSET,
    resolution: Any = UNSET,
    stepping: Any = UNSET,
    meter_energy: Any = UNSET,
    observer_factory: Any = UNSET,
    model_factory: Any = UNSET,
    lockstep: Any = UNSET,
) -> List[SimResult]:
    """Run one protocol cell once per seed, amortizing setup.

    Args:
        seeds: master seeds, one trial each; results come back in the
            same order (each :class:`SimResult` carries its seed).
        exec_config: how the batch executes
            (:class:`~repro.sim.config.ExecutionConfig`).  This layer
            consumes ``lockstep`` (dispatch to
            :func:`repro.sim.lockstep.run_trials_lockstep` — all seeds
            advance in lock-step slot batches, byte-identical results),
            ``observer_factory`` (per-seed observer constructor,
            ``seed -> sequence of SlotObservers``; required instead of
            ``observers`` under lockstep, where trials interleave and
            shared instances would scramble), and ``model_factory``
            (per-seed model constructor for stateful channels, e.g.
            ``lambda seed: LossyModel(NO_CD, 0.1, seed)`` — when
            omitted, all trials share ``model``; sharing a *stateful*
            model across several seeds warns once).  ``contention_hist``
            is rejected: its histogram summary has nowhere to go in a
            plain result list — use :func:`repro.campaign.cells.run_cells`
            or :func:`repro.experiments.harness.sweep`.
        observers: shared observer instances (serial execution only).
        The per-knob keyword arguments are the deprecated forms of the
        matching ``exec_config`` fields (byte-identical behavior, with
        a :class:`DeprecationWarning`).

    Returns:
        One :class:`SimResult` per seed, in ``seeds`` order.
    """
    config = resolve_exec_config(
        exec_config,
        dict(
            time_limit=time_limit,
            record_trace=record_trace,
            resolution=resolution,
            stepping=stepping,
            meter_energy=meter_energy,
            observer_factory=observer_factory,
            model_factory=model_factory,
            lockstep=lockstep,
        ),
        where="run_trials",
    )
    if config.contention_hist:
        raise ExecutionConfigError(
            "contention_hist is consumed by run_cells()/sweep(), which fold "
            "the histogram summary into cell extras; run_trials has no "
            "extras channel — pass observer_factory= instead"
        )
    if (
        not config.lockstep
        and config.model_factory is None
        and len(seeds) > 1
        and getattr(model, "stateful", False)
    ):
        _warn_stateful_reuse(model)

    if config.lockstep:
        if observers:
            raise ExecutionConfigError(
                "lockstep=True interleaves trials; pass observer_factory= "
                "(per-seed observers) instead of shared observers="
            )
        if (
            config.model_factory is None
            and len(seeds) > 1
            and getattr(model, "stateful", False)
        ):
            # A shared stateful channel consumes rng in trial order; the
            # lock-step schedule interleaves trials per slot, so results
            # could not match the serial path.  Refuse rather than
            # silently break the byte-identical contract.
            raise ExecutionConfigError(
                f"lockstep=True cannot share stateful model {model.name!r} "
                f"across trials (rng consumption order would change); pass "
                f"model_factory=lambda seed: ... for per-trial channel state"
            )
        from repro.sim.lockstep import run_trials_lockstep

        return run_trials_lockstep(
            graph,
            model,
            protocol_factory,
            seeds,
            inputs=inputs,
            knowledge=knowledge,
            uids=uids,
            exec_config=config,
        )

    simulator = Simulator(
        graph,
        model,
        knowledge=knowledge,
        uids=uids,
        observers=observers,
        # The per-seed hooks are consumed right here, not by the engine.
        exec_config=config.replace(observer_factory=None, model_factory=None),
    )
    base_observers = list(observers)
    results: List[SimResult] = []
    for seed in seeds:
        if config.model_factory is not None:
            simulator.model = config.model_factory(seed)
        if config.observer_factory is not None:
            simulator.extra_observers = base_observers + list(
                config.observer_factory(seed)
            )
        results.append(simulator.run(protocol_factory, inputs=inputs, seed=seed))
    return results
