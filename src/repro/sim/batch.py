"""Batched trial execution: one prepared simulator, many seeds.

Every sweep in the repo — Table 1 rows, ablations, campaigns — runs the
same (graph, model, protocol) cell across a list of seeds.  Constructing a
fresh :class:`~repro.sim.engine.Simulator` per seed re-did the per-graph
setup (uid validation, knowledge defaults, neighbor-bitmask lookup, bit
table) every time; :func:`run_trials` does it once and reuses the engine,
so per-trial overhead is just the run itself.

Both execution paths share this core:

* the serial :func:`repro.experiments.harness.sweep` driver batches all
  seeds of a size through one call, and
* the sharded campaign path (:mod:`repro.campaign.cells`) runs
  single-seed batches — same code, parallelism layered on top.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.graphs.graph import Graph
from repro.sim.engine import ProtocolFactory, Simulator, SimResult
from repro.sim.models import ChannelModel
from repro.sim.node import Knowledge
from repro.sim.observers import SlotObserver

__all__ = ["run_trials"]


def run_trials(
    graph: Graph,
    model: ChannelModel,
    protocol_factory: ProtocolFactory,
    seeds: Sequence[int],
    *,
    inputs: Optional[Dict[int, Dict[str, Any]]] = None,
    knowledge: Optional[Knowledge] = None,
    uids: Optional[Sequence[int]] = None,
    time_limit: int = 50_000_000,
    record_trace: bool = False,
    resolution: str = "bitmask",
    meter_energy: bool = True,
    observers: Sequence[SlotObserver] = (),
    model_factory: Optional[Callable[[int], ChannelModel]] = None,
) -> List[SimResult]:
    """Run one protocol cell once per seed, amortizing setup.

    Args:
        seeds: master seeds, one trial each; results come back in the
            same order (each :class:`SimResult` carries its seed).
        model_factory: optional per-seed model constructor for stateful
            channels (e.g. ``lambda seed: LossyModel(NO_CD, 0.1, seed)``)
            so each trial starts from a fresh, reproducible channel state.
            When omitted, all trials share ``model`` (stateless paper
            models are unaffected; a shared stateful model carries its
            rng state across trials, as a serial loop always did).
        Remaining arguments match :class:`~repro.sim.engine.Simulator`.

    Returns:
        One :class:`SimResult` per seed, in ``seeds`` order.
    """
    simulator = Simulator(
        graph,
        model,
        time_limit=time_limit,
        knowledge=knowledge,
        uids=uids,
        record_trace=record_trace,
        resolution=resolution,
        meter_energy=meter_energy,
        observers=observers,
    )
    results: List[SimResult] = []
    for seed in seeds:
        if model_factory is not None:
            simulator.model = model_factory(seed)
        results.append(simulator.run(protocol_factory, inputs=inputs, seed=seed))
    return results
