"""Lock-step discrete-slot simulator for multi-hop radio networks.

This is the substrate everything else runs on.  Devices are generator-based
protocols; each yielded action occupies one slot (``Send``/``Listen``/
``SendListen``) or several (``Idle(k)``).  The engine keeps an event heap
keyed by the slot at which each device next acts, so long sleeps cost O(1)
work — mirroring the paper's "idle time is free" in both the energy model
and simulator wall time.

Channel semantics are delegated to a :class:`~repro.sim.models.ChannelModel`
(LOCAL, CD, No-CD, CD*, BEEP).  Reception resolution is pluggable
(:mod:`repro.sim.resolution`): ``resolution="bitmask"`` (default) ORs each
transmitter's bit into a per-slot transmit mask and resolves a listener as
``popcount(graph.neighbor_mask(v) & transmit_mask)``; ``"numpy"`` computes
every listener's count in one vectorized sweep over a packed ``uint64``
mask table; ``"list"`` forces the legacy per-neighbor scan.  Models whose
outcome is a pure function of the contention count (all five paper models,
via :meth:`~repro.sim.models.ChannelModel.resolve_count`) never materialize
the message list except for the sole sender's message when exactly one
neighbor transmitted; per-transmission models such as
:class:`~repro.sim.models.LossyModel` fall back to the ordered list under
every backend.  The differential tests drive all backends against the
reference oracle.

Protocols may also yield multi-slot *phase plans* (:mod:`repro.sim.plan`:
``Repeat``, ``SendProb``, ``ListenUntil``, ``Steps``).  The engine caches
each node's active plan in a compact state record and steps it with plain
list/dict operations, re-entering the generator only at feedback-relevant
boundaries — a k-slot phase costs O(1) ``gen.send`` calls instead of k.
``stepping="slot"`` instead expands every plan back into per-slot yields
(:func:`repro.sim.plan.expand_plans`), the byte-identical oracle path.

Energy metering and trace recording live in :mod:`repro.sim.observers`
hooks, keeping the slot loop free of instrumentation branches — tracing
costs zero when disabled.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from repro.graphs.graph import Graph
from repro.sim.actions import Idle, Listen, Send, SendListen
from repro.sim.config import (
    STEPPING_MODES,
    UNSET,
    ExecutionConfig,
    ExecutionConfigError,
    resolve_exec_config,
)
from repro.sim.energy import EnergyReport
from repro.sim.models import ChannelModel
from repro.sim.node import Knowledge, NodeCtx, validate_input_keys
from repro.sim.plan import (
    OP_LISTEN,
    OP_SEND,
    OP_STEPS,
    OP_UNTIL,
    Plan,
    ProtocolError,
    expand_plans,
    plan_feedback,
    plan_resume,
    start_plan,
)
from repro.sim.faults import parse_fault_specs
from repro.sim.feedback import BEEP, NOISE, SILENCE
from repro.sim.resolution import RESOLUTION_MODES, create_backend
from repro.sim.observers import (
    EnergyObserver,
    SlotObserver,
    TraceObserver,
    _ZeroEnergyObserver,
)
from repro.sim.trace import Trace

__all__ = [
    "Simulator",
    "SimResult",
    "SimulationTimeout",
    "ProtocolError",
    "RESOLUTION_MODES",
    "STEPPING_MODES",
]

Protocol = Generator[Any, Any, Any]
ProtocolFactory = Callable[[NodeCtx], Protocol]

_RESUME = object()  # heap payload marker: wake a sleeping generator

#: The default slot budget of a bare Simulator run; batch/broadcast
#: layers apply their own defaults when ``exec_config.time_limit`` is
#: None (see :meth:`repro.sim.config.ExecutionConfig.resolved_time_limit`).
DEFAULT_TIME_LIMIT = 50_000_000


class SimulationTimeout(RuntimeError):
    """The run exceeded its slot budget without all protocols terminating."""


@dataclass
class SimResult:
    """Outcome of one simulation run.

    Attributes:
        outputs: per-node protocol return values.
        energy: per-node :class:`EnergyReport`.
        finish_slot: per-node slot of the node's final action (-1 if the
            protocol returned without ever acting).
        duration: number of slots until the last node finished
            (the paper's time complexity for the run).
        trace: event trace if tracing was enabled, else None.
        gen_entries: how many times the run entered a protocol generator
            (``next``/``send`` calls, including the final StopIteration
            ones).  The stepping-cost metric phase plans minimize; 0 for
            runners that do not track it (the frozen legacy engine).
        soa_reason: why the trial-SoA lock-step engine did ("ok") or did
            not (a fallback reason such as "resolution" or
            "stateful_model") run this trial.  Set only by
            :func:`repro.sim.lockstep.run_trials_lockstep`; None for
            every other execution path.
    """

    outputs: List[Any]
    energy: List[EnergyReport]
    finish_slot: List[int]
    duration: int
    trace: Optional[Trace] = None
    seed: int = 0
    gen_entries: int = 0
    soa_reason: Optional[str] = None

    @property
    def max_energy(self) -> int:
        """Worst-vertex energy — the paper's energy complexity measure."""
        return max(e.total for e in self.energy)

    @property
    def total_energy(self) -> int:
        return sum(e.total for e in self.energy)

    @property
    def mean_energy(self) -> float:
        return self.total_energy / len(self.energy)


class Simulator:
    """Runs one protocol on one graph under one collision model.

    Args:
        exec_config: an :class:`~repro.sim.config.ExecutionConfig`
            describing how the run executes — ``resolution`` backend,
            ``stepping`` mode, ``time_limit``, ``record_trace``,
            ``meter_energy``.  Batch-level fields (``lockstep``,
            ``contention_hist``, the per-seed hooks) are rejected here:
            they are consumed by :func:`repro.sim.batch.run_trials` /
            :func:`repro.campaign.cells.run_cells`, and silently
            ignoring them would violate the config's contract.
        observers: extra :class:`~repro.sim.observers.SlotObserver` hooks
            invoked after each active slot is resolved.
        time_limit / record_trace / resolution / stepping / meter_energy:
            deprecated per-knob forms of the ``exec_config`` fields;
            they still work (byte-identically) but emit a
            :class:`DeprecationWarning`.

    A ``Simulator`` is reusable: :meth:`run` accepts a per-call ``seed``
    so batched trials (:func:`repro.sim.batch.run_trials`) amortize graph
    preprocessing, knowledge, and uid setup across seeds.

    Example:
        >>> from repro.graphs import path_graph
        >>> from repro.sim import Simulator, NO_CD, Send, Listen, Idle
        >>> def proto(ctx):
        ...     if ctx.inputs.get("source"):
        ...         yield Send("hello")
        ...         return "hello"
        ...     fb = yield Listen()
        ...     return fb
        >>> sim = Simulator(path_graph(2), NO_CD, seed=1)
        >>> result = sim.run(proto, inputs={0: {"source": True}})
        >>> result.outputs
        ['hello', 'hello']
    """

    def __init__(
        self,
        graph: Graph,
        model: ChannelModel,
        seed: int = 0,
        time_limit: Any = UNSET,
        knowledge: Optional[Knowledge] = None,
        uids: Optional[Sequence[int]] = None,
        record_trace: Any = UNSET,
        resolution: Any = UNSET,
        stepping: Any = UNSET,
        meter_energy: Any = UNSET,
        observers: Sequence[SlotObserver] = (),
        exec_config: Optional[ExecutionConfig] = None,
    ) -> None:
        config = resolve_exec_config(
            exec_config,
            dict(
                time_limit=time_limit,
                record_trace=record_trace,
                resolution=resolution,
                stepping=stepping,
                meter_energy=meter_energy,
            ),
            where="Simulator",
        )
        if config.lockstep:
            raise ExecutionConfigError(
                "Simulator runs one trial at a time; lockstep=True is "
                "consumed by run_trials()/run_cells() — pass the config "
                "there instead"
            )
        if config.contention_hist:
            raise ExecutionConfigError(
                "contention_hist is consumed by run_cells()/sweep(); on a "
                "bare Simulator attach a ContentionHistogramObserver via "
                "observers= instead"
            )
        if config.observer_factory is not None or config.model_factory is not None:
            raise ExecutionConfigError(
                "observer_factory/model_factory are per-seed hooks consumed "
                "by run_trials(); a Simulator takes concrete observers= and "
                "model arguments"
            )
        for spec in config.field_specs():
            if spec.metadata["runner"] and getattr(config, spec.name) != spec.default:
                raise ExecutionConfigError(
                    f"{spec.name} steers the campaign fabric, not the "
                    f"engine; pass it to run_campaign_fabric() / "
                    f"`campaign run --{spec.name.replace('_', '-')}` instead"
                )
        self.graph = graph
        self.model = model
        self.seed = seed
        # Fault injection (churn/jam/burst_loss) is consumed right here:
        # run() materializes the per-trial fault objects from the run
        # seed, so batched trials stay seed-reproducible and
        # sharding-independent.  None on the clean path.
        self._faults = parse_fault_specs(config)
        self.time_limit = config.resolved_time_limit(DEFAULT_TIME_LIMIT)
        self.record_trace = config.record_trace
        # Resolves "numpy" to the bitmask backend (with a warning) when
        # numpy is unavailable; the mode itself was validated by the
        # config on construction.
        self.backend = create_backend(config.resolution, graph)
        self.resolution = config.resolution
        self.stepping = config.stepping
        self.meter_energy = config.meter_energy
        self.extra_observers = list(observers)
        if knowledge is None:
            knowledge = Knowledge(
                n=graph.n, max_degree=max(graph.max_degree, 1), diameter=None
            )
        self.knowledge = knowledge
        if uids is None:
            uids = list(range(1, graph.n + 1))
        if len(uids) != graph.n or len(set(uids)) != graph.n:
            raise ValueError("uids must be distinct and cover every vertex")
        self.uids = list(uids)

    def run(
        self,
        protocol_factory: ProtocolFactory,
        inputs: Optional[Dict[int, Dict[str, Any]]] = None,
        seed: Optional[int] = None,
    ) -> SimResult:
        """Execute the protocol on every vertex until all terminate.

        Args:
            protocol_factory: called once per vertex with its
                :class:`NodeCtx`; returns the protocol generator.
            inputs: optional per-vertex input dictionaries, keyed by
                vertex index in ``[0, n)``.
            seed: per-run override of the simulator's seed (batched
                trials reuse one simulator across seeds).

        Raises:
            ValueError: if ``inputs`` contains a key that is not a vertex
                index in ``[0, n)``.
            SimulationTimeout: if any protocol is still running at
                ``time_limit`` slots.
            ProtocolError: on full-duplex actions in half-duplex models or
                other illegal yields.
        """
        graph, model = self.graph, self.model
        run_seed = self.seed if seed is None else seed
        faults = self._faults
        if faults is None:
            churn = None
            down_fb = SILENCE
        else:
            # Per-trial fault realization: jam/burst wrappers seeded by
            # the run seed replace the model for this run only; churn
            # rides alongside as a slot filter.
            model, churn = faults.for_trial(model, run_seed)
            from repro.sim.faults import down_feedback

            down_fb = down_feedback(model)
        slot_aware = getattr(model, "slot_aware", False)
        master = random.Random(run_seed)
        inputs = inputs or {}
        validate_input_keys(inputs, graph.n)

        energy = EnergyObserver() if self.meter_energy else _ZeroEnergyObserver()
        observers: List[SlotObserver] = [energy]
        trace = Trace() if self.record_trace else None
        if trace is not None:
            observers.append(TraceObserver(trace))
        observers.extend(self.extra_observers)
        for observer in observers:
            observer.on_run_start(graph.n)

        # Per-node state lives in parallel lists, and the advance/schedule
        # steps are inlined below: this loop runs once per device action
        # across the whole simulation, so attribute lookups, dataclass
        # indirection, and helper-call overhead all cost measurable wall
        # time on sweep workloads.
        #
        # Scheduling invariant: a yielded Send/Listen/SendListen always
        # executes at exactly the next processed slot, so those actions are
        # classified straight into the next slot's sender/listener sets
        # ("the bucket") and never touch the heap.  The heap holds only
        # Idle wake-ups — (wake_slot, vertex, _RESUME) timers — whether the
        # idle came from a yielded Idle or from inside an active plan
        # (``plans[v]`` decides which on wake-up).
        n = graph.n
        gens: List[Protocol] = [None] * n  # type: ignore[list-item]
        ctxs: List[NodeCtx] = [None] * n  # type: ignore[list-item]
        plans: List[Optional[list]] = [None] * n
        outputs: List[Any] = [None] * n
        finish_slot = [-1] * n
        entries = 0

        heap: List = []
        heappush, heappop = heapq.heappush, heapq.heappop
        full_duplex = model.full_duplex
        model_name = model.name
        slot_stepping = self.stepping == "slot"

        bucket_slot = 0
        bucket_senders: Dict[int, Any] = {}
        bucket_listeners: List[int] = []
        bucket_duplexers: Dict[int, Any] = {}

        remaining = 0
        for v in range(n):
            ctx = NodeCtx(
                index=v,
                uid=self.uids[v],
                knowledge=self.knowledge,
                rng=random.Random(master.getrandbits(64)),
                inputs=dict(inputs.get(v, ())),
            )
            ctxs[v] = ctx
            gen = protocol_factory(ctx)
            if slot_stepping:
                gen = expand_plans(gen, ctx.rng)
            gens[v] = gen
            entries += 1
            try:
                action = next(gen)
            except StopIteration as stop:
                outputs[v] = stop.value
                continue
            remaining += 1
            while True:
                cls = action.__class__
                if cls is Idle or isinstance(action, Idle):
                    heappush(heap, (action.duration, v, _RESUME))
                elif cls is Send or isinstance(action, Send):
                    bucket_senders[v] = action.message
                elif cls is Listen or isinstance(action, Listen):
                    bucket_listeners.append(v)
                elif cls is SendListen or isinstance(action, SendListen):
                    if not full_duplex:
                        raise ProtocolError(
                            f"SendListen is illegal in the {model_name} model"
                        )
                    bucket_duplexers[v] = action.message
                elif isinstance(action, Plan):
                    plans[v], action = start_plan(action, ctx.rng)
                    continue
                else:
                    raise ProtocolError(
                        f"protocol yielded non-action {action!r}"
                    )
                break

        # Hot-loop locals: resolved once, not per slot.  The backend
        # specializes a per-slot resolver for this model (silence cache,
        # count-path dispatch) so the loop pays one call per active slot.
        resolve_slot = self.backend.slot_resolver(model)
        count_based = model.supports_count
        time_limit = self.time_limit

        duration = 0
        while remaining:
            if bucket_senders or bucket_listeners or bucket_duplexers:
                slot = bucket_slot
                senders = bucket_senders
                listeners = bucket_listeners
                duplexers = bucket_duplexers
            else:
                slot = heap[0][0]
                senders, listeners, duplexers = {}, [], {}
            bucket_senders, bucket_listeners, bucket_duplexers = {}, [], {}
            if slot > time_limit:
                raise SimulationTimeout(
                    f"simulation exceeded {time_limit} slots "
                    f"({remaining} protocols still running)"
                )

            # Wake every sleeper due at this slot; a resumed generator (or
            # plan) may immediately act, joining the slot it woke in.
            while heap and heap[0][0] == slot:
                _, v, _ = heappop(heap)
                ps = plans[v]
                result = None
                if ps is not None:
                    action, result = plan_resume(ps)
                    if action is None:
                        plans[v] = None
                if ps is None or action is None:
                    ctxs[v].time = slot
                    entries += 1
                    try:
                        action = gens[v].send(result)
                    except StopIteration as stop:
                        outputs[v] = stop.value
                        finish_slot[v] = slot - 1
                        remaining -= 1
                        if duration < slot:
                            duration = slot
                        continue
                while True:
                    cls = action.__class__
                    if cls is Idle or isinstance(action, Idle):
                        heappush(heap, (slot + action.duration, v, _RESUME))
                    elif cls is Send or isinstance(action, Send):
                        senders[v] = action.message
                    elif cls is Listen or isinstance(action, Listen):
                        listeners.append(v)
                    elif cls is SendListen or isinstance(action, SendListen):
                        if not full_duplex:
                            raise ProtocolError(
                                f"SendListen is illegal in the {model_name} model"
                            )
                        duplexers[v] = action.message
                    elif isinstance(action, Plan):
                        plans[v], action = start_plan(action, ctxs[v].rng)
                        continue
                    else:
                        raise ProtocolError(
                            f"protocol yielded non-action {action!r}"
                        )
                    break

            if not (senders or listeners or duplexers):
                continue

            if duplexers:
                transmitting = dict(senders)
                transmitting.update(duplexers)
                receivers = listeners + list(duplexers)
            else:
                transmitting = senders
                receivers = listeners
            if not count_based:
                # Stateful models (LossyModel) consume channel randomness
                # per reception: resolve in ascending vertex order, exactly
                # like the reference oracle's single pass.  Count-based
                # models are stateless, so their order cannot matter.
                receivers = sorted(receivers)

            # Resolve receptions.  Churn filters crashed nodes out of
            # the air (their sends vanish) and out of the live receiver
            # set (their listens hear the model's empty-reception value
            # below); the clean path aliases the unfiltered sets,
            # costing nothing.
            feedbacks: Dict[int, Any] = {}
            if churn is None:
                air = transmitting
                live = receivers
            else:
                down = churn.down
                air = {
                    v: m for v, m in transmitting.items()
                    if not down(v, slot)
                }
                live = [v for v in receivers if not down(v, slot)]
            if slot_aware:
                model.begin_slot(slot, len(air))
            resolve_slot(air, live, feedbacks)
            if live is not receivers:
                for v in receivers:
                    if v not in feedbacks:
                        feedbacks[v] = down_fb
            for v in senders:
                feedbacks[v] = None

            for observer in observers:
                observer.on_slot(slot, senders, listeners, duplexers, feedbacks)

            # Advance every actor; their next action starts at slot+1 and,
            # unless it sleeps, is classified straight into the bucket.
            # Nodes inside an active plan are stepped with plain list/dict
            # operations (the inline fast paths below) and only re-enter
            # their generator at plan boundaries — that is the whole point
            # of phase plans, so this block must stay call-free on the
            # within-run continuations.
            next_slot = slot + 1
            bucket_slot = next_slot
            if duration < next_slot:
                duration = next_slot
            for v in receivers if not senders else list(senders) + receivers:
                ps = plans[v]
                if ps is not None:
                    op = ps[0]
                    if op == OP_SEND:  # mid send-run
                        rem = ps[1]
                        if rem > 1:
                            ps[1] = rem - 1
                            bucket_senders[v] = ps[2]
                            continue
                        action, result = plan_feedback(ps, None)
                    elif op == OP_LISTEN:  # mid listen-run
                        ps[3].append(feedbacks[v])
                        rem = ps[1]
                        if rem > 1:
                            ps[1] = rem - 1
                            bucket_listeners.append(v)
                            continue
                        action, result = plan_resume(ps)
                    elif op == OP_UNTIL:
                        fb = feedbacks[v]
                        if (
                            fb is None
                            or fb is SILENCE
                            or fb is NOISE
                            or fb is BEEP
                            or (fb.__class__ is tuple and not fb)
                        ):
                            # Definite non-message: keep listening.
                            rem = ps[1]
                            if rem > 1:
                                ps[1] = rem - 1
                                bucket_listeners.append(v)
                                continue
                        action, result = plan_feedback(ps, fb)
                    elif op == OP_STEPS:
                        acts = ps[2]
                        i = ps[1]
                        pcls = acts[i - 1].__class__
                        if pcls is Listen or pcls is SendListen:
                            ps[3].append(feedbacks[v])
                        if i < len(acts):
                            act = acts[i]
                            ps[1] = i + 1
                            acls = act.__class__
                            if acls is Send:
                                bucket_senders[v] = act.message
                                continue
                            if acls is Listen:
                                bucket_listeners.append(v)
                                continue
                            if acls is Idle:
                                heappush(
                                    heap,
                                    (next_slot + act.duration, v, _RESUME),
                                )
                                continue
                            if not full_duplex:
                                raise ProtocolError(
                                    f"SendListen is illegal in the "
                                    f"{model_name} model"
                                )
                            bucket_duplexers[v] = act.message
                            continue
                        action, result = plan_resume(ps)
                    else:  # duplex runs and other cold opcodes
                        action, result = plan_feedback(ps, feedbacks[v])
                    if action is None:
                        plans[v] = None
                        ctxs[v].time = next_slot
                        entries += 1
                        try:
                            action = gens[v].send(result)
                        except StopIteration as stop:
                            outputs[v] = stop.value
                            finish_slot[v] = slot
                            remaining -= 1
                            continue
                else:
                    ctxs[v].time = next_slot
                    entries += 1
                    try:
                        action = gens[v].send(feedbacks[v])
                    except StopIteration as stop:
                        outputs[v] = stop.value
                        finish_slot[v] = slot
                        remaining -= 1
                        continue
                while True:
                    cls = action.__class__
                    if cls is Idle or isinstance(action, Idle):
                        heappush(heap, (next_slot + action.duration, v, _RESUME))
                    elif cls is Send or isinstance(action, Send):
                        bucket_senders[v] = action.message
                    elif cls is Listen or isinstance(action, Listen):
                        bucket_listeners.append(v)
                    elif cls is SendListen or isinstance(action, SendListen):
                        if not full_duplex:
                            raise ProtocolError(
                                f"SendListen is illegal in the {model_name} model"
                            )
                        bucket_duplexers[v] = action.message
                    elif isinstance(action, Plan):
                        plans[v], action = start_plan(action, ctxs[v].rng)
                        continue
                    else:
                        raise ProtocolError(
                            f"protocol yielded non-action {action!r}"
                        )
                    break

        return SimResult(
            outputs=outputs,
            energy=energy.reports(),
            finish_slot=finish_slot,
            duration=duration,
            trace=trace,
            seed=run_seed,
            gen_entries=entries,
        )
