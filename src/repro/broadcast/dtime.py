"""The O~(D^{1+eps})-time, polylog-energy Broadcast (Section 6, Theorem 16).

Phase 1 iterates Partition(beta) on the *cluster graph*: every vertex
carries (cluster id, shared seed, good-labeling layer); one cluster-level
Partition epoch is simulated with the Section 6.2/6.4 machinery —

1. start check: all members compute their cluster's start epoch from the
   shared seed (no communication needed);
2. All-cast: assigned clusters broadcast merge offers
   (new cid, new seed, offer layer);
3. candidate selection: an Up-cast carries one received offer to the old
   root, a Down-cast announces the winning candidate token (Section 6.4
   step 1, "electing v*");
4. relabeling: from the elected vertex v*, an Up-cast + Down-cast assign
   new labels offer_layer + 1 + (cast hops), re-rooting the old cluster
   inside the new one (Section 6.4 step 2).

Phase 2 runs Lemma 10's broadcast over the final good labeling, with the
G_L-diameter budget from Lemma 15 (D shrinks by 3 beta per iteration).

Caveat recorded in DESIGN/EXPERIMENTS: the asymptotic advantage of
Theorem 16 needs n far beyond laptop simulation (the polylog factors are
log^{O(1/eps)} n); we reproduce the algorithm's structure, its
correctness, and its polylog per-vertex energy at small n.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.cluster_casts import (
    cluster_all_cast,
    cluster_down_cast,
    cluster_up_cast,
)
from repro.core.clustering import broadcast_on_labeling
from repro.core.schemes import SRScheme
from repro.core.sr_comm import Role
from repro.sim.node import NodeCtx
from repro.util import ceil_log2

__all__ = ["DTimeParams", "dtime_broadcast_protocol"]


@dataclass(frozen=True)
class DTimeParams:
    """Parameters of the Theorem 16 algorithm.

    Attributes:
        beta: Partition rate; the paper sets beta = log^{-1/eps} n.
        iterations: Partition rounds (paper: log_{1/(3 beta)} D).
        contention: the paper's C — bound on distinct neighboring clusters.
        reps: Lemma 17 repetitions per transmission (paper: O(C log n)).
        failure: SR failure probability.
        gl_diameter_bound: Lemma 10's d for phase 2 (Lemma 15 bound).
    """

    beta: float
    iterations: int
    contention: int
    reps: int
    failure: float
    gl_diameter_bound: int

    @classmethod
    def for_graph(
        cls,
        n: int,
        diameter: Optional[int],
        epsilon: float = 0.5,
        beta: Optional[float] = None,
        iterations: Optional[int] = None,
        contention: Optional[int] = None,
        reps: Optional[int] = None,
        failure: Optional[float] = None,
        gl_diameter_bound: Optional[int] = None,
    ) -> "DTimeParams":
        log_n = ceil_log2(max(4, n))
        if beta is None:
            beta = min(0.3, float(log_n) ** (-1.0 / epsilon))
        d_bound = diameter if diameter is not None else n - 1
        if iterations is None:
            if 3 * beta < 1:
                iterations = max(1, math.ceil(
                    math.log(max(2, d_bound)) / math.log(1.0 / (3 * beta))
                ))
            else:
                iterations = 2
        if contention is None:
            contention = max(2, min(8, log_n))
        if reps is None:
            reps = contention * (log_n + 1)
        if failure is None:
            failure = 1.0 / (n * n)
        if gl_diameter_bound is None:
            shrunk = max(2, math.ceil(d_bound * (3 * beta) ** iterations))
            gl_diameter_bound = min(max(2, n - 1), shrunk + 2 * log_n)
        return cls(
            beta=beta,
            iterations=iterations,
            contention=contention,
            reps=reps,
            failure=failure,
            gl_diameter_bound=gl_diameter_bound,
        )

    def epochs(self, n: int) -> int:
        return max(1, math.ceil(2 * ceil_log2(max(2, n)) / self.beta))


def _start_epoch(seed: int, iteration: int, beta: float, t_max: int) -> int:
    """Cluster start epoch, derivable by every member from the shared seed."""
    delta = random.Random(f"{seed}|start|{iteration}").expovariate(beta)
    return max(1, t_max - math.ceil(delta))


def _is_offer(message) -> bool:
    return isinstance(message, tuple) and message and message[0] == "offer"


def _any(message) -> bool:
    del message
    return True


def dtime_broadcast_protocol(params_factory=None, return_labels: bool = False):
    """Factory for the Theorem 16 protocol.

    Args:
        params_factory: optional callable (n, diameter) -> DTimeParams;
            defaults to :meth:`DTimeParams.for_graph` with eps = 0.5.
        return_labels: return (payload, cid, label) for diagnostics.
    """

    def protocol(ctx: NodeCtx):
        n = ctx.n
        if params_factory is not None:
            params = params_factory(n, ctx.diameter)
        else:
            params = DTimeParams.for_graph(n, ctx.diameter)
        scheme = SRScheme("No-CD", ctx.max_degree, failure=params.failure)
        t_max = params.epochs(n)

        # Iteration-0 clustering: singletons.
        cid = (ctx.rng.getrandbits(48) << 16) | (ctx.uid & 0xFFFF)
        seed = ctx.rng.getrandbits(64)
        label = 0
        max_layers = 1

        for iteration in range(params.iterations):
            cid, seed, label = yield from _partition_on_clusters(
                ctx, scheme, params, iteration, t_max,
                cid, seed, label, max_layers,
            )
            max_layers = min(n, max(2, 2 * t_max * max_layers))

        payload = ctx.inputs.get("payload") if ctx.inputs.get("source") else None
        payload = yield from broadcast_on_labeling(
            ctx, scheme, label, payload, min(n, max_layers),
            params.gl_diameter_bound,
        )
        if return_labels:
            return (payload, cid, label)
        return payload

    return protocol


def _partition_on_clusters(
    ctx: NodeCtx,
    scheme: SRScheme,
    params: DTimeParams,
    iteration: int,
    t_max: int,
    cid: int,
    seed: int,
    label: int,
    max_layers: int,
):
    """One Partition(beta) on the current cluster graph.

    Returns the vertex's (new cid, new seed, new label).  The old
    (cid, seed, label) keep structuring intra-cluster casts throughout;
    ``assigned`` carries the new clustering as it forms.
    """
    start = _start_epoch(seed, iteration, params.beta, t_max)
    assigned: Optional[Tuple[int, int, int]] = None  # (cid, seed, label)
    C, reps = params.contention, params.reps
    sweep_frames = max(0, max_layers - 1) * reps

    for epoch in range(1, t_max + 1):
        if assigned is None and epoch >= start:
            # Our cluster founds its own new cluster; every member knows
            # (shared start), keeping ids, seed, and layers unchanged.
            assigned = (cid, seed, label)
        etag = (iteration, epoch)

        # --- merge offers across cluster boundaries -------------------
        if assigned is not None:
            yield from cluster_all_cast(
                ctx, scheme, Role.SENDER,
                ("offer", assigned[0], assigned[1], assigned[2]),
                seed, C, reps, etag, _any,
            )
            offer = None
        else:
            offer = yield from cluster_all_cast(
                ctx, scheme, Role.RECEIVER, None, seed, C, reps, etag, _is_offer
            )

        # --- elect v* inside each still-unassigned old cluster --------
        if assigned is None:
            candidate = None
            if offer is not None:
                token = ctx.rng.getrandbits(48)
                candidate = (token, offer[1], offer[2], offer[3] + 1)
            root_value = yield from cluster_up_cast(
                ctx, scheme, label, cid, seed, candidate, max_layers,
                C, reps, (etag, "cand"), lambda m: m,
            )
            winner_init = root_value if label == 0 else None
            winner = yield from cluster_down_cast(
                ctx, scheme, label, cid, seed, winner_init, max_layers,
                C, reps, (etag, "win"), lambda m: m,
            )
            if winner is None and candidate is not None and label == 0:
                winner = candidate  # singleton-cluster shortcut
        else:
            yield from scheme.idle_frames(2 * sweep_frames)
            winner = None
            candidate = None

        # --- relabel from v* (Section 6.4 step 2) ---------------------
        if assigned is None and winner is not None:
            if candidate is not None and winner[0] == candidate[0]:
                relabel = (winner[1], winner[2], winner[3])
            else:
                relabel = None
            bump = lambda m: (m[0], m[1], m[2] + 1)
            relabel = yield from cluster_up_cast(
                ctx, scheme, label, cid, seed, relabel, max_layers,
                C, reps, (etag, "rlu"), bump,
            )
            relabel = yield from cluster_down_cast(
                ctx, scheme, label, cid, seed, relabel, max_layers,
                C, reps, (etag, "rld"), bump,
            )
            if relabel is not None:
                assigned = (relabel[0], relabel[1], relabel[2])
        else:
            yield from scheme.idle_frames(2 * sweep_frames)

    if assigned is None:
        assigned = (cid, seed, label)
    return assigned
