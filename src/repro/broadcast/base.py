"""Common runner and result type for Broadcast experiments.

Protocol convention: a broadcast protocol factory receives a
:class:`~repro.sim.node.NodeCtx`; the source vertex has
``ctx.inputs == {"source": True, "payload": <m>}``; every vertex's
generator must *return* the payload it learned (or None).  Delivery is
verified by comparing every output against the source's payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.graphs.graph import Graph
from repro.sim.batch import run_trials
from repro.sim.engine import SimResult
from repro.sim.models import ChannelModel
from repro.sim.node import Knowledge, NodeCtx
from repro.sim.observers import SlotObserver

__all__ = [
    "BroadcastOutcome",
    "run_broadcast",
    "run_broadcast_trials",
    "source_inputs",
]


@dataclass
class BroadcastOutcome:
    """A broadcast run plus its verification verdict.

    Attributes:
        sim: the raw simulation result (per-node energy, duration, trace).
        delivered: True iff every vertex returned the payload.
        payload: the broadcast message.
        informed: number of vertices that learned the payload.
    """

    sim: SimResult
    delivered: bool
    payload: Any
    informed: int

    @property
    def duration(self) -> int:
        """Time complexity of the run (slots)."""
        return self.sim.duration

    @property
    def max_energy(self) -> int:
        """Worst-vertex energy — the paper's energy complexity measure."""
        return self.sim.max_energy

    @property
    def mean_energy(self) -> float:
        return self.sim.mean_energy


def source_inputs(source: int, payload: Any):
    return {source: {"source": True, "payload": payload}}


def _verify(result: SimResult, payload: Any, n: int) -> BroadcastOutcome:
    informed = sum(1 for out in result.outputs if out == payload)
    return BroadcastOutcome(
        sim=result,
        delivered=(informed == n),
        payload=payload,
        informed=informed,
    )


def run_broadcast_trials(
    graph: Graph,
    model: ChannelModel,
    protocol_factory: Callable[[NodeCtx], Any],
    seeds: Sequence[int],
    source: int = 0,
    payload: Any = "m",
    knowledge: Optional[Knowledge] = None,
    uids: Optional[Sequence[int]] = None,
    time_limit: int = 200_000_000,
    record_trace: bool = False,
    resolution: str = "bitmask",
    lockstep: bool = False,
    stepping: str = "phase",
    observer_factory: Optional[Callable[[int], Sequence[SlotObserver]]] = None,
) -> List[BroadcastOutcome]:
    """Run one broadcast cell across many seeds on the batched engine core.

    Graph preprocessing, knowledge, and uid setup happen once; each trial
    is one seeded run (see :func:`repro.sim.batch.run_trials`, including
    the ``resolution`` backend switch, lock-step batching, and per-seed
    ``observer_factory``).  Returns one verified
    :class:`BroadcastOutcome` per seed, in order.
    """
    results = run_trials(
        graph,
        model,
        protocol_factory,
        seeds,
        inputs=source_inputs(source, payload),
        knowledge=knowledge,
        uids=uids,
        time_limit=time_limit,
        record_trace=record_trace,
        resolution=resolution,
        lockstep=lockstep,
        stepping=stepping,
        observer_factory=observer_factory,
    )
    return [_verify(result, payload, graph.n) for result in results]


def run_broadcast(
    graph: Graph,
    model: ChannelModel,
    protocol_factory: Callable[[NodeCtx], Any],
    source: int = 0,
    payload: Any = "m",
    seed: int = 0,
    knowledge: Optional[Knowledge] = None,
    uids: Optional[Sequence[int]] = None,
    time_limit: int = 200_000_000,
    record_trace: bool = False,
) -> BroadcastOutcome:
    """Run one broadcast protocol and verify delivery."""
    return run_broadcast_trials(
        graph,
        model,
        protocol_factory,
        (seed,),
        source=source,
        payload=payload,
        knowledge=knowledge,
        uids=uids,
        time_limit=time_limit,
        record_trace=record_trace,
    )[0]
