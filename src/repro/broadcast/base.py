"""Common runner and result type for Broadcast experiments.

Protocol convention: a broadcast protocol factory receives a
:class:`~repro.sim.node.NodeCtx`; the source vertex has
``ctx.inputs == {"source": True, "payload": <m>}``; every vertex's
generator must *return* the payload it learned (or None).  Delivery is
verified by comparing every output against the source's payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.graphs.graph import Graph
from repro.sim.batch import run_trials
from repro.sim.config import UNSET, ExecutionConfig, resolve_exec_config
from repro.sim.engine import SimResult
from repro.sim.models import ChannelModel
from repro.sim.node import Knowledge, NodeCtx

__all__ = [
    "BroadcastOutcome",
    "run_broadcast",
    "run_broadcast_trials",
    "source_inputs",
]


@dataclass
class BroadcastOutcome:
    """A broadcast run plus its verification verdict.

    Attributes:
        sim: the raw simulation result (per-node energy, duration, trace).
        delivered: True iff every vertex returned the payload.
        payload: the broadcast message.
        informed: number of vertices that learned the payload.
    """

    sim: SimResult
    delivered: bool
    payload: Any
    informed: int

    @property
    def duration(self) -> int:
        """Time complexity of the run (slots)."""
        return self.sim.duration

    @property
    def max_energy(self) -> int:
        """Worst-vertex energy — the paper's energy complexity measure."""
        return self.sim.max_energy

    @property
    def mean_energy(self) -> float:
        return self.sim.mean_energy


def source_inputs(source: int, payload: Any):
    return {source: {"source": True, "payload": payload}}


def _verify(result: SimResult, payload: Any, n: int) -> BroadcastOutcome:
    informed = sum(1 for out in result.outputs if out == payload)
    return BroadcastOutcome(
        sim=result,
        delivered=(informed == n),
        payload=payload,
        informed=informed,
    )


#: Broadcast runs idle across long per-hop backoffs, so their default
#: slot budget is deeper than the bare engine's.
BROADCAST_TIME_LIMIT = 200_000_000


def run_broadcast_trials(
    graph: Graph,
    model: ChannelModel,
    protocol_factory: Callable[[NodeCtx], Any],
    seeds: Sequence[int],
    source: int = 0,
    payload: Any = "m",
    # Keyword-only from here: exec_config displaced the old positional
    # slots, so a stale positional call fails loudly instead of binding
    # to the wrong parameter.
    *,
    knowledge: Optional[Knowledge] = None,
    uids: Optional[Sequence[int]] = None,
    exec_config: Optional[ExecutionConfig] = None,
    time_limit: Any = UNSET,
    record_trace: Any = UNSET,
    resolution: Any = UNSET,
    lockstep: Any = UNSET,
    stepping: Any = UNSET,
    observer_factory: Any = UNSET,
) -> List[BroadcastOutcome]:
    """Run one broadcast cell across many seeds on the batched engine core.

    Graph preprocessing, knowledge, and uid setup happen once; each trial
    is one seeded run (see :func:`repro.sim.batch.run_trials`, including
    the ``exec_config`` resolution-backend switch, lock-step batching,
    and per-seed ``observer_factory`` hook).  The per-knob keyword
    arguments are the deprecated forms of the matching config fields.
    Returns one verified :class:`BroadcastOutcome` per seed, in order.
    """
    config = resolve_exec_config(
        exec_config,
        dict(
            time_limit=time_limit,
            record_trace=record_trace,
            resolution=resolution,
            lockstep=lockstep,
            stepping=stepping,
            observer_factory=observer_factory,
        ),
        where="run_broadcast_trials",
    )
    results = run_trials(
        graph,
        model,
        protocol_factory,
        seeds,
        inputs=source_inputs(source, payload),
        knowledge=knowledge,
        uids=uids,
        exec_config=config.replace(
            time_limit=config.resolved_time_limit(BROADCAST_TIME_LIMIT)
        ),
    )
    return [_verify(result, payload, graph.n) for result in results]


def run_broadcast(
    graph: Graph,
    model: ChannelModel,
    protocol_factory: Callable[[NodeCtx], Any],
    source: int = 0,
    payload: Any = "m",
    seed: int = 0,
    *,
    knowledge: Optional[Knowledge] = None,
    uids: Optional[Sequence[int]] = None,
    exec_config: Optional[ExecutionConfig] = None,
    time_limit: Any = UNSET,
    record_trace: Any = UNSET,
) -> BroadcastOutcome:
    """Run one broadcast protocol and verify delivery."""
    config = resolve_exec_config(
        exec_config,
        dict(time_limit=time_limit, record_trace=record_trace),
        where="run_broadcast",
    )
    return run_broadcast_trials(
        graph,
        model,
        protocol_factory,
        (seed,),
        source=source,
        payload=payload,
        knowledge=knowledge,
        uids=uids,
        exec_config=config,
    )[0]
