"""Common runner and result type for Broadcast experiments.

Protocol convention: a broadcast protocol factory receives a
:class:`~repro.sim.node.NodeCtx`; the source vertex has
``ctx.inputs == {"source": True, "payload": <m>}``; every vertex's
generator must *return* the payload it learned (or None).  Delivery is
verified by comparing every output against the source's payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.graphs.graph import Graph
from repro.sim.engine import SimResult, Simulator
from repro.sim.models import ChannelModel
from repro.sim.node import Knowledge, NodeCtx

__all__ = ["BroadcastOutcome", "run_broadcast", "source_inputs"]


@dataclass
class BroadcastOutcome:
    """A broadcast run plus its verification verdict.

    Attributes:
        sim: the raw simulation result (per-node energy, duration, trace).
        delivered: True iff every vertex returned the payload.
        payload: the broadcast message.
        informed: number of vertices that learned the payload.
    """

    sim: SimResult
    delivered: bool
    payload: Any
    informed: int

    @property
    def duration(self) -> int:
        """Time complexity of the run (slots)."""
        return self.sim.duration

    @property
    def max_energy(self) -> int:
        """Worst-vertex energy — the paper's energy complexity measure."""
        return self.sim.max_energy

    @property
    def mean_energy(self) -> float:
        return self.sim.mean_energy


def source_inputs(source: int, payload: Any):
    return {source: {"source": True, "payload": payload}}


def run_broadcast(
    graph: Graph,
    model: ChannelModel,
    protocol_factory: Callable[[NodeCtx], Any],
    source: int = 0,
    payload: Any = "m",
    seed: int = 0,
    knowledge: Optional[Knowledge] = None,
    uids: Optional[Sequence[int]] = None,
    time_limit: int = 200_000_000,
    record_trace: bool = False,
) -> BroadcastOutcome:
    """Run one broadcast protocol and verify delivery."""
    sim = Simulator(
        graph,
        model,
        seed=seed,
        time_limit=time_limit,
        knowledge=knowledge,
        uids=uids,
        record_trace=record_trace,
    )
    result = sim.run(protocol_factory, inputs=source_inputs(source, payload))
    informed = sum(1 for out in result.outputs if out == payload)
    return BroadcastOutcome(
        sim=result,
        delivered=(informed == graph.n),
        payload=payload,
        informed=informed,
    )
