"""Baseline broadcast algorithms.

* :func:`decay_broadcast_protocol` — the seminal Decay algorithm of
  Bar-Yehuda, Goldreich and Itai [4]: time-efficient
  (O((D + log n) log Delta log n) slots here), but every uninformed vertex
  listens continuously, so per-vertex energy grows with D.  This is the
  paper's motivating contrast: time-optimal-ish, energy-terrible.
* :func:`local_flood_protocol` — trivial LOCAL flooding: optimal O(D)
  rounds, energy up to O(D) for vertices far from the source that listen
  from slot 0.

Both work in any collision model (decay never relies on collision
detection; LOCAL flooding is LOCAL-only).
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.core.sr_comm import DecayParams, Role, sr_nocd
from repro.sim.actions import Idle, Send
from repro.sim.plan import ListenUntil
from repro.sim.node import NodeCtx
from repro.util import ceil_log2

__all__ = [
    "decay_broadcast_protocol",
    "local_flood_protocol",
    "decay_broadcast_slots",
]


def decay_broadcast_slots(n: int, max_degree: int, diameter: int, failure: float) -> int:
    params = DecayParams.for_graph(max_degree, failure)
    rounds = _decay_rounds(n, diameter, failure)
    return rounds * params.frame_length


def _decay_rounds(n: int, diameter: int, failure: float) -> int:
    # Each frame advances the informed frontier one hop w.h.p.; D + O(log n)
    # frames suffice (standard pipelined-decay analysis).
    return diameter + 2 * ceil_log2(max(2, n)) + 4


def decay_broadcast_protocol(
    failure: Optional[float] = None,
    relay_rounds: Optional[int] = None,
):
    """Factory for the BGI Decay broadcast baseline.

    Args:
        failure: per-frame SR failure probability (default 1/n^2).
        relay_rounds: how many frames an informed vertex keeps
            retransmitting (default: until the schedule ends, the classic
            energy-oblivious behaviour).
    """

    def protocol(ctx: NodeCtx):
        n = ctx.n
        f = failure if failure is not None else 1.0 / (n * n)
        diameter = ctx.diameter if ctx.diameter is not None else n - 1
        params = DecayParams.for_graph(ctx.max_degree, f)
        rounds = _decay_rounds(n, diameter, f)
        payload: Optional[Any] = (
            ctx.inputs.get("payload") if ctx.inputs.get("source") else None
        )
        sends_left = relay_rounds if relay_rounds is not None else rounds
        one_frame = DecayParams(
            slots_per_phase=params.slots_per_phase, phases=params.phases
        )
        for _ in range(rounds):
            if payload is not None:
                if sends_left > 0:
                    yield from sr_nocd(ctx, Role.SENDER, payload, one_frame)
                    sends_left -= 1
                else:
                    yield from sr_nocd(ctx, Role.IDLE, None, one_frame)
            else:
                received = yield from sr_nocd(ctx, Role.RECEIVER, None, one_frame)
                if received is not None:
                    payload = received
        return payload

    return protocol


def local_flood_protocol():
    """Factory for one-slot-per-round LOCAL flooding.

    Round r: every vertex informed before round r transmits once (then
    quits); uninformed vertices listen.  Time D+1 rounds of 1 slot.

    Phase-compiled: an uninformed vertex's whole listening phase is one
    ``ListenUntil`` plan (listen until the first non-empty LOCAL
    feedback); it then transmits once in the next round — ``ctx.time``
    tells it which round that is — and idles out the schedule.  Slot
    pattern and results are byte-identical to the per-slot loop.
    """

    def protocol(ctx: NodeCtx):
        diameter = ctx.diameter if ctx.diameter is not None else ctx.n - 1
        payload: Optional[Any] = (
            ctx.inputs.get("payload") if ctx.inputs.get("source") else None
        )
        rounds = diameter + 1
        send_round = 0
        if payload is None:
            feedback = yield ListenUntil(rounds)
            if feedback is None:
                # Nothing arrived within the schedule.
                return None
            payload = feedback[0]
            send_round = ctx.time  # the round right after the reception
        if send_round < rounds:
            yield Send(payload)
            remaining = rounds - send_round - 1
            if remaining:
                yield Idle(remaining)
        return payload

    return protocol
