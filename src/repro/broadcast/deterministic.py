"""Deterministic Broadcast algorithms (Appendix A).

* :func:`det_local_broadcast_protocol` — Theorem 25 (LOCAL):
  O(log n) iterations of [compute a (3, O(log N))-ruling set of the
  cluster graph G_L, then re-label with the ruling set as survivors].
  The ruling set is the parallel bottom-up prefix merge of [3]: process
  ID-prefix classes from leaves to root; at each level keep the left
  class's set and drop right-class members within G_L-distance 2,
  detected with two mark-flooding G_L rounds (each simulated by
  Down-cast / All-cast / Up-cast with prefix-tagged marks).
* :func:`det_cd_broadcast_protocol` — Theorem 27 (CD):
  clusters are rooted trees driven by the deterministic interval
  transmissions of Lemma 28; the (2, log N)-ruling set of Lemma 26 runs
  its prefix recursion *sequentially* (CD has collisions, unlike LOCAL);
  non-ruling clusters then merge toward ruling clusters for O(log N)
  rounds; the final broadcast uses Lemma 10 casts over Lemma 24's
  deterministic SR-communication.

Both protocols use no randomness at all — outputs depend only on the
graph and the ID assignment.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.core.casts import all_cast, down_cast, up_cast
from repro.core.clustering import broadcast_on_labeling, refine_labeling
from repro.core.det_tree import (
    DetCDScheme,
    det_down_cast,
    det_downward,
    det_up_cast,
    det_upward,
    downward_slots,
    upward_slots,
)
from repro.core.schemes import SRScheme
from repro.core.sr_comm import Role, sr_det_cd_payload, det_frame_length
from repro.sim.actions import Idle
from repro.sim.node import NodeCtx
from repro.util import ceil_log2

__all__ = ["det_local_broadcast_protocol", "det_cd_broadcast_protocol"]


# ---------------------------------------------------------------------------
# Theorem 25: deterministic LOCAL
# ---------------------------------------------------------------------------


def _accept_mark(lvl: int, my_prefix: int, tag: int):
    def accept(message) -> bool:
        return (
            isinstance(message, tuple)
            and len(message) == 4
            and message[0] == "mark"
            and message[1] == (lvl, tag)
            and message[2] == my_prefix
        )

    return accept


def _gl_mark_round(
    ctx: NodeCtx,
    scheme: SRScheme,
    label: int,
    max_layers: int,
    sending: bool,
    lvl: int,
    my_prefix: int,
    tag: int,
):
    """One G_L mark-flooding round: marked clusters shout, every cluster
    whose boundary hears a same-prefix mark reports it to its root.
    Returns True iff this vertex's root-ward sweep saw the mark (at the
    root this means: some cluster within G_L-distance 1 was marked)."""
    mark = ("mark", (lvl, tag), my_prefix, True)
    accept = _accept_mark(lvl, my_prefix, tag)
    held = mark if (sending and label == 0) else None
    # Spread the mark through marked clusters (roots know `sending`).
    held = yield from down_cast(
        ctx, scheme, label, held, max_layers, accept=accept
    )
    # Exchange across cluster boundaries.
    held = yield from all_cast(ctx, scheme, held, accept=accept)
    # Report back to roots.
    held = yield from up_cast(ctx, scheme, label, held, max_layers, accept=accept)
    return held is not None


def det_local_broadcast_protocol(
    iterations: Optional[int] = None,
    gl_diameter_bound: int = 1,
):
    """Factory for the Theorem 25 deterministic LOCAL broadcast."""

    def protocol(ctx: NodeCtx):
        n = ctx.n
        id_space = ctx.id_space or n
        bits = max(1, ceil_log2(max(2, id_space)))
        scheme = SRScheme("LOCAL", ctx.max_degree)
        iters = iterations if iterations is not None else ceil_log2(max(2, n)) + 2
        label = 0

        for _ in range(iters):
            # Every vertex learns its cluster's root ID (cid) by a plain
            # Down-cast of root IDs along parent chains.
            cid = yield from down_cast(
                ctx, scheme, label,
                ctx.uid if label == 0 else None, n,
            )
            id0 = cid - 1

            # Parallel prefix-merge ruling set over G_L.
            in_ruling = label == 0
            for lvl in range(bits - 1, -1, -1):
                my_prefix = id0 >> (bits - lvl)
                my_bit = (id0 >> (bits - lvl - 1)) & 1
                marked = in_ruling and my_bit == 0
                # Members learn `marked` from the root implicitly: only
                # roots seed marks, members just relay (down_cast starts
                # the value at layer 0).
                near1 = yield from _gl_mark_round(
                    ctx, scheme, label, n, marked, lvl, my_prefix, 1
                )
                # Distance-2 relay: clusters marked or at distance 1 shout.
                relay = marked or (near1 and label == 0)
                near2 = yield from _gl_mark_round(
                    ctx, scheme, label, n, relay, lvl, my_prefix, 2
                )
                if (
                    in_ruling
                    and my_bit == 1
                    and label == 0
                    and (near1 or near2)
                ):
                    in_ruling = False

            # Re-label with ruling-set members as survivors.
            label = yield from refine_labeling(
                ctx, scheme, label,
                survive_p=0.0, spread_s=2 * bits + 2, max_layers=n,
                survive=in_ruling if label == 0 else False,
            )

        payload = ctx.inputs.get("payload") if ctx.inputs.get("source") else None
        payload = yield from broadcast_on_labeling(
            ctx, scheme, label, payload, n, gl_diameter_bound
        )
        return payload

    return protocol


# ---------------------------------------------------------------------------
# Theorem 27: deterministic CD
# ---------------------------------------------------------------------------


def _tree_mark_round(
    ctx: NodeCtx,
    parent_uid,
    label: int,
    max_layers: int,
    id_space: int,
    sending: bool,
    listening: bool,
    engaged: bool = True,
):
    """One CD* round on the cluster graph (Lemma 29): Down-cast the mark
    inside sending clusters, one deterministic All-cast across boundaries,
    Up-cast receptions to the root.  Returns True iff the mark reached
    this vertex's root-ward path.

    Vertices whose cluster is outside the scheduled prefix class pass
    ``engaged=False`` and sleep through the whole round (this is what
    keeps per-vertex energy at O(log N) participations per level)."""
    sweep = max(0, max_layers - 1)
    round_slots = (
        sweep * downward_slots(id_space)
        + (det_frame_length(id_space) + id_space)
        + sweep * upward_slots(id_space)
    )
    if not engaged:
        if round_slots:
            yield Idle(round_slots)
        return False
    held: Optional[Any] = ("m",) if (sending and label == 0) else None
    held = yield from det_down_cast(
        ctx, label, parent_uid, held, max_layers, id_space,
        transform=lambda m: m,
    )
    # All-cast: marked members transmit; listening-cluster members receive.
    got = yield from sr_det_cd_payload(
        ctx,
        Role.SENDER if held is not None else (
            Role.RECEIVER if listening else Role.IDLE
        ),
        ctx.uid if held is not None else None,
        held,
        id_space,
    )
    if held is None and got is not None:
        held = ("m",)
    held = yield from det_up_cast(
        ctx, label, parent_uid, held, max_layers, id_space,
        transform=lambda m: ("m",),
    )
    return held is not None


def det_cd_broadcast_protocol(
    iterations: Optional[int] = None,
    merge_rounds: Optional[int] = None,
    gl_diameter_bound: Optional[int] = None,
):
    """Factory for the Theorem 27 deterministic CD broadcast."""

    def protocol(ctx: NodeCtx):
        n = ctx.n
        id_space = ctx.id_space or n
        bits = max(1, ceil_log2(max(2, id_space)))
        iters = iterations if iterations is not None else ceil_log2(max(2, n)) + 2
        rounds = merge_rounds if merge_rounds is not None else bits + 2

        cid = ctx.uid
        label = 0
        parent_uid: Optional[int] = None
        max_layers = 1

        for _ in range(iters):
            cid, label, parent_uid = yield from _det_cd_iteration(
                ctx, bits, id_space, rounds, cid, label, parent_uid, max_layers
            )
            max_layers = min(n, (max_layers + 1) * (rounds + 2))

        payload = ctx.inputs.get("payload") if ctx.inputs.get("source") else None
        scheme = DetCDScheme(id_space)
        d_bound = gl_diameter_bound if gl_diameter_bound is not None else n - 1
        payload = yield from broadcast_on_labeling(
            ctx, scheme, label, payload, n, d_bound
        )
        return payload

    return protocol


def _det_cd_iteration(
    ctx: NodeCtx,
    bits: int,
    id_space: int,
    rounds: int,
    cid: int,
    label: int,
    parent_uid,
    max_layers: int,
):
    """One clustering iteration: Lemma 26 ruling set (sequential prefix
    recursion, CD*-simulated on the cluster graph), then O(log N) merge
    rounds absorbing every cluster into a ruling cluster's group."""
    id0 = cid - 1
    in_ruling = label == 0  # roots only; members carry False harmlessly

    # --- Lemma 26: sequential prefix recursion ---------------------------
    # Levels bottom-up; within a level, classes in prefix order.  Every
    # vertex knows its class from cid, so the global schedule is implicit.
    for lvl in range(bits - 1, -1, -1):
        for prefix in range(2**lvl):
            my_class = (id0 >> (bits - lvl)) == prefix
            my_bit = (id0 >> (bits - lvl - 1)) & 1
            # Roots seed marks only when in the left child's ruling set;
            # members relay value-driven, so the flag matters at roots.
            sending = my_bit == 0 and in_ruling
            listening = my_class and my_bit == 1
            heard = yield from _tree_mark_round(
                ctx, parent_uid, label, max_layers, id_space,
                sending, listening, engaged=my_class,
            )
            if label == 0 and in_ruling and my_class and my_bit == 1 and heard:
                in_ruling = False

    # --- merge toward ruling clusters ------------------------------------
    # State in the new clustering: (group cid, new label, new parent).
    assigned: Optional[Tuple[int, int, Optional[int]]] = None
    if in_ruling and label == 0:
        assigned = (cid, 0, None)
    elif label > 0:
        assigned = None  # members learn via the down-casts below

    # Ruling clusters keep their structure; announce to members.
    keep = yield from det_down_cast(
        ctx, label, parent_uid,
        ("keep", cid) if assigned is not None and label == 0 else None,
        max_layers, id_space, transform=lambda m: m,
    )
    if assigned is None and keep is not None and keep[0] == "keep":
        assigned = (keep[1], label, parent_uid)

    for merge_round in range(rounds):
        # Requests: assigned members transmit (group, their new label);
        # unassigned members listen.
        role = Role.SENDER if assigned is not None else Role.RECEIVER
        got = yield from sr_det_cd_payload(
            ctx, role,
            ctx.uid if assigned is not None else None,
            ("req", assigned[0], assigned[1]) if assigned is not None else None,
            id_space,
        )
        candidate = None
        if assigned is None and got is not None and got[1][0] == "req":
            sender_uid, req = got
            candidate = (ctx.uid, req[1], req[2] + 1, sender_uid)
            # (token=own uid, group cid, my new label, new parent uid)

        if assigned is None:
            root_value = yield from det_up_cast(
                ctx, label, parent_uid, candidate, max_layers, id_space,
                transform=lambda m: m[1],
            )
            winner_init = root_value if label == 0 else None
            winner = yield from det_down_cast(
                ctx, label, parent_uid, winner_init, max_layers, id_space,
                transform=lambda m: m,
            )
            if winner is None and label == 0 and candidate is not None:
                winner = candidate
            # Relabel through v*.
            relabel = None
            new_parent_cell = [None]
            if (
                winner is not None
                and candidate is not None
                and winner[0] == candidate[0]
            ):
                new_parent_cell[0] = candidate[3]
                relabel = (candidate[1], candidate[2])

            def bump_up(message):
                child_uid, payload = message
                new_parent_cell[0] = child_uid
                return (payload[0], payload[1] + 1)

            def bump_down(message):
                new_parent_cell[0] = None  # parent stays the old parent
                return (message[0], message[1] + 1)

            relabel = yield from det_up_cast(
                ctx, label, parent_uid, relabel, max_layers, id_space,
                transform=bump_up,
            )
            relabel = yield from det_down_cast(
                ctx, label, parent_uid, relabel, max_layers, id_space,
                transform=bump_down,
            )
            if relabel is not None:
                new_parent = (
                    new_parent_cell[0]
                    if new_parent_cell[0] is not None
                    else parent_uid
                )
                assigned = (relabel[0], relabel[1], new_parent)
        else:
            sweep = max(0, max_layers - 1)
            up_len = sweep * upward_slots(id_space)
            down_len = sweep * downward_slots(id_space)
            total = 2 * (up_len + down_len)
            if total:
                yield Idle(total)

    if assigned is None:
        assigned = (cid, label, parent_uid)
    return assigned
