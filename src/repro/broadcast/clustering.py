"""Energy-efficient Broadcast by iterative clustering (Section 5).

Implements Theorem 11 (LOCAL / CD / No-CD) and Theorem 12 (the CD
time-energy tradeoff): start from the trivial all-zero good labeling,
repeatedly thin out the layer-0 roots with :func:`refine_labeling`, then
run Lemma 10's cast schedule over the final labeling to deliver the
payload.

The protocol returns the payload the vertex learned; pass
``return_labels=True`` to get ``(payload, final_label)`` for labeling
diagnostics (used by tests that check goodness and root counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.clustering import broadcast_on_labeling, refine_labeling
from repro.core.schemes import SRScheme
from repro.sim.node import NodeCtx
from repro.util import ceil_log2

__all__ = [
    "ClusterBroadcastParams",
    "theorem11_params",
    "theorem12_params",
    "cluster_broadcast_protocol",
]


@dataclass(frozen=True)
class ClusterBroadcastParams:
    """Knobs of the Section 5 algorithm.

    Attributes:
        model_name: "LOCAL", "CD" or "No-CD".
        survive_p: probability a root survives a refinement (paper's p).
        spread_s: cast repetitions per refinement (paper's s).
        iterations: number of refinements.
        gl_diameter_bound: Lemma 10's d for the final broadcast.
        failure: SR-communication failure probability f.
        probe: use Remark 9 probes (CD only; defaults on for CD).
    """

    model_name: str
    survive_p: float
    spread_s: int
    iterations: int
    gl_diameter_bound: int
    failure: float
    probe: bool = False


def theorem11_params(
    n: int,
    model_name: str,
    failure: Optional[float] = None,
    iterations: Optional[int] = None,
) -> ClusterBroadcastParams:
    """Theorem 11 setting: p = 1/2, s = 1, O(log n) refinements.

    Each refinement keeps a root with probability <= 3/4 (+ SR failures),
    so 4 log2 n + 6 refinements leave one root w.h.p.; we broadcast with a
    small constant d as slack for the low-probability multi-root outcome.
    """
    log_n = ceil_log2(max(2, n))
    return ClusterBroadcastParams(
        model_name=model_name,
        survive_p=0.5,
        spread_s=1,
        iterations=iterations if iterations is not None else 4 * log_n + 6,
        gl_diameter_bound=1,
        failure=failure if failure is not None else 1.0 / (n * n),
        probe=(model_name == "CD"),
    )


def theorem12_params(
    n: int,
    epsilon: float = 0.5,
    failure: Optional[float] = None,
    iterations: Optional[int] = None,
) -> ClusterBroadcastParams:
    """Theorem 12 (CD): p = log^{-eps/2} n, s = log n.

    Root-retention probability per refinement is O(log^{-eps/2} n) while
    more than log n roots remain, so O(log n / (eps log log n)) refinements
    leave at most ~log n roots; the final Lemma 10 call uses d = log n.
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0,1), got {epsilon}")
    log_n = ceil_log2(max(4, n))
    loglog_n = max(1.0, math.log2(log_n))
    p = float(log_n) ** (-epsilon / 2.0)
    if iterations is None:
        iterations = max(2, math.ceil(3.0 * log_n / (epsilon * loglog_n)))
    return ClusterBroadcastParams(
        model_name="CD",
        survive_p=p,
        spread_s=log_n,
        iterations=iterations,
        gl_diameter_bound=log_n + 1,
        failure=failure if failure is not None else 1.0 / (n * n),
        probe=True,
    )


def cluster_broadcast_protocol(
    params: ClusterBroadcastParams, return_labels: bool = False
):
    """Factory for the Section 5 broadcast protocol."""

    def protocol(ctx: NodeCtx):
        scheme = SRScheme(
            params.model_name,
            ctx.max_degree,
            failure=params.failure,
            probe=params.probe,
        )
        max_layers = ctx.n
        label = 0
        for _ in range(params.iterations):
            label = yield from refine_labeling(
                ctx,
                scheme,
                label,
                survive_p=params.survive_p,
                spread_s=params.spread_s,
                max_layers=max_layers,
            )
        payload = ctx.inputs.get("payload") if ctx.inputs.get("source") else None
        payload = yield from broadcast_on_labeling(
            ctx,
            scheme,
            label,
            payload,
            max_layers,
            params.gl_diameter_bound,
        )
        if return_labels:
            return (payload, label)
        return payload

    return protocol
