"""Broadcast on a path (Section 8, Algorithm 1, Theorem 21).

Every vertex samples a blocking time B = 2^b with Pr(b = i) = 2^-i (capped
at n, with n rounded up to a power of two).  At paper-time t = 1 each
vertex tells its downstream neighbor when its next message will come and
sets a SendAlarm for time B.  Until B the vertex merely *tracks* upstream
traffic through these "next message after i" synchronization promises,
listening only at promised times; from B on it forwards everything it
receives with a one-slot lag.  At B it either releases the payload (if the
payload already arrived) or re-promises, and the promise algebra
guarantees nobody ever listens at a dead slot: a vertex that receives at
time t >= B forwards the verbatim message at t+1, and a forwarded
"next after i" is exactly correct for the next hop.

The model is full-duplex LOCAL (Section 8: "we will assume we are working
in the full duplex LOCAL model").  Guarantees (Theorem 21): worst-case
time <= 2n slots; expected per-vertex energy O(log n).

Two modes:

* oriented — each vertex knows which port faces the source (the
  pseudocode's setting); requires ``source == 0``.
* unoriented — each vertex runs one instance per neighbor-as-upstream, as
  the paper prescribes, doubling energy; works for any source position.

Messages are addressed by neighbor port; in the simulator this is encoded
with vertex indices, standing in for the physical "which of my two
neighbors sent this" information a radio gets for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.sim.actions import Idle, Listen, Send, SendListen
from repro.sim.plan import Steps
from repro.sim.node import NodeCtx
from repro.util import ceil_log2, geometric

__all__ = ["path_broadcast_protocol", "sample_blocking_time"]

_SYNC = "sync"  # part = (_SYNC, i): "next message after i timesteps"
_PAYLOAD = "payload"  # part = (_PAYLOAD, m)


def sample_blocking_time(rng, n_pow2: int) -> int:
    """Sample B: Pr(B = 2^b) = 2^-b for 1 <= b < log2 n, else B = n."""
    log_n = max(1, ceil_log2(n_pow2))
    b = geometric(rng, 0.5)
    return 2 ** min(b, log_n)


@dataclass
class _Instance:
    """One directional run of Algorithm 1 at one vertex."""

    upstream: Optional[int]
    downstream: Optional[int]
    blocking_time: int
    is_source: bool
    payload: Any = None
    sends: Dict[int, Any] = field(default_factory=dict)  # paper-time -> part
    listens: Set[int] = field(default_factory=set)
    send_alarm: Optional[int] = None
    got_payload: bool = False
    done: bool = False
    _quit_after: Optional[int] = None

    def start(self) -> None:
        if self.is_source:
            self.got_payload = True
            if self.downstream is not None:
                self.sends[1] = (_PAYLOAD, self.payload)
                self._quit_after = 1
            else:
                self.done = True
            return
        if self.downstream is not None:
            self.sends[1] = (_SYNC, self.blocking_time - 1)
            self.send_alarm = self.blocking_time
        if self.upstream is not None:
            self.listens.add(1)
        if self.downstream is None and self.upstream is None:
            self.done = True

    # -- event handling ------------------------------------------------

    def before_slot(self, t: int) -> None:
        """Decide the SendAlarm transmission for paper-time t (the content
        may not depend on what arrives during slot t itself)."""
        if self.send_alarm != t or self.done:
            return
        self.send_alarm = None
        if self.got_payload:
            self.sends[t] = (_PAYLOAD, self.payload)
            self._quit_after = t
            return
        future = [x for x in self.listens if x >= t]
        if future:
            next_alarm = min(future)
            self.sends[t] = (_SYNC, next_alarm + 1 - t)
        else:
            # Upstream went silent without delivering; nothing to promise.
            self._quit_after = t if t in self.sends else None
            if self._quit_after is None:
                self.done = True

    def receive(self, t: int, part) -> None:
        kind = part[0]
        if kind == _SYNC:
            self.listens.add(t + part[1])
        elif kind == _PAYLOAD:
            self.got_payload = True
            self.payload = part[1]
        if t >= self.blocking_time:
            # Forwarding mode: relay the verbatim part one slot later.
            if self.downstream is not None:
                self.sends[t + 1] = part
                if kind == _PAYLOAD:
                    self._quit_after = t + 1
            elif kind == _PAYLOAD:
                self.done = True

    def heard_nothing(self, t: int) -> None:
        """A scheduled listen produced silence: upstream quit."""
        if not any(x > t for x in self.listens) and self.send_alarm is None:
            if not any(x > t for x in self.sends):
                self.done = True

    def after_slot(self, t: int) -> None:
        self.listens.discard(t)
        self.sends.pop(t, None)
        if self._quit_after is not None and t >= self._quit_after:
            self.done = True
        if (
            not self.done
            and not self.listens
            and not self.sends
            and self.send_alarm is None
        ):
            self.done = True

    def next_event(self) -> Optional[int]:
        if self.done:
            return None
        times: List[int] = list(self.listens) + list(self.sends)
        if self.send_alarm is not None:
            times.append(self.send_alarm)
        return min(times) if times else None


def path_broadcast_protocol(oriented: bool = True):
    """Factory for Algorithm 1.

    Args:
        oriented: vertices know their upstream port (pseudocode setting;
            source must be vertex 0).  When False, each vertex runs both
            directional instances (the paper's general setting) at twice
            the energy.
    """

    def protocol(ctx: NodeCtx):
        n = ctx.n
        n_pow2 = 2 ** ceil_log2(max(2, n))
        v = ctx.index
        left = v - 1 if v > 0 else None
        right = v + 1 if v < n - 1 else None
        is_source = bool(ctx.inputs.get("source"))
        payload = ctx.inputs.get("payload")
        if oriented and is_source and v != 0:
            raise ValueError("oriented mode assumes the source is vertex 0")

        instances: List[_Instance] = []
        if oriented:
            instances.append(
                _Instance(left, right, sample_blocking_time(ctx.rng, n_pow2),
                          is_source, payload)
            )
        else:
            for upstream, downstream in ((left, right), (right, left)):
                instances.append(
                    _Instance(upstream, downstream,
                              sample_blocking_time(ctx.rng, n_pow2),
                              is_source, payload)
                )
        for inst in instances:
            inst.start()

        now = 0  # paper-time of the previous processed slot
        while True:
            upcoming = [
                t for t in (inst.next_event() for inst in instances)
                if t is not None
            ]
            if not upcoming:
                break
            t = min(upcoming)
            for inst in instances:
                inst.before_slot(t)
            # (before_slot may schedule sends at t)
            outgoing = []
            listening = False
            for inst in instances:
                if inst.done:
                    continue
                part = inst.sends.get(t)
                if part is not None and inst.downstream is not None:
                    outgoing.append((inst.downstream, part))
                if t in inst.listens:
                    listening = True
            # Each event step is one generator entry: the idle gap and the
            # slot's action travel together as a Steps plan (the feedback,
            # if any, is the plan result) — the per-slot equivalent yielded
            # Idle(gap) and the action separately.
            gap = (t - 1) - now  # engine slot for paper-time t is t-1
            feedback = None
            if outgoing and listening:
                act: Any = SendListen(("path", v, tuple(outgoing)))
            elif outgoing:
                act = Send(("path", v, tuple(outgoing)))
            elif listening:
                act = Listen()
            else:
                act = Idle(1)
            if gap > 0:
                if act.__class__ is Idle:
                    yield Idle(gap + 1)
                else:
                    heard_fb = yield Steps((Idle(gap), act))
                    if listening:
                        feedback = heard_fb[0]
            else:
                feedback = yield act
                if not listening:
                    feedback = None
            now = t

            heard: Dict[int, Any] = {}
            if feedback:
                for msg in feedback:
                    if isinstance(msg, tuple) and msg and msg[0] == "path":
                        _, sender, parts = msg
                        for to, part in parts:
                            if to == v:
                                heard[sender] = part
            for inst in instances:
                if inst.done:
                    continue
                if t in inst.listens:
                    part = heard.get(inst.upstream)
                    if part is not None:
                        inst.receive(t, part)
                    else:
                        inst.heard_nothing(t)
                inst.after_slot(t)

        for inst in instances:
            if inst.got_payload:
                return inst.payload
        return None

    return protocol
