"""Near-energy-optimal randomized Broadcast in CD (Section 7, Theorem 20).

High-level structure (Sections 7.1-7.3): maintain a clustering whose
clusters are rooted trees with designated parents identified by color
tuples; repeatedly run the Active/Wait/Halt group-merging procedure of
Section 7.2, implemented with the colored tree transmissions of
Section 7.1 (Downward failure-free, Upward via Lemma 8 with probe + ack);
finish with Lemma 10's broadcast over the final good labeling.

Per top-level iteration:

1. Lemma 19: (re-)learn Ind(u, parent(u)) for the current trees.
2. Every cluster tosses its shared coin: Active with probability p.
3. s merge rounds; in each round Active members SR-broadcast merging
   requests carrying (group id, group seed, new label, sender colors);
   each Wait cluster that heard requests elects one receiving vertex v*
   (tree Up-cast + Down-cast), re-roots and relabels through v*
   (Section 6.4 casts over tree edges), adopts the sender's group, and
   turns Active for the next round; senders Halt.

Parameters follow Theorem 20: p = 1/sqrt(log log Delta),
s = log log Delta, f = log^{-3/2} log Delta — all clamped to useful
ranges at simulable sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.core.cluster_casts import cluster_coin
from repro.core.clustering import broadcast_on_labeling
from repro.core.schemes import SRScheme
from repro.core.sr_comm import CDParams, Role, sr_cd
from repro.sim.actions import Idle
from repro.core.tree_clusters import (
    TreeParams,
    learn_ind,
    sample_colors,
    tree_down_cast,
    tree_up_cast,
)
from repro.sim.node import NodeCtx
from repro.util import ceil_log2

__all__ = ["CDOptimalParams", "cd_optimal_broadcast_protocol"]

_ACTIVE, _WAIT, _HALT = "active", "wait", "halt"


@dataclass(frozen=True)
class CDOptimalParams:
    """Knobs of the Theorem 20 algorithm."""

    xi: float
    survive_p: float
    rounds_s: int
    iterations: int
    request_failure: float
    tree_failure: float
    final_failure: float
    gl_diameter_bound: Optional[int] = None  # None -> n-1 (safe default)
    num_colorings: Optional[int] = None

    @classmethod
    def for_graph(
        cls,
        n: int,
        max_degree: int,
        xi: float = 0.5,
        iterations: Optional[int] = None,
        rounds_s: Optional[int] = None,
        survive_p: Optional[float] = None,
        request_failure: Optional[float] = None,
        gl_diameter_bound: Optional[int] = None,
        num_colorings: Optional[int] = None,
    ) -> "CDOptimalParams":
        loglog_d = max(2.0, math.log2(max(2.0, math.log2(max(4, max_degree)))) + 1)
        if survive_p is None:
            survive_p = min(0.5, 1.0 / math.sqrt(loglog_d))
        if rounds_s is None:
            rounds_s = max(2, math.ceil(loglog_d))
        if request_failure is None:
            request_failure = min(0.2, loglog_d ** (-1.5) + 0.05)
        if iterations is None:
            logloglog = max(1.0, math.log2(loglog_d))
            iterations = max(2, math.ceil(2.0 * ceil_log2(max(2, n)) / logloglog))
        return cls(
            xi=xi,
            survive_p=survive_p,
            rounds_s=rounds_s,
            iterations=iterations,
            request_failure=request_failure,
            tree_failure=0.02,
            final_failure=1.0 / (n * n),
            gl_diameter_bound=gl_diameter_bound,
            num_colorings=num_colorings,
        )


def cd_optimal_broadcast_protocol(
    params: Optional[CDOptimalParams] = None, return_labels: bool = False
):
    """Factory for the Theorem 20 protocol (CD model)."""

    def protocol(ctx: NodeCtx):
        n = ctx.n
        p = params or CDOptimalParams.for_graph(n, ctx.max_degree)
        tree = TreeParams.for_graph(
            n, ctx.max_degree, xi=p.xi, failure=p.tree_failure,
            num_colorings=p.num_colorings,
        )
        request_sr = CDParams.for_graph(
            ctx.max_degree, p.request_failure, probe=True
        )

        # Singleton clusters: every vertex roots itself.
        my_colors = sample_colors(ctx.rng, tree)
        cid = (ctx.rng.getrandbits(48) << 16) | (ctx.uid & 0xFFFF)
        seed = ctx.rng.getrandbits(64)
        label = 0
        parent_colors: Optional[Tuple[int, ...]] = None
        max_layers = 1

        for iteration in range(p.iterations):
            cid, seed, label, parent_colors = yield from _merge_iteration(
                ctx, p, tree, request_sr, iteration,
                cid, seed, label, parent_colors, my_colors, max_layers,
            )
            max_layers = min(n, (max_layers + 1) * (p.rounds_s + 2))

        payload = ctx.inputs.get("payload") if ctx.inputs.get("source") else None
        scheme = SRScheme(
            "CD", ctx.max_degree, failure=p.final_failure, probe=True
        )
        d_bound = p.gl_diameter_bound if p.gl_diameter_bound is not None else n - 1
        payload = yield from broadcast_on_labeling(
            ctx, scheme, label, payload, n, d_bound
        )
        if return_labels:
            return (payload, cid, label)
        return payload

    return protocol


def _merge_iteration(
    ctx: NodeCtx,
    p: CDOptimalParams,
    tree: TreeParams,
    request_sr: CDParams,
    iteration: int,
    cid: int,
    seed: int,
    label: int,
    parent_colors,
    my_colors,
    max_layers: int,
):
    """One Section 7.2 group-merging pass.  Returns the new
    (cid, seed, label, parent_colors)."""
    ind = yield from learn_ind(ctx, tree, my_colors, parent_colors)

    active = cluster_coin(seed, ("status", iteration), 0, p.survive_p)
    status = _ACTIVE if active else _WAIT
    # The vertex's state in the *new* clustering (its group).
    new_state: Optional[Tuple[int, int, int, Any]] = None
    if active:
        new_state = (cid, seed, label, parent_colors)

    sweep = (max_layers - 1) if max_layers > 1 else 0
    up_slots = sweep * tree.upward_slots
    down_slots = sweep * tree.downward_slots

    for merge_round in range(p.rounds_s):
        # --- merging requests ------------------------------------------
        got = None
        if status is _ACTIVE and new_state is not None:
            yield from sr_cd(
                ctx, Role.SENDER,
                ("req", new_state[0], new_state[1], new_state[2], my_colors),
                request_sr,
            )
            status = _HALT
        elif status is _WAIT:
            got = yield from sr_cd(ctx, Role.RECEIVER, None, request_sr)
            if got is not None and not (
                isinstance(got, tuple) and got and got[0] == "req"
            ):
                got = None
        else:
            yield from sr_cd(ctx, Role.IDLE, None, request_sr)

        # --- elect v* within Wait clusters ------------------------------
        participating = status is _WAIT
        candidate = None
        if participating and got is not None:
            token = ctx.rng.getrandbits(48)
            candidate = (token, got[1], got[2], got[3], got[4])
        if participating:
            root_value = yield from tree_up_cast(
                ctx, tree, label, candidate, max_layers,
                my_colors, parent_colors, ind, lambda m: m,
            )
            winner_init = root_value if label == 0 else None
            winner = yield from tree_down_cast(
                ctx, tree, label, winner_init, max_layers,
                my_colors, parent_colors, ind, lambda m: m,
            )
            if winner is None and label == 0 and candidate is not None:
                winner = candidate
        else:
            if up_slots:
                yield Idle(up_slots)
            if down_slots:
                yield Idle(down_slots)
            winner = None

        # --- relabel through v* (Section 6.4 over tree edges) -----------
        if participating and winner is not None:
            # Wire format: (gcid, gseed, sender_new_label, sender_colors).
            # A receiver adopts label sender_new_label + 1 and parent = the
            # relaying vertex; what it relays onward carries *its own*
            # colors, captured via new_parent_cell.
            new_parent_cell = [None]
            relabel = None
            if candidate is not None and winner[0] == candidate[0]:
                # I am v*: new label = requester's label + 1; new parent =
                # the requesting vertex (candidate carries its colors).
                new_parent_cell[0] = winner[4]
                relabel = (winner[1], winner[2], winner[3] + 1, my_colors)

            def bump(message):
                new_parent_cell[0] = message[3]
                return (message[0], message[1], message[2] + 1, my_colors)

            relabel = yield from tree_up_cast(
                ctx, tree, label, relabel,
                max_layers, my_colors, parent_colors, ind,
                bump,
            )
            relabel = yield from tree_down_cast(
                ctx, tree, label, relabel, max_layers,
                my_colors, parent_colors, ind, bump,
            )
            if relabel is not None and new_state is None:
                new_state = (relabel[0], relabel[1], relabel[2], new_parent_cell[0])
                status = _ACTIVE
        else:
            if up_slots:
                yield Idle(up_slots)
            if down_slots:
                yield Idle(down_slots)

    if new_state is None:
        new_state = (cid, seed, label, parent_colors)
    return new_state