"""Broadcast by simulating a LOCAL algorithm in No-CD (Theorem 3, Cor. 13).

The protocol has two phases:

1. Preprocessing (No-CD): Learn-degree + Two-Hop-Coloring produce a proper
   coloring of G + G^2 with 2 Delta^2 colors (Section 3.1).
2. Simulation: the LOCAL clustering broadcast of Theorem 11 runs over the
   TDMA schedule — block-slot j belongs to color j, so no two vertices
   within distance 2 ever transmit together and collisions vanish.

For Delta = O(1) this gives Corollary 13: O(n log n) time and O(log n)
energy Broadcast in No-CD on bounded-degree graphs.
"""

from __future__ import annotations

from typing import Optional

from repro.broadcast.clustering import cluster_broadcast_protocol, theorem11_params
from repro.core.coloring import ColoringParams, coloring_preprocess, simulate_local
from repro.sim.node import NodeCtx

__all__ = ["local_sim_broadcast_protocol"]


def local_sim_broadcast_protocol(
    failure: Optional[float] = None,
    coloring_params: Optional[ColoringParams] = None,
    inner_iterations: Optional[int] = None,
):
    """Factory for the Theorem 3 / Corollary 13 broadcast protocol.

    Args:
        failure: SR failure probability of the simulated LOCAL algorithm.
        coloring_params: override the preprocessing constants.
        inner_iterations: override the simulated algorithm's refinement
            count (testing hook).
    """

    def protocol(ctx: NodeCtx):
        params = coloring_params or ColoringParams(
            max_degree=ctx.max_degree, n=ctx.n
        )
        color, neighbor_colors = yield from coloring_preprocess(ctx, params)
        inner_params = theorem11_params(
            ctx.n, "LOCAL", failure=failure, iterations=inner_iterations
        )
        inner = cluster_broadcast_protocol(inner_params)(ctx)
        result = yield from simulate_local(
            ctx, inner, params.num_colors, color, neighbor_colors
        )
        return result

    return protocol
