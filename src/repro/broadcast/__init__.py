"""Broadcast algorithms: the paper's contributions plus baselines."""

from repro.broadcast.base import (
    BroadcastOutcome,
    run_broadcast,
    run_broadcast_trials,
    source_inputs,
)
from repro.broadcast.cd_optimal import CDOptimalParams, cd_optimal_broadcast_protocol
from repro.broadcast.clustering import (
    ClusterBroadcastParams,
    cluster_broadcast_protocol,
    theorem11_params,
    theorem12_params,
)
from repro.broadcast.deterministic import (
    det_cd_broadcast_protocol,
    det_local_broadcast_protocol,
)
from repro.broadcast.dtime import DTimeParams, dtime_broadcast_protocol
from repro.broadcast.flooding import decay_broadcast_protocol, local_flood_protocol
from repro.broadcast.local_sim import local_sim_broadcast_protocol
from repro.broadcast.path import path_broadcast_protocol

__all__ = [
    "BroadcastOutcome",
    "run_broadcast",
    "run_broadcast_trials",
    "source_inputs",
    "CDOptimalParams",
    "cd_optimal_broadcast_protocol",
    "ClusterBroadcastParams",
    "cluster_broadcast_protocol",
    "theorem11_params",
    "theorem12_params",
    "det_cd_broadcast_protocol",
    "det_local_broadcast_protocol",
    "DTimeParams",
    "dtime_broadcast_protocol",
    "decay_broadcast_protocol",
    "local_flood_protocol",
    "local_sim_broadcast_protocol",
    "path_broadcast_protocol",
]
