"""Growth-rate analysis for sweep results.

Turns sweep measurements into the quantities EXPERIMENTS.md reports:

* :func:`fit_power_law` — least-squares slope on log-log axes:
  cost ~ n^p.  Polylog costs show p -> 0 as n grows; linear costs show
  p ~ 1.  This is the quantitative version of the "flat ratio" check.
* :func:`fit_log_power` — least-squares exponent k for cost ~ (log n)^k.
* :func:`crossover_size` — first size at which one algorithm's cost drops
  below another's (e.g. where clustering starts beating decay).
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, Tuple

from repro.experiments.harness import SweepPoint

__all__ = ["fit_power_law", "fit_log_power", "crossover_size"]


def _least_squares_slope(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Slope and intercept of the least-squares line through (xs, ys)."""
    if len(xs) < 2:
        raise ValueError("need at least two points to fit")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("degenerate fit: all x values equal")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x


def fit_power_law(
    points: Sequence[SweepPoint],
    metric: Callable[[SweepPoint], float] = lambda p: p.max_energy_median,
) -> float:
    """Exponent p of metric ~ n^p (log-log least squares)."""
    xs = [math.log(point.n) for point in points]
    ys = [math.log(max(metric(point), 1e-9)) for point in points]
    slope, _ = _least_squares_slope(xs, ys)
    return slope


def fit_log_power(
    points: Sequence[SweepPoint],
    metric: Callable[[SweepPoint], float] = lambda p: p.max_energy_median,
) -> float:
    """Exponent k of metric ~ (log n)^k."""
    xs = [math.log(math.log(max(point.n, 3))) for point in points]
    ys = [math.log(max(metric(point), 1e-9)) for point in points]
    slope, _ = _least_squares_slope(xs, ys)
    return slope


def crossover_size(
    a: Sequence[SweepPoint],
    b: Sequence[SweepPoint],
    metric: Callable[[SweepPoint], float] = lambda p: p.max_energy_median,
) -> Optional[int]:
    """Smallest common n where metric(a) < metric(b); None if never.

    Both sweeps must cover the same sizes (extra sizes are ignored).
    """
    b_by_n = {point.n: point for point in b}
    for point in sorted(a, key=lambda p: p.n):
        other = b_by_n.get(point.n)
        if other is not None and metric(point) < metric(other):
            return point.n
    return None
