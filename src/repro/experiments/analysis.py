"""Growth-rate analysis for sweep results.

Turns sweep measurements into the quantities EXPERIMENTS.md reports:

* :func:`fit_power_law` — least-squares slope on log-log axes:
  cost ~ n^p.  Polylog costs show p -> 0 as n grows; linear costs show
  p ~ 1.  This is the quantitative version of the "flat ratio" check.
* :func:`fit_log_power` — least-squares exponent k for cost ~ (log n)^k.
* :func:`crossover_size` — first size at which one algorithm's cost drops
  below another's (e.g. where clustering starts beating decay).
* :func:`fault_degradation` — per-size clean-vs-faulted comparison of
  energy, latency, and success rate (the adversity layer's report).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import SweepPoint

__all__ = [
    "fit_power_law",
    "fit_log_power",
    "crossover_size",
    "fault_degradation",
]


def _least_squares_slope(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Slope and intercept of the least-squares line through (xs, ys)."""
    if len(xs) < 2:
        raise ValueError("need at least two points to fit")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("degenerate fit: all x values equal")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x


def fit_power_law(
    points: Sequence[SweepPoint],
    metric: Callable[[SweepPoint], float] = lambda p: p.max_energy_median,
) -> float:
    """Exponent p of metric ~ n^p (log-log least squares)."""
    xs = [math.log(point.n) for point in points]
    ys = [math.log(max(metric(point), 1e-9)) for point in points]
    slope, _ = _least_squares_slope(xs, ys)
    return slope


def fit_log_power(
    points: Sequence[SweepPoint],
    metric: Callable[[SweepPoint], float] = lambda p: p.max_energy_median,
) -> float:
    """Exponent k of metric ~ (log n)^k."""
    xs = [math.log(math.log(max(point.n, 3))) for point in points]
    ys = [math.log(max(metric(point), 1e-9)) for point in points]
    slope, _ = _least_squares_slope(xs, ys)
    return slope


def crossover_size(
    a: Sequence[SweepPoint],
    b: Sequence[SweepPoint],
    metric: Callable[[SweepPoint], float] = lambda p: p.max_energy_median,
) -> Optional[int]:
    """Smallest common n where metric(a) < metric(b); None if never.

    Both sweeps must cover the same sizes (extra sizes are ignored).
    """
    b_by_n = {point.n: point for point in b}
    for point in sorted(a, key=lambda p: p.n):
        other = b_by_n.get(point.n)
        if other is not None and metric(point) < metric(other):
            return point.n
    return None


def fault_degradation(
    clean: Sequence[SweepPoint],
    faulted: Sequence[SweepPoint],
) -> List[Dict[str, float]]:
    """Per-size degradation rows for a faulted sweep vs its clean twin.

    Pairs points by ``n`` (sizes present in only one sweep are skipped)
    and reports, for each common size: median worst-vertex energy,
    median broadcast time, and success rate (delivered seeds / seeds)
    under both conditions, plus faulted/clean ratios for the two cost
    metrics.  Ratios > 1 quantify how much the adversity layer (churn,
    jamming, bursty loss) costs the protocol.
    """
    clean_by_n = {point.n: point for point in clean}
    rows: List[Dict[str, float]] = []
    for point in sorted(faulted, key=lambda p: p.n):
        base = clean_by_n.get(point.n)
        if base is None:
            continue
        rows.append({
            "n": point.n,
            "energy_clean": base.max_energy_median,
            "energy_faulted": point.max_energy_median,
            "energy_ratio": point.max_energy_median
            / max(base.max_energy_median, 1e-9),
            "time_clean": base.time_median,
            "time_faulted": point.time_median,
            "time_ratio": point.time_median / max(base.time_median, 1e-9),
            "success_clean": base.delivered / max(base.seeds, 1),
            "success_faulted": point.delivered / max(point.seeds, 1),
        })
    return rows
