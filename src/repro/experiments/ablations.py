"""Ablations for the design choices DESIGN.md calls out.

* ABL.probe — Remark 9's probe slots: CD clustering broadcast with and
  without probe opt-outs.  Probes should cut worst-vertex energy.
* ABL.ps — the (p, s) refinement knobs of Section 5: Theorem 11's
  (1/2, 1) versus Theorem 12-style (small p, large s); fewer, heavier
  iterations should lower CD energy at some time cost.
* ABL.beta — Partition(beta): measured edge-cut fraction and cluster
  count versus beta (Lemma 14/15's knob).
"""

from __future__ import annotations

import random
import statistics
from typing import Dict, List, Optional, Sequence, Tuple

from repro.broadcast import (
    ClusterBroadcastParams,
    cluster_broadcast_protocol,
    run_broadcast,
    theorem11_params,
    theorem12_params,
)
from repro.core.partition import (
    PartitionParams,
    partition_once,
    partition_result_clusters,
)
from repro.core.schemes import SRScheme
from repro.graphs import cycle_graph, random_gnp
from repro.sim import CD, NO_CD, ExecutionConfig, Knowledge, Simulator
from repro.graphs.properties import diameter as graph_diameter

__all__ = ["ablate_probe", "ablate_ps", "ablate_beta"]


def ablate_probe(
    n: int = 12,
    seeds: Sequence[int] = (0, 1, 2),
    exec_config: Optional[ExecutionConfig] = None,
) -> Tuple[Dict, str]:
    """CD clustering broadcast with and without Remark 9 probes."""
    graph = random_gnp(n, 0.3, random.Random(n))
    knowledge = Knowledge(
        n=n, max_degree=graph.max_degree, diameter=graph_diameter(graph)
    )
    results = {}
    for probe in (True, False):
        base = theorem11_params(n, "CD", failure=0.02)
        params = ClusterBroadcastParams(
            model_name="CD", survive_p=base.survive_p, spread_s=base.spread_s,
            iterations=base.iterations,
            gl_diameter_bound=base.gl_diameter_bound,
            failure=base.failure, probe=probe,
        )
        energy = []
        for seed in seeds:
            outcome = run_broadcast(
                graph, CD, cluster_broadcast_protocol(params),
                knowledge=knowledge, seed=seed, exec_config=exec_config,
            )
            energy.append(outcome.max_energy)
        results["probe" if probe else "no-probe"] = statistics.median(energy)
    text = (
        "ABL.probe  Remark 9 probes (CD, Theorem 11 params)\n"
        f"  with probes:    max energy {results['probe']:.0f}\n"
        f"  without probes: max energy {results['no-probe']:.0f}"
    )
    return results, text


def ablate_ps(
    n: int = 12,
    seeds: Sequence[int] = (0, 1),
    exec_config: Optional[ExecutionConfig] = None,
) -> Tuple[Dict, str]:
    """(p, s) tradeoff: Theorem 11 vs Theorem 12 parameterizations in CD."""
    graph = random_gnp(n, 0.3, random.Random(n))
    knowledge = Knowledge(
        n=n, max_degree=graph.max_degree, diameter=graph_diameter(graph)
    )
    settings = {
        "thm11 (p=1/2, s=1)": theorem11_params(n, "CD", failure=0.02),
        "thm12 (small p, s=log n)": theorem12_params(n, epsilon=0.5, failure=0.02),
    }
    results = {}
    for name, params in settings.items():
        energies, times = [], []
        for seed in seeds:
            outcome = run_broadcast(
                graph, CD, cluster_broadcast_protocol(params),
                knowledge=knowledge, seed=seed, exec_config=exec_config,
            )
            energies.append(outcome.max_energy)
            times.append(outcome.duration)
        results[name] = {
            "energy": statistics.median(energies),
            "time": statistics.median(times),
            "iterations": params.iterations,
            "spread_s": params.spread_s,
        }
    lines = ["ABL.ps  Section 5 refinement knobs (CD)"]
    for name, row in results.items():
        lines.append(
            f"  {name}: iters={row['iterations']} s={row['spread_s']} "
            f"energy={row['energy']:.0f} time={row['time']:.0f}"
        )
    return results, "\n".join(lines)


def ablate_beta(
    n: int = 40, betas: Sequence[float] = (0.15, 0.3, 0.6),
    seeds: Sequence[int] = (0, 1, 2),
    exec_config: Optional[ExecutionConfig] = None,
) -> Tuple[List[Dict], str]:
    """Partition(beta): edge-cut fraction and cluster count vs beta.

    The partition runs on a bare :class:`Simulator`, so batch-level
    ``exec_config`` fields (``lockstep``, ``contention_hist``) are
    rejected by the engine."""
    graph = cycle_graph(n)
    scheme = SRScheme("No-CD", 2, failure=0.02)
    rows = []
    for beta in betas:
        params = PartitionParams(beta=beta, n=n, failure=0.02)

        def proto(ctx):
            out = yield from partition_once(ctx, scheme, params)
            return out

        cut_rates, counts = [], []
        for seed in seeds:
            outputs = Simulator(
                graph, NO_CD, seed=seed, exec_config=exec_config
            ).run(proto).outputs
            clusters = [c for c, _, _ in outputs]
            cut = sum(
                1 for u, v in graph.edges if clusters[u] != clusters[v]
            )
            cut_rates.append(cut / len(graph.edges))
            counts.append(len(partition_result_clusters(outputs)[0]))
        rows.append({
            "beta": beta,
            "edge_cut_rate": statistics.median(cut_rates),
            "clusters": statistics.median(counts),
            "lemma14_bound": 2 * beta,
        })
    lines = ["ABL.beta  Partition(beta) on a cycle (Lemma 14/15)"]
    lines.append(f"{'beta':>5}  {'cut rate':>9}  {'2*beta':>7}  {'clusters':>8}")
    for row in rows:
        lines.append(
            f"{row['beta']:>5.2f}  {row['edge_cut_rate']:>9.3f}  "
            f"{row['lemma14_bound']:>7.2f}  {row['clusters']:>8.0f}"
        )
    return rows, "\n".join(lines)
