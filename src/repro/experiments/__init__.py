"""Experiment harnesses reproducing the paper's Table 1 and Figure 1."""

from repro.experiments.ablations import ablate_beta, ablate_probe, ablate_ps
from repro.experiments.analysis import crossover_size, fit_log_power, fit_power_law
from repro.experiments.bench import (
    check_thresholds,
    default_workloads,
    format_report,
    run_engine_benchmarks,
    write_results,
)
from repro.experiments.figure1 import figure1, render_path_timeline
from repro.experiments.harness import (
    SweepPoint,
    format_table,
    geometric_sizes,
    sweep,
)
from repro.experiments.table1 import (
    baseline_decay,
    t1_cd_clustering,
    t1_cd_optimal,
    t1_det_cd,
    t1_det_local,
    t1_lb_local_path,
    t1_lb_reduction,
    t1_local_clustering,
    t1_nocd_bounded_degree,
    t1_nocd_clustering,
    t1_nocd_dtime,
    t8_path_algorithm,
)

__all__ = [
    "check_thresholds",
    "default_workloads",
    "format_report",
    "run_engine_benchmarks",
    "write_results",
    "ablate_beta",
    "crossover_size",
    "fit_log_power",
    "fit_power_law",
    "ablate_probe",
    "ablate_ps",
    "figure1",
    "render_path_timeline",
    "SweepPoint",
    "format_table",
    "geometric_sizes",
    "sweep",
    "baseline_decay",
    "t1_cd_clustering",
    "t1_cd_optimal",
    "t1_det_cd",
    "t1_det_local",
    "t1_lb_local_path",
    "t1_lb_reduction",
    "t1_local_clustering",
    "t1_nocd_bounded_degree",
    "t1_nocd_clustering",
    "t1_nocd_dtime",
    "t8_path_algorithm",
]
