"""Figure 1 reproduction: a timeline of the path algorithm's traffic.

The paper's Figure 1 shows messages propagating down-right along the
path, pausing at blocking vertices.  We rebuild exactly that picture from
a traced run: one row per time slot, one column per vertex; ``*`` marks a
transmission, ``.`` a listen, blank idle.  The payload's trajectory is
highlighted with ``P``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.broadcast.base import run_broadcast
from repro.broadcast.path import path_broadcast_protocol
from repro.graphs import path_graph
from repro.sim import LOCAL, ExecutionConfig, Knowledge
from repro.sim.feedback import is_message

__all__ = ["render_path_timeline", "figure1"]


def _carries_payload(message, payload) -> bool:
    if message == payload:
        return True
    if isinstance(message, tuple):
        return any(_carries_payload(part, payload) for part in message)
    return False


def render_path_timeline(outcome, n: int, max_rows: Optional[int] = None) -> str:
    """ASCII timeline from a traced run (vertex columns, slot rows)."""
    trace = outcome.sim.trace
    if trace is None:
        raise ValueError(
            "render_path_timeline needs a traced run "
            "(exec_config=ExecutionConfig(record_trace=True))"
        )
    last = trace.last_slot()
    rows = last + 1 if max_rows is None else min(last + 1, max_rows)
    grid: List[List[str]] = [[" "] * n for _ in range(rows)]
    for event in trace:
        if event.slot >= rows:
            continue
        cell = "."
        if event.kind in ("send", "duplex"):
            cell = "P" if _carries_payload(event.message, outcome.payload) else "*"
        grid[event.slot][event.node] = cell
    header = "slot | " + "".join(str(v % 10) for v in range(n))
    lines = [header, "-" * len(header)]
    for slot, row in enumerate(grid):
        if all(cell == " " for cell in row):
            continue
        lines.append(f"{slot:4d} | " + "".join(row))
    lines.append("")
    lines.append("legend: P payload transmission, * control transmission, . listen")
    return "\n".join(lines)


def figure1(
    n: int = 32,
    seed: int = 0,
    exec_config: Optional[ExecutionConfig] = None,
) -> str:
    """Regenerate Figure 1: run Algorithm 1 on an n-vertex path and render
    the traffic timeline.

    ``exec_config`` steers how the traced run executes (resolution
    backend, stepping mode, ...); tracing itself is always on — it is
    what the figure renders.
    """
    graph = path_graph(n)
    knowledge = Knowledge(n=n, max_degree=2, diameter=n - 1)
    config = (exec_config or ExecutionConfig()).replace(record_trace=True)
    outcome = run_broadcast(
        graph, LOCAL, path_broadcast_protocol(oriented=True),
        knowledge=knowledge, seed=seed, exec_config=config,
    )
    status = "delivered" if outcome.delivered else "FAILED"
    header = (
        f"Figure 1 reproduction: Algorithm 1 on a {n}-vertex path "
        f"(seed {seed}, {status}, {outcome.duration} slots <= 2n = {2*n}, "
        f"max energy {outcome.max_energy})\n"
    )
    return header + render_path_timeline(outcome, n)
