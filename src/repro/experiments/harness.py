"""Experiment harness: seeded sweeps and ratio-to-bound tables.

The paper's Table 1 is a matrix of asymptotic bounds.  Our reproduction
methodology (DESIGN.md): for each row, sweep the workload size, measure
time (slots) and worst-vertex energy, divide by the claimed bound, and
check the ratio stays roughly flat — that is what "the shape holds" means
at finite sizes.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.broadcast.base import BroadcastOutcome, run_broadcast
from repro.graphs.graph import Graph
from repro.graphs.properties import diameter as graph_diameter
from repro.sim.models import ChannelModel
from repro.sim.node import Knowledge

__all__ = ["SweepPoint", "sweep", "format_table", "geometric_sizes"]


@dataclass
class SweepPoint:
    """Aggregated measurements at one workload size."""

    label: str
    n: int
    max_degree: int
    diameter: int
    seeds: int
    delivered: int
    time_median: float
    max_energy_median: float
    mean_energy_median: float
    extras: Dict[str, float] = field(default_factory=dict)

    def ratio(self, bound: float) -> float:
        """Measured worst-vertex energy divided by a claimed bound."""
        return self.max_energy_median / max(bound, 1e-9)

    def time_ratio(self, bound: float) -> float:
        return self.time_median / max(bound, 1e-9)


def sweep(
    label: str,
    graph_factory: Callable[[int], Graph],
    sizes: Sequence[int],
    protocol_builder: Callable[[Graph], Callable],
    model: ChannelModel,
    seeds: Sequence[int] = (0, 1, 2),
    source: int = 0,
    id_space_from_n: bool = False,
    extra_metrics: Optional[Callable[[BroadcastOutcome], Dict[str, float]]] = None,
    record_trace: bool = False,
) -> List[SweepPoint]:
    """Run ``protocol_builder(graph)`` on every size and seed; aggregate."""
    points: List[SweepPoint] = []
    for size in sizes:
        graph = graph_factory(size)
        d = graph_diameter(graph)
        knowledge = Knowledge(
            n=graph.n,
            max_degree=max(graph.max_degree, 1),
            diameter=d,
            id_space=graph.n if id_space_from_n else None,
        )
        times, max_energies, mean_energies = [], [], []
        delivered = 0
        extras_acc: Dict[str, List[float]] = {}
        for seed in seeds:
            outcome = run_broadcast(
                graph,
                model,
                protocol_builder(graph),
                source=source,
                knowledge=knowledge,
                seed=seed,
                record_trace=record_trace,
            )
            delivered += int(outcome.delivered)
            times.append(outcome.duration)
            max_energies.append(outcome.max_energy)
            mean_energies.append(outcome.mean_energy)
            if extra_metrics is not None:
                for key, value in extra_metrics(outcome).items():
                    extras_acc.setdefault(key, []).append(value)
        points.append(
            SweepPoint(
                label=label,
                n=graph.n,
                max_degree=graph.max_degree,
                diameter=d,
                seeds=len(seeds),
                delivered=delivered,
                time_median=statistics.median(times),
                max_energy_median=statistics.median(max_energies),
                mean_energy_median=statistics.median(mean_energies),
                extras={
                    key: statistics.median(values)
                    for key, values in extras_acc.items()
                },
            )
        )
    return points


def geometric_sizes(start: int, factor: int, count: int) -> List[int]:
    sizes = []
    size = start
    for _ in range(count):
        sizes.append(size)
        size *= factor
    return sizes


def format_table(
    title: str,
    points: Sequence[SweepPoint],
    columns: Sequence[str] = (
        "n", "max_degree", "diameter", "delivered",
        "time_median", "max_energy_median",
    ),
    bounds: Optional[Dict[str, Callable[[SweepPoint], float]]] = None,
) -> str:
    """Render a sweep as a fixed-width text table with optional
    measured/bound ratio columns (the flat-ratio check)."""
    bounds = bounds or {}
    headers = list(columns) + [f"{name} ratio" for name in bounds]
    rows = []
    for point in points:
        row = []
        for column in columns:
            value = getattr(point, column, None)
            if value is None:
                value = point.extras.get(column, "")
            if isinstance(value, float):
                value = f"{value:.1f}"
            row.append(str(value))
        for name, bound_fn in bounds.items():
            row.append(f"{point.max_energy_median / max(bound_fn(point), 1e-9):.2f}")
        rows.append(row)
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
