"""Experiment harness: seeded sweeps and ratio-to-bound tables.

The paper's Table 1 is a matrix of asymptotic bounds.  Our reproduction
methodology (DESIGN.md): for each row, sweep the workload size, measure
time (slots) and worst-vertex energy, divide by the claimed bound, and
check the ratio stays roughly flat — that is what "the shape holds" means
at finite sizes.

The per-cell measurement and the seed aggregation live in
:mod:`repro.campaign.cells`; :func:`sweep` is the thin *serial* driver
over that shared core, and :mod:`repro.campaign.runner` is the sharded
one — both produce identical :class:`SweepPoint` aggregates for the
same seeds.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.broadcast.base import BroadcastOutcome
from repro.campaign.cells import (
    SweepPoint,
    aggregate_cells,
    knowledge_for,
    run_cells,
)
from repro.graphs.graph import Graph
from repro.sim.config import UNSET, ExecutionConfig, resolve_exec_config
from repro.sim.models import ChannelModel

__all__ = ["SweepPoint", "sweep", "format_table", "geometric_sizes"]

# A bound column is either a plain callable (worst-vertex energy over
# the bound, the historical form) or a ("energy" | "time", callable)
# pair selecting which measured median goes in the numerator.
BoundSpec = Union[
    Callable[[SweepPoint], float],
    Tuple[str, Callable[[SweepPoint], float]],
]

_RATIO_METRICS: Dict[str, Callable[[SweepPoint, float], float]] = {
    "energy": SweepPoint.ratio,
    "time": SweepPoint.time_ratio,
}


def sweep(
    label: str,
    graph_factory: Callable[[int], Graph],
    sizes: Sequence[int],
    protocol_builder: Callable[[Graph], Callable],
    model: ChannelModel,
    seeds: Sequence[int] = (0, 1, 2),
    source: int = 0,
    *,
    id_space_from_n: bool = False,
    extra_metrics: Optional[Callable[[BroadcastOutcome], Dict[str, float]]] = None,
    exec_config: Optional[ExecutionConfig] = None,
    record_trace: Any = UNSET,
    resolution: Any = UNSET,
    lockstep: Any = UNSET,
    contention_hist: Any = UNSET,
) -> List[SweepPoint]:
    """Run ``protocol_builder(graph)`` on every size and seed; aggregate.

    Each size's seeds run as one batch on the shared engine core
    (:func:`repro.campaign.cells.run_cells`), so serial sweeps and
    sharded campaigns execute the identical per-cell computation.
    ``exec_config`` gives the serial driver the *full* execution
    surface.  ``resolution`` backend, ``stepping`` mode, ``lockstep``
    batching, and per-seed ``observer_factory`` hooks are
    measurement-neutral (byte-identical results); ``contention_hist``
    adds the per-slot channel-load analytics to every point's extras;
    and the remaining fields *can* change what comes back —
    ``meter_energy=False`` zeroes every energy column (throughput
    benchmarking only), a small ``time_limit`` can abort runs, and
    ``model_factory`` substitutes the channel itself.  The per-knob
    keyword arguments are the deprecated forms of the matching config
    fields.
    """
    config = resolve_exec_config(
        exec_config,
        dict(
            record_trace=record_trace,
            resolution=resolution,
            lockstep=lockstep,
            contention_hist=contention_hist,
        ),
        where="sweep",
    )
    points: List[SweepPoint] = []
    for size in sizes:
        graph = graph_factory(size)
        knowledge = knowledge_for(graph, id_space_from_n=id_space_from_n)
        cells = run_cells(
            graph,
            model,
            protocol_builder(graph),
            label=label,
            size=size,
            seeds=seeds,
            source=source,
            knowledge=knowledge,
            extra_metrics=extra_metrics,
            exec_config=config,
        )
        points.append(aggregate_cells(cells))
    return points


def geometric_sizes(start: int, factor: int, count: int) -> List[int]:
    sizes = []
    size = start
    for _ in range(count):
        sizes.append(size)
        size *= factor
    return sizes


def _ratio(point: SweepPoint, spec: BoundSpec) -> float:
    if callable(spec):
        metric, bound_fn = "energy", spec
    else:
        metric, bound_fn = spec
        if metric not in _RATIO_METRICS:
            raise ValueError(
                f"unknown bound metric {metric!r}; "
                f"expected one of {sorted(_RATIO_METRICS)}"
            )
    return _RATIO_METRICS[metric](point, bound_fn(point))


def format_table(
    title: str,
    points: Sequence[SweepPoint],
    columns: Sequence[str] = (
        "n", "max_degree", "diameter", "delivered",
        "time_median", "max_energy_median",
    ),
    bounds: Optional[Dict[str, BoundSpec]] = None,
) -> str:
    """Render a sweep as a fixed-width text table with optional
    measured/bound ratio columns (the flat-ratio check).

    ``bounds`` values may be plain callables (energy ratio) or
    ``("time", fn)`` / ``("energy", fn)`` pairs to select the measured
    median used in the numerator.
    """
    bounds = bounds or {}
    headers = list(columns) + [f"{name} ratio" for name in bounds]
    rows = []
    for point in points:
        row = []
        for column in columns:
            value = getattr(point, column, None)
            if value is None:
                value = point.extras.get(column, "")
            if isinstance(value, float):
                value = f"{value:.1f}"
            row.append(str(value))
        for spec in bounds.values():
            row.append(f"{_ratio(point, spec):.2f}")
        rows.append(row)
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
