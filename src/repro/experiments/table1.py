"""Table 1 reproduction: one experiment per row.

Every function returns (points, rendered_table).  The bound columns are
the paper's claimed asymptotics evaluated at the workload's parameters;
a roughly flat "ratio" column across the sweep is the finite-size
signature of the claimed growth rate.  EXPERIMENTS.md records the runs.

Experiment ids follow DESIGN.md (T1.<model>.<row>).
"""

from __future__ import annotations

import math
import random
import statistics
from typing import Callable, Dict, List, Sequence, Tuple

from repro.broadcast import (
    cluster_broadcast_protocol,
    decay_broadcast_protocol,
    run_broadcast,
    theorem11_params,
    theorem12_params,
)
from repro.broadcast.cd_optimal import CDOptimalParams, cd_optimal_broadcast_protocol
from repro.broadcast.deterministic import (
    det_cd_broadcast_protocol,
    det_local_broadcast_protocol,
)
from repro.broadcast.dtime import DTimeParams, dtime_broadcast_protocol
from repro.broadcast.local_sim import local_sim_broadcast_protocol
from repro.broadcast.path import path_broadcast_protocol
from repro.experiments.harness import SweepPoint, format_table, sweep
from repro.graphs import cycle_graph, grid_graph, k2k_gadget, path_graph, random_gnp
from repro.lowerbounds import derive_leader_election, energy_before_reception
from repro.sim import CD, LOCAL, NO_CD, Knowledge

__all__ = [
    "t1_nocd_clustering",
    "t1_nocd_dtime",
    "t1_nocd_bounded_degree",
    "t1_cd_clustering",
    "t1_cd_optimal",
    "t1_local_clustering",
    "t1_lb_local_path",
    "t1_lb_reduction",
    "t1_det_local",
    "t1_det_cd",
    "t8_path_algorithm",
    "baseline_decay",
]

_SMALL = (8, 12, 16)
_GNP_P = 0.3


def _gnp(n: int):
    return random_gnp(n, _GNP_P, random.Random(n), ensure_connected=True)


def _log2(x: float) -> float:
    return math.log2(max(2.0, x))


# --- upper-bound rows ------------------------------------------------------


def t1_nocd_clustering(sizes: Sequence[int] = _SMALL, seeds=(0, 1, 2)):
    """T1.noCD.1 — Theorem 11: O(n logD log^2 n) time, O(logD log^2 n)
    energy in No-CD (logD = log Delta)."""
    points = sweep(
        "thm11-NoCD", _gnp, sizes,
        lambda g: cluster_broadcast_protocol(
            theorem11_params(g.n, "No-CD", failure=0.02)
        ),
        NO_CD, seeds=seeds,
    )
    table = format_table(
        "T1.noCD.1  Theorem 11 (No-CD): energy ~ log(Delta) log^2 n",
        points,
        bounds={
            "logD*log^2n": lambda p: _log2(p.max_degree) * _log2(p.n) ** 2
        },
    )
    return points, table


def t1_nocd_dtime(sizes: Sequence[int] = (8, 12, 16), seeds=(0, 1)):
    """T1.noCD.2 — Theorem 16: O(D^{1+eps} polylog) time, polylog energy."""
    factory = lambda n, d: DTimeParams.for_graph(
        n, d, beta=0.4, iterations=2, contention=2, reps=4, failure=0.05
    )
    points = sweep(
        "thm16-NoCD", cycle_graph, sizes,
        lambda g: dtime_broadcast_protocol(factory),
        NO_CD, seeds=seeds,
    )
    table = format_table(
        "T1.noCD.2  Theorem 16 (No-CD): polylog energy at growing D",
        points,
        bounds={"log^4 n": lambda p: _log2(p.n) ** 4},
    )
    return points, table


def t1_nocd_bounded_degree(sizes: Sequence[int] = (8, 12, 16), seeds=(0, 1, 2)):
    """T1.noCD.3 — Corollary 13: Delta = O(1): O(n log n) time,
    O(log n) energy via LOCAL simulation."""
    points = sweep(
        "cor13-NoCD", path_graph, sizes,
        lambda g: local_sim_broadcast_protocol(failure=0.02),
        NO_CD, seeds=seeds,
    )
    table = format_table(
        "T1.noCD.3  Corollary 13 (No-CD, Delta=2): energy ~ log n",
        points,
        bounds={"log n": lambda p: _log2(p.n)},
    )
    return points, table


def t1_cd_clustering(sizes: Sequence[int] = _SMALL, seeds=(0, 1, 2), epsilon=0.5):
    """T1.CD.1 — Theorem 12: O(log^2 n / (eps loglog n)) energy in CD."""
    points = sweep(
        "thm12-CD", _gnp, sizes,
        lambda g: cluster_broadcast_protocol(
            theorem12_params(g.n, epsilon=epsilon, failure=0.02)
        ),
        CD, seeds=seeds,
    )
    table = format_table(
        "T1.CD.1  Theorem 12 (CD): energy ~ log^2 n / (eps loglog n)",
        points,
        bounds={
            "log^2n/llog": lambda p: _log2(p.n) ** 2
            / (epsilon * max(1.0, math.log2(_log2(p.n))))
        },
    )
    return points, table


def t1_cd_optimal(sizes: Sequence[int] = (8, 12), seeds=(0, 1)):
    """T1.CD.2 — Theorem 20: O(log n loglogD / logloglogD) energy,
    O(Delta n^{1+xi}) time."""
    points = sweep(
        "thm20-CD", _gnp, sizes,
        lambda g: cd_optimal_broadcast_protocol(
            CDOptimalParams.for_graph(g.n, g.max_degree, iterations=3, rounds_s=2)
        ),
        CD, seeds=seeds,
    )
    table = format_table(
        "T1.CD.2  Theorem 20 (CD): energy ~ log n (loglog Delta factors)",
        points,
        bounds={"log n": lambda p: _log2(p.n)},
    )
    return points, table


def t1_local_clustering(sizes: Sequence[int] = (8, 16, 32), seeds=(0, 1, 2)):
    """T1.LOCAL.1 — Theorem 11 LOCAL row: O(n log n) time, O(log n) energy."""
    points = sweep(
        "thm11-LOCAL", _gnp, sizes,
        lambda g: cluster_broadcast_protocol(
            theorem11_params(g.n, "LOCAL", failure=0.02)
        ),
        LOCAL, seeds=seeds,
    )
    table = format_table(
        "T1.LOCAL.1  Theorem 11 (LOCAL): energy ~ log n, time ~ n log n",
        points,
        bounds={"log n": lambda p: _log2(p.n)},
    )
    return points, table


def t1_det_local(sizes: Sequence[int] = (6, 8, 12), seeds=(0,)):
    """T1.det.LOCAL — Theorem 25: O(n log n log N) time,
    O(log n log N) energy, deterministic."""
    points = sweep(
        "thm25-detLOCAL", cycle_graph, sizes,
        lambda g: det_local_broadcast_protocol(),
        LOCAL, seeds=seeds, id_space_from_n=True,
    )
    table = format_table(
        "T1.det.LOCAL  Theorem 25: energy ~ log n log N",
        points,
        bounds={"logn*logN": lambda p: _log2(p.n) ** 2},
    )
    return points, table


def t1_det_cd(sizes: Sequence[int] = (4, 6, 8), seeds=(0,)):
    """T1.det.CD — Theorem 27: O(N^2 n log n log N) time,
    O(log^3 N log n) energy, deterministic."""
    points = sweep(
        "thm27-detCD", cycle_graph, sizes,
        lambda g: det_cd_broadcast_protocol(),
        CD, seeds=seeds, id_space_from_n=True,
    )
    table = format_table(
        "T1.det.CD  Theorem 27: energy ~ log^3 N log n",
        points,
        bounds={"log^3N*logn": lambda p: _log2(p.n) ** 4},
    )
    return points, table


def t8_path_algorithm(sizes: Sequence[int] = (64, 256, 1024), seeds=(0, 1, 2, 3)):
    """Theorem 21 — the path algorithm: time <= 2n, expected per-vertex
    energy O(log n) (we report the mean-energy column)."""
    points = sweep(
        "thm21-path", path_graph, sizes,
        lambda g: path_broadcast_protocol(oriented=True),
        LOCAL, seeds=seeds,
    )
    table = format_table(
        "Thm 21 (path): mean energy ~ log n, time <= 2n",
        points,
        columns=(
            "n", "diameter", "delivered", "time_median",
            "max_energy_median", "mean_energy_median",
        ),
        bounds={"ln(2n)": lambda p: math.log(2 * p.n)},
    )
    return points, table


def baseline_decay(sizes: Sequence[int] = (16, 36, 64), seeds=(0, 1, 2)):
    """The motivating contrast: BGI decay is time-lean but its energy
    grows ~ linearly in D (every uninformed vertex listens non-stop)."""

    def factory(n):
        side = int(round(math.sqrt(n)))
        return grid_graph(side, side)

    points = sweep(
        "decay-baseline", factory, sizes,
        lambda g: decay_broadcast_protocol(failure=0.02),
        NO_CD, seeds=seeds,
    )
    table = format_table(
        "Baseline (BGI decay, No-CD grid): energy ~ D log Delta log n",
        points,
        bounds={
            "D*logD*logn": lambda p: p.diameter
            * _log2(p.max_degree) * _log2(p.n)
        },
    )
    return points, table


# --- lower-bound rows ------------------------------------------------------


def t1_lb_local_path(
    sizes: Sequence[int] = (64, 256, 1024), seeds=(0, 1, 2, 3, 4)
) -> Tuple[List[Dict], str]:
    """T1.LOCAL.LB / Theorem 1: worst pre-reception energy is
    Omega(log n) on the path; measured on the (optimal) path algorithm it
    is sandwiched into Theta(log n)."""
    rows = []
    for n in sizes:
        graph = path_graph(n)
        knowledge = Knowledge(n=n, max_degree=2, diameter=n - 1)
        worst = []
        for seed in seeds:
            outcome = run_broadcast(
                graph, LOCAL, path_broadcast_protocol(oriented=True),
                knowledge=knowledge, seed=seed, record_trace=True,
            )
            worst.append(energy_before_reception(outcome).worst)
        rows.append({
            "n": n,
            "lower_bound": math.log2(n) / 5,
            "measured_median": statistics.median(worst),
            "satisfied": statistics.median(worst) >= math.log2(n) / 5,
        })
    lines = ["T1.LOCAL.LB  Theorem 1: worst pre-reception energy vs (1/5) log2 n"]
    lines.append(f"{'n':>6}  {'(1/5)log2 n':>12}  {'measured':>9}  ok")
    for row in rows:
        lines.append(
            f"{row['n']:>6}  {row['lower_bound']:>12.2f}  "
            f"{row['measured_median']:>9.1f}  {row['satisfied']}"
        )
    return rows, "\n".join(lines)


def t1_lb_reduction(
    ks: Sequence[int] = (2, 4, 8, 16),
    seeds=(0, 1, 2),
    model=NO_CD,
    protocol_builder=None,
) -> Tuple[List[Dict], str]:
    """T1.noCD.LB / T1.CD.LB / Theorem 2: execute the reduction on
    K_{2,k}; report derived-LE time vs 2E and verify the inequality.

    ``protocol_builder(graph)`` defaults to the decay baseline; pass any
    broadcast protocol factory builder to reduce a different algorithm.
    """
    if protocol_builder is None:
        protocol_builder = lambda g: decay_broadcast_protocol(failure=0.01)
    rows = []
    for k in ks:
        graph, s, t = k2k_gadget(k)
        knowledge = Knowledge(n=graph.n, max_degree=graph.max_degree, diameter=2)
        le_times, energies, holds = [], [], True
        for seed in seeds:
            outcome = run_broadcast(
                graph, model, protocol_builder(graph),
                source=s, knowledge=knowledge, seed=seed, record_trace=True,
            )
            report = derive_leader_election(outcome, s, t)
            le_times.append(report.le_time)
            energies.append(report.broadcast_energy)
            holds = holds and report.bound_holds
        rows.append({
            "k": k,
            "le_time_median": statistics.median(le_times),
            "energy_median": statistics.median(energies),
            "inequality_holds": holds,
        })
    lines = ["T1.*.LB  Theorem 2 reduction on K_{2,k}: T_LE <= 2E"]
    lines.append(f"{'k':>4}  {'T_LE':>7}  {'E':>7}  {'T_LE <= 2E':>10}")
    for row in rows:
        lines.append(
            f"{row['k']:>4}  {row['le_time_median']:>7.1f}  "
            f"{row['energy_median']:>7.1f}  {str(row['inequality_holds']):>10}"
        )
    return rows, "\n".join(lines)
