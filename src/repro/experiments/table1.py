"""Table 1 reproduction: one experiment per row.

Every function returns (points, rendered_table).  The bound columns are
the paper's claimed asymptotics evaluated at the workload's parameters;
a roughly flat "ratio" column across the sweep is the finite-size
signature of the claimed growth rate.  EXPERIMENTS.md records the runs.

Experiment ids follow DESIGN.md (T1.<model>.<row>).

The sweep-shaped rows are thin serial wrappers over the campaign row
registry (:mod:`repro.campaign.registry`) — graph family, protocol
builder, channel model, bounds, and default matrix all live there, so
``python -m repro table1`` and ``python -m repro campaign run`` cannot
drift apart.  Only the two lower-bound rows keep bespoke code: their
derived-quantity tables (leader-election transcripts, pre-reception
energy) don't fit the SweepPoint shape.
"""

from __future__ import annotations

import math
import statistics
from typing import Dict, List, Optional, Sequence, Tuple

from repro.broadcast import decay_broadcast_protocol, run_broadcast
from repro.broadcast.path import path_broadcast_protocol
from repro.campaign.registry import (
    GRAPH_FAMILIES,
    ROW_REGISTRY,
    get_row,
    resolve_bounds,
)
from repro.experiments.harness import format_table, sweep
from repro.graphs import k2k_gadget, path_graph
from repro.lowerbounds import derive_leader_election, energy_before_reception
from repro.sim import (
    LOCAL,
    NO_CD,
    ExecutionConfig,
    Knowledge,
    validate_execution_options,
)
from repro.sim.config import ExecutionConfigError
from repro.sim.models import MODELS

__all__ = [
    "registry_row",
    "t1_nocd_clustering",
    "t1_nocd_dtime",
    "t1_nocd_bounded_degree",
    "t1_cd_clustering",
    "t1_cd_optimal",
    "t1_local_clustering",
    "t1_lb_local_path",
    "t1_lb_reduction",
    "t1_det_local",
    "t1_det_cd",
    "t8_path_algorithm",
    "baseline_decay",
]


def registry_row(
    name: str,
    sizes: Optional[Sequence[int]] = None,
    seeds: Optional[Sequence[int]] = None,
    options: Optional[Dict] = None,
):
    """Run one registry row serially and render its table.

    The exact computation a campaign shards: same builder, same graph
    family, same bounds — just driven by the in-process ``sweep()``.
    Execution-steering options (the
    :meth:`~repro.sim.config.ExecutionConfig.option_keys` subset of
    ``options``) are honored like the campaign path honors them.
    """
    definition = get_row(name)
    options = options or {}
    # Reject reserved execution fields (record_trace, time_limit, ...)
    # the options dict cannot carry — same contract as the campaign
    # spec door — then extract the cell-option subset.
    validate_execution_options(options)
    config = ExecutionConfig.from_options(options)
    if definition.record_trace:
        config = config.replace(record_trace=True)
    points = sweep(
        name,
        GRAPH_FAMILIES[definition.graph_family],
        sizes if sizes is not None else definition.default_sizes,
        lambda g: definition.builder(g, options),
        MODELS[definition.model],
        seeds=seeds if seeds is not None else definition.default_seeds,
        id_space_from_n=definition.id_space_from_n,
        extra_metrics=definition.extra_metrics,
        exec_config=config,
    )
    columns = definition.columns
    if options.get("contention_hist"):
        # Surface the analytics ride-along next to the row's own columns
        # (format_table pulls unknown names from each point's extras).
        columns = tuple(columns) + ("ch_mean_load", "ch_collision_rate")
    table = format_table(
        definition.title,
        points,
        columns=columns,
        bounds=resolve_bounds(definition, options),
    )
    return points, table


def _defaults(name: str) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    definition = ROW_REGISTRY[name]
    return definition.default_sizes, definition.default_seeds


# --- upper-bound rows ------------------------------------------------------

_NOCD_SIZES, _NOCD_SEEDS = _defaults("nocd")


def t1_nocd_clustering(sizes: Sequence[int] = _NOCD_SIZES, seeds=_NOCD_SEEDS, options=None):
    """T1.noCD.1 — Theorem 11: O(n logD log^2 n) time, O(logD log^2 n)
    energy in No-CD (logD = log Delta)."""
    return registry_row("nocd", sizes, seeds, options)


_DTIME_SIZES, _DTIME_SEEDS = _defaults("dtime")


def t1_nocd_dtime(sizes: Sequence[int] = _DTIME_SIZES, seeds=_DTIME_SEEDS, options=None):
    """T1.noCD.2 — Theorem 16: O(D^{1+eps} polylog) time, polylog energy."""
    return registry_row("dtime", sizes, seeds, options)


_BOUNDED_SIZES, _BOUNDED_SEEDS = _defaults("bounded")


def t1_nocd_bounded_degree(
    sizes: Sequence[int] = _BOUNDED_SIZES, seeds=_BOUNDED_SEEDS, options=None
):
    """T1.noCD.3 — Corollary 13: Delta = O(1): O(n log n) time,
    O(log n) energy via LOCAL simulation."""
    return registry_row("bounded", sizes, seeds, options)


_CD_SIZES, _CD_SEEDS = _defaults("cd")


def t1_cd_clustering(
    sizes: Sequence[int] = _CD_SIZES, seeds=_CD_SEEDS, epsilon=0.5, options=None
):
    """T1.CD.1 — Theorem 12: O(log^2 n / (eps loglog n)) energy in CD."""
    return registry_row("cd", sizes, seeds, {"epsilon": epsilon, **(options or {})})


_CDOPT_SIZES, _CDOPT_SEEDS = _defaults("cd-optimal")


def t1_cd_optimal(sizes: Sequence[int] = _CDOPT_SIZES, seeds=_CDOPT_SEEDS, options=None):
    """T1.CD.2 — Theorem 20: O(log n loglogD / logloglogD) energy,
    O(Delta n^{1+xi}) time."""
    return registry_row("cd-optimal", sizes, seeds, options)


_LOCAL_SIZES, _LOCAL_SEEDS = _defaults("local")


def t1_local_clustering(sizes: Sequence[int] = _LOCAL_SIZES, seeds=_LOCAL_SEEDS, options=None):
    """T1.LOCAL.1 — Theorem 11 LOCAL row: O(n log n) time, O(log n) energy."""
    return registry_row("local", sizes, seeds, options)


_DETLOCAL_SIZES, _DETLOCAL_SEEDS = _defaults("det-local")


def t1_det_local(sizes: Sequence[int] = _DETLOCAL_SIZES, seeds=_DETLOCAL_SEEDS, options=None):
    """T1.det.LOCAL — Theorem 25: O(n log n log N) time,
    O(log n log N) energy, deterministic."""
    return registry_row("det-local", sizes, seeds, options)


_DETCD_SIZES, _DETCD_SEEDS = _defaults("det-cd")


def t1_det_cd(sizes: Sequence[int] = _DETCD_SIZES, seeds=_DETCD_SEEDS, options=None):
    """T1.det.CD — Theorem 27: O(N^2 n log n log N) time,
    O(log^3 N log n) energy, deterministic."""
    return registry_row("det-cd", sizes, seeds, options)


_PATH_SIZES, _PATH_SEEDS = _defaults("path")


def t8_path_algorithm(sizes: Sequence[int] = _PATH_SIZES, seeds=_PATH_SEEDS, options=None):
    """Theorem 21 — the path algorithm: time <= 2n, expected per-vertex
    energy O(log n) (we report the mean-energy column)."""
    return registry_row("path", sizes, seeds, options)


_DECAY_SIZES, _DECAY_SEEDS = _defaults("decay")


def baseline_decay(sizes: Sequence[int] = _DECAY_SIZES, seeds=_DECAY_SEEDS, options=None):
    """The motivating contrast: BGI decay is time-lean but its energy
    grows ~ linearly in D (every uninformed vertex listens non-stop)."""
    return registry_row("decay", sizes, seeds, options)


# --- lower-bound rows ------------------------------------------------------


def _lb_exec_config(options: Optional[Dict]) -> ExecutionConfig:
    """Execution config for the bespoke lower-bound runners: honor the
    execution subset of ``options`` (so the shared CLI flags reach these
    rows too); tracing is always on — the derived quantities need it."""
    validate_execution_options(options)
    config = ExecutionConfig.from_options(options or {})
    if config.contention_hist:
        # Reject before any work: these runners build bespoke tables
        # with no extras channel to fold the histogram into.  (The
        # registry-backed lb-path/lb-reduction campaign rows run on
        # run_cells and DO honor it.)
        raise ExecutionConfigError(
            "the bespoke lower-bound runners have no extras channel for "
            "contention_hist; use the campaign rows (lb-path/lb-reduction) "
            "instead"
        )
    return config.replace(record_trace=True)


def t1_lb_local_path(
    sizes: Sequence[int] = (64, 256, 1024), seeds=(0, 1, 2, 3, 4),
    options: Optional[Dict] = None,
) -> Tuple[List[Dict], str]:
    """T1.LOCAL.LB / Theorem 1: worst pre-reception energy is
    Omega(log n) on the path; measured on the (optimal) path algorithm it
    is sandwiched into Theta(log n)."""
    config = _lb_exec_config(options)
    rows = []
    for n in sizes:
        graph = path_graph(n)
        knowledge = Knowledge(n=n, max_degree=2, diameter=n - 1)
        worst = []
        for seed in seeds:
            outcome = run_broadcast(
                graph, LOCAL, path_broadcast_protocol(oriented=True),
                knowledge=knowledge, seed=seed, exec_config=config,
            )
            worst.append(energy_before_reception(outcome).worst)
        rows.append({
            "n": n,
            "lower_bound": math.log2(n) / 5,
            "measured_median": statistics.median(worst),
            "satisfied": statistics.median(worst) >= math.log2(n) / 5,
        })
    lines = ["T1.LOCAL.LB  Theorem 1: worst pre-reception energy vs (1/5) log2 n"]
    lines.append(f"{'n':>6}  {'(1/5)log2 n':>12}  {'measured':>9}  ok")
    for row in rows:
        lines.append(
            f"{row['n']:>6}  {row['lower_bound']:>12.2f}  "
            f"{row['measured_median']:>9.1f}  {row['satisfied']}"
        )
    return rows, "\n".join(lines)


def t1_lb_reduction(
    ks: Sequence[int] = (2, 4, 8, 16),
    seeds=(0, 1, 2),
    model=NO_CD,
    protocol_builder=None,
    options: Optional[Dict] = None,
) -> Tuple[List[Dict], str]:
    """T1.noCD.LB / T1.CD.LB / Theorem 2: execute the reduction on
    K_{2,k}; report derived-LE time vs 2E and verify the inequality.

    ``protocol_builder(graph)`` defaults to the decay baseline; pass any
    broadcast protocol factory builder to reduce a different algorithm.
    """
    config = _lb_exec_config(options)
    if protocol_builder is None:
        protocol_builder = lambda g: decay_broadcast_protocol(failure=0.01)
    rows = []
    for k in ks:
        graph, s, t = k2k_gadget(k)
        knowledge = Knowledge(n=graph.n, max_degree=graph.max_degree, diameter=2)
        le_times, energies, holds = [], [], True
        for seed in seeds:
            outcome = run_broadcast(
                graph, model, protocol_builder(graph),
                source=s, knowledge=knowledge, seed=seed, exec_config=config,
            )
            report = derive_leader_election(outcome, s, t)
            le_times.append(report.le_time)
            energies.append(report.broadcast_energy)
            holds = holds and report.bound_holds
        rows.append({
            "k": k,
            "le_time_median": statistics.median(le_times),
            "energy_median": statistics.median(energies),
            "inequality_holds": holds,
        })
    lines = ["T1.*.LB  Theorem 2 reduction on K_{2,k}: T_LE <= 2E"]
    lines.append(f"{'k':>4}  {'T_LE':>7}  {'E':>7}  {'T_LE <= 2E':>10}")
    for row in rows:
        lines.append(
            f"{row['k']:>4}  {row['le_time_median']:>7.1f}  "
            f"{row['energy_median']:>7.1f}  {str(row['inequality_holds']):>10}"
        )
    return rows, "\n".join(lines)


# Cheap pre-flight validators: the CLI calls these for every selected
# row BEFORE any row runs, so an execution flag a bespoke runner cannot
# honor fails in milliseconds instead of after earlier rows completed.
# Registry-backed rows need none — they honor the full cell-option set.
t1_lb_local_path.validate_exec_options = _lb_exec_config
t1_lb_reduction.validate_exec_options = _lb_exec_config
