"""Engine microbenchmarks: slots/sec on fixed workloads.

``repro bench`` runs each workload on four simulators —

* ``engine`` — the current bitmask-resolution engine,
* ``engine_list_path`` — the same engine forced onto the legacy
  per-neighbor list resolution (``resolution="list"``),
* ``legacy_engine`` — the frozen pre-refactor engine
  (:mod:`repro.sim.legacy`), the baseline the refactor is measured
  against,
* ``reference`` — the naive slot-by-slot oracle
  (:class:`~repro.sim.reference.ReferenceSimulator`),

verifies they produce identical outputs/energy/duration, and writes the
timings to ``BENCH_engine.json`` so the repo's perf trajectory is
recorded run over run.  CI runs the quick variant and fails if the
event-heap engine is not measurably faster than the reference oracle —
the tripwire for silent O(n * slots) regressions.

Speedups are reported as ``other_seconds / engine_seconds`` (higher is
better for the engine).  ``slots/sec`` is simulated slots (the run's
``duration``) per wall-clock second on that fixed workload; it is only
comparable across runners of the *same* workload.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.broadcast.base import source_inputs
from repro.broadcast.path import path_broadcast_protocol
from repro.campaign.cells import knowledge_for
from repro.campaign.registry import GRAPH_FAMILIES, get_row
from repro.graphs import clique, path_graph
from repro.graphs.graph import Graph
from repro.sim import LOCAL, NO_CD, Knowledge, Listen, Send, Simulator
from repro.sim.legacy import LegacySimulator
from repro.sim.models import MODELS, ChannelModel
from repro.sim.reference import ReferenceSimulator

__all__ = [
    "BenchWorkload",
    "default_workloads",
    "run_engine_benchmarks",
    "check_thresholds",
    "write_results",
    "format_report",
]


@dataclass
class BenchWorkload:
    """One fixed (graph, model, protocol) cell timed on every runner."""

    name: str
    description: str
    build: Callable[[], Tuple[Graph, ChannelModel, Callable, Knowledge, Dict]]
    reps: int = 3
    time_limit: int = 10_000_000
    # Whether --min-legacy-speedup gates this workload.  The two
    # resolution-bound workloads (dense single-hop, clustering row) carry
    # the refactor's 2x acceptance bar; the idle-dominated workload exists
    # for the engine-vs-reference tripwire and is gated only by
    # --min-ref-speedup.
    legacy_gate: bool = True


def _dense_protocol(slots: int):
    """Every node is active every slot (send w.p. 1/16, else listen):
    the channel-resolution stress test."""

    def protocol(ctx):
        heard = 0
        send_p = 1.0 / 16.0
        for step in range(slots):
            if ctx.rng.random() < send_p:
                yield Send(("m", ctx.index, step))
            else:
                feedback = yield Listen()
                if feedback is not None:
                    heard += 1
        return heard

    return protocol


def _dense_single_hop(n: int, slots: int):
    def build():
        graph = clique(n)
        knowledge = Knowledge(n=n, max_degree=n - 1, diameter=1)
        return graph, NO_CD, _dense_protocol(slots), knowledge, {}

    return build


def _clustering_row(size: int):
    def build():
        row = get_row("nocd")
        graph = GRAPH_FAMILIES[row.graph_family](size)
        knowledge = knowledge_for(graph)
        protocol = row.builder(graph, {})
        return graph, MODELS[row.model], protocol, knowledge, source_inputs(0, "m")

    return build


def _path_idle(n: int):
    def build():
        graph = path_graph(n)
        knowledge = Knowledge(n=n, max_degree=2, diameter=n - 1)
        protocol = path_broadcast_protocol(oriented=True)
        return graph, LOCAL, protocol, knowledge, source_inputs(0, "m")

    return build


def default_workloads(quick: bool = False) -> List[BenchWorkload]:
    """The standing benchmark set.

    * ``dense_single_hop_n512`` — every device active every slot on a
      clique: resolution cost dominates (the bitmask fast path's home
      turf).
    * ``table1_clustering_row`` — the Table 1 No-CD clustering row
      (Theorem 11), sleep-heavy with realistic activity patterns: the
      per-slot engine overhead test.
    * ``path_idle_n1024`` — the Theorem 21 path algorithm, almost all
      idle: the event-heap vs slot-by-slot (reference) gap, guarding
      "idle time is free".

    ``quick`` shrinks sizes for CI smoke use; speedup *ratios* shrink
    with them, so thresholds for quick runs must be conservative.
    """
    if quick:
        return [
            BenchWorkload(
                "dense_single_hop_n512",
                "clique n=128, No-CD, 8 all-active slots (quick variant)",
                _dense_single_hop(128, 8),
                reps=3,
            ),
            BenchWorkload(
                "table1_clustering_row",
                "T1.noCD.1 clustering cell, gnp n=16, seed 0 (quick variant)",
                _clustering_row(16),
                reps=3,
            ),
            BenchWorkload(
                "path_idle_n1024",
                "Thm 21 path algorithm, n=512, idle-dominated (quick variant)",
                _path_idle(512),
                reps=3,
                legacy_gate=False,
            ),
        ]
    return [
        BenchWorkload(
            "dense_single_hop_n512",
            "clique n=512, No-CD, 24 all-active slots",
            _dense_single_hop(512, 24),
        ),
        BenchWorkload(
            "table1_clustering_row",
            "T1.noCD.1 clustering cell (Theorem 11, No-CD), gnp n=32, seed 0",
            _clustering_row(32),
        ),
        BenchWorkload(
            "path_idle_n1024",
            "Thm 21 path algorithm, n=1024, idle-dominated",
            _path_idle(1024),
            legacy_gate=False,
        ),
    ]


def _time_best(make_runner: Callable[[], Any], protocol, inputs, reps: int):
    """Best-of-``reps`` wall time; a fresh runner per rep so per-run state
    (masks are graph-cached and shared, deliberately) is realistic."""
    best = float("inf")
    result = None
    for _ in range(reps):
        runner = make_runner()
        start = time.perf_counter()
        result = runner.run(protocol, inputs=inputs)
        best = min(best, time.perf_counter() - start)
    return best, result


def _runners(graph, model, knowledge, time_limit) -> Dict[str, Callable[[], Any]]:
    common = dict(seed=0, knowledge=knowledge, time_limit=time_limit)
    return {
        "engine": lambda: Simulator(graph, model, **common),
        "engine_list_path": lambda: Simulator(
            graph, model, resolution="list", **common
        ),
        "legacy_engine": lambda: LegacySimulator(graph, model, **common),
        "reference": lambda: ReferenceSimulator(graph, model, **common),
    }


def run_engine_benchmarks(
    quick: bool = False,
    workloads: Optional[Sequence[BenchWorkload]] = None,
) -> Dict:
    """Time every workload on every runner; verify equivalence; report."""
    if workloads is None:
        workloads = default_workloads(quick=quick)
    report: Dict[str, Any] = {
        "generated_by": "repro bench",
        "quick": bool(quick),
        "python": platform.python_version(),
        "workloads": {},
    }
    for workload in workloads:
        graph, model, protocol, knowledge, inputs = workload.build()
        timings: Dict[str, float] = {}
        results = {}
        for name, make_runner in _runners(
            graph, model, knowledge, workload.time_limit
        ).items():
            timings[name], results[name] = _time_best(
                make_runner, protocol, inputs, workload.reps
            )
        baseline = results["engine"]
        equivalent = all(
            other.outputs == baseline.outputs
            and other.duration == baseline.duration
            and [e.total for e in other.energy]
            == [e.total for e in baseline.energy]
            for other in results.values()
        )
        slots = baseline.duration
        engine_seconds = timings["engine"]
        report["workloads"][workload.name] = {
            "description": workload.description,
            "n": graph.n,
            "slots": slots,
            "seconds": {k: round(v, 6) for k, v in timings.items()},
            "slots_per_sec": {
                k: round(slots / v, 1) if v > 0 else float("inf")
                for k, v in timings.items()
            },
            "speedup_vs_legacy": round(timings["legacy_engine"] / engine_seconds, 3),
            "speedup_vs_list_path": round(
                timings["engine_list_path"] / engine_seconds, 3
            ),
            "speedup_vs_reference": round(timings["reference"] / engine_seconds, 3),
            "equivalent": equivalent,
            "legacy_gate": workload.legacy_gate,
        }
    report["summary"] = {
        f"min_{key}": min(
            entry[key] for entry in report["workloads"].values()
        )
        for key in (
            "speedup_vs_legacy",
            "speedup_vs_list_path",
            "speedup_vs_reference",
        )
        if report["workloads"]
    }
    return report


def check_thresholds(
    report: Dict,
    min_legacy_speedup: Optional[float] = None,
    min_ref_speedup: Optional[float] = None,
) -> List[str]:
    """Return human-readable violations (empty = all thresholds met)."""
    violations = []
    for name, entry in report["workloads"].items():
        if not entry["equivalent"]:
            violations.append(f"{name}: runners disagree (equivalence failed)")
        if (
            min_legacy_speedup is not None
            and entry.get("legacy_gate", True)
            and entry["speedup_vs_legacy"] < min_legacy_speedup
        ):
            violations.append(
                f"{name}: speedup_vs_legacy {entry['speedup_vs_legacy']}x "
                f"< required {min_legacy_speedup}x"
            )
        if (
            min_ref_speedup is not None
            and entry["speedup_vs_reference"] < min_ref_speedup
        ):
            violations.append(
                f"{name}: speedup_vs_reference {entry['speedup_vs_reference']}x "
                f"< required {min_ref_speedup}x"
            )
    return violations


def write_results(report: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_report(report: Dict) -> str:
    lines = ["engine microbenchmarks (slots/sec; speedups are vs the engine)"]
    for name, entry in report["workloads"].items():
        lines.append(f"  {name}: {entry['description']}")
        lines.append(
            "    engine {engine:>12.1f} slots/s | legacy x{legacy:.2f} | "
            "list-path x{list_path:.2f} | reference x{ref:.2f} | "
            "equivalent={eq}".format(
                engine=entry["slots_per_sec"]["engine"],
                legacy=entry["speedup_vs_legacy"],
                list_path=entry["speedup_vs_list_path"],
                ref=entry["speedup_vs_reference"],
                eq=entry["equivalent"],
            )
        )
    return "\n".join(lines)
