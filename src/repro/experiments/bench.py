"""Engine microbenchmarks: slots/sec on fixed workloads.

``repro bench`` runs each workload on up to five simulators —

* ``engine`` — the current bitmask-resolution engine,
* ``engine_numpy`` — the same engine on the vectorized numpy
  resolution backend (present when numpy is installed),
* ``engine_list_path`` — the same engine forced onto the legacy
  per-neighbor list resolution (``resolution="list"``),
* ``legacy_engine`` — the frozen pre-refactor engine
  (:mod:`repro.sim.legacy`), the baseline the refactor is measured
  against,
* ``reference`` — the naive slot-by-slot oracle
  (:class:`~repro.sim.reference.ReferenceSimulator`),

verifies they produce identical outputs/energy/duration, and writes the
timings to ``BENCH_engine.json`` so the repo's perf trajectory is
recorded run over run.  CI runs the quick variant and fails if the
event-heap engine is not measurably faster than the reference oracle —
the tripwire for silent O(n * slots) regressions.

Two extra sections isolate the PR-3 vectorization work from the
generator-stepping cost that dominates whole runs:

* workloads flagged ``backend_bench`` re-play their recorded slot
  activity straight through each :mod:`repro.sim.resolution` backend
  (no protocol stepping), reported under ``resolution_backends`` —
  that is where the numpy-vs-bitmask acceptance bar (and CI's
  ``--min-numpy-speedup`` gate) is measured;
* a ``lockstep_trials`` section times a multi-seed cell on the serial
  vs the lock-step batched executor and cross-checks their results.

Speedups are reported as ``other_seconds / engine_seconds`` (higher is
better for the engine).  ``slots/sec`` is simulated slots (the run's
``duration``) per wall-clock second on that fixed workload; it is only
comparable across runners of the *same* workload.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.broadcast.base import source_inputs
from repro.broadcast.path import path_broadcast_protocol
from repro.campaign.cells import knowledge_for
from repro.campaign.registry import GRAPH_FAMILIES, get_row
from repro.graphs import clique, path_graph
from repro.graphs.graph import Graph
from repro.sim import LOCAL, NO_CD, Knowledge, Listen, Send, Simulator
from repro.sim.batch import run_trials
from repro.sim.legacy import LegacySimulator
from repro.sim.models import MODELS, ChannelModel
from repro.sim.observers import SlotObserver
from repro.sim.reference import ReferenceSimulator
from repro.sim.resolution import RESOLUTION_MODES, create_backend, numpy_available

__all__ = [
    "BenchWorkload",
    "default_workloads",
    "run_engine_benchmarks",
    "check_thresholds",
    "write_results",
    "format_report",
]


@dataclass
class BenchWorkload:
    """One fixed (graph, model, protocol) cell timed on every runner."""

    name: str
    description: str
    build: Callable[[], Tuple[Graph, ChannelModel, Callable, Knowledge, Dict]]
    reps: int = 3
    time_limit: int = 10_000_000
    # Whether --min-legacy-speedup gates this workload.  The two
    # resolution-bound workloads (dense single-hop, clustering row) carry
    # the refactor's 2x acceptance bar; the idle-dominated workload exists
    # for the engine-vs-reference tripwire and is gated only by
    # --min-ref-speedup.
    legacy_gate: bool = True
    # Whether to additionally replay this workload's recorded slots
    # straight through every resolution backend (no generator stepping)
    # — the numpy-vs-bitmask acceptance measurement, gated by
    # --min-numpy-speedup.
    backend_bench: bool = False


def _dense_protocol(slots: int):
    """Every node is active every slot (send w.p. 1/16, else listen):
    the channel-resolution stress test."""

    def protocol(ctx):
        heard = 0
        send_p = 1.0 / 16.0
        for step in range(slots):
            if ctx.rng.random() < send_p:
                yield Send(("m", ctx.index, step))
            else:
                feedback = yield Listen()
                if feedback is not None:
                    heard += 1
        return heard

    return protocol


def _dense_single_hop(n: int, slots: int):
    def build():
        graph = clique(n)
        knowledge = Knowledge(n=n, max_degree=n - 1, diameter=1)
        return graph, NO_CD, _dense_protocol(slots), knowledge, {}

    return build


def _clustering_row(size: int):
    def build():
        row = get_row("nocd")
        graph = GRAPH_FAMILIES[row.graph_family](size)
        knowledge = knowledge_for(graph)
        protocol = row.builder(graph, {})
        return graph, MODELS[row.model], protocol, knowledge, source_inputs(0, "m")

    return build


def _path_idle(n: int):
    def build():
        graph = path_graph(n)
        knowledge = Knowledge(n=n, max_degree=2, diameter=n - 1)
        protocol = path_broadcast_protocol(oriented=True)
        return graph, LOCAL, protocol, knowledge, source_inputs(0, "m")

    return build


def default_workloads(quick: bool = False) -> List[BenchWorkload]:
    """The standing benchmark set.

    * ``dense_single_hop_n512`` — every device active every slot on a
      clique: resolution cost dominates (the bitmask fast path's home
      turf).
    * ``table1_clustering_row`` — the Table 1 No-CD clustering row
      (Theorem 11), sleep-heavy with realistic activity patterns: the
      per-slot engine overhead test.
    * ``path_idle_n1024`` — the Theorem 21 path algorithm, almost all
      idle: the event-heap vs slot-by-slot (reference) gap, guarding
      "idle time is free".

    ``quick`` shrinks sizes for CI smoke use; speedup *ratios* shrink
    with them, so thresholds for quick runs must be conservative.
    """
    if quick:
        return [
            # The dense workload keeps its full n=512 clique even in
            # quick mode: the numpy-vs-bitmask backend bar is defined at
            # n=512, and shrinking n would soften the vector advantage
            # the CI gate is meant to protect.  Fewer slots keep it fast.
            BenchWorkload(
                "dense_single_hop_n512",
                "clique n=512, No-CD, 6 all-active slots (quick variant)",
                _dense_single_hop(512, 6),
                reps=3,
                backend_bench=True,
            ),
            BenchWorkload(
                "table1_clustering_row",
                "T1.noCD.1 clustering cell, gnp n=16, seed 0 (quick variant)",
                _clustering_row(16),
                reps=3,
            ),
            BenchWorkload(
                "path_idle_n1024",
                "Thm 21 path algorithm, n=512, idle-dominated (quick variant)",
                _path_idle(512),
                reps=3,
                legacy_gate=False,
            ),
        ]
    return [
        BenchWorkload(
            "dense_single_hop_n512",
            "clique n=512, No-CD, 24 all-active slots",
            _dense_single_hop(512, 24),
            backend_bench=True,
        ),
        BenchWorkload(
            "table1_clustering_row",
            "T1.noCD.1 clustering cell (Theorem 11, No-CD), gnp n=32, seed 0",
            _clustering_row(32),
        ),
        BenchWorkload(
            "path_idle_n1024",
            "Thm 21 path algorithm, n=1024, idle-dominated",
            _path_idle(1024),
            legacy_gate=False,
        ),
    ]


def _time_best(make_runner: Callable[[], Any], protocol, inputs, reps: int):
    """Best-of-``reps`` wall time; a fresh runner per rep so per-run state
    (masks are graph-cached and shared, deliberately) is realistic."""
    best = float("inf")
    result = None
    for _ in range(reps):
        runner = make_runner()
        start = time.perf_counter()
        result = runner.run(protocol, inputs=inputs)
        best = min(best, time.perf_counter() - start)
    return best, result


def _runners(graph, model, knowledge, time_limit) -> Dict[str, Callable[[], Any]]:
    common = dict(seed=0, knowledge=knowledge, time_limit=time_limit)
    runners = {
        "engine": lambda: Simulator(graph, model, **common),
        "engine_list_path": lambda: Simulator(
            graph, model, resolution="list", **common
        ),
        "legacy_engine": lambda: LegacySimulator(graph, model, **common),
        "reference": lambda: ReferenceSimulator(graph, model, **common),
    }
    if numpy_available():
        runners["engine_numpy"] = lambda: Simulator(
            graph, model, resolution="numpy", **common
        )
    return runners


class _SlotRecorder(SlotObserver):
    """Captures every active slot's activity so the resolution backends
    can be replayed on identical inputs, stepping cost excluded."""

    def __init__(self) -> None:
        self.slots: List[Tuple[Dict[int, Any], List[int]]] = []

    def on_slot(self, slot, senders, listeners, duplexers, feedbacks) -> None:
        if duplexers:
            transmitting = dict(senders)
            transmitting.update(duplexers)
            receivers = list(listeners) + list(duplexers)
        else:
            transmitting = dict(senders)
            receivers = list(listeners)
        self.slots.append((transmitting, receivers))


def _backend_replay(
    graph, model, protocol, inputs, knowledge, time_limit, reps: int
) -> Dict:
    """Time each resolution backend on the workload's recorded slots.

    This isolates the hot path the backends own: the engine's generator
    stepping is identical across backends and dominates whole runs, so
    backend-level ratios are measured by replaying the exact
    (transmitting, receivers) sequence of one engine run through each
    backend's slot resolver alone.  Feedbacks are cross-checked between
    backends while timing, cheaply pinning semantic equivalence on the
    bench workload itself.
    """
    recorder = _SlotRecorder()
    Simulator(
        graph, model, seed=0, knowledge=knowledge,
        time_limit=time_limit, observers=(recorder,),
    ).run(protocol, inputs=inputs)
    slots = recorder.slots
    if not slots:  # e.g. a protocol that only idles: nothing to replay
        return {"slots_replayed": 0, "seconds": {}, "equivalent": True}
    # Short recordings (quick mode) are replayed several times per
    # timing so fixed per-call costs (numpy ufunc warm-up, timer
    # resolution) do not swamp the per-slot signal.
    inner = max(1, -(-120 // len(slots)))  # ceil division
    seconds: Dict[str, float] = {}
    feedback_sets: Dict[str, List[Dict[int, Any]]] = {}
    for name in RESOLUTION_MODES:
        if name == "numpy" and not numpy_available():
            continue
        backend = create_backend(name, graph)
        resolver = backend.slot_resolver(model)
        resolved: List[Dict[int, Any]] = []
        for transmitting, receivers in slots:  # warm-up + equivalence set
            feedbacks: Dict[int, Any] = {}
            resolver(transmitting, receivers, feedbacks)
            resolved.append(feedbacks)
        best = float("inf")
        for _ in range(max(reps, 5)):
            start = time.perf_counter()
            for _ in range(inner):
                for transmitting, receivers in slots:
                    resolver(transmitting, receivers, {})
            best = min(best, (time.perf_counter() - start) / inner)
        seconds[name] = best
        feedback_sets[name] = resolved
    baseline = feedback_sets["bitmask"]
    equivalent = all(other == baseline for other in feedback_sets.values())
    entry: Dict[str, Any] = {
        "slots_replayed": len(slots),
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "speedup_list_to_bitmask": round(
            seconds["list"] / seconds["bitmask"], 3
        ),
        "equivalent": equivalent,
    }
    if "numpy" in seconds:
        entry["speedup_numpy_vs_bitmask"] = round(
            seconds["bitmask"] / seconds["numpy"], 3
        )
    return entry


def _lockstep_section(quick: bool) -> Dict:
    """Serial vs lock-step batched trials on one multi-seed dense cell."""
    n, slots, seeds = (256, 8, list(range(8))) if quick else (
        512, 16, list(range(8))
    )
    graph = clique(n)
    knowledge = Knowledge(n=n, max_degree=n - 1, diameter=1)
    protocol = _dense_protocol(slots)
    variants: Dict[str, Dict] = {
        "serial_bitmask": dict(resolution="bitmask", lockstep=False),
        "serial_numpy": dict(resolution="numpy", lockstep=False),
        "lockstep_numpy": dict(resolution="numpy", lockstep=True),
    }
    if not numpy_available():
        variants = {"serial_bitmask": variants["serial_bitmask"]}
    seconds = {}
    results = {}
    for name, opts in variants.items():
        best = float("inf")
        outcome = None
        for _ in range(3):
            start = time.perf_counter()
            outcome = run_trials(
                graph, NO_CD, protocol, seeds, knowledge=knowledge, **opts
            )
            best = min(best, time.perf_counter() - start)
        seconds[name] = best
        results[name] = outcome
    baseline = results["serial_bitmask"]
    equivalent = all(
        [r.outputs for r in other] == [r.outputs for r in baseline]
        and [r.duration for r in other] == [r.duration for r in baseline]
        for other in results.values()
    )
    entry: Dict[str, Any] = {
        "description": (
            f"dense clique n={n}, No-CD, {slots} slots x {len(seeds)} seeds"
        ),
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "equivalent": equivalent,
    }
    if "lockstep_numpy" in seconds:
        entry["speedup_lockstep_vs_serial_bitmask"] = round(
            seconds["serial_bitmask"] / seconds["lockstep_numpy"], 3
        )
        entry["speedup_lockstep_vs_serial_numpy"] = round(
            seconds["serial_numpy"] / seconds["lockstep_numpy"], 3
        )
    return entry


def run_engine_benchmarks(
    quick: bool = False,
    workloads: Optional[Sequence[BenchWorkload]] = None,
) -> Dict:
    """Time every workload on every runner; verify equivalence; report."""
    if workloads is None:
        workloads = default_workloads(quick=quick)
    report: Dict[str, Any] = {
        "generated_by": "repro bench",
        "quick": bool(quick),
        "python": platform.python_version(),
        "workloads": {},
    }
    for workload in workloads:
        graph, model, protocol, knowledge, inputs = workload.build()
        timings: Dict[str, float] = {}
        results = {}
        for name, make_runner in _runners(
            graph, model, knowledge, workload.time_limit
        ).items():
            timings[name], results[name] = _time_best(
                make_runner, protocol, inputs, workload.reps
            )
        baseline = results["engine"]
        equivalent = all(
            other.outputs == baseline.outputs
            and other.duration == baseline.duration
            and [e.total for e in other.energy]
            == [e.total for e in baseline.energy]
            for other in results.values()
        )
        slots = baseline.duration
        engine_seconds = timings["engine"]
        entry = {
            "description": workload.description,
            "n": graph.n,
            "slots": slots,
            "seconds": {k: round(v, 6) for k, v in timings.items()},
            "slots_per_sec": {
                k: round(slots / v, 1) if v > 0 else float("inf")
                for k, v in timings.items()
            },
            "speedup_vs_legacy": round(timings["legacy_engine"] / engine_seconds, 3),
            "speedup_vs_list_path": round(
                timings["engine_list_path"] / engine_seconds, 3
            ),
            "speedup_vs_reference": round(timings["reference"] / engine_seconds, 3),
            "equivalent": equivalent,
            "legacy_gate": workload.legacy_gate,
        }
        if "engine_numpy" in timings:
            # Whole-run ratio: generator stepping (backend-independent)
            # is included, so this understates the backend-level gap —
            # see resolution_backends for the isolated measurement.
            entry["runtime_numpy_vs_bitmask"] = round(
                engine_seconds / timings["engine_numpy"], 3
            )
        if workload.backend_bench:
            entry["resolution_backends"] = _backend_replay(
                graph, model, protocol, inputs, knowledge,
                workload.time_limit, workload.reps,
            )
        report["workloads"][workload.name] = entry
    report["numpy_available"] = numpy_available()
    report["lockstep_trials"] = _lockstep_section(quick)
    report["summary"] = {
        f"min_{key}": min(
            entry[key] for entry in report["workloads"].values()
        )
        for key in (
            "speedup_vs_legacy",
            "speedup_vs_list_path",
            "speedup_vs_reference",
        )
        if report["workloads"]
    }
    backend_ratios = [
        entry["resolution_backends"]["speedup_numpy_vs_bitmask"]
        for entry in report["workloads"].values()
        if "speedup_numpy_vs_bitmask" in entry.get("resolution_backends", {})
    ]
    if backend_ratios:
        report["summary"]["min_backend_numpy_vs_bitmask"] = min(backend_ratios)
    return report


def check_thresholds(
    report: Dict,
    min_legacy_speedup: Optional[float] = None,
    min_ref_speedup: Optional[float] = None,
    min_numpy_speedup: Optional[float] = None,
) -> List[str]:
    """Return human-readable violations (empty = all thresholds met).

    ``min_numpy_speedup`` gates the *backend-level* numpy-vs-bitmask
    ratio on every ``backend_bench`` workload; asking for it without
    numpy installed is itself a violation (the CI perf job installs the
    ``fast`` extra precisely so this gate is meaningful).
    """
    violations = []
    if min_numpy_speedup is not None and not report.get("numpy_available"):
        violations.append(
            "min-numpy-speedup requested but numpy is not installed"
        )
    lockstep = report.get("lockstep_trials")
    if lockstep is not None and not lockstep.get("equivalent", True):
        violations.append(
            "lockstep_trials: lock-step results diverge from serial"
        )
    for name, entry in report["workloads"].items():
        if not entry["equivalent"]:
            violations.append(f"{name}: runners disagree (equivalence failed)")
        backends = entry.get("resolution_backends")
        if backends is not None:
            if not backends.get("equivalent", True):
                violations.append(
                    f"{name}: resolution backends disagree on replayed slots"
                )
            ratio = backends.get("speedup_numpy_vs_bitmask")
            if (
                min_numpy_speedup is not None
                and ratio is not None
                and ratio < min_numpy_speedup
            ):
                violations.append(
                    f"{name}: backend numpy-vs-bitmask {ratio}x "
                    f"< required {min_numpy_speedup}x"
                )
        if (
            min_legacy_speedup is not None
            and entry.get("legacy_gate", True)
            and entry["speedup_vs_legacy"] < min_legacy_speedup
        ):
            violations.append(
                f"{name}: speedup_vs_legacy {entry['speedup_vs_legacy']}x "
                f"< required {min_legacy_speedup}x"
            )
        if (
            min_ref_speedup is not None
            and entry["speedup_vs_reference"] < min_ref_speedup
        ):
            violations.append(
                f"{name}: speedup_vs_reference {entry['speedup_vs_reference']}x "
                f"< required {min_ref_speedup}x"
            )
    return violations


def write_results(report: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_report(report: Dict) -> str:
    lines = ["engine microbenchmarks (slots/sec; speedups are vs the engine)"]
    for name, entry in report["workloads"].items():
        lines.append(f"  {name}: {entry['description']}")
        lines.append(
            "    engine {engine:>12.1f} slots/s | legacy x{legacy:.2f} | "
            "list-path x{list_path:.2f} | reference x{ref:.2f} | "
            "equivalent={eq}".format(
                engine=entry["slots_per_sec"]["engine"],
                legacy=entry["speedup_vs_legacy"],
                list_path=entry["speedup_vs_list_path"],
                ref=entry["speedup_vs_reference"],
                eq=entry["equivalent"],
            )
        )
        if "runtime_numpy_vs_bitmask" in entry:
            lines.append(
                f"    numpy whole-run x{entry['runtime_numpy_vs_bitmask']:.2f}"
                " (includes backend-independent stepping)"
            )
        backends = entry.get("resolution_backends")
        if backends is not None:
            ratio = backends.get("speedup_numpy_vs_bitmask")
            numpy_part = (
                f"numpy x{ratio:.2f} vs bitmask | " if ratio is not None
                else "numpy unavailable | "
            )
            lines.append(
                f"    backend replay ({backends['slots_replayed']} slots): "
                + numpy_part
                + f"bitmask x{backends['speedup_list_to_bitmask']:.2f} "
                  f"vs list | equivalent={backends['equivalent']}"
            )
    lockstep = report.get("lockstep_trials")
    if lockstep is not None:
        lines.append(f"  lockstep_trials: {lockstep['description']}")
        if "speedup_lockstep_vs_serial_bitmask" in lockstep:
            lines.append(
                "    lock-step numpy x{a:.2f} vs serial bitmask | "
                "x{b:.2f} vs serial numpy | equivalent={eq}".format(
                    a=lockstep["speedup_lockstep_vs_serial_bitmask"],
                    b=lockstep["speedup_lockstep_vs_serial_numpy"],
                    eq=lockstep["equivalent"],
                )
            )
    return "\n".join(lines)
