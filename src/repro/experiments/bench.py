"""Engine microbenchmarks: slots/sec on fixed workloads.

``repro bench`` runs each workload on up to six simulators —

* ``engine`` — the current bitmask-resolution engine with phase-compiled
  stepping (``stepping="phase"``: plan-emitting protocols step slots at
  a time, :mod:`repro.sim.plan`),
* ``engine_slot`` — the same engine on the per-slot oracle path: the
  workload's per-slot protocol variant when one exists (``slot_build``),
  else the same protocol expanded per slot (``stepping="slot"``) — the
  PR-3 stepping baseline the phase ABI is measured against,
* ``engine_numpy`` — the phase engine on the vectorized numpy
  resolution backend (present when numpy is installed),
* ``engine_list_path`` — the phase engine forced onto the legacy
  per-neighbor list resolution (``resolution="list"``),
* ``legacy_engine`` — the frozen pre-refactor engine
  (:mod:`repro.sim.legacy`); it predates phase plans, so it runs the
  per-slot protocol variant (or the plan-expanded wrapper,
  :func:`~repro.sim.plan.as_slot_protocol`),
* ``reference`` — the naive slot-by-slot oracle
  (:class:`~repro.sim.reference.ReferenceSimulator`),

verifies they produce identical outputs/energy/duration, and writes the
timings to ``BENCH_engine.json`` so the repo's perf trajectory is
recorded run over run (CI additionally uploads the file as a per-run
artifact, so the curve accumulates per PR).  CI runs the quick variant
and fails if the event-heap engine is not measurably faster than the
reference oracle — the tripwire for silent O(n * slots) regressions —
and if phase stepping stops beating the per-slot path on the
``phase_gate`` workloads (``--min-phase-speedup``).

Because wall-clock is noisy on shared runners, every tracked runner also
reports ``entries_per_slot`` — generator entries (``gen.send`` calls)
per simulated slot, the deterministic stepping-cost metric: a stepping
regression moves it even when the timings wobble.

Two extra sections isolate resolution and batching from stepping:

* workloads flagged ``backend_bench`` re-play their recorded slot
  activity straight through each :mod:`repro.sim.resolution` backend
  (no protocol stepping), reported under ``resolution_backends`` —
  that is where the numpy-vs-bitmask acceptance bar (and CI's
  ``--min-numpy-speedup`` gate) is measured;
* a ``lockstep_trials`` section times a multi-seed cell on the serial
  vs the lock-step batched executor, each under per-slot and
  phase-compiled stepping, and cross-checks their results.

Speedups are reported as ``other_seconds / engine_seconds`` (higher is
better for the engine).  ``slots/sec`` is simulated slots (the run's
``duration``) per wall-clock second on that fixed workload; it is only
comparable across runners of the *same* workload.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.broadcast.base import source_inputs
from repro.broadcast.path import path_broadcast_protocol
from repro.campaign.cells import knowledge_for
from repro.campaign.registry import GRAPH_FAMILIES, get_row
from repro.graphs import clique, path_graph
from repro.graphs.graph import Graph
from repro.sim import (
    LOCAL,
    NO_CD,
    ExecutionConfig,
    Idle,
    Knowledge,
    Listen,
    ListenUntil,
    Repeat,
    Send,
    Simulator,
)
from repro.sim.config import ExecutionConfigError
from repro.sim.feedback import is_message
from repro.sim.batch import run_trials
from repro.sim.legacy import LegacySimulator
from repro.sim.models import MODELS, ChannelModel, LossyModel
from repro.sim.observers import SlotObserver
from repro.sim.plan import as_slot_protocol
from repro.sim.reference import ReferenceSimulator
from repro.sim.resolution import RESOLUTION_MODES, create_backend, numpy_available

__all__ = [
    "BenchWorkload",
    "default_workloads",
    "validate_bench_config",
    "run_engine_benchmarks",
    "check_thresholds",
    "write_results",
    "format_report",
]


@dataclass
class BenchWorkload:
    """One fixed (graph, model, protocol) cell timed on every runner."""

    name: str
    description: str
    build: Callable[[], Tuple[Graph, ChannelModel, Callable, Knowledge, Dict]]
    reps: int = 3
    time_limit: int = 10_000_000
    # Whether --min-legacy-speedup gates this workload.  The two
    # resolution-bound workloads (dense single-hop, clustering row) carry
    # the refactor's 2x acceptance bar; the idle-dominated workload exists
    # for the engine-vs-reference tripwire and is gated only by
    # --min-ref-speedup.
    legacy_gate: bool = True
    # Whether to additionally replay this workload's recorded slots
    # straight through every resolution backend (no generator stepping)
    # — the numpy-vs-bitmask acceptance measurement, gated by
    # --min-numpy-speedup.
    backend_bench: bool = False
    # Optional builder of an explicit per-slot protocol variant,
    # byte-identical to build()'s (plan-emitting) protocol.  When given,
    # the engine_slot and legacy runners use it directly (the honest
    # pre-phase-ABI baseline); when None they fall back to plan
    # expansion (stepping="slot" / as_slot_protocol).
    slot_build: Optional[Callable[[], Callable]] = None
    # Whether --min-phase-speedup gates this workload's end-to-end
    # engine-vs-engine_slot ratio (the phase-stepping acceptance bar).
    phase_gate: bool = False


def _dense_protocol(slots: int):
    """Every node is active every slot (send w.p. 1/16, else listen):
    the channel-resolution stress test.  Per-slot variant — one
    generator entry per slot."""

    def protocol(ctx):
        heard = 0
        send_p = 1.0 / 16.0
        for step in range(slots):
            if ctx.rng.random() < send_p:
                yield Send(("m", ctx.index, step))
            else:
                feedback = yield Listen()
                if feedback is not None:
                    heard += 1
        return heard

    return protocol


def _dense_protocol_phase(slots: int):
    """Phase-compiled dense protocol, byte-identical to
    :func:`_dense_protocol`: the whole schedule's Bernoulli decisions are
    pre-drawn in one block (same draws, same order), consecutive listen
    slots collapse into ``Repeat(Listen, k)`` plans, and heard counts are
    recovered from the collected feedback tuples."""

    def protocol(ctx):
        heard = 0
        decisions = ctx.rand_bernoulli_block(1.0 / 16.0, slots)
        step = 0
        while step < slots:
            if decisions[step]:
                yield Send(("m", ctx.index, step))
                step += 1
                continue
            run = step + 1
            while run < slots and not decisions[run]:
                run += 1
            if run - step == 1:
                feedback = yield Listen()
                if feedback is not None:
                    heard += 1
            else:
                for feedback in (yield Repeat(Listen(), run - step)):
                    if feedback is not None:
                        heard += 1
            step = run
        return heard

    return protocol


def _dense_single_hop(n: int, slots: int):
    def build():
        graph = clique(n)
        knowledge = Knowledge(n=n, max_degree=n - 1, diameter=1)
        return graph, NO_CD, _dense_protocol_phase(slots), knowledge, {}

    return build


def _sr_frame_protocol(windows: int, phase: bool, senders: int = 2):
    """The paper's hottest communication shape at scale: a decay-style
    SR frame on a clique.  Two designated senders burst in lock-step (so
    burst slots always collide and no listener is ever released); every
    other node listens continuously for the whole schedule.  All nodes
    are active nearly every slot — dense — but the activity is
    *phase-structured*: per-window idle+burst for senders, one long
    listen-until for receivers.  This is the workload where generator
    stepping dominates end-to-end and the phase ABI must win
    (``--min-phase-speedup``); the mixed per-slot dense workload above
    stays the resolution-backend stress test.

    ``phase=False`` builds the byte-identical per-slot variant (the
    protocol is deterministic — no rng — so equivalence is structural).
    ``senders`` widens the colliding burst (the lossy bench raises it so
    collisions survive erasure w.h.p. and listeners stay dense).
    """
    W, B = 32, 4  # window length, burst length
    total = windows * W

    def protocol(ctx):
        if ctx.index < senders:
            send_act = Send(("m", ctx.index))
            for _ in range(windows):
                yield Idle(W - B)
                if phase:
                    yield Repeat(send_act, B)
                else:
                    for _ in range(B):
                        yield send_act
            return None
        if phase:
            return (yield ListenUntil(total, pad=True))
        got = None
        listened = 0
        while listened < total:
            feedback = yield Listen()
            listened += 1
            if is_message(feedback):
                got = feedback
                break
        if listened < total:
            yield Idle(total - listened)
        return got

    return protocol


def _sr_frame_cell(n: int, windows: int):
    def build():
        graph = clique(n)
        knowledge = Knowledge(n=n, max_degree=n - 1, diameter=1)
        return graph, NO_CD, _sr_frame_protocol(windows, True), knowledge, {}

    return build


def _clustering_row(size: int):
    def build():
        row = get_row("nocd")
        graph = GRAPH_FAMILIES[row.graph_family](size)
        knowledge = knowledge_for(graph)
        protocol = row.builder(graph, {})
        return graph, MODELS[row.model], protocol, knowledge, source_inputs(0, "m")

    return build


def _path_idle(n: int):
    def build():
        graph = path_graph(n)
        knowledge = Knowledge(n=n, max_degree=2, diameter=n - 1)
        protocol = path_broadcast_protocol(oriented=True)
        return graph, LOCAL, protocol, knowledge, source_inputs(0, "m")

    return build


def default_workloads(quick: bool = False) -> List[BenchWorkload]:
    """The standing benchmark set.

    * ``dense_single_hop_n512`` — every device active every slot on a
      clique, mixed send/listen per slot: resolution cost dominates (the
      backend gate's home turf; phase plans help only modestly here —
      Amdahl — which the recorded ``speedup_phase_vs_slot`` documents).
    * ``dense_sr_frame_n512`` — the decay SR-frame shape at n=512: 510
      continuous listeners + lock-step colliding burst senders.  Dense,
      but phase-structured — generator stepping dominates, so this
      workload carries the phase-ABI acceptance bar
      (``--min-phase-speedup``).
    * ``table1_clustering_row`` — the Table 1 No-CD clustering row
      (Theorem 11), sleep-heavy with realistic activity patterns: the
      per-slot engine overhead test.
    * ``path_idle_n1024`` — the Theorem 21 path algorithm, almost all
      idle: the event-heap vs slot-by-slot (reference) gap, guarding
      "idle time is free".

    ``quick`` shrinks sizes for CI smoke use; speedup *ratios* shrink
    with them, so thresholds for quick runs must be conservative.
    """
    if quick:
        return [
            # The dense workload keeps its full n=512 clique even in
            # quick mode: the numpy-vs-bitmask backend bar is defined at
            # n=512, and shrinking n would soften the vector advantage
            # the CI gate is meant to protect.  16 slots keep per-run
            # setup (node contexts, rng seeding) from swamping the
            # per-slot stepping signal the phase gate measures.
            BenchWorkload(
                "dense_single_hop_n512",
                "clique n=512, No-CD, 16 all-active slots (quick variant)",
                _dense_single_hop(512, 16),
                reps=3,
                backend_bench=True,
                slot_build=lambda: _dense_protocol(16),
            ),
            BenchWorkload(
                "dense_sr_frame_n512",
                "decay SR frame, clique n=512, 510 listeners + colliding "
                "bursts, 10 windows (quick variant)",
                _sr_frame_cell(512, 10),
                reps=3,
                legacy_gate=False,
                slot_build=lambda: _sr_frame_protocol(10, False),
                phase_gate=True,
            ),
            BenchWorkload(
                "table1_clustering_row",
                "T1.noCD.1 clustering cell, gnp n=16, seed 0 (quick variant)",
                _clustering_row(16),
                reps=3,
            ),
            BenchWorkload(
                "path_idle_n1024",
                "Thm 21 path algorithm, n=512, idle-dominated (quick variant)",
                _path_idle(512),
                reps=3,
                legacy_gate=False,
            ),
        ]
    return [
        BenchWorkload(
            "dense_single_hop_n512",
            "clique n=512, No-CD, 24 all-active slots",
            _dense_single_hop(512, 24),
            backend_bench=True,
            slot_build=lambda: _dense_protocol(24),
        ),
        BenchWorkload(
            "dense_sr_frame_n512",
            "decay SR frame, clique n=512, 510 listeners + colliding "
            "bursts, 12 windows",
            _sr_frame_cell(512, 12),
            legacy_gate=False,
            slot_build=lambda: _sr_frame_protocol(12, False),
            phase_gate=True,
        ),
        BenchWorkload(
            "table1_clustering_row",
            "T1.noCD.1 clustering cell (Theorem 11, No-CD), gnp n=32, seed 0",
            _clustering_row(32),
        ),
        BenchWorkload(
            "path_idle_n1024",
            "Thm 21 path algorithm, n=1024, idle-dominated",
            _path_idle(1024),
            legacy_gate=False,
        ),
    ]


def _time_best(make_runner: Callable[[], Any], protocol, inputs, reps: int):
    """Best-of-``reps`` wall time; a fresh runner per rep so per-run state
    (masks are graph-cached and shared, deliberately) is realistic."""
    best = float("inf")
    result = None
    for _ in range(reps):
        runner = make_runner()
        start = time.perf_counter()
        result = runner.run(protocol, inputs=inputs)
        best = min(best, time.perf_counter() - start)
    return best, result


def _runners(
    graph, model, knowledge, time_limit, protocol, slot_protocol,
    base_config: ExecutionConfig,
) -> Dict[str, Tuple[Callable[[], Any], Callable]]:
    """name -> (make_runner, protocol) pairs.

    ``slot_protocol`` is the per-slot-equivalent protocol used by the
    runners without native plan support (the frozen legacy engine) and,
    when it is an explicit variant rather than the expander wrapper, by
    ``engine_slot`` — so the phase-vs-slot ratio compares against the
    honest pre-phase-ABI stepping cost.

    ``base_config`` centers the matrix: the primary ``engine`` runner
    uses it verbatim and every comparison runner derives from it via
    :meth:`~repro.sim.config.ExecutionConfig.replace` — so one config
    edit (or one CLI flag) re-centers the whole comparison.
    """
    base = base_config.replace(
        time_limit=base_config.resolved_time_limit(time_limit)
    )
    common = dict(seed=0, knowledge=knowledge)

    def sim(config: ExecutionConfig) -> Callable[[], Simulator]:
        return lambda: Simulator(graph, model, exec_config=config, **common)

    runners = {"engine": (sim(base), protocol)}
    # A comparison runner is skipped when re-centering makes it
    # config-identical to the primary engine (same condition that
    # suppresses its ratio key): timing the same configuration twice
    # would only burn reps.
    if slot_protocol is None:
        # No explicit per-slot variant: expand plans per slot.
        slot_protocol = as_slot_protocol(protocol)
        if base.stepping != "slot":
            runners["engine_slot"] = (
                sim(base.replace(stepping="slot")), protocol
            )
    else:
        # An explicit per-slot protocol differs from the plan-emitting
        # one even under identical configs: always worth timing.
        runners["engine_slot"] = (sim(base), slot_protocol)
    if base.resolution != "list":
        runners["engine_list_path"] = (
            sim(base.replace(resolution="list")), protocol
        )
    runners["legacy_engine"] = (
        lambda: LegacySimulator(
            graph, model, time_limit=base.time_limit, **common
        ),
        slot_protocol,
    )
    runners["reference"] = (
        lambda: ReferenceSimulator(
            graph, model, time_limit=base.time_limit, **common
        ),
        protocol,
    )
    if numpy_available() and base.resolution != "numpy":
        runners["engine_numpy"] = (
            sim(base.replace(resolution="numpy")), protocol
        )
    return runners


class _SlotRecorder(SlotObserver):
    """Captures every active slot's activity so the resolution backends
    can be replayed on identical inputs, stepping cost excluded."""

    def __init__(self) -> None:
        self.slots: List[Tuple[Dict[int, Any], List[int]]] = []

    def on_slot(self, slot, senders, listeners, duplexers, feedbacks) -> None:
        if duplexers:
            transmitting = dict(senders)
            transmitting.update(duplexers)
            receivers = list(listeners) + list(duplexers)
        else:
            transmitting = dict(senders)
            receivers = list(listeners)
        self.slots.append((transmitting, receivers))


def _backend_replay(
    graph, model, protocol, inputs, knowledge, time_limit, reps: int
) -> Dict:
    """Time each resolution backend on the workload's recorded slots.

    This isolates the hot path the backends own: the engine's generator
    stepping is identical across backends and dominates whole runs, so
    backend-level ratios are measured by replaying the exact
    (transmitting, receivers) sequence of one engine run through each
    backend's slot resolver alone.  Feedbacks are cross-checked between
    backends while timing, cheaply pinning semantic equivalence on the
    bench workload itself.
    """
    recorder = _SlotRecorder()
    Simulator(
        graph, model, seed=0, knowledge=knowledge,
        observers=(recorder,),
        exec_config=ExecutionConfig(time_limit=time_limit),
    ).run(protocol, inputs=inputs)
    slots = recorder.slots
    if not slots:  # e.g. a protocol that only idles: nothing to replay
        return {"slots_replayed": 0, "seconds": {}, "equivalent": True}
    # Short recordings (quick mode) are replayed several times per
    # timing so fixed per-call costs (numpy ufunc warm-up, timer
    # resolution) do not swamp the per-slot signal.
    inner = max(1, -(-120 // len(slots)))  # ceil division
    seconds: Dict[str, float] = {}
    feedback_sets: Dict[str, List[Dict[int, Any]]] = {}
    for name in RESOLUTION_MODES:
        if name == "numpy" and not numpy_available():
            continue
        backend = create_backend(name, graph)
        resolver = backend.slot_resolver(model)
        resolved: List[Dict[int, Any]] = []
        for transmitting, receivers in slots:  # warm-up + equivalence set
            feedbacks: Dict[int, Any] = {}
            resolver(transmitting, receivers, feedbacks)
            resolved.append(feedbacks)
        best = float("inf")
        for _ in range(max(reps, 5)):
            start = time.perf_counter()
            for _ in range(inner):
                for transmitting, receivers in slots:
                    resolver(transmitting, receivers, {})
            best = min(best, (time.perf_counter() - start) / inner)
        seconds[name] = best
        feedback_sets[name] = resolved
    baseline = feedback_sets["bitmask"]
    equivalent = all(other == baseline for other in feedback_sets.values())
    entry: Dict[str, Any] = {
        "slots_replayed": len(slots),
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "speedup_list_to_bitmask": round(
            seconds["list"] / seconds["bitmask"], 3
        ),
        "equivalent": equivalent,
    }
    if "numpy" in seconds:
        entry["speedup_numpy_vs_bitmask"] = round(
            seconds["bitmask"] / seconds["numpy"], 3
        )
    return entry


def _lockstep_section(
    quick: bool,
    base_config: Optional[ExecutionConfig] = None,
    seeds_count: int = 64,
) -> Dict:
    """Serial vs lock-step batched trials on one many-seed dense cell,
    each under per-slot and phase-compiled stepping.

    The workload is the paper's hottest communication shape — the
    SR-frame clique (every node active nearly every slot, receivers in
    one long listen window per frame) — run across many seeds, which is
    the shape million-trial campaigns batch.  ``lockstep_phase`` rides
    the trial-axis struct-of-arrays engine (:mod:`repro.sim.trialsoa`)
    whenever numpy is importable, and its headline ratio
    ``speedup_lockstep_phase_vs_serial_slot`` carries the perf-smoke
    ``--min-lockstep-speedup`` gate; ``lockstep_slot`` keeps the bench
    base resolution, so it keeps recording the per-trial fallback
    driver's curve (historically break-even — see
    :mod:`repro.sim.lockstep`).

    The four variants derive from the bench's re-centerable base config
    via ``replace()`` (like :func:`_runners`), so ``--resolution`` /
    ``--time-limit`` re-center this section too, and ``--seeds`` scales
    the trial count.
    """
    from repro.sim.trialsoa import soa_engaged

    base = base_config or ExecutionConfig()
    n, windows = (256, 4) if quick else (512, 4)
    seeds = list(range(seeds_count))
    graph = clique(n)
    knowledge = Knowledge(n=n, max_degree=n - 1, diameter=1)
    slot_protocol = _sr_frame_protocol(windows, phase=False)
    phase_protocol = _sr_frame_protocol(windows, phase=True)
    # The SoA engine needs the numpy backend; upgrade the default
    # bitmask for the phase variant when numpy is importable, but honor
    # an explicit re-centering (e.g. --resolution list measures the
    # per-trial fallback driver on that backend).
    soa_res = base.resolution
    if soa_res == "bitmask" and numpy_available():
        soa_res = "numpy"
    variants: Dict[str, Tuple[Callable, ExecutionConfig]] = {
        "serial_slot": (
            slot_protocol, base.replace(stepping="slot")
        ),
        "serial_phase": (
            phase_protocol, base.replace(stepping="phase")
        ),
        "lockstep_slot": (
            slot_protocol,
            base.replace(lockstep=True, stepping="slot"),
        ),
        "lockstep_phase": (
            phase_protocol,
            base.replace(lockstep=True, stepping="phase", resolution=soa_res),
        ),
    }
    soa_active = (
        soa_res == "numpy"
        and soa_engaged(NO_CD, variants["lockstep_phase"][1])
    )
    seconds = {}
    results = {}
    for name, (protocol, config) in variants.items():
        best = float("inf")
        outcome = None
        for _ in range(3):
            start = time.perf_counter()
            outcome = run_trials(
                graph, NO_CD, protocol, seeds, knowledge=knowledge,
                exec_config=config,
            )
            best = min(best, time.perf_counter() - start)
        seconds[name] = best
        results[name] = outcome
    baseline = results["serial_slot"]
    equivalent = all(
        [r.outputs for r in other] == [r.outputs for r in baseline]
        and [r.duration for r in other] == [r.duration for r in baseline]
        and [[e.total for e in r.energy] for r in other]
        == [[e.total for e in r.energy] for r in baseline]
        for other in results.values()
    )
    entry: Dict[str, Any] = {
        "description": (
            f"SR-frame clique n={n}, No-CD, {windows} windows x 32 slots "
            f"x {len(seeds)} seeds (lockstep_phase resolution: {soa_res}, "
            f"SoA engine {'active' if soa_active else 'inactive'}; other "
            f"variants keep the bench base config)"
        ),
        "configs": {
            name: config.to_dict(include_defaults=True)
            for name, (_, config) in variants.items()
        },
        "seeds": len(seeds),
        "soa_active": soa_active,
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "equivalent": equivalent,
        # Headline: the batched executor with phase stepping vs the PR-3
        # serial per-slot path.  Carried by the SoA engine when active.
        "speedup_lockstep_phase_vs_serial_slot": round(
            seconds["serial_slot"] / seconds["lockstep_phase"], 3
        ),
        # Stepping win isolated under each executor.
        "speedup_phase_vs_slot_serial": round(
            seconds["serial_slot"] / seconds["serial_phase"], 3
        ),
        "speedup_phase_vs_slot_lockstep": round(
            seconds["lockstep_slot"] / seconds["lockstep_phase"], 3
        ),
        # Batching win isolated under phase stepping (the PR-3 question;
        # break-even until the trial axis was vectorized).
        "speedup_lockstep_vs_serial_phase": round(
            seconds["serial_phase"] / seconds["lockstep_phase"], 3
        ),
    }
    return entry


def _lossy_lockstep_section(
    quick: bool,
    base_config: Optional[ExecutionConfig] = None,
    seeds_count: int = 64,
) -> Dict:
    """Serial vs lock-step batched trials under a per-seed lossy channel.

    The workload (``lossy_sr_frame_n256``) is the SR-frame clique from
    :func:`_lockstep_section` wrapped in a per-seed
    ``model_factory=lambda s: LossyModel(NO_CD, rate, seed=s)`` — the
    shape every erasure-sensitivity campaign row runs.  The lock-step
    numpy variant rides the SoA engine's vectorized drop-mask path
    (:mod:`repro.sim.trialsoa`): per trial per round, one transplanted
    ``RandomState.random_sample`` call replaces the serial oracle's
    per-transmission ``random.random()`` loop while drawing the exact
    same stream, so results stay byte-identical.  The headline ratio
    ``speedup_lossy_soa_vs_serial`` carries the perf-smoke
    ``--min-lossy-soa-speedup`` gate, and ``soa_reason`` records which
    dispatch verdict each variant actually got — the gate also requires
    ``soa_active`` (the numpy variant reporting ``"ok"``), so a silent
    fallback to the per-trial driver fails CI rather than hiding in a
    slower-but-green run.
    """
    base = base_config or ExecutionConfig()
    # Eight bursting senders (vs the clean section's two): with eight
    # on-air transmissions per burst slot at rate 0.3, the chance a
    # receiver sees exactly one survivor — and is released from its
    # listen window — is ~0.1% per slot, so the cell stays dense for
    # the whole schedule while erasure draws dominate the channel work.
    n, windows, rate, senders = 256, (2 if quick else 4), 0.3, 8
    seeds = list(range(seeds_count))
    graph = clique(n)
    knowledge = Knowledge(n=n, max_degree=n - 1, diameter=1)
    slot_protocol = _sr_frame_protocol(windows, phase=False, senders=senders)
    phase_protocol = _sr_frame_protocol(windows, phase=True, senders=senders)

    def factory(seed: int) -> LossyModel:
        # Fresh models per run_trials call: LossyModel is stateful (its
        # erasure rng advances), so each timing rep must restart the
        # per-seed stream to stay deterministic.
        return LossyModel(NO_CD, rate, seed=seed)

    soa_res = base.resolution
    if soa_res == "bitmask" and numpy_available():
        soa_res = "numpy"
    variants: Dict[str, Tuple[Callable, ExecutionConfig]] = {
        "serial_slot": (
            slot_protocol,
            base.replace(stepping="slot", model_factory=factory),
        ),
        "lockstep_slot": (
            slot_protocol,
            base.replace(lockstep=True, stepping="slot", model_factory=factory),
        ),
        "lockstep_phase": (
            phase_protocol,
            base.replace(
                lockstep=True, stepping="phase", resolution=soa_res,
                model_factory=factory,
            ),
        ),
    }
    seconds = {}
    results = {}
    reasons: Dict[str, Optional[str]] = {}
    for name, (protocol, config) in variants.items():
        best = float("inf")
        outcome = None
        # Best-of-2 (not 3): the serial lossy oracle draws one python
        # rng sample per on-air transmission per receiver, making it
        # the slowest leg of the whole bench.
        for _ in range(2):
            start = time.perf_counter()
            outcome = run_trials(
                graph, NO_CD, protocol, seeds, knowledge=knowledge,
                exec_config=config,
            )
            best = min(best, time.perf_counter() - start)
        seconds[name] = best
        results[name] = outcome
        reasons[name] = outcome[0].soa_reason if outcome else None
    baseline = results["serial_slot"]
    equivalent = all(
        [r.outputs for r in other] == [r.outputs for r in baseline]
        and [r.duration for r in other] == [r.duration for r in baseline]
        and [[e.total for e in r.energy] for r in other]
        == [[e.total for e in r.energy] for r in baseline]
        for other in results.values()
    )
    soa_active = reasons["lockstep_phase"] == "ok"
    entry: Dict[str, Any] = {
        "workload": "lossy_sr_frame_n256",
        "description": (
            f"SR-frame clique n={n} under LossyModel(No-CD, rate={rate}) "
            f"per seed, {senders} bursting senders, {windows} windows x "
            f"32 slots x {len(seeds)} seeds (lockstep_phase resolution: "
            f"{soa_res}, SoA engine {'active' if soa_active else 'inactive'})"
        ),
        "configs": {
            name: config.to_dict(include_defaults=True)
            for name, (_, config) in variants.items()
        },
        "seeds": len(seeds),
        "loss_rate": rate,
        "soa_active": soa_active,
        "soa_reason": dict(reasons),
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "equivalent": equivalent,
        # Headline: the vectorized lossy SoA path vs the serial oracle.
        "speedup_lossy_soa_vs_serial": round(
            seconds["serial_slot"] / seconds["lockstep_phase"], 3
        ),
        # Same batch through the per-trial lock-step fallback driver.
        "speedup_lossy_soa_vs_pertrial": round(
            seconds["lockstep_slot"] / seconds["lockstep_phase"], 3
        ),
    }
    return entry


def _campaign_fabric_section(quick: bool) -> Dict:
    """Campaign dispatch overhead: serial runner vs the worker fabric.

    Times one fixed dense campaign (cheap cells, so dispatch — queues,
    shards, heartbeats, the events ledger — dominates) through the
    serial oracle and through ``run_campaign_fabric`` with 2 workers,
    into throwaway stores, and cross-checks that both produce identical
    aggregates.  ``speedup_fabric_vs_serial`` is recorded for the perf
    trajectory but is *not* CI-gated: on a single-core runner the
    fabric's value is fault isolation, not wall-clock.
    """
    from repro.campaign import (
        CampaignSpec,
        CampaignStore,
        aggregate_campaign,
        aggregate_campaign_streaming,
        run_campaign,
        run_campaign_fabric,
    )

    sizes, seeds = ([16], list(range(4))) if quick else (
        [16, 32], list(range(8))
    )
    spec = CampaignSpec.from_dict({
        "name": "bench-fabric",
        "rows": [{"row": "path", "sizes": sizes, "seeds": seeds}],
    })
    cells = len(sizes) * len(seeds)

    def points_blob(points) -> str:
        return json.dumps(
            {k: [vars(p) for p in v] for k, v in points.items()},
            sort_keys=True, default=str,
        )

    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        serial_store = CampaignStore(os.path.join(tmp, "serial", "r.jsonl"))
        run_campaign(spec, serial_store, progress=None)
        serial_seconds = time.perf_counter() - start

        start = time.perf_counter()
        fabric_store = CampaignStore(os.path.join(tmp, "fabric", "r.jsonl"))
        run_campaign_fabric(
            spec, fabric_store, workers=2, progress=None,
            events_path=os.path.join(tmp, "fabric", "events.jsonl"),
        )
        fabric_seconds = time.perf_counter() - start

        serial_points = points_blob(
            aggregate_campaign(spec, serial_store, extended=True)
        )
        equivalent = (
            serial_points
            == points_blob(aggregate_campaign(spec, fabric_store, extended=True))
            == points_blob(
                aggregate_campaign_streaming(spec, fabric_store, extended=True)
            )
        )
    return {
        "description": (
            f"campaign dispatch: path row, {cells} cheap cells — serial "
            f"oracle vs 2-worker fabric (fork, shards, events ledger); "
            f"informational on single-core runners"
        ),
        "cells": cells,
        "seconds": {
            "serial": round(serial_seconds, 6),
            "fabric_workers2": round(fabric_seconds, 6),
        },
        "cells_per_sec": {
            "serial": round(cells / serial_seconds, 1),
            "fabric_workers2": round(cells / fabric_seconds, 1),
        },
        "speedup_fabric_vs_serial": round(serial_seconds / fabric_seconds, 3),
        "workers": 2,
        # Aggregates must match the serial oracle byte-for-byte (and the
        # streaming reducer must match both) — this IS CI-gated via
        # check_thresholds, unlike the speedup.
        "equivalent": equivalent,
    }


def validate_bench_config(config: ExecutionConfig) -> None:
    """Reject config fields the benchmark matrix cannot honor.

    Called by :func:`run_engine_benchmarks` and, separately, by the CLI
    *before* the run starts — so a bad flag fails in milliseconds with a
    clean message instead of being caught (together with unrelated
    runtime errors) around a minutes-long benchmark.
    """
    for bad_field, why in (
        ("lockstep", "the lockstep_trials section measures it explicitly"),
        ("contention_hist", "bench results carry no extras channel"),
        ("observer_factory", "bench times bare runs"),
        ("model_factory", "bench workloads fix their channel model"),
        ("record_trace", "tracing would slow only the engine runners, "
                         "skewing every speedup ratio"),
    ):
        if getattr(config, bad_field):
            raise ExecutionConfigError(
                f"bench cannot honor exec_config.{bad_field} ({why})"
            )
    if not config.meter_energy:
        raise ExecutionConfigError(
            "bench cannot honor exec_config.meter_energy=False: the "
            "legacy/reference runners always meter, so the equivalence "
            "check would fail by construction"
        )
    for spec in config.field_specs():
        if spec.metadata["runner"] and getattr(config, spec.name) != spec.default:
            raise ExecutionConfigError(
                f"bench cannot honor exec_config.{spec.name}: fabric "
                f"runner fields steer campaign dispatch, and the "
                f"campaign_fabric section sets its own worker count"
            )


def run_engine_benchmarks(
    quick: bool = False,
    workloads: Optional[Sequence[BenchWorkload]] = None,
    exec_config: Optional[ExecutionConfig] = None,
    lockstep_seeds: int = 64,
) -> Dict:
    """Time every workload on every runner; verify equivalence; report.

    ``exec_config`` re-centers the runner matrix: the primary ``engine``
    runner uses it and the comparison runners derive from it (see
    :func:`_runners`).  Per-run fields only — batch-level fields
    (``lockstep``, ``contention_hist``, the per-seed hooks) and
    ``meter_energy=False`` (which would break the cross-runner energy
    equivalence check) are rejected.
    """
    base_config = exec_config or ExecutionConfig()
    validate_bench_config(base_config)
    if workloads is None:
        workloads = default_workloads(quick=quick)
    report: Dict[str, Any] = {
        "generated_by": "repro bench",
        "quick": bool(quick),
        "python": platform.python_version(),
        # The lockstep_trials section derives its four variants from
        # this base too, and records the derived per-variant configs.
        "workload_exec_config": base_config.to_dict(include_defaults=True),
        "workloads": {},
    }
    for workload in workloads:
        graph, model, protocol, knowledge, inputs = workload.build()
        slot_protocol = workload.slot_build() if workload.slot_build else None
        timings: Dict[str, float] = {}
        results = {}
        for name, (make_runner, runner_protocol) in _runners(
            graph, model, knowledge, workload.time_limit,
            protocol, slot_protocol, base_config,
        ).items():
            timings[name], results[name] = _time_best(
                make_runner, runner_protocol, inputs, workload.reps
            )
        baseline = results["engine"]
        equivalent = all(
            other.outputs == baseline.outputs
            and other.duration == baseline.duration
            and [e.total for e in other.energy]
            == [e.total for e in baseline.energy]
            for other in results.values()
        )
        slots = baseline.duration
        engine_seconds = timings["engine"]
        entry = {
            "description": workload.description,
            "n": graph.n,
            "slots": slots,
            "seconds": {k: round(v, 6) for k, v in timings.items()},
            "slots_per_sec": {
                k: round(slots / v, 1) if v > 0 else float("inf")
                for k, v in timings.items()
            },
            # Generator entries per simulated slot: the deterministic
            # stepping-cost metric (0-entry runners — the frozen legacy
            # engine — are omitted).
            "entries_per_slot": {
                k: round(r.gen_entries / slots, 2) if slots else 0.0
                for k, r in results.items()
                if r.gen_entries
            },
            "speedup_vs_legacy": round(timings["legacy_engine"] / engine_seconds, 3),
            "speedup_vs_reference": round(timings["reference"] / engine_seconds, 3),
            "equivalent": equivalent,
            "legacy_gate": workload.legacy_gate,
            "phase_gate": workload.phase_gate,
        }
        # The fixed-axis ratio keys name their baseline ("vs list path",
        # "numpy vs bitmask", "phase vs slot"), so they are only emitted
        # when the re-centerable base config actually sits on the named
        # baseline — otherwise the key would record a same-config timing
        # under a wrong-by-name label.
        if base_config.resolution != "list":
            entry["speedup_vs_list_path"] = round(
                timings["engine_list_path"] / engine_seconds, 3
            )
        if base_config.stepping == "phase":
            entry["speedup_phase_vs_slot"] = round(
                timings["engine_slot"] / engine_seconds, 3
            )
        if "engine_numpy" in timings and base_config.resolution == "bitmask":
            # Whole-run ratio: generator stepping (backend-independent)
            # is included, so this understates the backend-level gap —
            # see resolution_backends for the isolated measurement.
            entry["runtime_numpy_vs_bitmask"] = round(
                engine_seconds / timings["engine_numpy"], 3
            )
        if workload.backend_bench:
            entry["resolution_backends"] = _backend_replay(
                graph, model, protocol, inputs, knowledge,
                workload.time_limit, workload.reps,
            )
        report["workloads"][workload.name] = entry
    report["numpy_available"] = numpy_available()
    report["lockstep_trials"] = _lockstep_section(
        quick, base_config, lockstep_seeds
    )
    report["lossy_lockstep_trials"] = _lossy_lockstep_section(
        quick, base_config, lockstep_seeds
    )
    report["campaign_fabric"] = _campaign_fabric_section(quick)
    summary: Dict[str, float] = {}
    for key in (
        "speedup_vs_legacy",
        "speedup_vs_list_path",
        "speedup_vs_reference",
    ):
        values = [
            entry[key] for entry in report["workloads"].values()
            if key in entry
        ]
        if values:
            summary[f"min_{key}"] = min(values)
    report["summary"] = summary
    phase_ratios = [
        entry["speedup_phase_vs_slot"]
        for entry in report["workloads"].values()
        if entry.get("phase_gate") and "speedup_phase_vs_slot" in entry
    ]
    if phase_ratios:
        report["summary"]["min_phase_vs_slot"] = min(phase_ratios)
    backend_ratios = [
        entry["resolution_backends"]["speedup_numpy_vs_bitmask"]
        for entry in report["workloads"].values()
        if "speedup_numpy_vs_bitmask" in entry.get("resolution_backends", {})
    ]
    if backend_ratios:
        report["summary"]["min_backend_numpy_vs_bitmask"] = min(backend_ratios)
    return report


def check_thresholds(
    report: Dict,
    min_legacy_speedup: Optional[float] = None,
    min_ref_speedup: Optional[float] = None,
    min_numpy_speedup: Optional[float] = None,
    min_phase_speedup: Optional[float] = None,
    min_lockstep_speedup: Optional[float] = None,
    min_lossy_soa_speedup: Optional[float] = None,
) -> List[str]:
    """Return human-readable violations (empty = all thresholds met).

    ``min_numpy_speedup`` gates the *backend-level* numpy-vs-bitmask
    ratio on every ``backend_bench`` workload; asking for it without
    numpy installed is itself a violation (the CI perf job installs the
    ``fast`` extra precisely so this gate is meaningful).
    ``min_phase_speedup`` gates the end-to-end phase-vs-per-slot
    stepping ratio on every ``phase_gate`` workload.
    ``min_lockstep_speedup`` gates the lockstep_trials headline ratio
    (``speedup_lockstep_phase_vs_serial_slot``) and requires the SoA
    trial-axis engine to actually be the path measured — a run where it
    silently fell back to the per-trial driver is itself a violation.
    ``min_lossy_soa_speedup`` applies the same discipline to the
    lossy-channel workload (``lossy_lockstep_trials``): it gates
    ``speedup_lossy_soa_vs_serial`` and demands ``soa_active`` — the
    lossy variant must report dispatch verdict ``"ok"``, proving the
    vectorized drop-mask path (not the per-trial fallback) was timed.
    """
    violations = []
    if min_numpy_speedup is not None and not report.get("numpy_available"):
        violations.append(
            "min-numpy-speedup requested but numpy is not installed"
        )
    lockstep = report.get("lockstep_trials")
    if lockstep is not None and not lockstep.get("equivalent", True):
        violations.append(
            "lockstep_trials: lock-step results diverge from serial"
        )
    if min_lockstep_speedup is not None:
        if lockstep is None:
            violations.append(
                "min-lockstep-speedup requested but the lockstep_trials "
                "section is missing from the report"
            )
        else:
            if not lockstep.get("soa_active"):
                violations.append(
                    "min-lockstep-speedup requested but the SoA lock-step "
                    "engine was inactive (numpy missing or the config "
                    "re-centered off the numpy resolution)"
                )
            ratio = lockstep.get("speedup_lockstep_phase_vs_serial_slot")
            if ratio is not None and ratio < min_lockstep_speedup:
                violations.append(
                    f"lockstep_trials: speedup_lockstep_phase_vs_serial_slot "
                    f"{ratio}x < required {min_lockstep_speedup}x"
                )
    lossy = report.get("lossy_lockstep_trials")
    if lossy is not None and not lossy.get("equivalent", True):
        violations.append(
            "lossy_lockstep_trials: lossy lock-step results diverge "
            "from the serial oracle"
        )
    if min_lossy_soa_speedup is not None:
        if lossy is None:
            violations.append(
                "min-lossy-soa-speedup requested but the "
                "lossy_lockstep_trials section is missing from the report"
            )
        else:
            if not lossy.get("soa_active"):
                violations.append(
                    "min-lossy-soa-speedup requested but the SoA lossy "
                    "path was inactive (dispatch verdict "
                    f"{lossy.get('soa_reason', {}).get('lockstep_phase')!r} "
                    "instead of 'ok')"
                )
            ratio = lossy.get("speedup_lossy_soa_vs_serial")
            if ratio is not None and ratio < min_lossy_soa_speedup:
                violations.append(
                    f"lossy_lockstep_trials: speedup_lossy_soa_vs_serial "
                    f"{ratio}x < required {min_lossy_soa_speedup}x"
                )
    fabric = report.get("campaign_fabric")
    if fabric is not None and not fabric.get("equivalent", True):
        violations.append(
            "campaign_fabric: fabric/streaming aggregates diverge from "
            "the serial oracle"
        )
    for name, entry in report["workloads"].items():
        if not entry["equivalent"]:
            violations.append(f"{name}: runners disagree (equivalence failed)")
        backends = entry.get("resolution_backends")
        if backends is not None:
            if not backends.get("equivalent", True):
                violations.append(
                    f"{name}: resolution backends disagree on replayed slots"
                )
            ratio = backends.get("speedup_numpy_vs_bitmask")
            if (
                min_numpy_speedup is not None
                and ratio is not None
                and ratio < min_numpy_speedup
            ):
                violations.append(
                    f"{name}: backend numpy-vs-bitmask {ratio}x "
                    f"< required {min_numpy_speedup}x"
                )
        if (
            min_legacy_speedup is not None
            and entry.get("legacy_gate", True)
            and entry["speedup_vs_legacy"] < min_legacy_speedup
        ):
            violations.append(
                f"{name}: speedup_vs_legacy {entry['speedup_vs_legacy']}x "
                f"< required {min_legacy_speedup}x"
            )
        if (
            min_ref_speedup is not None
            and entry["speedup_vs_reference"] < min_ref_speedup
        ):
            violations.append(
                f"{name}: speedup_vs_reference {entry['speedup_vs_reference']}x "
                f"< required {min_ref_speedup}x"
            )
        if min_phase_speedup is not None and entry.get("phase_gate"):
            phase_ratio = entry.get("speedup_phase_vs_slot")
            if phase_ratio is None:
                violations.append(
                    f"{name}: min-phase-speedup requested but the phase-vs-"
                    f"slot ratio was not measured (exec_config re-centered "
                    f"the bench off stepping='phase')"
                )
            elif phase_ratio < min_phase_speedup:
                violations.append(
                    f"{name}: speedup_phase_vs_slot {phase_ratio}x "
                    f"< required {min_phase_speedup}x"
                )
    return violations


def write_results(report: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_report(report: Dict) -> str:
    lines = ["engine microbenchmarks (slots/sec; speedups are vs the engine)"]

    def fmt_ratio(entry, key):
        value = entry.get(key)
        return f"x{value:.2f}" if value is not None else "n/a"

    for name, entry in report["workloads"].items():
        lines.append(f"  {name}: {entry['description']}")
        lines.append(
            "    engine {engine:>12.1f} slots/s | phase-vs-slot {phase} | "
            "legacy x{legacy:.2f} | list-path {list_path} | "
            "reference x{ref:.2f} | equivalent={eq}".format(
                engine=entry["slots_per_sec"]["engine"],
                phase=fmt_ratio(entry, "speedup_phase_vs_slot"),
                legacy=entry["speedup_vs_legacy"],
                list_path=fmt_ratio(entry, "speedup_vs_list_path"),
                ref=entry["speedup_vs_reference"],
                eq=entry["equivalent"],
            )
        )
        entries = entry.get("entries_per_slot")
        if entries:
            lines.append(
                "    gen entries/slot: "
                + " | ".join(
                    f"{runner} {value:.2f}"
                    for runner, value in sorted(entries.items())
                )
            )
        if "runtime_numpy_vs_bitmask" in entry:
            lines.append(
                f"    numpy whole-run x{entry['runtime_numpy_vs_bitmask']:.2f}"
                " (includes backend-independent stepping)"
            )
        backends = entry.get("resolution_backends")
        if backends is not None:
            ratio = backends.get("speedup_numpy_vs_bitmask")
            numpy_part = (
                f"numpy x{ratio:.2f} vs bitmask | " if ratio is not None
                else "numpy unavailable | "
            )
            lines.append(
                f"    backend replay ({backends['slots_replayed']} slots): "
                + numpy_part
                + f"bitmask x{backends['speedup_list_to_bitmask']:.2f} "
                  f"vs list | equivalent={backends['equivalent']}"
            )
    lockstep = report.get("lockstep_trials")
    if lockstep is not None:
        lines.append(f"  lockstep_trials: {lockstep['description']}")
        if "speedup_lockstep_phase_vs_serial_slot" in lockstep:
            lines.append(
                "    lock-step+phase x{a:.2f} vs serial per-slot "
                "(SoA={soa}) | "
                "phase-vs-slot serial x{b:.2f}, lock-step x{c:.2f} | "
                "lock-step-vs-serial (phase) x{d:.2f} | "
                "equivalent={eq}".format(
                    soa=lockstep.get("soa_active", False),
                    a=lockstep["speedup_lockstep_phase_vs_serial_slot"],
                    b=lockstep["speedup_phase_vs_slot_serial"],
                    c=lockstep["speedup_phase_vs_slot_lockstep"],
                    d=lockstep["speedup_lockstep_vs_serial_phase"],
                    eq=lockstep["equivalent"],
                )
            )
    lossy = report.get("lossy_lockstep_trials")
    if lossy is not None:
        lines.append(f"  lossy_lockstep_trials: {lossy['description']}")
        reasons = lossy.get("soa_reason", {})
        lines.append(
            "    lossy SoA x{a:.2f} vs serial, x{b:.2f} vs per-trial "
            "lock-step (SoA={soa}) | equivalent={eq} | "
            "soa_reason: {reasons}".format(
                a=lossy["speedup_lossy_soa_vs_serial"],
                b=lossy["speedup_lossy_soa_vs_pertrial"],
                soa=lossy.get("soa_active", False),
                eq=lossy["equivalent"],
                reasons=", ".join(
                    f"{name}={reason}"
                    for name, reason in sorted(reasons.items())
                ),
            )
        )
    fabric = report.get("campaign_fabric")
    if fabric is not None:
        lines.append(f"  campaign_fabric: {fabric['description']}")
        lines.append(
            "    serial {serial:.1f} cells/s | fabric({w}) {fab:.1f} cells/s "
            "| fabric-vs-serial x{ratio:.2f} (not gated) | "
            "equivalent={eq}".format(
                serial=fabric["cells_per_sec"]["serial"],
                w=fabric["workers"],
                fab=fabric["cells_per_sec"]["fabric_workers2"],
                ratio=fabric["speedup_fabric_vs_serial"],
                eq=fabric["equivalent"],
            )
        )
    return "\n".join(lines)
