"""Append-only JSONL result store: the campaign's cache and ledger.

Each line is one record::

    {"key": <content hash of the job>, "job": {...}, "status": "ok",
     "result": {...cell measurements...}, "elapsed": 0.12, "ts": ...}

Records are keyed by :func:`repro.campaign.spec.job_key`, a content
hash of the job description, so the store doubles as a cache: a
re-run of the same campaign finds every cell already present and
computes nothing.  Failed cells are recorded too (``status`` of
``"error"``, ``"timeout"``, or the fabric's ``"quarantined"``) and are
retried on the next run — only ``"ok"`` records count as completed.

Crash safety: every record is written as one ``write()`` call of a
complete line and fsynced before ``append`` returns, so a worker
killed mid-append can tear at most the final line of its own shard.
Reading skips such torn or truncated lines with a ``RuntimeWarning``
(the cell is simply recomputed), and bulk rewrites (``compact``) go
through a temp file + ``os.replace`` so the canonical store is never
observable half-written.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from typing import Dict, Iterator, List, Optional, Sequence, Set

import time

__all__ = ["CampaignStore", "make_record"]

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"
#: Written by the campaign fabric for cells of a block that exhausted
#: its retry budget.  A non-``ok`` status, so the next run retries them.
STATUS_QUARANTINED = "quarantined"


def make_record(
    key: str,
    job: Dict,
    status: str,
    result: Optional[Dict] = None,
    error: Optional[str] = None,
    elapsed: float = 0.0,
) -> Dict:
    record = {
        "key": key,
        "job": job,
        "status": status,
        "elapsed": round(elapsed, 6),
        "ts": round(time.time(), 3),
    }
    if result is not None:
        record["result"] = result
    if error is not None:
        record["error"] = error
    return record


def _encode(record: Dict) -> str:
    return json.dumps(record, sort_keys=True) + "\n"


class CampaignStore:
    """One campaign's results on disk (``<out>/results.jsonl``)."""

    def __init__(self, path: str) -> None:
        self.path = path

    # -- reading ------------------------------------------------------------

    def iter_records(self) -> Iterator[Dict]:
        """Yield records in file order, skipping corrupt lines.

        A line can be torn (no trailing newline — a writer died
        mid-``write``) or unparseable (overlapping writes from a crashed
        worker).  Either way the record is dropped with a
        ``RuntimeWarning`` naming the store, and the affected cell is
        simply recomputed on the next run; one bad line never poisons
        the rest of the ledger.
        """
        if not os.path.exists(self.path):
            return
        skipped = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                torn = not line.endswith("\n")
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    skipped += 1
                    continue
                if torn or not isinstance(record, dict) or "key" not in record:
                    # A torn-but-parseable tail could be a truncated
                    # record that still decodes (e.g. a clipped number);
                    # trust only complete lines.
                    skipped += 1
                    continue
                yield record
        if skipped:
            warnings.warn(
                f"campaign store {self.path}: skipped {skipped} corrupt "
                f"line(s) (torn by a killed writer); the affected cells "
                f"will be recomputed",
                RuntimeWarning,
                stacklevel=2,
            )

    def load(self) -> Dict[str, Dict]:
        """Latest record per key (later lines win)."""
        records: Dict[str, Dict] = {}
        for record in self.iter_records():
            records[record["key"]] = record
        return records

    def completed_keys(self) -> Set[str]:
        return {
            key
            for key, record in self.load().items()
            if record.get("status") == STATUS_OK
        }

    def ok_records(self) -> List[Dict]:
        return [
            record
            for record in self.load().values()
            if record.get("status") == STATUS_OK
        ]

    def line_count(self) -> int:
        return sum(1 for _ in self.iter_records())

    # -- writing ------------------------------------------------------------

    def _ensure_dir(self) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)

    def append(self, record: Dict) -> None:
        self.append_many([record])

    def append_many(self, records: Sequence[Dict]) -> None:
        """Append records, one complete line per ``write()`` call, with
        a single flush+fsync for the batch.

        One write per line (not one buffered write of the batch) keeps
        the torn-line blast radius at a single record even if the
        process dies mid-batch; the batched fsync is what makes block
        appends cheap for fabric workers.
        """
        if not records:
            return
        self._ensure_dir()
        with open(self.path, "a", encoding="utf-8") as handle:
            for record in records:
                handle.write(_encode(record))
            handle.flush()
            os.fsync(handle.fileno())

    def rewrite(self, records: Sequence[Dict]) -> None:
        """Atomically replace the store's contents with ``records``.

        Writes a sibling temp file, fsyncs it, and ``os.replace``\\ s it
        over the store, so every concurrent (and future) reader sees
        either the old complete ledger or the new one — never a
        half-written file.
        """
        self._ensure_dir()
        directory = os.path.dirname(self.path) or "."
        fd, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".store-", suffix=".jsonl.tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(_encode(record))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self.path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def compact(self) -> Dict[str, int]:
        """Dedupe the ledger down to one record per key, in place.

        Keeps exactly the record :meth:`load` would resolve for each key
        (later lines win), preserving first-appearance order, via the
        atomic :meth:`rewrite`.  Returns ``{"before": .., "after": ..}``
        line counts.
        """
        records = self.load()
        before = self.line_count()
        self.rewrite(list(records.values()))
        return {"before": before, "after": len(records)}
