"""Append-only JSONL result store: the campaign's cache and ledger.

Each line is one record::

    {"key": <content hash of the job>, "job": {...}, "status": "ok",
     "result": {...cell measurements...}, "elapsed": 0.12, "ts": ...}

Records are keyed by :func:`repro.campaign.spec.job_key`, a content
hash of the job description, so the store doubles as a cache: a
re-run of the same campaign finds every cell already present and
computes nothing.  Failed cells are recorded too (``status`` of
``"error"`` or ``"timeout"``) and are retried on the next run — only
``"ok"`` records count as completed.  Appends are flushed per record
so a killed campaign loses at most the in-flight cell.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterator, List, Optional, Set

__all__ = ["CampaignStore", "make_record"]

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


def make_record(
    key: str,
    job: Dict,
    status: str,
    result: Optional[Dict] = None,
    error: Optional[str] = None,
    elapsed: float = 0.0,
) -> Dict:
    record = {
        "key": key,
        "job": job,
        "status": status,
        "elapsed": round(elapsed, 6),
        "ts": round(time.time(), 3),
    }
    if result is not None:
        record["result"] = result
    if error is not None:
        record["error"] = error
    return record


class CampaignStore:
    """One campaign's results on disk (``<out>/results.jsonl``)."""

    def __init__(self, path: str) -> None:
        self.path = path

    # -- reading ------------------------------------------------------------

    def iter_records(self) -> Iterator[Dict]:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # A torn final line from a killed run; the cell will
                    # simply be recomputed.
                    continue

    def load(self) -> Dict[str, Dict]:
        """Latest record per key (later lines win)."""
        records: Dict[str, Dict] = {}
        for record in self.iter_records():
            records[record["key"]] = record
        return records

    def completed_keys(self) -> Set[str]:
        return {
            key
            for key, record in self.load().items()
            if record.get("status") == STATUS_OK
        }

    def ok_records(self) -> List[Dict]:
        return [
            record
            for record in self.load().values()
            if record.get("status") == STATUS_OK
        ]

    def line_count(self) -> int:
        return sum(1 for _ in self.iter_records())

    # -- writing ------------------------------------------------------------

    def append(self, record: Dict) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
