"""Campaign subsystem: config-driven, sharded, resumable experiment sweeps.

A *campaign* declares a sweep matrix once — rows × sizes × seeds — in a
JSON config, shards it into per-cell jobs across worker processes, and
persists every raw measurement in an append-only JSONL store keyed by a
content hash of the job.  Re-running a campaign computes only the delta;
aggregation reconstructs the serial harness's ``SweepPoint`` tables
(plus spread statistics and bootstrap confidence intervals) on demand.

CLI::

    python -m repro campaign run configs/table1.json --jobs 4
    python -m repro campaign status configs/table1.json
    python -m repro campaign report configs/table1.json
"""

from repro.campaign.aggregate import (
    FAULT_OPTION_KEYS,
    aggregate_campaign,
    campaign_status,
    cells_for_campaign,
    render_degradation,
    render_report,
    render_status,
    variant_label,
)
from repro.campaign.cells import (
    CellResult,
    SweepPoint,
    aggregate_cells,
    bootstrap_median_ci,
    execution_options,
    knowledge_for,
    run_cell,
    run_cells,
)
from repro.campaign.registry import (
    GRAPH_FAMILIES,
    ROW_REGISTRY,
    RowDefinition,
    execute_cell,
    execute_cell_block,
    get_row,
    register_row,
)
from repro.campaign.fabric import (
    FabricRunReport,
    aggregate_campaign_streaming,
    run_campaign_fabric,
    stream_points,
)
from repro.campaign.runner import (
    CampaignRunReport,
    CellTimeout,
    execute_job,
    plan_pending,
    run_campaign,
)
from repro.campaign.spec import CampaignSpec, JobSpec, RowPlan, job_key
from repro.campaign.store import CampaignStore, make_record

__all__ = [
    "FAULT_OPTION_KEYS",
    "aggregate_campaign",
    "campaign_status",
    "cells_for_campaign",
    "render_degradation",
    "render_report",
    "render_status",
    "variant_label",
    "CellResult",
    "SweepPoint",
    "aggregate_cells",
    "bootstrap_median_ci",
    "execution_options",
    "knowledge_for",
    "run_cell",
    "run_cells",
    "GRAPH_FAMILIES",
    "ROW_REGISTRY",
    "RowDefinition",
    "execute_cell",
    "execute_cell_block",
    "get_row",
    "register_row",
    "CampaignRunReport",
    "CellTimeout",
    "FabricRunReport",
    "aggregate_campaign_streaming",
    "execute_job",
    "plan_pending",
    "run_campaign",
    "run_campaign_fabric",
    "stream_points",
    "CampaignSpec",
    "JobSpec",
    "RowPlan",
    "job_key",
    "CampaignStore",
    "make_record",
]
