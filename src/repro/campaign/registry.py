"""The campaign row registry: row names -> runnable cell definitions.

Each :class:`RowDefinition` packages everything needed to execute one
cell of a Table 1 row or ablation — graph family, channel model,
protocol builder, per-row defaults, and report metadata (bounds for
the flat-ratio check, columns).  Campaign configs refer to rows by
name only, so :class:`~repro.campaign.spec.JobSpec` stays a plain
picklable/JSON-able record and multiprocessing workers re-resolve the
definition by importing this module.

The row names are the CLI's ``_TABLE1_ROWS`` keys plus the ablations;
every definition mirrors the corresponding serial runner in
``repro.experiments.table1`` / ``repro.experiments.ablations`` so a
campaign reproduces the exact same measurements.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.broadcast import (
    ClusterBroadcastParams,
    cluster_broadcast_protocol,
    decay_broadcast_protocol,
    theorem11_params,
    theorem12_params,
)
from repro.broadcast.cd_optimal import CDOptimalParams, cd_optimal_broadcast_protocol
from repro.broadcast.deterministic import (
    det_cd_broadcast_protocol,
    det_local_broadcast_protocol,
)
from repro.broadcast.dtime import DTimeParams, dtime_broadcast_protocol
from repro.broadcast.local_sim import local_sim_broadcast_protocol
from repro.broadcast.path import path_broadcast_protocol
from repro.campaign.cells import (
    CellResult,
    run_cell,
    run_cells,
)
from repro.sim.config import (
    ExecutionConfig,
    ExecutionConfigError,
    normalize_execution_options,
    validate_execution_options,
)
from repro.graphs import (
    cycle_graph,
    grid_graph,
    k2k_gadget,
    path_graph,
    random_gnp,
)
from repro.graphs.graph import Graph
from repro.lowerbounds import derive_leader_election, energy_before_reception
from repro.sim.models import MODELS, LossyModel

__all__ = [
    "RowDefinition",
    "ROW_REGISTRY",
    "GRAPH_FAMILIES",
    "GRAPH_FAMILY_MIN_SIZES",
    "get_row",
    "register_row",
    "resolve_bounds",
    "row_min_size",
    "check_row_supports_options",
    "execute_cell",
    "execute_cell_block",
]

_GNP_P = 0.3


def _gnp(n: int) -> Graph:
    return random_gnp(n, _GNP_P, random.Random(n), ensure_connected=True)


def _grid_square(n: int) -> Graph:
    side = int(round(math.sqrt(n)))
    return grid_graph(side, side)


def _k2k(k: int) -> Graph:
    graph, _, _ = k2k_gadget(k)
    return graph


GRAPH_FAMILIES: Dict[str, Callable[[int], Graph]] = {
    "gnp": _gnp,
    "path": path_graph,
    "cycle": cycle_graph,
    "grid-square": _grid_square,
    "k2k": _k2k,
}

#: Smallest size each family's constructor accepts (a cycle needs three
#: vertices; everything else runs from two).  Size-rescaling callers
#: (``table1 --sizes-scale``) clamp to this instead of a blanket 2, so
#: cycle rows scale down without crashing in ``cycle_graph``.
GRAPH_FAMILY_MIN_SIZES: Dict[str, int] = {
    "gnp": 2,
    "path": 2,
    "cycle": 3,
    "grid-square": 2,
    "k2k": 2,
}


def row_min_size(name: str) -> int:
    """The smallest valid size for a registry row's graph family."""
    return GRAPH_FAMILY_MIN_SIZES.get(get_row(name).graph_family, 2)


def _log2(x: float) -> float:
    return math.log2(max(2.0, x))


@dataclass
class RowDefinition:
    """Everything needed to run and report one campaign row.

    ``bounds`` maps column names to bound specs in the format
    :func:`repro.experiments.harness.format_table` accepts (a plain
    energy callable or a ``(metric, fn)`` pair); rows whose bound
    depends on an option (e.g. the CD row's epsilon) use a callable
    ``options -> bounds dict`` instead — resolve via
    :func:`resolve_bounds`.
    """

    name: str
    title: str
    model: str
    graph_family: str
    builder: Callable[[Graph, Dict], Callable]
    default_sizes: Tuple[int, ...]
    default_seeds: Tuple[int, ...]
    id_space_from_n: bool = False
    record_trace: bool = False
    extra_metrics: Optional[Callable] = None
    bounds: object = field(default_factory=dict)
    columns: Tuple[str, ...] = (
        "n", "max_degree", "diameter", "delivered",
        "time_median", "max_energy_median",
    )
    # Escape hatch for rows that are not a single run_broadcast call
    # (e.g. the beta ablation measures partition statistics directly).
    custom_cell: Optional[Callable[[str, int, int, Dict], CellResult]] = None
    # Execution options this row cannot honor (typically because a
    # custom_cell runs on a bare Simulator).  Campaign validation
    # rejects configs — and CLI-injected flags — that set them, before
    # any cell runs; they would otherwise fail every cell mid-run under
    # a content-hash identity that can never be satisfied.
    unsupported_exec_options: Tuple[str, ...] = ()


def resolve_bounds(definition: RowDefinition, options: Dict) -> Dict:
    if callable(definition.bounds):
        return definition.bounds(options)
    return definition.bounds


ROW_REGISTRY: Dict[str, RowDefinition] = {}


def register_row(definition: RowDefinition) -> RowDefinition:
    ROW_REGISTRY[definition.name] = definition
    return definition


def get_row(name: str) -> RowDefinition:
    try:
        return ROW_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign row {name!r}; available: {sorted(ROW_REGISTRY)}"
        ) from None


def check_row_supports_options(row: str, options: Optional[Dict]) -> None:
    """Raise :class:`ExecutionConfigError` if ``row`` cannot honor an
    execution option actually demanded by ``options``.

    The one honorability door shared by campaign spec validation and
    the worker entry points.  Checked on the *normalized* options: an
    option explicitly set to its default aliases an omitted one and
    therefore demands nothing of the row.
    """
    definition = get_row(row)
    unsupported = sorted(
        set(normalize_execution_options(dict(options or {})))
        & set(definition.unsupported_exec_options)
    )
    if unsupported:
        raise ExecutionConfigError(
            f"row {row!r} cannot honor execution option(s) {unsupported} "
            f"(it runs a bespoke cell with no layer to consume them); "
            f"drop the option or the row"
        )


def execute_cell(row: str, size: int, seed: int, options: Dict) -> CellResult:
    """Run one (row, size, seed) cell — the single-seed worker entry
    point (a one-seed block)."""
    return execute_cell_block(row, size, (seed,), options)[0]


def execute_cell_block(
    row: str, size: int, seeds: Sequence[int], options: Dict
) -> List[CellResult]:
    """Run one (row, size) cell across a *block* of seeds.

    The whole block shares one prepared engine via
    :func:`repro.campaign.cells.run_cells`, so a sharded campaign worker
    amortizes graph construction and engine setup exactly like the
    serial sweep.  Execution-steering options (the
    :meth:`~repro.sim.config.ExecutionConfig.option_keys` subset of the
    cell's ``options`` dict — ``resolution``, ``stepping``,
    ``lockstep``, ``contention_hist``) become the block's
    :class:`~repro.sim.config.ExecutionConfig`; rows with a
    ``custom_cell`` run seed by seed, as before.

    A ``loss_rate`` row option runs the row's protocol under an erasure
    channel: every seed gets its own
    :class:`~repro.sim.models.LossyModel` wrapper (seeded by the trial
    seed, so results are sharding-independent) around the row's model
    via a per-block ``model_factory``.  Under ``lockstep: true`` +
    ``resolution: "numpy"`` such blocks run on the trial-SoA engine's
    vectorized drop-mask path, whole-block — this is how ``campaign run
    --workers N`` gets array speed per worker on lossy rows.
    """
    definition = get_row(row)
    # Same door policy as CampaignSpec validation: reserved execution
    # fields (record_trace, time_limit, hooks) in an options dict are
    # rejected, never silently dropped — this also covers direct
    # execute_cell/execute_cell_block callers that bypass a spec.
    try:
        validate_execution_options(options)
    except ExecutionConfigError as exc:
        raise ExecutionConfigError(f"row {row!r}: {exc}") from None
    check_row_supports_options(row, options)
    if definition.custom_cell is not None:
        if "loss_rate" in options:
            raise ExecutionConfigError(
                f"row {row!r} cannot honor loss_rate (it runs a bespoke "
                f"cell with no channel-model layer to wrap)"
            )
        return [
            definition.custom_cell(row, size, seed, options) for seed in seeds
        ]
    graph = GRAPH_FAMILIES[definition.graph_family](size)
    config = ExecutionConfig.from_options(options)
    if definition.record_trace:
        config = config.replace(record_trace=True)
    if "loss_rate" in options:
        inner = MODELS[definition.model]
        # Range-checked by validate_execution_options at the door above.
        rate = float(options["loss_rate"])
        config = config.replace(
            model_factory=lambda seed: LossyModel(inner, rate, seed=seed)
        )
    return run_cells(
        graph,
        MODELS[definition.model],
        definition.builder(graph, options),
        label=row,
        size=size,
        seeds=tuple(seeds),
        id_space_from_n=definition.id_space_from_n,
        extra_metrics=definition.extra_metrics,
        exec_config=config,
    )


# --- upper-bound rows (mirror repro.experiments.table1) --------------------


register_row(RowDefinition(
    name="local",
    title="T1.LOCAL.1  Theorem 11 (LOCAL): energy ~ log n, time ~ n log n",
    model="LOCAL",
    graph_family="gnp",
    builder=lambda g, o: cluster_broadcast_protocol(
        theorem11_params(g.n, "LOCAL", failure=o.get("failure", 0.02))
    ),
    default_sizes=(8, 16, 32),
    default_seeds=(0, 1, 2),
    bounds={
        "log n": ("energy", lambda p: _log2(p.n)),
        "nlogn time": ("time", lambda p: p.n * _log2(p.n)),
    },
))

register_row(RowDefinition(
    name="nocd",
    title="T1.noCD.1  Theorem 11 (No-CD): energy ~ log(Delta) log^2 n",
    model="No-CD",
    graph_family="gnp",
    builder=lambda g, o: cluster_broadcast_protocol(
        theorem11_params(g.n, "No-CD", failure=o.get("failure", 0.02))
    ),
    default_sizes=(8, 12, 16),
    default_seeds=(0, 1, 2),
    bounds={
        "logD*log^2n": (
            "energy", lambda p: _log2(p.max_degree) * _log2(p.n) ** 2
        ),
    },
))

register_row(RowDefinition(
    name="dtime",
    title="T1.noCD.2  Theorem 16 (No-CD): polylog energy at growing D",
    model="No-CD",
    graph_family="cycle",
    builder=lambda g, o: dtime_broadcast_protocol(
        lambda n, d: DTimeParams.for_graph(
            n, d, beta=o.get("beta", 0.4), iterations=2,
            contention=2, reps=4, failure=o.get("failure", 0.05),
        )
    ),
    default_sizes=(8, 12, 16),
    default_seeds=(0, 1),
    bounds={"log^4 n": ("energy", lambda p: _log2(p.n) ** 4)},
))

register_row(RowDefinition(
    name="bounded",
    title="T1.noCD.3  Corollary 13 (No-CD, Delta=2): energy ~ log n",
    model="No-CD",
    graph_family="path",
    builder=lambda g, o: local_sim_broadcast_protocol(
        failure=o.get("failure", 0.02)
    ),
    default_sizes=(8, 12, 16),
    default_seeds=(0, 1, 2),
    bounds={"log n": ("energy", lambda p: _log2(p.n))},
))

register_row(RowDefinition(
    name="cd",
    title="T1.CD.1  Theorem 12 (CD): energy ~ log^2 n / (eps loglog n)",
    model="CD",
    graph_family="gnp",
    builder=lambda g, o: cluster_broadcast_protocol(
        theorem12_params(
            g.n, epsilon=o.get("epsilon", 0.5), failure=o.get("failure", 0.02)
        )
    ),
    default_sizes=(8, 12, 16),
    default_seeds=(0, 1, 2),
    bounds=lambda o: {
        "log^2n/llog": (
            "energy",
            lambda p: _log2(p.n) ** 2
            / (o.get("epsilon", 0.5) * max(1.0, math.log2(_log2(p.n)))),
        ),
    },
))

register_row(RowDefinition(
    name="cd-optimal",
    title="T1.CD.2  Theorem 20 (CD): energy ~ log n (loglog Delta factors)",
    model="CD",
    graph_family="gnp",
    builder=lambda g, o: cd_optimal_broadcast_protocol(
        CDOptimalParams.for_graph(g.n, g.max_degree, iterations=3, rounds_s=2)
    ),
    default_sizes=(8, 12),
    default_seeds=(0, 1),
    bounds={"log n": ("energy", lambda p: _log2(p.n))},
))

register_row(RowDefinition(
    name="det-local",
    title="T1.det.LOCAL  Theorem 25: energy ~ log n log N",
    model="LOCAL",
    graph_family="cycle",
    builder=lambda g, o: det_local_broadcast_protocol(),
    default_sizes=(6, 8, 12),
    default_seeds=(0,),
    id_space_from_n=True,
    bounds={"logn*logN": ("energy", lambda p: _log2(p.n) ** 2)},
))

register_row(RowDefinition(
    name="det-cd",
    title="T1.det.CD  Theorem 27: energy ~ log^3 N log n",
    model="CD",
    graph_family="cycle",
    builder=lambda g, o: det_cd_broadcast_protocol(),
    default_sizes=(4, 6, 8),
    default_seeds=(0,),
    id_space_from_n=True,
    bounds={"log^3N*logn": ("energy", lambda p: _log2(p.n) ** 4)},
))

register_row(RowDefinition(
    name="path",
    title="Thm 21 (path): mean energy ~ log n, time <= 2n",
    model="LOCAL",
    graph_family="path",
    builder=lambda g, o: path_broadcast_protocol(oriented=True),
    default_sizes=(64, 256, 1024),
    default_seeds=(0, 1, 2, 3),
    columns=(
        "n", "diameter", "delivered", "time_median",
        "max_energy_median", "mean_energy_median",
    ),
    bounds={
        "ln(2n)": ("energy", lambda p: math.log(2 * p.n)),
        "2n time": ("time", lambda p: 2.0 * p.n),
    },
))

register_row(RowDefinition(
    name="decay",
    title="Baseline (BGI decay, No-CD grid): energy ~ D log Delta log n",
    model="No-CD",
    graph_family="grid-square",
    builder=lambda g, o: decay_broadcast_protocol(
        failure=o.get("failure", 0.02)
    ),
    default_sizes=(16, 36, 64),
    default_seeds=(0, 1, 2),
    bounds={
        "D*logD*logn": (
            "energy",
            lambda p: p.diameter * _log2(p.max_degree) * _log2(p.n),
        ),
    },
))


# --- lower-bound rows ------------------------------------------------------


def _worst_pre_reception(outcome) -> Dict[str, float]:
    worst = float(energy_before_reception(outcome).worst)
    lower_bound = math.log2(len(outcome.sim.outputs)) / 5
    return {
        "worst_pre_reception": worst,
        "lower_bound": lower_bound,
        # Aggregates conjunctively (see aggregate_cells): a single seed
        # below the Theorem 1 bound flags the whole size as failing.
        "lb_ok": 1.0 if worst >= lower_bound else 0.0,
    }


register_row(RowDefinition(
    name="lb-path",
    title="T1.LOCAL.LB  Theorem 1: worst pre-reception energy vs (1/5) log2 n",
    model="LOCAL",
    graph_family="path",
    builder=lambda g, o: path_broadcast_protocol(oriented=True),
    default_sizes=(64, 256, 1024),
    default_seeds=(0, 1, 2, 3, 4),
    record_trace=True,
    extra_metrics=_worst_pre_reception,
    columns=(
        "n", "diameter", "delivered",
        "worst_pre_reception", "lower_bound", "lb_ok",
    ),
    bounds={},
))


def _reduction_metrics(outcome) -> Dict[str, float]:
    # The K_{2,k} gadget always has s=0, t=1 (see k2k_gadget).
    report = derive_leader_election(outcome, 0, 1)
    return {
        "le_time": float(report.le_time),
        "broadcast_energy": float(report.broadcast_energy),
        "bound_holds": 1.0 if report.bound_holds else 0.0,
    }


register_row(RowDefinition(
    name="lb-reduction",
    title="T1.*.LB  Theorem 2 reduction on K_{2,k}: T_LE <= 2E",
    model="No-CD",
    graph_family="k2k",
    builder=lambda g, o: decay_broadcast_protocol(
        failure=o.get("failure", 0.01)
    ),
    default_sizes=(2, 4, 8, 16),
    default_seeds=(0, 1, 2),
    record_trace=True,
    extra_metrics=_reduction_metrics,
    columns=("n", "le_time", "broadcast_energy", "bound_holds"),
    bounds={},
))


# --- ablations (mirror repro.experiments.ablations) ------------------------


def _probe_builder(probe: bool):
    def build(g: Graph, o: Dict):
        base = theorem11_params(g.n, "CD", failure=o.get("failure", 0.02))
        return cluster_broadcast_protocol(ClusterBroadcastParams(
            model_name="CD", survive_p=base.survive_p, spread_s=base.spread_s,
            iterations=base.iterations,
            gl_diameter_bound=base.gl_diameter_bound,
            failure=base.failure, probe=probe,
        ))
    return build


register_row(RowDefinition(
    name="abl-probe",
    title="ABL.probe  Remark 9 probes ON (CD, Theorem 11 params)",
    model="CD",
    graph_family="gnp",
    builder=_probe_builder(True),
    default_sizes=(12,),
    default_seeds=(0, 1, 2),
))

register_row(RowDefinition(
    name="abl-noprobe",
    title="ABL.probe  Remark 9 probes OFF (CD, Theorem 11 params)",
    model="CD",
    graph_family="gnp",
    builder=_probe_builder(False),
    default_sizes=(12,),
    default_seeds=(0, 1, 2),
))

register_row(RowDefinition(
    name="abl-ps-thm11",
    title="ABL.ps  Theorem 11 knobs (p=1/2, s=1) in CD",
    model="CD",
    graph_family="gnp",
    builder=lambda g, o: cluster_broadcast_protocol(
        theorem11_params(g.n, "CD", failure=o.get("failure", 0.02))
    ),
    default_sizes=(12,),
    default_seeds=(0, 1),
))

register_row(RowDefinition(
    name="abl-ps-thm12",
    title="ABL.ps  Theorem 12 knobs (small p, s=log n) in CD",
    model="CD",
    graph_family="gnp",
    builder=lambda g, o: cluster_broadcast_protocol(
        theorem12_params(
            g.n, epsilon=o.get("epsilon", 0.5), failure=o.get("failure", 0.02)
        )
    ),
    default_sizes=(12,),
    default_seeds=(0, 1),
))


def _beta_cell(row: str, size: int, seed: int, options: Dict) -> CellResult:
    """Partition(beta) statistics on a cycle — not a broadcast run.

    Execution options are honored where the bare engine can
    (``resolution``/``stepping``); batch-level ones (``lockstep``,
    ``contention_hist``) make the cell *fail loudly* — they are part of
    the cell's content-hash identity, so silently ignoring them would
    store unmarked default-execution results under a different key.
    """
    from repro.core.partition import (
        PartitionParams,
        partition_once,
        partition_result_clusters,
    )
    from repro.core.schemes import SRScheme
    from repro.graphs.properties import diameter as graph_diameter
    from repro.sim import NO_CD, Simulator

    beta = float(options.get("beta", 0.3))
    failure = float(options.get("failure", 0.02))
    graph = cycle_graph(size)
    scheme = SRScheme("No-CD", 2, failure=failure)
    params = PartitionParams(beta=beta, n=size, failure=failure)

    def proto(ctx):
        out = yield from partition_once(ctx, scheme, params)
        return out

    # Simulator itself rejects lockstep/contention_hist configs.
    result = Simulator(
        graph, NO_CD, seed=seed,
        exec_config=ExecutionConfig.from_options(options),
    ).run(proto)
    clusters = [c for c, _, _ in result.outputs]
    cut = sum(1 for u, v in graph.edges if clusters[u] != clusters[v])
    n_clusters = len(partition_result_clusters(result.outputs)[0])
    return CellResult(
        label=row,
        size=size,
        n=graph.n,
        max_degree=graph.max_degree,
        diameter=graph_diameter(graph),
        seed=seed,
        delivered=True,
        duration=result.duration,
        max_energy=result.max_energy,
        mean_energy=result.mean_energy,
        extras={
            "beta": beta,
            "edge_cut_rate": cut / len(graph.edges),
            "clusters": float(n_clusters),
            "lemma14_bound": 2 * beta,
        },
    )


# --- figure artifacts ------------------------------------------------------


def _figure1_metrics(outcome) -> Dict[str, float]:
    """Trace-derived Figure 1 measurements: traffic split and the 2n
    slot bound the figure visualizes."""
    from repro.experiments.figure1 import _carries_payload

    payload_tx = 0
    control_tx = 0
    for event in outcome.sim.trace:
        if event.kind not in ("send", "duplex"):
            continue
        if _carries_payload(event.message, outcome.payload):
            payload_tx += 1
        else:
            control_tx += 1
    n = len(outcome.sim.outputs)
    return {
        "payload_tx": float(payload_tx),
        "control_tx": float(control_tx),
        # _ok suffix: aggregates conjunctively — one seed over budget
        # flags the whole size.
        "slots_2n_ok": 1.0 if outcome.duration <= 2 * n else 0.0,
    }


register_row(RowDefinition(
    name="figure1",
    title="Fig.1  Algorithm 1 timeline run on a path (traced, time <= 2n)",
    model="LOCAL",
    graph_family="path",
    builder=lambda g, o: path_broadcast_protocol(oriented=True),
    default_sizes=(32,),
    default_seeds=(0,),
    record_trace=True,
    extra_metrics=_figure1_metrics,
    columns=(
        "n", "diameter", "delivered", "time_median",
        "max_energy_median", "payload_tx", "slots_2n_ok",
    ),
    bounds={"2n time": ("time", lambda p: 2.0 * p.n)},
))


register_row(RowDefinition(
    name="abl-beta",
    title="ABL.beta  Partition(beta) on a cycle (Lemma 14/15)",
    model="No-CD",
    graph_family="cycle",
    builder=lambda g, o: None,  # unused: custom_cell below runs the cell
    default_sizes=(40,),
    default_seeds=(0, 1, 2),
    custom_cell=_beta_cell,
    columns=("n", "beta", "edge_cut_rate", "lemma14_bound", "clusters"),
    # The partition runs on a bare Simulator: batch-level options have
    # no layer to consume them here (see _beta_cell).
    unsupported_exec_options=("lockstep", "contention_hist"),
))
