"""``campaign run-all``: reproduce every paper artifact from a cold store.

A *manifest* names the campaign configs that make up the full
reproduction.  ``resolve_run_all`` accepts:

* a directory — uses its ``run_all.json`` manifest when present
  (ordering and selection are explicit), otherwise every ``*.json`` in
  the directory, sorted;
* a manifest file — JSON with a ``configs`` list, resolved relative to
  the manifest's directory;
* a single campaign config — degenerate one-entry run.

Manifest shape (``configs/run_all.json``)::

    {"name": "run-all",
     "description": "every paper artifact",
     "configs": ["figure1.json", "table1.json", "ablations.json"]}

Execution itself is one fabric run per config (shared worker/retry
flags), each into its own ``<out-root>/<campaign name>/`` store — the
driver lives in the CLI; this module only resolves *what* to run.
"""

from __future__ import annotations

import json
import os
from typing import List, Tuple

__all__ = ["MANIFEST_NAME", "resolve_run_all"]

MANIFEST_NAME = "run_all.json"


def _from_manifest(path: str) -> Tuple[str, List[str]]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    configs = data.get("configs")
    if not isinstance(configs, list) or not configs:
        raise ValueError(
            f"manifest {path} needs a non-empty 'configs' list"
        )
    base = os.path.dirname(path)
    resolved = [
        entry if os.path.isabs(entry) else os.path.join(base, entry)
        for entry in configs
    ]
    return data.get("name", "run-all"), resolved


def resolve_run_all(target: str) -> Tuple[str, List[str]]:
    """Resolve a run-all target to ``(name, [config paths])``.

    Raises ``ValueError`` (with the offending path) on a missing
    target, an empty directory, or a manifest naming absent configs —
    all before any cell runs.
    """
    if os.path.isdir(target):
        manifest = os.path.join(target, MANIFEST_NAME)
        if os.path.exists(manifest):
            name, configs = _from_manifest(manifest)
        else:
            configs = sorted(
                os.path.join(target, entry)
                for entry in os.listdir(target)
                if entry.endswith(".json") and entry != MANIFEST_NAME
            )
            name = os.path.basename(os.path.normpath(target)) or "run-all"
            if not configs:
                raise ValueError(f"no campaign configs (*.json) in {target}")
    elif os.path.exists(target):
        with open(target, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if "configs" in data:
            name, configs = _from_manifest(target)
        else:
            # A single campaign config is a one-entry run-all.
            name, configs = data.get("name", "run-all"), [target]
    else:
        raise ValueError(f"run-all target not found: {target}")
    missing = [path for path in configs if not os.path.exists(path)]
    if missing:
        raise ValueError(f"manifest names missing config(s): {missing}")
    return name, configs
