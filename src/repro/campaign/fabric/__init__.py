"""The campaign fabric: a fault-tolerant distributed campaign executor.

Layers (one module each), all riding on the content-hash store that
already makes every cell idempotent:

* :mod:`~repro.campaign.fabric.workers` — persistent worker processes
  fed seed blocks via queues, with heartbeats and crash injection;
* :mod:`~repro.campaign.fabric.runner` — the dispatch/repair loop:
  retry with exponential backoff, poison-block quarantine, worker
  replacement; ``run_campaign_fabric`` is the entry point;
* :mod:`~repro.campaign.fabric.shards` — per-worker result shards and
  their dedup-merge into the canonical store;
* :mod:`~repro.campaign.fabric.reduce` — one-pass streaming
  aggregation (O(matrix) memory, byte-identical points);
* :mod:`~repro.campaign.fabric.events` — the structured events ledger;
* :mod:`~repro.campaign.fabric.status` — events-replay live progress
  (``campaign status --watch``);
* :mod:`~repro.campaign.fabric.runall` — manifest resolution for
  ``campaign run-all``.

The serial runner (:func:`repro.campaign.runner.run_campaign`) remains
the differential oracle: fabric aggregates are byte-identical to its,
under injected crashes, hangs, and timeouts (see
``tests/test_fabric.py``).
"""

from repro.campaign.fabric.events import (
    EventLog,
    read_events,
    render_events_summary,
    summarize_events,
)
from repro.campaign.fabric.reduce import (
    StreamingCampaignAggregator,
    aggregate_campaign_streaming,
    stream_points,
)
from repro.campaign.fabric.runall import resolve_run_all
from repro.campaign.fabric.runner import FabricRunReport, run_campaign_fabric
from repro.campaign.fabric.shards import (
    list_shards,
    merge_shards,
    shard_dir_for,
    shard_path,
)
from repro.campaign.fabric.status import (
    live_progress,
    render_live_status,
    watch_campaign,
)
from repro.campaign.fabric.workers import CRASH_ENV, fabric_context

__all__ = [
    "CRASH_ENV",
    "EventLog",
    "FabricRunReport",
    "StreamingCampaignAggregator",
    "aggregate_campaign_streaming",
    "fabric_context",
    "list_shards",
    "live_progress",
    "merge_shards",
    "read_events",
    "render_events_summary",
    "render_live_status",
    "resolve_run_all",
    "run_campaign_fabric",
    "shard_dir_for",
    "shard_path",
    "stream_points",
    "summarize_events",
    "watch_campaign",
]
