"""Streaming incremental aggregation: fold records, never hold them.

``aggregate_campaign`` materializes the whole store (``store.load()``)
before grouping — O(records) peak memory, which a million-cell sweep
cannot afford.  :class:`StreamingCampaignAggregator` consumes a record
stream exactly once and keeps only:

* the campaign's matrix description — per (row, options) group, the
  size and seed axes (O(spec), built once, no key set);
* one finalized :class:`~repro.campaign.cells.SweepPoint` per completed
  (group, size) bucket — a bucket folds into its point the moment its
  last seed arrives, and its per-cell results are dropped on the spot;
* the still-open buckets' compact :class:`~repro.campaign.cells
  .CellResult` values (an exact median needs every seed's value until
  the bucket closes).

So steady-state memory is O(aggregates) + O(open buckets) — on any
roughly-grouped stream (store file order, shard-merge order) buckets
close as the stream moves past them — never O(records): the raw record
dicts, their job payloads, failure records, and out-of-matrix records
from co-tenant campaigns are dropped the moment they are seen (pinned
by the fault-injection suite's weakref test).

The produced points are the *same computation* as
``aggregate_campaign`` (same :func:`~repro.campaign.cells
.aggregate_cells`, same grouping and ordering), pinned byte-identical
by the differential tests.

Semantics note: the reducer is last-``ok``-wins per cell while a bucket
is open, and a failure record never displaces a success.  A duplicate
``ok`` for an already-finalized cell is ignored — re-runs of a
deterministic cell are interchangeable, matching how completed cells
are read everywhere else.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.campaign.aggregate import variant_label
from repro.campaign.cells import CellResult, SweepPoint, aggregate_cells
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import STATUS_OK, CampaignStore
from repro.sim.config import normalize_execution_options

__all__ = [
    "StreamingCampaignAggregator",
    "stream_points",
    "aggregate_campaign_streaming",
]

Options = Tuple[Tuple[str, object], ...]
Group = Tuple[str, Options]


class StreamingCampaignAggregator:
    """One-pass reducer from a record stream to campaign sweep points."""

    def __init__(self, spec: CampaignSpec, extended: bool = True) -> None:
        from repro.campaign.registry import get_row

        self._extended = extended
        # (row, options) -> {size -> seed set}: the membership test.  A
        # record is in-matrix iff its axes match — exactly the cells
        # spec.jobs() enumerates, without materializing a key per cell.
        self._matrix: Dict[Group, Dict[int, set]] = {}
        for plan in spec.rows:
            definition = get_row(plan.row)
            sizes, seeds = spec.resolve_sizes_seeds(
                plan, definition.default_sizes, definition.default_seeds
            )
            options = tuple(sorted(
                normalize_execution_options(plan.options).items()
            ))
            bucket = self._matrix.setdefault((plan.row, options), {})
            for size in sizes:
                bucket.setdefault(int(size), set()).update(
                    int(seed) for seed in seeds
                )
        self._open: Dict[Group, Dict[int, Dict[int, CellResult]]] = {}
        self._points: Dict[Group, Dict[int, SweepPoint]] = {}
        self._finalized_cells = 0

    def add(self, record: Dict) -> bool:
        """Fold one store record; True if it landed in the matrix."""
        if record.get("status") != STATUS_OK:
            return False
        job = record.get("job") or {}
        row, size, seed = job.get("row"), job.get("size"), job.get("seed")
        if seed is None:
            return False
        options = tuple(sorted((job.get("options") or {}).items()))
        group = (row, options)
        sizes = self._matrix.get(group)
        if sizes is None or size not in sizes or seed not in sizes[size]:
            return False
        if size in self._points.get(group, {}):
            # A re-run of a cell whose bucket already folded: cells are
            # deterministic, so the duplicate carries the same values.
            return True
        bucket = self._open.setdefault(group, {}).setdefault(size, {})
        bucket[seed] = CellResult.from_dict(record["result"])
        if len(bucket) == len(sizes[size]):
            # Bucket complete: fold it into its point and free the cells.
            self._points.setdefault(group, {})[size] = aggregate_cells(
                list(bucket.values()), extended=self._extended
            )
            self._finalized_cells += len(bucket)
            del self._open[group][size]
        return True

    def open_cells(self) -> int:
        """Cells currently buffered in not-yet-complete buckets — the
        reducer's only cell-granular state."""
        return sum(
            len(by_seed)
            for by_size in self._open.values()
            for by_seed in by_size.values()
        )

    def completed_cells(self) -> int:
        return self._finalized_cells + self.open_cells()

    def points(self) -> Dict[str, List[SweepPoint]]:
        """Variant label -> SweepPoints (ascending size) — the exact
        shape and values of ``aggregate_campaign`` on the same store.

        Open (partial) buckets are aggregated on the fly, exactly as
        ``aggregate_campaign`` does on a partially-complete store; the
        reducer's finalized points are untouched.
        """
        points: Dict[str, List[SweepPoint]] = {}
        for group in self._matrix:
            finalized = self._points.get(group, {})
            open_buckets = {
                size: by_seed
                for size, by_seed in self._open.get(group, {}).items()
                if by_seed
            }
            if not finalized and not open_buckets:
                continue
            points[variant_label(*group)] = [
                finalized[size] if size in finalized
                else aggregate_cells(
                    list(open_buckets[size].values()),
                    extended=self._extended,
                )
                for size in sorted({*finalized, *open_buckets})
            ]
        return points


def stream_points(
    spec: CampaignSpec, records: Iterable[Dict], extended: bool = True
) -> Dict[str, List[SweepPoint]]:
    """Reduce any record iterable to sweep points in one pass."""
    aggregator = StreamingCampaignAggregator(spec, extended=extended)
    for record in records:
        aggregator.add(record)
    return aggregator.points()


def aggregate_campaign_streaming(
    spec: CampaignSpec, store: CampaignStore, extended: bool = True
) -> Dict[str, List[SweepPoint]]:
    """Drop-in for ``aggregate_campaign`` with O(aggregates) memory."""
    return stream_points(spec, store.iter_records(), extended=extended)
