"""Per-worker result shards and their merge into the canonical store.

Fabric workers never write the canonical ``results.jsonl`` — each
worker appends to its own ``shards/worker-NNN.jsonl`` (same record
format, same crash-safe append), so there is exactly one writer per
file and no cross-process locking anywhere.  The parent folds shards
back into the canonical store:

* at run *start*, to adopt whatever an aborted previous run computed
  before it died (resume then recomputes only the true delta), and
* at run *end*, so the canonical store is the single source of truth
  the moment ``campaign run`` returns.

A cell can appear in several shards (a worker died after writing its
records but before reporting, so the block was retried elsewhere) or
several times with different statuses (an ``error`` attempt followed by
a successful retry).  :func:`merge_shards` therefore picks one record
per key — preferring ``ok`` over failures, then the latest timestamp —
in two passes: pass one scans shards keeping only a small
``key -> (rank, ts, shard, line)`` tuple, pass two appends exactly the
chosen lines.  Peak memory is one tuple per *distinct key in the
shards* (this run's cells), never the records themselves.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from repro.campaign.store import STATUS_OK, CampaignStore

__all__ = ["shard_dir_for", "shard_path", "list_shards", "merge_shards"]

_SHARD_PREFIX = "worker-"


def shard_dir_for(store: CampaignStore) -> str:
    """The shard directory that belongs to a canonical store."""
    return os.path.join(os.path.dirname(store.path) or ".", "shards")


def shard_path(shard_dir: str, worker_id: int) -> str:
    return os.path.join(shard_dir, f"{_SHARD_PREFIX}{worker_id:03d}.jsonl")


def list_shards(shard_dir: str) -> List[str]:
    """Shard files in deterministic (worker-id) order."""
    if not os.path.isdir(shard_dir):
        return []
    return sorted(
        os.path.join(shard_dir, name)
        for name in os.listdir(shard_dir)
        if name.startswith(_SHARD_PREFIX) and name.endswith(".jsonl")
    )


def merge_shards(
    store: CampaignStore, shard_dir: str, prune: bool = True
) -> Dict[str, int]:
    """Fuse every shard into the canonical store, one record per key.

    Selection per key: an ``ok`` record beats any failure (a retried
    block's success must never be shadowed by the earlier error record,
    whatever shard order they land in), ties broken by latest ``ts``,
    then by file order.  Appends go through the store's crash-safe
    batched append; with ``prune`` the merged shards are deleted
    afterwards, so a merge interrupted before the unlink simply re-runs
    (the canonical store dedupes by key on load).

    Returns ``{"shards": .., "records": ..}`` counts.
    """
    shards = list_shards(shard_dir)
    if not shards:
        return {"shards": 0, "records": 0}
    # Pass 1: choose, holding only a compact tuple per key.
    choice: Dict[str, Tuple] = {}
    for shard_index, path in enumerate(shards):
        for line_index, record in enumerate(CampaignStore(path).iter_records()):
            rank = 1 if record.get("status") == STATUS_OK else 0
            candidate = (rank, record.get("ts", 0), shard_index, line_index)
            key = record["key"]
            if key not in choice or candidate > choice[key]:
                choice[key] = candidate
    # Pass 2: append the chosen lines, shard by shard.
    chosen_by_shard: Dict[int, set] = {}
    for rank, ts, shard_index, line_index in choice.values():
        chosen_by_shard.setdefault(shard_index, set()).add(line_index)
    appended = 0
    for shard_index, path in enumerate(shards):
        wanted = chosen_by_shard.get(shard_index)
        if not wanted:
            continue
        batch = [
            record
            for line_index, record in enumerate(
                CampaignStore(path).iter_records()
            )
            if line_index in wanted
        ]
        store.append_many(batch)
        appended += len(batch)
    if prune:
        for path in shards:
            try:
                os.unlink(path)
            except OSError:
                pass
        try:
            os.rmdir(shard_dir)
        except OSError:
            pass
    return {"shards": len(shards), "records": appended}
