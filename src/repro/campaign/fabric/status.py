"""Live campaign progress: the events-replay view behind ``--watch``.

The canonical store only learns about fabric results when shards merge
(end of run), so a live progress view cannot be built from the store
alone.  Instead this module replays the events ledger — which the
fabric parent appends to in real time — and combines it with the
store's cached baseline: cells done/total, throughput, ETA, and
per-worker state, refreshed on every call.

Everything here is read-only and crash-tolerant (torn event lines are
skipped), so ``campaign status --watch`` can run in a second terminal
against a live sweep.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.campaign.aggregate import render_status
from repro.campaign.fabric.events import read_events
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore

__all__ = ["live_progress", "render_live_status", "watch_campaign"]


def live_progress(events_path: str) -> Dict:
    """Replay the ledger into the current run's progress picture."""
    progress: Dict = {
        "run": None,          # the last run_started event
        "completed": None,    # the matching run_completed, if any
        "cells_done": 0,
        "cells_failed": 0,
        "quarantined": 0,
        "retries": 0,
        "started_ts": None,
        "last_ts": None,
        "workers": {},        # wid -> {"state", "block", "since", ...}
    }
    for event in read_events(events_path):
        ev = event.get("ev")
        progress["last_ts"] = event.get("ts")
        if ev == "run_started":
            progress.update(
                run=event, completed=None, cells_done=0, cells_failed=0,
                quarantined=0, retries=0, started_ts=event.get("ts"),
                workers={},
            )
        elif ev == "run_completed":
            progress["completed"] = event
        elif ev == "worker_born":
            progress["workers"][event.get("worker")] = {
                "state": "idle", "block": None, "since": event.get("ts"),
            }
        elif ev == "worker_died":
            worker = progress["workers"].setdefault(
                event.get("worker"), {"block": None, "since": None}
            )
            worker["state"] = "dead"
            worker["reason"] = event.get("reason")
        elif ev == "block_dispatched":
            progress["workers"][event.get("worker")] = {
                "state": "run",
                "block": event.get("block"),
                "row": event.get("row"),
                "size": event.get("size"),
                "seeds": event.get("seeds"),
                "since": event.get("ts"),
            }
        elif ev == "block_completed":
            progress["cells_done"] += event.get("ok", 0)
            progress["cells_failed"] += event.get("failed", 0)
            worker = progress["workers"].get(event.get("worker"))
            if worker is not None and worker.get("state") == "run":
                worker.update(state="idle", block=None, since=event.get("ts"))
        elif ev == "block_retried":
            progress["retries"] += 1
        elif ev == "block_quarantined":
            progress["quarantined"] += event.get("cells", 0)
    return progress


def render_live_status(
    spec: CampaignSpec,
    store: CampaignStore,
    events_path: Optional[str],
    now: Optional[float] = None,
) -> str:
    """The full live view: store accounting + events-replay progress."""
    lines = [render_status(spec, store)]
    progress = live_progress(events_path) if events_path else {"run": None}
    run = progress.get("run")
    if run is None:
        lines.append("(no fabric events ledger; serial/pool run or not started)")
        return "\n".join(lines)
    now = time.time() if now is None else now
    done = progress["cells_done"]
    failed = progress["cells_failed"]
    pending_at_start = run.get("pending", 0)
    finished = progress["completed"] is not None
    elapsed = (
        progress["completed"].get("elapsed")
        if finished and progress["completed"].get("elapsed") is not None
        else max(1e-9, now - (progress["started_ts"] or now))
    )
    rate = (done + failed) / max(elapsed, 1e-9)
    remaining = max(0, pending_at_start - done - failed - progress["quarantined"])
    state = "finished" if finished else "running"
    line = (
        f"fabric {state}: {done}/{pending_at_start} cells this run "
        f"({failed} failed, {progress['quarantined']} quarantined, "
        f"{progress['retries']} retries) | {rate:.1f} cells/s"
    )
    if not finished and rate > 0:
        line += f" | ETA {remaining / rate:.0f}s"
    lines.append(line)
    worker_bits: List[str] = []
    for wid, worker in sorted(progress["workers"].items()):
        state = worker.get("state", "?")
        if state == "run":
            since = worker.get("since") or now
            worker_bits.append(
                f"w{wid} RUN {worker.get('row')}/n={worker.get('size')} "
                f"(block {worker.get('block')}, {max(0.0, now - since):.1f}s)"
            )
        elif state == "dead":
            worker_bits.append(f"w{wid} DEAD ({worker.get('reason', '?')})")
        else:
            worker_bits.append(f"w{wid} IDLE")
    if worker_bits:
        lines.append("workers: " + "  ".join(worker_bits))
    return "\n".join(lines)


def watch_campaign(
    spec: CampaignSpec,
    store: CampaignStore,
    events_path: Optional[str],
    interval: float = 2.0,
    out: Callable[[str], None] = print,
    max_refreshes: Optional[int] = None,
) -> None:
    """Refresh the live view until the run completes.

    Exits after a single render when there is no events ledger or the
    ledger's last run already completed, so scripted callers (CI) never
    hang; while a run is live it refreshes every ``interval`` seconds
    (Ctrl-C exits).
    """
    refreshes = 0
    while True:
        out(render_live_status(spec, store, events_path))
        refreshes += 1
        progress = live_progress(events_path) if events_path else {"run": None}
        finished = (
            progress.get("run") is None
            or progress.get("completed") is not None
        )
        if finished:
            return
        if max_refreshes is not None and refreshes >= max_refreshes:
            return
        time.sleep(interval)
        out("")
