"""Structured events ledger: the fabric's observability spine.

Every notable dispatch-level fact of a fabric run — blocks dispatched,
completed, retried, quarantined; workers born and died — is appended as
one JSON line to ``<out>/events.jsonl``.  The ledger is *descriptive*,
never load-bearing: results live in the stores, and deleting the events
file loses only history.  That split keeps the write path cheap (flush,
no fsync) and lets the live ``campaign status --watch`` view and the
post-run ``campaign report --events`` summary be pure replays of the
same file.

Event schema (all events carry ``ev`` and ``ts``; the rest varies)::

    run_started        campaign, total, cached, pending, workers
    worker_born        worker, pid
    worker_died        worker, reason, block (the assignment it held)
    block_dispatched   block, worker, row, size, seeds, attempt
    block_completed    block, worker, ok, failed, elapsed, soa (cells
                       that ran on the trial-SoA engine; absent in
                       pre-soa ledgers, read as 0), soa_reasons (cell
                       counts by SoA verdict string, e.g. {"ok": 3,
                       "churn": 1}; absent in older ledgers — readers
                       must render *any* reason string gracefully,
                       since new fault families mint new verdicts)
    block_retried      block, attempt, reason, backoff
    block_quarantined  block, reason, cells
    run_completed      ok, errors, timeouts, quarantined, retries, elapsed
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterator, List, Optional

__all__ = [
    "EventLog",
    "read_events",
    "summarize_events",
    "render_events_summary",
]


class EventLog:
    """Append-only JSONL event writer (single-writer: the fabric parent).

    ``path=None`` makes every emit a no-op, so callers never branch.
    """

    def __init__(self, path: Optional[str]) -> None:
        self.path = path
        self._handle = None

    def emit(self, ev: str, **fields) -> None:
        if self.path is None:
            return
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        record = {"ev": ev, "ts": round(time.time(), 3)}
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: str) -> Iterator[Dict]:
    """Yield events in file order, skipping torn/corrupt lines."""
    if not path or not os.path.exists(path):
        return
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if not line.endswith("\n"):
                continue  # torn tail from a killed writer
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and "ev" in event:
                yield event


def summarize_events(events) -> Dict:
    """Fold an event stream into one summary dict.

    Counts cover the whole ledger; the ``last_run`` block tracks the
    most recent ``run_started`` (cells completed, wall clock, cells/s,
    whether it finished).  ``events`` is any iterable of event dicts —
    typically ``read_events(path)``.
    """
    counts: Dict[str, int] = {}
    workers: Dict[int, Dict] = {}
    retried: List[Dict] = []
    quarantined: List[Dict] = []
    last_run: Dict = {}
    for event in events:
        ev = event.get("ev", "?")
        counts[ev] = counts.get(ev, 0) + 1
        if ev == "run_started":
            last_run = {
                "campaign": event.get("campaign"),
                "started_ts": event.get("ts"),
                "total": event.get("total", 0),
                "cached": event.get("cached", 0),
                "pending": event.get("pending", 0),
                "workers": event.get("workers", 1),
                "cells_ok": 0,
                "cells_failed": 0,
                "blocks": 0,
                "soa_blocks": 0,
                "soa_cells": 0,
                "soa_reasons": {},
                "soa_seen": False,
                "completed": False,
            }
            workers = {}
            retried = []
            quarantined = []
        elif ev == "worker_born":
            workers[event.get("worker")] = {
                "blocks": 0, "cells": 0, "died": None,
            }
        elif ev == "worker_died":
            state = workers.setdefault(
                event.get("worker"), {"blocks": 0, "cells": 0, "died": None}
            )
            state["died"] = event.get("reason", "?")
        elif ev == "block_completed":
            state = workers.setdefault(
                event.get("worker"), {"blocks": 0, "cells": 0, "died": None}
            )
            state["blocks"] += 1
            state["cells"] += event.get("ok", 0) + event.get("failed", 0)
            if last_run:
                last_run["cells_ok"] += event.get("ok", 0)
                last_run["cells_failed"] += event.get("failed", 0)
                last_run["blocks"] += 1
                soa = event.get("soa")
                if soa is not None:
                    last_run["soa_seen"] = True
                    last_run["soa_cells"] += soa
                    if soa > 0:
                        last_run["soa_blocks"] += 1
                # Verdict counts arrive as an open string->count map;
                # fold whatever strings appear (old ledgers omit the
                # field, future fault families mint new reasons).
                reasons = event.get("soa_reasons")
                if isinstance(reasons, dict):
                    acc = last_run["soa_reasons"]
                    for reason, count in reasons.items():
                        try:
                            acc[str(reason)] = acc.get(str(reason), 0) + int(count)
                        except (TypeError, ValueError):
                            continue
        elif ev == "block_retried":
            retried.append(event)
        elif ev == "block_quarantined":
            quarantined.append(event)
        elif ev == "run_completed" and last_run:
            last_run["completed"] = True
            last_run["elapsed"] = event.get("elapsed")
    if last_run and last_run.get("elapsed"):
        cells = last_run["cells_ok"] + last_run["cells_failed"]
        last_run["cells_per_sec"] = cells / max(last_run["elapsed"], 1e-9)
    return {
        "counts": counts,
        "workers": workers,
        "retried": retried,
        "quarantined": quarantined,
        "last_run": last_run,
    }


def render_events_summary(summary: Dict) -> str:
    """Human-readable digest of :func:`summarize_events`."""
    counts = summary["counts"]
    if not counts:
        return "no events recorded (serial/pool runs write no events log)"
    lines = ["fabric events:"]
    run = summary["last_run"]
    if run:
        state = "completed" if run.get("completed") else "IN PROGRESS / ABORTED"
        lines.append(
            f"  last run ({run.get('campaign')}): {state}; "
            f"{run['cells_ok']} ok / {run['cells_failed']} failed of "
            f"{run.get('pending', '?')} pending "
            f"({run.get('cached', 0)} cached of {run.get('total', '?')} total), "
            f"{run.get('workers', 1)} worker(s)"
        )
        if run.get("elapsed") is not None:
            lines.append(
                f"  wall {run['elapsed']:.1f}s, "
                f"{run.get('cells_per_sec', 0.0):.1f} cells/s"
            )
        if run.get("soa_seen"):
            blocks = run.get("blocks", 0)
            soa_blocks = run.get("soa_blocks", 0)
            rate = soa_blocks / blocks if blocks else 0.0
            lines.append(
                f"  SoA engagement: {soa_blocks}/{blocks} block(s) "
                f"({rate:.0%}), {run.get('soa_cells', 0)} cell(s) on the "
                f"trial-SoA engine"
            )
            reasons = run.get("soa_reasons") or {}
            if reasons:
                breakdown = ", ".join(
                    f"{reason}={count}"
                    for reason, count in sorted(reasons.items())
                )
                lines.append(f"  SoA verdicts: {breakdown}")
    order = (
        "run_started", "worker_born", "worker_died", "block_dispatched",
        "block_completed", "block_retried", "block_quarantined",
        "run_completed",
    )
    rendered = ", ".join(
        f"{name}={counts[name]}" for name in order if name in counts
    )
    extra = ", ".join(
        f"{name}={count}" for name, count in sorted(counts.items())
        if name not in order
    )
    lines.append(f"  events: {rendered}" + (f", {extra}" if extra else ""))
    for worker, state in sorted(summary["workers"].items()):
        died = f"  DIED: {state['died']}" if state["died"] else ""
        lines.append(
            f"  worker {worker}: {state['blocks']} block(s), "
            f"{state['cells']} cell(s){died}"
        )
    for event in summary["retried"]:
        lines.append(
            f"  retry  block {event.get('block')} attempt "
            f"{event.get('attempt')}: {event.get('reason')}"
        )
    for event in summary["quarantined"]:
        lines.append(
            f"  QUARANTINED block {event.get('block')} "
            f"({event.get('cells')} cell(s)): {event.get('reason')}"
        )
    return "\n".join(lines)
