"""Persistent fabric workers: spawned once, fed blocks via queues.

Each worker is one long-lived process running :func:`fabric_worker_main`:
it pulls block payloads off its private task queue, executes them with
the same never-raising :func:`repro.campaign.runner.execute_job` the
serial runner uses (per-cell SIGALRM budgets work because the block
runs on the worker's main thread), appends the records to its own shard
store, and reports compact status tuples — never result payloads — on
the shared result queue.  A daemon heartbeat thread posts liveness
while a block is running, so the parent can tell "slow" from "wedged".

The parent-side :class:`WorkerHandle` owns the process, its task queue,
and its shard path.  Handles are disposable: when the parent declares a
worker dead (process gone, heartbeat stale, or budget blown) it
SIGKILLs the process and spawns a fresh handle — worker ids only ever
move forward, so stale queue messages from a killed worker can never be
confused with its replacement's.

Crash injection (used by the fault-injection tests and the CI smoke
job): when ``REPRO_FABRIC_INJECT_CRASH`` names a marker path, the first
worker to receive a block while the marker does not exist creates it
(``O_EXCL`` — exactly one winner) and SIGKILLs itself, exercising the
retry path deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from typing import Dict, Optional

from repro.campaign.fabric.shards import shard_path
from repro.campaign.store import CampaignStore

__all__ = [
    "CRASH_ENV",
    "WorkerHandle",
    "fabric_context",
    "fabric_worker_main",
]

#: Environment hook: set to a marker-file path to make exactly one
#: worker die (SIGKILL) on its first block dispatch.
CRASH_ENV = "REPRO_FABRIC_INJECT_CRASH"


def fabric_context():
    """The multiprocessing context fabric workers run under.

    ``fork`` wherever available: workers inherit the parent's imported
    row registry (including test-registered rows) and start in
    milliseconds.  Elsewhere fall back to the platform default.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def _maybe_inject_crash() -> None:
    marker = os.environ.get(CRASH_ENV)
    if not marker:
        return
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return  # another worker already took the hit
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)


def fabric_worker_main(
    worker_id: int,
    task_queue,
    result_queue,
    worker_shard_path: str,
    heartbeat: float,
) -> None:
    """Worker loop: block in, records to shard, status tuples out.

    Messages on ``result_queue`` (all lead with a tag and worker id):

    * ``("hello", wid, pid)`` — alive, ready for work;
    * ``("hb", wid, block_id)`` — still executing ``block_id``;
    * ``("done", wid, block_id, statuses)`` — block finished and its
      records are durably in the shard; ``statuses`` is a list of
      ``(seed, status, elapsed, soa, soa_reason)`` per cell, where
      ``soa`` is the cell's SoA-engagement flag (1.0 engaged / 0.0
      fell back / None when the cell did not run lock-step) and
      ``soa_reason`` is the verdict string behind that flag (``"ok"``,
      ``"churn"``, ``"jammer"``, ``"burst_loss"``, ... / None);
    * ``("exit", wid)`` — clean shutdown after the ``None`` sentinel.
    """
    store = CampaignStore(worker_shard_path)
    result_queue.put(("hello", worker_id, os.getpid()))
    current: Dict[str, Optional[int]] = {"block": None}
    stop = threading.Event()
    if heartbeat:
        def beat() -> None:
            while not stop.wait(heartbeat):
                block_id = current["block"]
                if block_id is not None:
                    result_queue.put(("hb", worker_id, block_id))

        threading.Thread(target=beat, daemon=True).start()
    while True:
        task = task_queue.get()
        if task is None:
            break
        _maybe_inject_crash()
        block_id = task["block_id"]
        current["block"] = block_id
        records = execute_block_payload(task["payload"])
        store.append_many(records)
        current["block"] = None
        statuses = [
            (
                record["job"]["seed"],
                record["status"],
                record["elapsed"],
                record.get("result", {}).get("extras", {}).get("soa"),
                _soa_reason(record.get("result", {}).get("extras", {})),
            )
            for record in records
        ]
        result_queue.put(("done", worker_id, block_id, statuses))
    stop.set()
    result_queue.put(("exit", worker_id))


def _soa_reason(extras: Dict) -> Optional[str]:
    """Recover the SoA verdict string from a cell's one-hot extras key."""
    for key in extras:
        if key.startswith("soa_reason_"):
            return key[len("soa_reason_"):]
    return None


def execute_block_payload(payload: Dict):
    """One import seam for block execution (monkeypatchable in tests)."""
    from repro.campaign.runner import execute_job

    return execute_job(payload)


class WorkerHandle:
    """Parent-side view of one worker: process + task queue + shard."""

    def __init__(
        self,
        worker_id: int,
        context,
        result_queue,
        shard_dir: str,
        heartbeat: float,
    ) -> None:
        self.id = worker_id
        self.shard_path = shard_path(shard_dir, worker_id)
        self.task_queue = context.Queue()
        self.process = context.Process(
            target=fabric_worker_main,
            args=(
                worker_id, self.task_queue, result_queue,
                self.shard_path, heartbeat,
            ),
            daemon=True,
        )
        self.process.start()
        # In-flight assignment bookkeeping (set by the fabric runner).
        self.assignment = None
        self.dispatched_at: Optional[float] = None
        self.last_seen = time.monotonic()

    @property
    def busy(self) -> bool:
        return self.assignment is not None

    def dispatch(self, assignment, payload: Dict) -> None:
        self.assignment = assignment
        self.dispatched_at = time.monotonic()
        self.last_seen = time.monotonic()
        self.task_queue.put(
            {"block_id": assignment.block_id, "payload": payload}
        )

    def clear(self) -> None:
        self.assignment = None
        self.dispatched_at = None

    def alive(self) -> bool:
        return self.process.is_alive()

    def stop(self) -> None:
        """Ask for a clean exit (sentinel); the worker drains and leaves."""
        try:
            self.task_queue.put(None)
        except (OSError, ValueError):  # pragma: no cover - queue torn down
            pass

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5)
        self.task_queue.cancel_join_thread()

    def join(self, timeout: float) -> None:
        self.process.join(timeout=timeout)
