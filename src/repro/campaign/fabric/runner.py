"""The fabric executor: fault-tolerant, observable campaign runs.

``run_campaign_fabric`` executes the same work-set as the serial
:func:`repro.campaign.runner.run_campaign` (the two share
:func:`~repro.campaign.runner.plan_pending`, so they dispatch the
identical pending blocks) but through a persistent worker pool with a
repair loop instead of a fire-and-forget process pool:

* **work queue** — pending seed blocks are dispatched to persistent
  workers (spawned once, fed via queues); a finished worker immediately
  receives the next ready block;
* **liveness** — a worker is declared dead when its process is gone,
  its heartbeat goes stale, or its block blows a generous wall-clock
  budget; the parent SIGKILLs it, spawns a replacement, and requeues
  the block;
* **retry with backoff** — a failed block (worker crash *or* cells
  that recorded ``error``/``timeout``) is retried up to ``retries``
  times, waiting ``backoff * 2^attempt`` seconds between attempts, and
  retrying only the still-failing seeds;
* **quarantine** — a block that exhausts its retry budget is recorded
  as ``status="quarantined"`` cells (a non-``ok`` status, so the next
  run retries them) and the sweep *continues*, instead of the legacy
  pool's all-or-nothing abort.

Results flow through per-worker shards
(:mod:`repro.campaign.fabric.shards`) and are folded into the canonical
store when the run ends — and adopted at start-up if a previous run
died with unmerged shards.  Every dispatch-level fact lands in the
events ledger (:mod:`repro.campaign.fabric.events`).

With ``workers <= 1`` the same retry/quarantine/events semantics run
in-process (no pool, no shards) — this is also what ``campaign
run-all`` uses by default.  The serial runner remains the differential
oracle: a fabric run's aggregates are byte-identical to its, crashes
and all (pinned by the fault-injection suite).
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.campaign.fabric.events import EventLog
from repro.campaign.fabric.shards import merge_shards, shard_dir_for
from repro.campaign.fabric.workers import (
    WorkerHandle,
    _soa_reason,
    fabric_context,
)
from repro.campaign.runner import CampaignRunReport, execute_job, plan_pending
from repro.campaign.spec import CampaignSpec, JobSpec
from repro.campaign.store import (
    STATUS_OK,
    STATUS_QUARANTINED,
    CampaignStore,
    make_record,
)
from repro.sim.config import ExecutionConfig

__all__ = ["FabricRunReport", "run_campaign_fabric"]

_RUNNER_DEFAULTS = {
    spec.name: spec.default
    for spec in ExecutionConfig.field_specs()
    if spec.metadata["runner"]
}


@dataclass
class FabricRunReport(CampaignRunReport):
    """A :class:`CampaignRunReport` plus the fabric's repair accounting."""

    quarantined: int = 0
    retries: int = 0
    workers: int = 1
    workers_died: int = 0

    @property
    def all_ok(self) -> bool:
        return (
            self.errors == 0
            and self.timeouts == 0
            and self.quarantined == 0
            and not self.aborted
        )

    def summary(self) -> str:
        text = (
            f"{self.total} cells: {self.skipped} cached, {self.ok} computed, "
            f"{self.errors} errors, {self.timeouts} timeouts, "
            f"{self.quarantined} quarantined ({self.elapsed:.1f}s, "
            f"{self.workers} worker(s)"
        )
        if self.retries:
            text += f", {self.retries} retries"
        if self.workers_died:
            text += f", {self.workers_died} worker death(s)"
        return text + ")"


@dataclass
class _Assignment:
    """One dispatchable unit: a pending block at a given attempt."""

    block_id: int
    job: JobSpec
    attempt: int = 0
    ready_at: float = 0.0  # monotonic clock


class _Bookkeeper:
    """Counting, retry, and quarantine logic shared by both paths."""

    def __init__(
        self,
        store: CampaignStore,
        events: EventLog,
        say: Callable[[str], None],
        retries: int,
        backoff: float,
    ) -> None:
        self.store = store
        self.events = events
        self.say = say
        self.retries = retries
        self.backoff = backoff
        self.counts: Dict[str, int] = {}
        self.retry_count = 0
        self.quarantined = 0
        self.failed_jobs: List[Dict] = []
        self.requeued: List[_Assignment] = []

    def _count(self, status: str, amount: int = 1) -> None:
        self.counts[status] = self.counts.get(status, 0) + amount

    def _schedule_retry(
        self, assignment: _Assignment, job: JobSpec, reason: str
    ) -> None:
        attempt = assignment.attempt + 1
        delay = self.backoff * (2 ** assignment.attempt)
        self.retry_count += 1
        self.requeued.append(_Assignment(
            block_id=assignment.block_id,
            job=job,
            attempt=attempt,
            ready_at=time.monotonic() + delay,
        ))
        self.events.emit(
            "block_retried",
            block=assignment.block_id,
            attempt=attempt,
            reason=reason,
            backoff=round(delay, 3),
        )
        self.say(
            f"  RETRY block {assignment.block_id} "
            f"({job.row}/n={job.size}, {len(job.seeds)} seed(s), "
            f"attempt {attempt}/{self.retries}): {reason}"
        )

    def block_done(
        self, assignment: _Assignment, statuses, worker: int
    ) -> None:
        """A block completed and its records are durable: count the ok
        cells now, retry or finalize the failed ones.

        ``statuses`` rows are ``(seed, status, elapsed, soa,
        soa_reason)``; the trailing SoA flag and verdict string are
        tolerated missing (older ledger replays and tests that
        hand-build 3- or 4-tuples).
        """
        statuses = [(tuple(row) + (None, None))[:5] for row in statuses]
        ok_seeds = [s for s, status, _, _, _ in statuses if status == STATUS_OK]
        failed = [
            (s, status) for s, status, _, _, _ in statuses
            if status != STATUS_OK
        ]
        self._count(STATUS_OK, len(ok_seeds))
        for seed, status, elapsed, _, _ in statuses:
            tag = f"{assignment.job.row}/n={assignment.job.size}/seed={seed}"
            if status == STATUS_OK:
                self.say(f"  ok {tag} ({elapsed:.2f}s)")
        # Fallback taxonomy: count lock-step cells by SoA verdict string
        # ("ok", "churn", "jammer", "burst_loss", ...) so the ledger
        # records *why* vectorization disengaged, not just how often.
        soa_reasons: Dict[str, int] = {}
        for _, _, _, _, reason in statuses:
            if reason is not None:
                soa_reasons[reason] = soa_reasons.get(reason, 0) + 1
        self.events.emit(
            "block_completed",
            block=assignment.block_id,
            worker=worker,
            ok=len(ok_seeds),
            failed=len(failed),
            elapsed=round(sum(e for _, _, e, _, _ in statuses), 3),
            soa=sum(1 for _, _, _, soa, _ in statuses if soa == 1.0),
            soa_reasons=soa_reasons,
        )
        if not failed:
            return
        if assignment.attempt < self.retries:
            self._schedule_retry(
                assignment,
                assignment.job.with_seeds([s for s, _ in failed]),
                f"{len(failed)} cell(s) failed "
                f"({', '.join(sorted({status for _, status in failed}))})",
            )
            return
        for seed, status in failed:
            self._count(status)
            cell = JobSpec(
                row=assignment.job.row, size=assignment.job.size,
                seed=seed, options=assignment.job.options,
            )
            self.failed_jobs.append(cell.to_dict())
            self.say(
                f"  {status.upper()} "
                f"{assignment.job.row}/n={assignment.job.size}/seed={seed}"
            )

    def block_lost(self, assignment: _Assignment, reason: str) -> None:
        """A block's worker died under it: retry it, or quarantine its
        remaining cells so the sweep keeps going."""
        if assignment.attempt < self.retries:
            self._schedule_retry(assignment, assignment.job, reason)
            return
        cells = list(assignment.job.cells())
        self.store.append_many([
            make_record(
                cell.key(), cell.to_dict(), STATUS_QUARANTINED,
                error=f"quarantined after {assignment.attempt + 1} "
                      f"attempt(s): {reason}",
            )
            for cell in cells
        ])
        self._count(STATUS_QUARANTINED, len(cells))
        self.quarantined += len(cells)
        self.failed_jobs.extend(cell.to_dict() for cell in cells)
        self.events.emit(
            "block_quarantined",
            block=assignment.block_id,
            reason=reason,
            cells=len(cells),
        )
        self.say(
            f"  QUARANTINE block {assignment.block_id} "
            f"({assignment.job.row}/n={assignment.job.size}, "
            f"{len(cells)} cell(s)): {reason}"
        )


def _pop_ready(waiting: List[_Assignment], limit: int) -> List[_Assignment]:
    """Remove and return up to ``limit`` dispatchable assignments."""
    now = time.monotonic()
    ready = sorted(
        (a for a in waiting if a.ready_at <= now),
        key=lambda a: (a.attempt, a.block_id),
    )[:limit]
    for assignment in ready:
        waiting.remove(assignment)
    return ready


def run_campaign_fabric(
    spec: CampaignSpec,
    store: CampaignStore,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    heartbeat: Optional[float] = None,
    backoff: float = 0.5,
    progress: Optional[Callable[[str], None]] = None,
    events_path: Optional[str] = None,
) -> FabricRunReport:
    """Execute every not-yet-completed cell of ``spec`` into ``store``
    on the fault-tolerant fabric.

    ``workers``/``retries``/``heartbeat`` default to the matching
    :class:`~repro.sim.config.ExecutionConfig` field defaults.  The
    events ledger goes to ``events_path`` (default:
    ``<store dir>/events.jsonl``).  ``backoff`` is the base of the
    exponential retry delay — tests shrink it; the CLI keeps the
    default.
    """
    spec.validate()
    say = progress or (lambda message: None)
    workers = _RUNNER_DEFAULTS["workers"] if workers is None else int(workers)
    retries = _RUNNER_DEFAULTS["retries"] if retries is None else int(retries)
    heartbeat = (
        _RUNNER_DEFAULTS["heartbeat"] if heartbeat is None else float(heartbeat)
    )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    out_dir = os.path.dirname(store.path) or "."
    shard_dir = shard_dir_for(store)
    # Adopt whatever an aborted previous run computed before it died;
    # the resume plan below then covers only the true delta.
    leftovers = merge_shards(store, shard_dir)
    if leftovers["records"]:
        say(
            f"adopted {leftovers['records']} record(s) from "
            f"{leftovers['shards']} leftover shard(s)"
        )
    events = EventLog(
        events_path if events_path is not None
        else os.path.join(out_dir, "events.jsonl")
    )
    total_cells, pending = plan_pending(spec, store.completed_keys())
    pending_cells = sum(len(block.seeds) for block in pending)
    say(
        f"campaign {spec.name}: {total_cells} cells, "
        f"{total_cells - pending_cells} cached, {pending_cells} to run "
        f"in {len(pending)} block(s) on {workers} worker(s)"
    )
    events.emit(
        "run_started",
        campaign=spec.name,
        total=total_cells,
        cached=total_cells - pending_cells,
        pending=pending_cells,
        workers=workers,
    )
    start = time.monotonic()
    books = _Bookkeeper(store, events, say, retries, backoff)
    waiting = [
        _Assignment(block_id=index, job=block)
        for index, block in enumerate(pending)
    ]
    workers_died = 0
    try:
        if workers <= 1 or len(pending) <= 1:
            _run_inline(waiting, books, events, timeout, store)
        else:
            workers_died = _run_pool(
                waiting, books, events, timeout, store, shard_dir,
                min(workers, len(pending)), heartbeat,
            )
    finally:
        merge_shards(store, shard_dir)
        elapsed = time.monotonic() - start
        events.emit(
            "run_completed",
            ok=books.counts.get(STATUS_OK, 0),
            errors=books.counts.get("error", 0),
            timeouts=books.counts.get("timeout", 0),
            quarantined=books.quarantined,
            retries=books.retry_count,
            elapsed=round(elapsed, 3),
        )
        events.close()
    return FabricRunReport(
        total=total_cells,
        skipped=total_cells - pending_cells,
        ran=sum(books.counts.values()),
        ok=books.counts.get(STATUS_OK, 0),
        errors=books.counts.get("error", 0),
        timeouts=books.counts.get("timeout", 0),
        elapsed=time.monotonic() - start,
        aborted=False,
        failed_jobs=books.failed_jobs,
        quarantined=books.quarantined,
        retries=books.retry_count,
        workers=workers,
        workers_died=workers_died,
    )


def _run_inline(
    waiting: List[_Assignment],
    books: _Bookkeeper,
    events: EventLog,
    timeout: Optional[float],
    store: CampaignStore,
) -> None:
    """The workers<=1 path: same semantics, no processes, no shards."""
    while waiting or books.requeued:
        waiting.extend(books.requeued)
        books.requeued = []
        ready = _pop_ready(waiting, limit=1)
        if not ready:
            time.sleep(min(
                0.05,
                max(0.0, min(a.ready_at for a in waiting) - time.monotonic()),
            ) or 0.01)
            continue
        assignment = ready[0]
        events.emit(
            "block_dispatched",
            block=assignment.block_id,
            worker=0,
            row=assignment.job.row,
            size=assignment.job.size,
            seeds=len(assignment.job.seeds),
            attempt=assignment.attempt,
        )
        records = execute_job(
            {"job": assignment.job.to_dict(), "timeout": timeout}
        )
        store.append_many(records)
        books.block_done(
            assignment,
            [
                (
                    r["job"]["seed"],
                    r["status"],
                    r["elapsed"],
                    r.get("result", {}).get("extras", {}).get("soa"),
                    _soa_reason(r.get("result", {}).get("extras", {})),
                )
                for r in records
            ],
            worker=0,
        )


def _run_pool(
    waiting: List[_Assignment],
    books: _Bookkeeper,
    events: EventLog,
    timeout: Optional[float],
    store: CampaignStore,
    shard_dir: str,
    pool_size: int,
    heartbeat: float,
) -> int:
    """The worker-pool path; returns how many workers died."""
    context = fabric_context()
    result_queue = context.Queue()
    handles: Dict[int, WorkerHandle] = {}
    next_wid = 0
    workers_died = 0
    # A worker is hung when silent past several beats, or (with a cell
    # timeout set) when its block grossly overruns the alarm budget the
    # worker itself should have enforced.
    grace = max(5.0 * heartbeat, 2.0) if heartbeat else None

    def spawn() -> WorkerHandle:
        nonlocal next_wid
        handle = WorkerHandle(
            next_wid, context, result_queue, shard_dir, heartbeat
        )
        handles[handle.id] = handle
        events.emit("worker_born", worker=handle.id, pid=handle.process.pid)
        next_wid += 1
        return handle

    def budget_for(assignment: _Assignment) -> Optional[float]:
        if timeout is None:
            return None
        return timeout * len(assignment.job.seeds) * 2.0 + 5.0

    def declare_dead(handle: WorkerHandle, reason: str) -> None:
        nonlocal workers_died
        workers_died += 1
        assignment = handle.assignment
        events.emit(
            "worker_died",
            worker=handle.id,
            reason=reason,
            block=assignment.block_id if assignment else None,
        )
        books.say(f"  worker {handle.id} died: {reason}")
        handle.kill()
        del handles[handle.id]
        if assignment is not None:
            books.block_lost(assignment, reason)

    for _ in range(pool_size):
        spawn()
    try:
        while True:
            waiting.extend(books.requeued)
            books.requeued = []
            busy = [h for h in handles.values() if h.busy]
            if not waiting and not busy:
                break
            # Dispatch ready blocks to idle, live workers.
            idle = [
                h for h in handles.values() if not h.busy and h.alive()
            ]
            for handle, assignment in zip(
                idle, _pop_ready(waiting, limit=len(idle))
            ):
                handle.dispatch(
                    assignment,
                    {"job": assignment.job.to_dict(), "timeout": timeout},
                )
                events.emit(
                    "block_dispatched",
                    block=assignment.block_id,
                    worker=handle.id,
                    row=assignment.job.row,
                    size=assignment.job.size,
                    seeds=len(assignment.job.seeds),
                    attempt=assignment.attempt,
                )
            # Drain worker messages (briefly block on the first).
            first = True
            while True:
                try:
                    message = result_queue.get(timeout=0.05 if first else 0.0)
                except queue_mod.Empty:
                    break
                first = False
                tag, wid = message[0], message[1]
                handle = handles.get(wid)
                if handle is None:
                    continue  # stale message from a replaced worker
                handle.last_seen = time.monotonic()
                if tag == "done":
                    _, _, block_id, statuses = message
                    assignment = handle.assignment
                    if assignment is None or assignment.block_id != block_id:
                        continue
                    handle.clear()
                    books.block_done(assignment, statuses, worker=wid)
            # Liveness: death, stale heartbeat, blown budget.
            now = time.monotonic()
            for handle in list(handles.values()):
                if not handle.busy:
                    if not handle.alive():
                        declare_dead(handle, "exited while idle")
                    continue
                budget = budget_for(handle.assignment)
                if not handle.alive():
                    declare_dead(handle, "worker process died")
                elif grace and now - handle.last_seen > grace:
                    declare_dead(
                        handle,
                        f"no heartbeat for {now - handle.last_seen:.1f}s",
                    )
                elif budget and now - handle.dispatched_at > budget:
                    declare_dead(
                        handle,
                        f"block exceeded its {budget:.0f}s wall budget",
                    )
            # Keep the pool at strength while work remains.
            remaining = (
                len(waiting) + len(books.requeued)
                + sum(1 for h in handles.values() if h.busy)
            )
            while len(handles) < min(pool_size, max(remaining, 1)) and remaining:
                spawn()
    finally:
        for handle in handles.values():
            handle.stop()
        deadline = time.monotonic() + 5.0
        for handle in handles.values():
            handle.join(max(0.1, deadline - time.monotonic()))
            if handle.alive():
                handle.kill()
        result_queue.cancel_join_thread()
    return workers_died
