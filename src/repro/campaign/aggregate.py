"""Rebuild sweep aggregates from a campaign's result store.

The store holds raw per-seed cells; this module groups them back into
:class:`~repro.campaign.cells.SweepPoint` rows — the same aggregation
the serial harness performs, via the same :func:`aggregate_cells` —
and adds min/max/stdev plus bootstrap confidence intervals on top.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.campaign.cells import CellResult, SweepPoint, aggregate_cells
from repro.campaign.registry import get_row, resolve_bounds
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import STATUS_OK, CampaignStore

__all__ = [
    "FAULT_OPTION_KEYS",
    "variant_label",
    "cells_for_campaign",
    "aggregate_campaign",
    "campaign_status",
    "render_status",
    "render_report",
    "render_degradation",
]

Options = Tuple[Tuple[str, object], ...]

#: Cell options that inject faults (the adversity layer).  A row variant
#: carrying any of these is "faulted"; stripping them names its clean
#: twin for the ``campaign report --degradation`` pairing.
FAULT_OPTION_KEYS = ("churn", "jam", "burst_loss")


def variant_label(row: str, options: Options) -> str:
    """Display name for a row variant: ``abl-beta[beta=0.15]``."""
    if not options:
        return row
    rendered = ",".join(f"{key}={value}" for key, value in options)
    return f"{row}[{rendered}]"


def cells_for_campaign(
    spec: CampaignSpec, store: CampaignStore
) -> Dict[Tuple[str, Options], Dict[int, List[CellResult]]]:
    """Completed cells, grouped (row, options) -> size -> cells.

    Options are part of the group key so a campaign listing the same
    row with different options (e.g. the beta ablation) aggregates
    each variant separately.  Only cells whose job key is part of the
    campaign's matrix are included, so one store can hold several
    overlapping campaigns.
    """
    records = store.load()
    grouped: Dict[Tuple[str, Options], Dict[int, List[CellResult]]] = {}
    seen = set()
    for job in spec.jobs():
        key = job.key()
        if key in seen:  # overlapping row entries name a cell twice
            continue
        seen.add(key)
        record = records.get(key)
        if not record or record.get("status") != STATUS_OK:
            continue
        cell = CellResult.from_dict(record["result"])
        grouped.setdefault((job.row, job.options), {}).setdefault(
            job.size, []
        ).append(cell)
    return grouped


def aggregate_campaign(
    spec: CampaignSpec, store: CampaignStore, extended: bool = True
) -> Dict[str, List[SweepPoint]]:
    """Variant label -> SweepPoints (ascending size) from completed cells.

    The label is the bare row name when the row has no options.
    """
    grouped = cells_for_campaign(spec, store)
    points: Dict[str, List[SweepPoint]] = {}
    for (row, options), by_size in grouped.items():
        points[variant_label(row, options)] = [
            aggregate_cells(by_size[size], extended=extended)
            for size in sorted(by_size)
        ]
    return points


def campaign_status(
    spec: CampaignSpec, store: CampaignStore
) -> Dict[str, Dict[str, int]]:
    """Per-row cell accounting: total / ok / failed / pending."""
    records = store.load()
    status: Dict[str, Dict[str, int]] = {}
    seen = set()
    for job in spec.jobs():
        key = job.key()
        if key in seen:
            continue
        seen.add(key)
        row = status.setdefault(
            job.row, {"total": 0, "ok": 0, "failed": 0, "pending": 0}
        )
        row["total"] += 1
        record = records.get(key)
        if record is None:
            row["pending"] += 1
        elif record.get("status") == STATUS_OK:
            row["ok"] += 1
        else:
            row["failed"] += 1
    return status


def render_status(spec: CampaignSpec, store: CampaignStore) -> str:
    status = campaign_status(spec, store)
    total = {key: sum(row[key] for row in status.values())
             for key in ("total", "ok", "failed", "pending")}
    lines = [f"campaign {spec.name}: "
             f"{total['ok']}/{total['total']} cells complete, "
             f"{total['failed']} failed, {total['pending']} pending"]
    width = max(len(name) for name in status)
    for name, row in status.items():
        bar = "#" * row["ok"] + "!" * row["failed"] + "." * row["pending"]
        lines.append(
            f"  {name.ljust(width)}  {row['ok']:>3}/{row['total']:<3} {bar}"
        )
    return "\n".join(lines)


def render_report(spec: CampaignSpec, store: CampaignStore) -> str:
    """Render every row's table — identical format (and, for matching
    seeds, identical medians) to the serial Table 1 runners."""
    from repro.experiments.harness import format_table

    points = aggregate_campaign(spec, store, extended=True)
    sections = []
    for plan in spec.rows:
        definition = get_row(plan.row)
        options = tuple(sorted(plan.options.items()))
        label = variant_label(plan.row, options)
        title = (
            definition.title if not options
            else f"{definition.title}  ({label})"
        )
        row_points = points.get(label)
        if not row_points:
            sections.append(f"{title}\n  (no completed cells)")
            continue
        columns = definition.columns
        if plan.options.get("contention_hist"):
            # Mirror the serial runner: show the analytics ride-along.
            columns = tuple(columns) + ("ch_mean_load", "ch_collision_rate")
        sections.append(format_table(
            title,
            row_points,
            columns=columns,
            bounds=resolve_bounds(definition, plan.options),
        ))
    return "\n\n".join(sections)


def render_degradation(spec: CampaignSpec, store: CampaignStore) -> str:
    """Clean-vs-faulted comparison table for every faulted row variant.

    A variant is faulted when its options carry any of
    :data:`FAULT_OPTION_KEYS`; its clean twin is the same row with the
    fault keys stripped.  Twins missing from the campaign (or with no
    completed cells yet) are reported, not errors — a half-finished run
    still renders whatever pairs exist.
    """
    from repro.experiments.analysis import fault_degradation

    points = aggregate_campaign(spec, store, extended=False)
    seen = set()
    sections = []
    for plan in spec.rows:
        options = tuple(sorted(plan.options.items()))
        faults = [(k, v) for k, v in options if k in FAULT_OPTION_KEYS]
        if not faults:
            continue
        label = variant_label(plan.row, options)
        if label in seen:
            continue
        seen.add(label)
        clean_options = tuple(
            (k, v) for k, v in options if k not in FAULT_OPTION_KEYS
        )
        clean_label = variant_label(plan.row, clean_options)
        fault_desc = ",".join(f"{k}={v}" for k, v in faults)
        header = f"{label}  vs clean twin {clean_label}"
        faulted_points = points.get(label)
        clean_points = points.get(clean_label)
        if not faulted_points:
            sections.append(f"{header}\n  (no completed faulted cells)")
            continue
        if not clean_points:
            sections.append(
                f"{header}\n  (clean twin has no completed cells — add a "
                f"row without {fault_desc} to the campaign)"
            )
            continue
        rows = fault_degradation(clean_points, faulted_points)
        if not rows:
            sections.append(f"{header}\n  (no common sizes completed yet)")
            continue
        lines = [header]
        lines.append(
            f"  {'n':>6}  {'energy c/f':>15}  {'xE':>6}  "
            f"{'time c/f':>17}  {'xT':>6}  {'success c/f':>12}"
        )
        for row in rows:
            lines.append(
                f"  {row['n']:>6}  "
                f"{row['energy_clean']:>7.1f}/{row['energy_faulted']:<7.1f}  "
                f"{row['energy_ratio']:>6.2f}  "
                f"{row['time_clean']:>8.1f}/{row['time_faulted']:<8.1f}  "
                f"{row['time_ratio']:>6.2f}  "
                f"{row['success_clean']:>5.0%}/{row['success_faulted']:<5.0%}"
            )
        sections.append("\n".join(lines))
    if not sections:
        return (
            "no faulted rows in this campaign (rows gain churn/jam/"
            "burst_loss options to enter the degradation report)"
        )
    return "\n\n".join(sections)
