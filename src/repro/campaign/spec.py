"""Declarative campaign specifications.

A campaign is a JSON-loadable description of a sweep matrix: which
Table 1 rows to run, at which sizes, over which seeds, with which
options.  It expands two ways: :meth:`CampaignSpec.jobs` yields one
:class:`JobSpec` per (row, size, seed) cell, and
:meth:`CampaignSpec.job_blocks` yields one *seed-block* JobSpec per
(row, size) — the unit a sharded worker executes so all seeds of a
cell group share one prepared engine.  Either way the durable
identity is the per-(row, size, seed) content-hash key
(:meth:`JobSpec.cell_keys`), unchanged from single-seed campaigns, so
existing stores resume seamlessly and a half-finished block re-runs
only its missing seeds.

Example config (``configs/table1.json``)::

    {
      "name": "table1",
      "description": "Full Table 1 matrix",
      "defaults": {"seeds": [0, 1, 2]},
      "rows": [
        {"row": "local", "sizes": [8, 16, 32]},
        {"row": "path", "sizes": [64, 256], "seeds": [0, 1, 2, 3]}
      ]
    }

Sizes and seeds omitted from a row entry fall back first to the
campaign-level ``defaults`` block, then to the registry's per-row
defaults (which match the serial Table 1 runners).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sim.config import normalize_execution_options

__all__ = ["JobSpec", "RowPlan", "CampaignSpec", "job_key"]

# Bump when the meaning of a job's stored payload changes incompatibly
# (e.g. a row's recorded extras change); part of the content hash so
# stale store entries never alias new runs.
#
# Deliberately NOT bumped for the PR-5 execution-option normalization:
# bumping would re-key every existing store.  One narrow migration note
# instead: a pre-PR-5 store built from a config that *explicitly* set an
# execution option to its default (e.g. {"resolution": "bitmask"}) was
# keyed with that option embedded; such cells now normalize to the
# option-free key and will recompute once (the old records stay in the
# append-only store, simply unreferenced).  Configs that never spelled
# out default options — including every config in this repo — resume
# unchanged.
SPEC_VERSION = 2


def _canonical(data: Dict) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def job_key(job_dict: Dict) -> str:
    """Stable content hash of a job description (dict-order independent)."""
    payload = dict(job_dict)
    payload["_v"] = SPEC_VERSION
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()[:24]


class JobSpec:
    """One unit of campaign work: a (row, size) cell over a seed block.

    Most JobSpecs carry a single seed (one cell); the sharded runner
    dispatches multi-seed blocks so workers amortize engine setup via
    :func:`repro.campaign.registry.execute_cell_block`.  Storage
    identity is always per cell: :meth:`cell_keys` hashes each
    (row, size, seed) with the *legacy single-seed payload shape*, so
    blocked and single-seed campaigns share one cache.

    Construct with ``seed=`` (one cell, the historical form) or
    ``seeds=`` (a block); :meth:`from_dict` accepts both payload shapes.
    """

    __slots__ = ("row", "size", "seeds", "options")

    def __init__(
        self,
        row: str,
        size: int,
        seed: Optional[int] = None,
        options: Tuple[Tuple[str, object], ...] = (),
        seeds: Optional[Sequence[int]] = None,
    ) -> None:
        if (seed is None) == (seeds is None):
            raise ValueError("pass exactly one of seed= or seeds=")
        self.row = row
        self.size = int(size)
        self.seeds: Tuple[int, ...] = (
            (int(seed),) if seeds is None else tuple(int(s) for s in seeds)
        )
        if not self.seeds:
            raise ValueError("a job needs at least one seed")
        self.options = tuple(options)

    @property
    def seed(self) -> int:
        """The single seed of a one-cell job (blocks have no one seed)."""
        if len(self.seeds) != 1:
            raise ValueError(
                f"job is a {len(self.seeds)}-seed block; use .seeds"
            )
        return self.seeds[0]

    @property
    def options_dict(self) -> Dict[str, object]:
        return dict(self.options)

    def with_seeds(self, seeds: Sequence[int]) -> "JobSpec":
        return JobSpec(
            row=self.row, size=self.size, seeds=seeds, options=self.options
        )

    def cells(self) -> Iterator["JobSpec"]:
        """The per-(row, size, seed) jobs this block covers, in order."""
        for seed in self.seeds:
            yield JobSpec(
                row=self.row, size=self.size, seed=seed, options=self.options
            )

    def cell_keys(self) -> List[str]:
        """Per-cell content-hash keys (single-seed payload shape), so a
        block's cells alias the records a single-seed campaign wrote."""
        return [cell.key() for cell in self.cells()]

    def to_dict(self) -> Dict:
        data: Dict = {"row": self.row, "size": self.size}
        if len(self.seeds) == 1:
            # Keep the historical single-seed shape: content hashes (and
            # the stores keyed by them) must not change under blocking.
            data["seed"] = self.seeds[0]
        else:
            data["seeds"] = list(self.seeds)
        if self.options:
            data["options"] = dict(self.options)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "JobSpec":
        if ("seed" in data) == ("seeds" in data):
            raise ValueError(
                f"job payload needs exactly one of 'seed'/'seeds': {data!r}"
            )
        return cls(
            row=data["row"],
            size=int(data["size"]),
            seed=data.get("seed"),
            seeds=data.get("seeds"),
            options=tuple(sorted((data.get("options") or {}).items())),
        )

    def key(self) -> str:
        return job_key(self.to_dict())

    def _as_tuple(self):
        return (self.row, self.size, self.seeds, self.options)

    def __eq__(self, other) -> bool:
        if not isinstance(other, JobSpec):
            return NotImplemented
        return self._as_tuple() == other._as_tuple()

    def __hash__(self) -> int:
        return hash(self._as_tuple())

    def __repr__(self) -> str:
        return (
            f"JobSpec(row={self.row!r}, size={self.size}, "
            f"seeds={self.seeds}, options={self.options})"
        )


@dataclass
class RowPlan:
    """One row entry of a campaign: a registry row × sizes × seeds."""

    row: str
    sizes: Optional[Tuple[int, ...]] = None
    seeds: Optional[Tuple[int, ...]] = None
    options: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        data: Dict = {"row": self.row}
        if self.sizes is not None:
            data["sizes"] = list(self.sizes)
        if self.seeds is not None:
            data["seeds"] = list(self.seeds)
        if self.options:
            data["options"] = dict(self.options)
        return data


@dataclass
class CampaignSpec:
    """A named, fully declarative experiment sweep."""

    name: str
    rows: List[RowPlan]
    description: str = ""
    default_sizes: Optional[Tuple[int, ...]] = None
    default_seeds: Optional[Tuple[int, ...]] = None

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignSpec":
        if "name" not in data:
            raise ValueError("campaign config needs a 'name'")
        raw_rows = data.get("rows")
        if not raw_rows:
            raise ValueError("campaign config needs a non-empty 'rows' list")
        defaults = data.get("defaults") or {}
        unknown_defaults = sorted(set(defaults) - {"sizes", "seeds"})
        if unknown_defaults:
            raise ValueError(
                f"'defaults' has unknown keys {unknown_defaults}; "
                f"expected 'sizes' and/or 'seeds'"
            )
        for axis in ("sizes", "seeds"):
            if axis in defaults and not defaults[axis]:
                raise ValueError(f"'defaults' has empty {axis!r}")
        rows = []
        for entry in raw_rows:
            if isinstance(entry, str):
                entry = {"row": entry}
            if "row" not in entry:
                raise ValueError(f"row entry missing 'row': {entry!r}")
            unknown_keys = sorted(
                set(entry) - {"row", "sizes", "seeds", "options"}
            )
            if unknown_keys:
                raise ValueError(
                    f"row {entry['row']!r} has unknown keys {unknown_keys}; "
                    f"expected 'sizes', 'seeds', 'options'"
                )
            for axis in ("sizes", "seeds"):
                if axis in entry and not entry[axis]:
                    raise ValueError(
                        f"row {entry['row']!r} has empty {axis!r}; drop the "
                        f"key to use defaults or remove the row entirely"
                    )
            # Coerce axes to int at parse time: job keys are content
            # hashes, so 8.0 vs 8 would silently split cache identities
            # between the parent and the worker's round-tripped payload.
            #
            # Execution options are validated here — an invalid mode
            # (e.g. "stepping": "phse") fails at config load with the
            # allowed values, before any cell runs — and normalized to
            # their minimal shape: an option explicitly set to its
            # default hashes identically to an omitted one, so such a
            # config aliases the same stored cells.
            try:
                options = normalize_execution_options(
                    dict(entry.get("options") or {})
                )
            except ValueError as exc:
                raise ValueError(
                    f"row {entry['row']!r} has a bad execution option: {exc}"
                ) from None
            rows.append(
                RowPlan(
                    row=entry["row"],
                    sizes=(
                        tuple(int(s) for s in entry["sizes"])
                        if "sizes" in entry else None
                    ),
                    seeds=(
                        tuple(int(s) for s in entry["seeds"])
                        if "seeds" in entry else None
                    ),
                    options=options,
                )
            )
        return cls(
            name=data["name"],
            rows=rows,
            description=data.get("description", ""),
            default_sizes=(
                tuple(int(s) for s in defaults["sizes"])
                if "sizes" in defaults else None
            ),
            default_seeds=(
                tuple(int(s) for s in defaults["seeds"])
                if "seeds" in defaults else None
            ),
        )

    @classmethod
    def from_json_file(cls, path: str) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def to_dict(self) -> Dict:
        data: Dict = {"name": self.name, "rows": [r.to_dict() for r in self.rows]}
        if self.description:
            data["description"] = self.description
        defaults: Dict = {}
        if self.default_sizes is not None:
            defaults["sizes"] = list(self.default_sizes)
        if self.default_seeds is not None:
            defaults["seeds"] = list(self.default_seeds)
        if defaults:
            data["defaults"] = defaults
        return data

    def resolve_sizes_seeds(
        self, plan: RowPlan, registry_sizes: Sequence[int], registry_seeds: Sequence[int]
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        sizes = plan.sizes if plan.sizes is not None else (
            self.default_sizes if self.default_sizes is not None
            else tuple(registry_sizes)
        )
        seeds = plan.seeds if plan.seeds is not None else (
            self.default_seeds if self.default_seeds is not None
            else tuple(registry_seeds)
        )
        return tuple(sizes), tuple(seeds)

    def job_blocks(self) -> Iterator[JobSpec]:
        """Expand the matrix to seed-block jobs — one per (row, size) —
        in deterministic order.  The sharded runner dispatches these so
        workers batch a whole cell group on one prepared engine.

        Options are normalized *here*, at the identity-computation
        layer (not only at the ``from_dict`` door), so a
        programmatically built spec with an execution option explicitly
        set to its default still hashes — and resumes — identically to
        the option-free spec."""
        from repro.campaign.registry import get_row

        for plan in self.rows:
            definition = get_row(plan.row)
            sizes, seeds = self.resolve_sizes_seeds(
                plan, definition.default_sizes, definition.default_seeds
            )
            options = tuple(sorted(
                normalize_execution_options(plan.options).items()
            ))
            for size in sizes:
                yield JobSpec(
                    row=plan.row, size=int(size),
                    seeds=tuple(int(seed) for seed in seeds),
                    options=options,
                )

    def jobs(self) -> Iterator[JobSpec]:
        """Expand the matrix to single-seed cells, in deterministic
        order (the per-cell view of :meth:`job_blocks`)."""
        for block in self.job_blocks():
            yield from block.cells()

    def validate(self) -> None:
        """Raise ``ValueError`` on unknown rows or invalid execution
        options (before any work starts) — a typo'd mode fails here with
        the allowed values, not mid-run inside the engine."""
        from repro.campaign.registry import ROW_REGISTRY

        unknown = sorted(
            {plan.row for plan in self.rows} - set(ROW_REGISTRY)
        )
        if unknown:
            raise ValueError(
                f"unknown campaign rows {unknown}; "
                f"available: {sorted(ROW_REGISTRY)}"
            )
        from repro.sim.config import validate_execution_options

        for plan in self.rows:
            try:
                validate_execution_options(plan.options)
            except ValueError as exc:
                raise ValueError(
                    f"row {plan.row!r} has a bad execution option: {exc}"
                ) from None
            # Row-specific honorability: a custom-cell row that cannot
            # consume an option must refuse the campaign up front —
            # otherwise every one of its cells would fail mid-run under
            # an identity that can never be satisfied.  (The raised
            # ExecutionConfigError is a ValueError, so existing config-
            # error handling catches it.)
            from repro.campaign.registry import check_row_supports_options

            check_row_supports_options(plan.row, plan.options)
