"""Declarative campaign specifications.

A campaign is a JSON-loadable description of a sweep matrix: which
Table 1 rows to run, at which sizes, over which seeds, with which
options.  It expands to a flat list of :class:`JobSpec` cells — one
per (row, size, seed) — each with a stable content-hash key used by
the result store for caching and resumability.

Example config (``configs/table1.json``)::

    {
      "name": "table1",
      "description": "Full Table 1 matrix",
      "defaults": {"seeds": [0, 1, 2]},
      "rows": [
        {"row": "local", "sizes": [8, 16, 32]},
        {"row": "path", "sizes": [64, 256], "seeds": [0, 1, 2, 3]}
      ]
    }

Sizes and seeds omitted from a row entry fall back first to the
campaign-level ``defaults`` block, then to the registry's per-row
defaults (which match the serial Table 1 runners).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["JobSpec", "RowPlan", "CampaignSpec", "job_key"]

# Bump when the meaning of a job's stored payload changes incompatibly
# (e.g. a row's recorded extras change); part of the content hash so
# stale store entries never alias new runs.
SPEC_VERSION = 2


def _canonical(data: Dict) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def job_key(job_dict: Dict) -> str:
    """Stable content hash of a job description (dict-order independent)."""
    payload = dict(job_dict)
    payload["_v"] = SPEC_VERSION
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True)
class JobSpec:
    """One cell of a campaign: a single (row, size, seed) measurement."""

    row: str
    size: int
    seed: int
    options: Tuple[Tuple[str, object], ...] = ()

    @property
    def options_dict(self) -> Dict[str, object]:
        return dict(self.options)

    def to_dict(self) -> Dict:
        data = {"row": self.row, "size": self.size, "seed": self.seed}
        if self.options:
            data["options"] = dict(self.options)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "JobSpec":
        return cls(
            row=data["row"],
            size=int(data["size"]),
            seed=int(data["seed"]),
            options=tuple(sorted((data.get("options") or {}).items())),
        )

    def key(self) -> str:
        return job_key(self.to_dict())


@dataclass
class RowPlan:
    """One row entry of a campaign: a registry row × sizes × seeds."""

    row: str
    sizes: Optional[Tuple[int, ...]] = None
    seeds: Optional[Tuple[int, ...]] = None
    options: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        data: Dict = {"row": self.row}
        if self.sizes is not None:
            data["sizes"] = list(self.sizes)
        if self.seeds is not None:
            data["seeds"] = list(self.seeds)
        if self.options:
            data["options"] = dict(self.options)
        return data


@dataclass
class CampaignSpec:
    """A named, fully declarative experiment sweep."""

    name: str
    rows: List[RowPlan]
    description: str = ""
    default_sizes: Optional[Tuple[int, ...]] = None
    default_seeds: Optional[Tuple[int, ...]] = None

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignSpec":
        if "name" not in data:
            raise ValueError("campaign config needs a 'name'")
        raw_rows = data.get("rows")
        if not raw_rows:
            raise ValueError("campaign config needs a non-empty 'rows' list")
        defaults = data.get("defaults") or {}
        unknown_defaults = sorted(set(defaults) - {"sizes", "seeds"})
        if unknown_defaults:
            raise ValueError(
                f"'defaults' has unknown keys {unknown_defaults}; "
                f"expected 'sizes' and/or 'seeds'"
            )
        for axis in ("sizes", "seeds"):
            if axis in defaults and not defaults[axis]:
                raise ValueError(f"'defaults' has empty {axis!r}")
        rows = []
        for entry in raw_rows:
            if isinstance(entry, str):
                entry = {"row": entry}
            if "row" not in entry:
                raise ValueError(f"row entry missing 'row': {entry!r}")
            unknown_keys = sorted(
                set(entry) - {"row", "sizes", "seeds", "options"}
            )
            if unknown_keys:
                raise ValueError(
                    f"row {entry['row']!r} has unknown keys {unknown_keys}; "
                    f"expected 'sizes', 'seeds', 'options'"
                )
            for axis in ("sizes", "seeds"):
                if axis in entry and not entry[axis]:
                    raise ValueError(
                        f"row {entry['row']!r} has empty {axis!r}; drop the "
                        f"key to use defaults or remove the row entirely"
                    )
            # Coerce axes to int at parse time: job keys are content
            # hashes, so 8.0 vs 8 would silently split cache identities
            # between the parent and the worker's round-tripped payload.
            rows.append(
                RowPlan(
                    row=entry["row"],
                    sizes=(
                        tuple(int(s) for s in entry["sizes"])
                        if "sizes" in entry else None
                    ),
                    seeds=(
                        tuple(int(s) for s in entry["seeds"])
                        if "seeds" in entry else None
                    ),
                    options=dict(entry.get("options") or {}),
                )
            )
        return cls(
            name=data["name"],
            rows=rows,
            description=data.get("description", ""),
            default_sizes=(
                tuple(int(s) for s in defaults["sizes"])
                if "sizes" in defaults else None
            ),
            default_seeds=(
                tuple(int(s) for s in defaults["seeds"])
                if "seeds" in defaults else None
            ),
        )

    @classmethod
    def from_json_file(cls, path: str) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def to_dict(self) -> Dict:
        data: Dict = {"name": self.name, "rows": [r.to_dict() for r in self.rows]}
        if self.description:
            data["description"] = self.description
        defaults: Dict = {}
        if self.default_sizes is not None:
            defaults["sizes"] = list(self.default_sizes)
        if self.default_seeds is not None:
            defaults["seeds"] = list(self.default_seeds)
        if defaults:
            data["defaults"] = defaults
        return data

    def resolve_sizes_seeds(
        self, plan: RowPlan, registry_sizes: Sequence[int], registry_seeds: Sequence[int]
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        sizes = plan.sizes if plan.sizes is not None else (
            self.default_sizes if self.default_sizes is not None
            else tuple(registry_sizes)
        )
        seeds = plan.seeds if plan.seeds is not None else (
            self.default_seeds if self.default_seeds is not None
            else tuple(registry_seeds)
        )
        return tuple(sizes), tuple(seeds)

    def jobs(self) -> Iterator[JobSpec]:
        """Expand the matrix to cells, in deterministic order."""
        from repro.campaign.registry import get_row

        for plan in self.rows:
            definition = get_row(plan.row)
            sizes, seeds = self.resolve_sizes_seeds(
                plan, definition.default_sizes, definition.default_seeds
            )
            options = tuple(sorted(plan.options.items()))
            for size in sizes:
                for seed in seeds:
                    yield JobSpec(
                        row=plan.row, size=int(size), seed=int(seed),
                        options=options,
                    )

    def validate(self) -> None:
        """Raise ``ValueError`` on unknown rows (before any work starts)."""
        from repro.campaign.registry import ROW_REGISTRY

        unknown = sorted(
            {plan.row for plan in self.rows} - set(ROW_REGISTRY)
        )
        if unknown:
            raise ValueError(
                f"unknown campaign rows {unknown}; "
                f"available: {sorted(ROW_REGISTRY)}"
            )
