"""The shared measurement core: one cell = one (row, size, seed) run.

Both execution paths funnel through this module:

* the serial :func:`repro.experiments.harness.sweep` driver, and
* the sharded :mod:`repro.campaign.runner` executor,

so a campaign's aggregates are the *same computation* as a serial
sweep's — just with persistence and parallelism layered on top.

:class:`SweepPoint` lives here (re-exported from the harness for
backwards compatibility) because it is the aggregate both paths emit.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.broadcast.base import BroadcastOutcome, run_broadcast_trials
from repro.graphs.graph import Graph
from repro.graphs.properties import diameter as graph_diameter
from repro.sim.config import UNSET, ExecutionConfig, resolve_exec_config
from repro.sim.models import ChannelModel
from repro.sim.node import Knowledge
from repro.sim.observers import ContentionHistogramObserver

__all__ = [
    "SweepPoint",
    "CellResult",
    "EXECUTION_OPTION_KEYS",
    "execution_options",
    "knowledge_for",
    "run_cell",
    "run_cells",
    "aggregate_cells",
    "bootstrap_median_ci",
]

# Cell options that steer *how* a cell executes rather than what it
# measures.  They ride in the same per-row ``options`` dict as protocol
# knobs (so campaign configs can set them per row) and are consumed by
# run_cells(); protocol builders ignore them.  The set is derived from
# the :class:`~repro.sim.config.ExecutionConfig` schema (fields flagged
# ``cell_option``) — there is no second hand-maintained list to keep in
# sync: a new knob added to the config shows up here, in campaign spec
# validation, and in the shared CLI group at once.
EXECUTION_OPTION_KEYS = ExecutionConfig.option_keys()


def execution_options(options: Optional[Dict]) -> Dict[str, object]:
    """Extract the execution-steering subset of a cell options dict.

    A thin alias of the :class:`~repro.sim.config.ExecutionConfig`
    schema door: values are validated and explicit defaults are dropped
    (the minimal, content-hash-stable shape), so this can never return
    an option set the engine would later reject.
    """
    if not options:
        return {}
    return ExecutionConfig.from_options(options).cell_options()


@dataclass
class SweepPoint:
    """Aggregated measurements at one workload size."""

    label: str
    n: int
    max_degree: int
    diameter: int
    seeds: int
    delivered: int
    time_median: float
    max_energy_median: float
    mean_energy_median: float
    extras: Dict[str, float] = field(default_factory=dict)

    def ratio(self, bound: float) -> float:
        """Measured worst-vertex energy divided by a claimed bound."""
        return self.max_energy_median / max(bound, 1e-9)

    def time_ratio(self, bound: float) -> float:
        return self.time_median / max(bound, 1e-9)


@dataclass
class CellResult:
    """Raw measurements from one (row, size, seed) cell.

    This is the unit of work a campaign shards, stores, and resumes;
    the serial sweep produces the identical object in-process.
    """

    label: str
    size: int
    n: int
    max_degree: int
    diameter: int
    seed: int
    delivered: bool
    duration: float
    max_energy: float
    mean_energy: float
    extras: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "size": self.size,
            "n": self.n,
            "max_degree": self.max_degree,
            "diameter": self.diameter,
            "seed": self.seed,
            "delivered": bool(self.delivered),
            "duration": self.duration,
            "max_energy": self.max_energy,
            "mean_energy": self.mean_energy,
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CellResult":
        return cls(
            label=data["label"],
            size=int(data["size"]),
            n=int(data["n"]),
            max_degree=int(data["max_degree"]),
            diameter=int(data["diameter"]),
            seed=int(data["seed"]),
            delivered=bool(data["delivered"]),
            duration=data["duration"],
            max_energy=data["max_energy"],
            mean_energy=data["mean_energy"],
            extras=dict(data.get("extras", {})),
        )


def knowledge_for(graph: Graph, id_space_from_n: bool = False) -> Knowledge:
    """The a-priori knowledge every harness run hands to devices."""
    return Knowledge(
        n=graph.n,
        max_degree=max(graph.max_degree, 1),
        diameter=graph_diameter(graph),
        id_space=graph.n if id_space_from_n else None,
    )


def run_cells(
    graph: Graph,
    model: ChannelModel,
    protocol_factory: Callable,
    *,
    label: str,
    size: int,
    seeds: Sequence[int],
    source: int = 0,
    knowledge: Optional[Knowledge] = None,
    id_space_from_n: bool = False,
    extra_metrics: Optional[Callable[[BroadcastOutcome], Dict[str, float]]] = None,
    exec_config: Optional[ExecutionConfig] = None,
    record_trace: Any = UNSET,
    resolution: Any = UNSET,
    lockstep: Any = UNSET,
    stepping: Any = UNSET,
    contention_hist: Any = UNSET,
) -> List[CellResult]:
    """Execute one (row, size) cell group across seeds on the batched core.

    All trials share one prepared engine
    (:func:`repro.broadcast.base.run_broadcast_trials`), so graph
    preprocessing and knowledge are paid once per size, not per seed.
    ``exec_config`` steers how the batch executes — every field of
    :class:`~repro.sim.config.ExecutionConfig` is honored here, and
    this is the layer that consumes ``contention_hist``: it attaches a
    per-trial :class:`~repro.sim.observers.ContentionHistogramObserver`
    (stacked on top of any user ``observer_factory``) and folds its
    summary into each cell's ``extras`` under ``ch_*`` keys.  The
    per-knob keyword arguments are the deprecated forms of the matching
    config fields.  Returns one :class:`CellResult` per seed, in
    ``seeds`` order.
    """
    config = resolve_exec_config(
        exec_config,
        dict(
            record_trace=record_trace,
            resolution=resolution,
            lockstep=lockstep,
            stepping=stepping,
            contention_hist=contention_hist,
        ),
        where="run_cells",
    )
    if knowledge is None:
        knowledge = knowledge_for(graph, id_space_from_n=id_space_from_n)
    histograms: Dict[int, ContentionHistogramObserver] = {}
    if config.contention_hist:
        user_factory = config.observer_factory

        def observer_factory(seed):
            observer = ContentionHistogramObserver(graph)
            histograms[seed] = observer
            extra = tuple(user_factory(seed)) if user_factory else ()
            return (observer,) + extra

        config = config.replace(
            contention_hist=False, observer_factory=observer_factory
        )
    outcomes = run_broadcast_trials(
        graph,
        model,
        protocol_factory,
        seeds,
        source=source,
        knowledge=knowledge,
        exec_config=config,
    )
    cells = []
    for seed, outcome in zip(seeds, outcomes):
        extras = dict(extra_metrics(outcome)) if extra_metrics is not None else {}
        if histograms:
            extras.update({
                f"ch_{key}": value
                for key, value in histograms[seed].summary().items()
            })
        # SoA engagement diagnostic: only lock-step runs set soa_reason,
        # so default-path cells (and their stores/aggregates) are
        # byte-unchanged.
        if outcome.sim.soa_reason is not None:
            extras["soa"] = 1.0 if outcome.sim.soa_reason == "ok" else 0.0
            # The verdict itself rides along as a one-hot key so the
            # fabric ledger can count *why* the SoA engine disengaged
            # (fallback taxonomy: churn, jammer, burst_loss, ...), not
            # just that it did.
            extras[f"soa_reason_{outcome.sim.soa_reason}"] = 1.0
        cells.append(CellResult(
            label=label,
            size=size,
            n=graph.n,
            max_degree=graph.max_degree,
            diameter=knowledge.diameter,
            seed=seed,
            delivered=outcome.delivered,
            duration=outcome.duration,
            max_energy=outcome.max_energy,
            mean_energy=outcome.mean_energy,
            extras=extras,
        ))
    return cells


def run_cell(
    graph: Graph,
    model: ChannelModel,
    protocol_factory: Callable,
    *,
    label: str,
    size: int,
    seed: int,
    source: int = 0,
    knowledge: Optional[Knowledge] = None,
    id_space_from_n: bool = False,
    extra_metrics: Optional[Callable[[BroadcastOutcome], Dict[str, float]]] = None,
    exec_config: Optional[ExecutionConfig] = None,
    record_trace: Any = UNSET,
    resolution: Any = UNSET,
    lockstep: Any = UNSET,
    stepping: Any = UNSET,
    contention_hist: Any = UNSET,
) -> CellResult:
    """Execute one broadcast cell (a single-seed batch) and reduce it to
    storable numbers — the unit the sharded campaign runner executes."""
    config = resolve_exec_config(
        exec_config,
        dict(
            record_trace=record_trace,
            resolution=resolution,
            lockstep=lockstep,
            stepping=stepping,
            contention_hist=contention_hist,
        ),
        where="run_cell",
    )
    return run_cells(
        graph,
        model,
        protocol_factory,
        label=label,
        size=size,
        seeds=(seed,),
        source=source,
        knowledge=knowledge,
        id_space_from_n=id_space_from_n,
        extra_metrics=extra_metrics,
        exec_config=config,
    )[0]


def bootstrap_median_ci(
    values: Sequence[float],
    resamples: int = 200,
    confidence: float = 0.9,
    seed: int = 0,
) -> tuple:
    """Percentile-bootstrap confidence interval for the median.

    Deterministic for a given ``seed`` so stored aggregates are
    reproducible run-to-run.
    """
    if not values:
        return (0.0, 0.0)
    if len(values) == 1:
        return (values[0], values[0])
    rng = random.Random(seed)
    medians = sorted(
        statistics.median(rng.choices(values, k=len(values)))
        for _ in range(resamples)
    )
    lo_q = (1.0 - confidence) / 2.0
    lo = medians[int(lo_q * (resamples - 1))]
    hi = medians[int((1.0 - lo_q) * (resamples - 1))]
    return (lo, hi)


def aggregate_cells(cells: Sequence[CellResult], extended: bool = False) -> SweepPoint:
    """Reduce the cells of one (row, size) group to a :class:`SweepPoint`.

    With ``extended=False`` this computes exactly what the original
    serial sweep computed (medians over seeds); ``extended=True`` adds
    min/max/stdev and bootstrap confidence intervals to ``extras``.

    Extras are aggregated by median, except pass/fail flags — keys
    ending in ``_holds`` or ``_ok`` — which aggregate conjunctively
    (min over 0/1 values): one failing seed must surface as failure,
    the way the serial lower-bound runners AND their verdicts.
    """
    if not cells:
        raise ValueError("cannot aggregate an empty cell group")
    cells = sorted(cells, key=lambda c: c.seed)
    times = [c.duration for c in cells]
    max_energies = [c.max_energy for c in cells]
    mean_energies = [c.mean_energy for c in cells]
    extras_acc: Dict[str, List[float]] = {}
    for cell in cells:
        for key, value in cell.extras.items():
            if key == "soa" or key.startswith("soa_reason_"):
                # Execution-path diagnostics (which engine ran the
                # cell and why), not measurements: they vary with
                # execution options by design, and aggregates must
                # not.  Note soa_reason_ok would otherwise hit the
                # conjunctive ``_ok`` rule below — skip first.  Cell
                # stores keep the flags; the fabric events ledger is
                # the aggregate engagement view.
                continue
            extras_acc.setdefault(key, []).append(value)
    extras = {
        key: (
            min(values)
            if key.endswith("_holds") or key.endswith("_ok")
            else statistics.median(values)
        )
        for key, values in extras_acc.items()
    }
    if extended:
        for name, values in (
            ("time", times),
            ("max_energy", max_energies),
            ("mean_energy", mean_energies),
        ):
            extras[f"{name}_min"] = min(values)
            extras[f"{name}_max"] = max(values)
            extras[f"{name}_stdev"] = (
                statistics.stdev(values) if len(values) > 1 else 0.0
            )
            lo, hi = bootstrap_median_ci(values, seed=cells[0].size)
            extras[f"{name}_ci_lo"] = lo
            extras[f"{name}_ci_hi"] = hi
    head = cells[0]
    return SweepPoint(
        label=head.label,
        n=head.n,
        max_degree=head.max_degree,
        diameter=head.diameter,
        seeds=len(cells),
        delivered=sum(1 for c in cells if c.delivered),
        time_median=statistics.median(times),
        max_energy_median=statistics.median(max_energies),
        mean_energy_median=statistics.median(mean_energies),
        extras=extras,
    )
