"""Campaign executor: shard cells across workers, persist every result.

One job = one (row, size, seed) cell.  The runner

* skips every cell whose content-hash key already has an ``ok`` record
  in the store (resumability / caching — re-runs compute only the delta),
* isolates crashes: a cell that raises is recorded as ``status=error``
  and the campaign continues,
* enforces a per-job wall-clock timeout via ``SIGALRM`` inside the
  worker process, so one diverging protocol cannot wedge the sweep,
* with ``jobs > 1`` fans cells out over a ``ProcessPoolExecutor``;
  with ``jobs <= 1`` it runs them in-process (same code path as the
  serial harness — both funnel through
  :func:`repro.campaign.registry.execute_cell`).
"""

from __future__ import annotations

import math
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.campaign.spec import CampaignSpec, JobSpec
from repro.campaign.store import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    CampaignStore,
    make_record,
)

__all__ = ["CellTimeout", "CampaignRunReport", "execute_job", "run_campaign"]


class CellTimeout(RuntimeError):
    """A cell exceeded its per-job wall-clock budget."""


@dataclass
class CampaignRunReport:
    """What one ``run_campaign`` invocation did.

    ``ran`` counts cells that actually produced a record this run;
    ``aborted`` is set when the worker pool died and cells were left
    pending (a re-run resumes them).
    """

    total: int
    skipped: int
    ran: int
    ok: int
    errors: int
    timeouts: int
    elapsed: float
    aborted: bool = False
    failed_jobs: List[Dict] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        return self.errors == 0 and self.timeouts == 0 and not self.aborted

    def summary(self) -> str:
        text = (
            f"{self.total} cells: {self.skipped} cached, {self.ok} computed, "
            f"{self.errors} errors, {self.timeouts} timeouts "
            f"({self.elapsed:.1f}s)"
        )
        if self.aborted:
            pending = self.total - self.skipped - self.ran
            text += f"; ABORTED with {pending} cells pending (re-run to resume)"
        return text


def _alarm_handler(signum, frame):
    raise CellTimeout("cell exceeded its time budget")


def execute_job(payload: Dict) -> Dict:
    """Run one cell and wrap the outcome in a store record.

    Module-level (picklable) so it serves as the multiprocessing worker
    entry point; also called directly for serial runs.  Never raises —
    failures become ``error``/``timeout`` records.
    """
    job = JobSpec.from_dict(payload["job"])
    timeout = payload.get("timeout")
    key = job.key()
    start = time.monotonic()
    use_alarm = bool(timeout) and hasattr(signal, "SIGALRM")
    previous_handler = None
    if use_alarm:
        try:
            previous_handler = signal.signal(signal.SIGALRM, _alarm_handler)
            signal.alarm(max(1, math.ceil(timeout)))
        except ValueError:  # not the main thread: run without a budget
            use_alarm = False
    try:
        from repro.campaign.registry import execute_cell

        cell = execute_cell(job.row, job.size, job.seed, job.options_dict)
        if use_alarm:  # the cell is computed; don't let the alarm fire
            signal.alarm(0)  # while the record is being assembled
        return make_record(
            key, job.to_dict(), STATUS_OK,
            result=cell.to_dict(), elapsed=time.monotonic() - start,
        )
    except CellTimeout:
        return make_record(
            key, job.to_dict(), STATUS_TIMEOUT,
            error=f"timed out after {timeout}s",
            elapsed=time.monotonic() - start,
        )
    except Exception:
        return make_record(
            key, job.to_dict(), STATUS_ERROR,
            error=traceback.format_exc(limit=20),
            elapsed=time.monotonic() - start,
        )
    finally:
        if use_alarm:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous_handler)


def run_campaign(
    spec: CampaignSpec,
    store: CampaignStore,
    jobs: int = 1,
    timeout: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignRunReport:
    """Execute every not-yet-completed cell of ``spec`` into ``store``."""
    spec.validate()
    say = progress or (lambda message: None)
    # Overlapping row entries can name the same cell twice; count and
    # execute each unique key once (aggregation dedupes the same way).
    all_jobs, seen = [], set()
    for job in spec.jobs():
        key = job.key()
        if key not in seen:
            seen.add(key)
            all_jobs.append(job)
    done = store.completed_keys()
    pending = [job for job in all_jobs if job.key() not in done]
    say(
        f"campaign {spec.name}: {len(all_jobs)} cells, "
        f"{len(all_jobs) - len(pending)} cached, {len(pending)} to run"
    )
    start = time.monotonic()
    counts = {STATUS_OK: 0, STATUS_ERROR: 0, STATUS_TIMEOUT: 0}
    failed: List[Dict] = []

    def record_outcome(record: Dict) -> None:
        store.append(record)
        counts[record["status"]] = counts.get(record["status"], 0) + 1
        job = record["job"]
        tag = f"{job['row']}/n={job['size']}/seed={job['seed']}"
        if record["status"] == STATUS_OK:
            say(f"  ok {tag} ({record['elapsed']:.2f}s)")
        else:
            failed.append(job)
            say(f"  {record['status'].upper()} {tag}")

    payloads = [
        {"job": job.to_dict(), "timeout": timeout} for job in pending
    ]
    aborted = False
    if jobs <= 1 or len(pending) <= 1:
        for payload in payloads:
            record_outcome(execute_job(payload))
    else:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures import as_completed
        from concurrent.futures.process import BrokenProcessPool

        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(execute_job, payload): payload
                for payload in payloads
            }
            for future in as_completed(futures):
                payload = futures[future]
                try:
                    record = future.result()
                except BrokenProcessPool:
                    # A worker died hard (segfault / OOM-kill).  Which
                    # cell killed it is not attributable from here —
                    # every unfinished future fails with this error — so
                    # record nothing: the unfinished cells stay pending
                    # and the next run resumes (and retries) them.
                    aborted = True
                    say(
                        "  ABORT: a worker process died; remaining cells "
                        "stay pending — re-run to resume"
                    )
                    break
                except Exception as exc:  # pickling/submission failures
                    job = JobSpec.from_dict(payload["job"])
                    record_outcome(make_record(
                        job.key(), job.to_dict(), STATUS_ERROR,
                        error=f"executor failure: {exc!r}",
                    ))
                else:
                    record_outcome(record)

    ran = sum(counts.values())
    return CampaignRunReport(
        total=len(all_jobs),
        skipped=len(all_jobs) - len(pending),
        ran=ran,
        ok=counts[STATUS_OK],
        errors=counts[STATUS_ERROR],
        timeouts=counts[STATUS_TIMEOUT],
        elapsed=time.monotonic() - start,
        aborted=aborted,
        failed_jobs=failed,
    )
