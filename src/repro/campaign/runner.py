"""Campaign executor: shard seed blocks across workers, persist cells.

One dispatch unit = one (row, size) *seed block*; one stored record =
one (row, size, seed) cell.  The runner

* skips every cell whose content-hash key already has an ``ok`` record
  in the store and dispatches only each block's missing seeds
  (resumability / caching — re-runs compute only the delta),
* batches: a block's seeds share one prepared engine
  (:func:`repro.campaign.registry.execute_cell_block`), amortizing
  graph and setup cost exactly like the serial sweep's ``run_cells``,
* isolates failures: a multi-seed block that raises or times out is
  re-executed seed by seed so one bad cell cannot poison its
  blockmates; a failing cell is recorded as ``status=error`` /
  ``status=timeout`` and the campaign continues,
* enforces a per-*cell* wall-clock timeout via ``SIGALRM`` inside the
  worker process (a block's budget is ``timeout * len(seeds)``), so
  one diverging protocol cannot wedge the sweep,
* with ``jobs > 1`` fans blocks out over a ``ProcessPoolExecutor``;
  with ``jobs <= 1`` it runs them in-process (same code path as the
  serial harness).
"""

from __future__ import annotations

import math
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.campaign.spec import CampaignSpec, JobSpec
from repro.campaign.store import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    CampaignStore,
    make_record,
)

__all__ = [
    "CellTimeout",
    "CampaignRunReport",
    "execute_job",
    "plan_pending",
    "run_campaign",
]


def plan_pending(spec: CampaignSpec, done) -> "tuple[int, List[JobSpec]]":
    """Resolve a spec against completed keys: ``(total_cells, blocks)``.

    Overlapping row entries can name the same cell twice; each unique
    key is counted and executed once (aggregation dedupes the same
    way).  Each returned block carries only its not-yet-done seeds, so
    resuming a half-finished campaign re-runs exactly the missing
    cells.  Shared by the serial/pool runner and the fabric executor —
    one planning door guarantees both dispatch the identical work-set.
    """
    seen = set()
    total_cells = 0
    pending: List[JobSpec] = []
    for block in spec.job_blocks():
        missing = []
        for cell, key in zip(block.cells(), block.cell_keys()):
            if key in seen:
                continue
            seen.add(key)
            total_cells += 1
            if key not in done:
                missing.append(cell.seed)
        if missing:
            pending.append(block.with_seeds(missing))
    return total_cells, pending


class CellTimeout(RuntimeError):
    """A cell exceeded its per-job wall-clock budget."""


@dataclass
class CampaignRunReport:
    """What one ``run_campaign`` invocation did.

    ``ran`` counts cells that actually produced a record this run;
    ``aborted`` is set when the worker pool died and cells were left
    pending (a re-run resumes them).
    """

    total: int
    skipped: int
    ran: int
    ok: int
    errors: int
    timeouts: int
    elapsed: float
    aborted: bool = False
    failed_jobs: List[Dict] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        return self.errors == 0 and self.timeouts == 0 and not self.aborted

    def summary(self) -> str:
        text = (
            f"{self.total} cells: {self.skipped} cached, {self.ok} computed, "
            f"{self.errors} errors, {self.timeouts} timeouts "
            f"({self.elapsed:.1f}s)"
        )
        if self.aborted:
            pending = self.total - self.skipped - self.ran
            text += f"; ABORTED with {pending} cells pending (re-run to resume)"
        return text


def _alarm_handler(signum, frame):
    raise CellTimeout("cell exceeded its time budget")


class _Alarm:
    """SIGALRM budget as a context manager; inert off-main-thread or
    when no budget is given."""

    def __init__(self, budget: Optional[float]) -> None:
        self.budget = budget
        self.armed = False
        self.previous = None

    def __enter__(self) -> "_Alarm":
        if self.budget and hasattr(signal, "SIGALRM"):
            try:
                self.previous = signal.signal(signal.SIGALRM, _alarm_handler)
                signal.alarm(max(1, math.ceil(self.budget)))
                self.armed = True
            except ValueError:  # not the main thread: run without a budget
                self.armed = False
        return self

    def disarm(self) -> None:
        """Stop the clock early (the work is done; don't let the alarm
        fire while records are being assembled)."""
        if self.armed:
            signal.alarm(0)

    def __exit__(self, *exc) -> None:
        if self.armed:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, self.previous)
        return None


def _execute_cell_job(job: JobSpec, timeout: Optional[float]) -> Dict:
    """Run one single-seed cell under its own alarm; never raises."""
    key = job.key()
    start = time.monotonic()
    try:
        with _Alarm(timeout) as alarm:
            from repro.campaign.registry import execute_cell

            cell = execute_cell(job.row, job.size, job.seed, job.options_dict)
            alarm.disarm()
        return make_record(
            key, job.to_dict(), STATUS_OK,
            result=cell.to_dict(), elapsed=time.monotonic() - start,
        )
    except CellTimeout:
        return make_record(
            key, job.to_dict(), STATUS_TIMEOUT,
            error=f"timed out after {timeout}s",
            elapsed=time.monotonic() - start,
        )
    except Exception:
        return make_record(
            key, job.to_dict(), STATUS_ERROR,
            error=traceback.format_exc(limit=20),
            elapsed=time.monotonic() - start,
        )


def execute_job(payload: Dict) -> List[Dict]:
    """Run one job (a single cell or a seed block) and wrap every cell's
    outcome in a store record.

    Module-level (picklable) so it serves as the multiprocessing worker
    entry point; also called directly for serial runs.  Never raises —
    failures become ``error``/``timeout`` records.  A multi-seed block
    first runs batched on one prepared engine (budget: per-cell timeout
    x block size); if anything in the batch fails, it falls back to
    seed-by-seed execution so the failure is pinned to the cell that
    caused it and healthy blockmates still complete.
    """
    job = JobSpec.from_dict(payload["job"])
    timeout = payload.get("timeout")
    if len(job.seeds) == 1:
        return [_execute_cell_job(job, timeout)]
    start = time.monotonic()
    try:
        with _Alarm(timeout * len(job.seeds) if timeout else None) as alarm:
            from repro.campaign.registry import execute_cell_block

            cells = execute_cell_block(
                job.row, job.size, job.seeds, job.options_dict
            )
            alarm.disarm()
    except Exception:  # includes CellTimeout: isolate per seed
        return [_execute_cell_job(cell, timeout) for cell in job.cells()]
    per_cell = (time.monotonic() - start) / len(job.seeds)
    return [
        make_record(
            cell_job.key(), cell_job.to_dict(), STATUS_OK,
            result=cell.to_dict(), elapsed=per_cell,
        )
        for cell_job, cell in zip(job.cells(), cells)
    ]


def run_campaign(
    spec: CampaignSpec,
    store: CampaignStore,
    jobs: int = 1,
    timeout: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignRunReport:
    """Execute every not-yet-completed cell of ``spec`` into ``store``.

    Work is dispatched as (row, size) seed blocks; each block carries
    only the seeds whose cells are not yet completed, so resuming a
    half-finished campaign re-runs exactly the missing cells.
    """
    spec.validate()
    say = progress or (lambda message: None)
    total_cells, pending = plan_pending(spec, store.completed_keys())
    pending_cells = sum(len(block.seeds) for block in pending)
    say(
        f"campaign {spec.name}: {total_cells} cells, "
        f"{total_cells - pending_cells} cached, {pending_cells} to run "
        f"in {len(pending)} block(s)"
    )
    start = time.monotonic()
    counts = {STATUS_OK: 0, STATUS_ERROR: 0, STATUS_TIMEOUT: 0}
    failed: List[Dict] = []

    def record_outcome(records: List[Dict]) -> None:
        for record in records:
            store.append(record)
            counts[record["status"]] = counts.get(record["status"], 0) + 1
            job = record["job"]
            tag = f"{job['row']}/n={job['size']}/seed={job['seed']}"
            if record["status"] == STATUS_OK:
                say(f"  ok {tag} ({record['elapsed']:.2f}s)")
            else:
                failed.append(job)
                say(f"  {record['status'].upper()} {tag}")

    payloads = [
        {"job": block.to_dict(), "timeout": timeout} for block in pending
    ]
    aborted = False
    if jobs <= 1 or len(pending) <= 1:
        for payload in payloads:
            record_outcome(execute_job(payload))
    else:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures import as_completed
        from concurrent.futures.process import BrokenProcessPool

        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(execute_job, payload): payload
                for payload in payloads
            }
            for future in as_completed(futures):
                payload = futures[future]
                try:
                    record = future.result()
                except BrokenProcessPool:
                    # A worker died hard (segfault / OOM-kill).  Which
                    # cell killed it is not attributable from here —
                    # every unfinished future fails with this error — so
                    # record nothing: the unfinished cells stay pending
                    # and the next run resumes (and retries) them.
                    aborted = True
                    say(
                        "  ABORT: a worker process died; remaining cells "
                        "stay pending — re-run to resume"
                    )
                    break
                except Exception as exc:  # pickling/submission failures
                    block = JobSpec.from_dict(payload["job"])
                    record_outcome([
                        make_record(
                            cell.key(), cell.to_dict(), STATUS_ERROR,
                            error=f"executor failure: {exc!r}",
                        )
                        for cell in block.cells()
                    ])
                else:
                    record_outcome(record)

    ran = sum(counts.values())
    return CampaignRunReport(
        total=total_cells,
        skipped=total_cells - pending_cells,
        ran=ran,
        ok=counts[STATUS_OK],
        errors=counts[STATUS_ERROR],
        timeouts=counts[STATUS_TIMEOUT],
        elapsed=time.monotonic() - start,
        aborted=aborted,
        failed_jobs=failed,
    )
