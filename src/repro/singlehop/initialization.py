"""Energy-efficient initialization (dense renaming) in a single-hop network.

Nakano and Olariu [29] showed that n initially identical stations can
assign themselves distinct IDs with O(log log n) energy per station.  We
implement the same two-ingredient recipe in full-duplex CD:

1. approximate counting (O(log log n) energy, shared by all stations)
   yields a common estimate m of the station count;
2. repeated balanced hashing: round r reserves c*m slots; each un-named
   station picks a uniformly random slot and transmits there while
   observing the channel — a sole transmitter (it hears silence) claims
   the ID encoded by (round, slot); collided stations retry next round.
   Participation costs O(1) energy per round and a constant fraction
   succeeds per round, so expected extra energy is O(1).

The assigned IDs are distinct integers in a space of size O(n)
(dense renaming).  [29] additionally compacts to exactly {1..n} in No-CD;
we document that difference rather than hide it — the substrate uses of
initialization in this repository (giving deterministic algorithms their
ID space) only need distinctness and O(n) density.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.actions import Idle, Listen, SendListen
from repro.sim.feedback import SILENCE
from repro.sim.node import NodeCtx
from repro.singlehop.counting import approximate_count_cd_protocol
from repro.util import ceil_log2

__all__ = ["initialization_protocol"]


def initialization_protocol(
    rounds: Optional[int] = None, slots_factor: int = 2
):
    """Factory: every station returns its claimed ID (int >= 1), or None
    if it failed to grab one within the round budget (probability
    exponentially small in ``rounds``)."""

    counting = approximate_count_cd_protocol()

    def protocol(ctx: NodeCtx):
        estimate = yield from _inline(counting(ctx))
        bucket_count = max(2, slots_factor * int(estimate))
        budget = rounds if rounds is not None else 3 * (ceil_log2(ctx.n) + 2)
        base = 1
        claimed: Optional[int] = None
        for _ in range(budget):
            if claimed is None:
                slot = ctx.rng.randrange(bucket_count)
                if slot:
                    yield Idle(slot)
                feedback = yield SendListen(("init-claim",))
                if feedback is SILENCE:
                    claimed = base + slot
                tail = bucket_count - slot - 1
                if tail:
                    yield Idle(tail)
            else:
                yield Idle(bucket_count)
            base += bucket_count
        return claimed

    return protocol


def _inline(generator):
    """yield-from helper that returns the inner protocol's value."""
    result = yield from generator
    return result
