"""Single-hop (clique) primitives: the substrates the paper builds on."""

from repro.singlehop.counting import approximate_count_cd_protocol
from repro.singlehop.initialization import initialization_protocol
from repro.singlehop.leader_election import (
    deterministic_le_cd_protocol,
    uniform_le_cd_protocol,
)

__all__ = [
    "approximate_count_cd_protocol",
    "initialization_protocol",
    "deterministic_le_cd_protocol",
    "uniform_le_cd_protocol",
]
