"""Approximate counting in a single-hop CD network.

``approximate_count_cd_protocol`` estimates the number of stations m to
within a constant factor (the paper's ApproximateCounting: "approximating
n to within a constant factor"): the shared controller locates the
exponent k* where transmission probability 2^-k* flips the channel from
noisy to silent — there m * 2^-k* = Theta(1), so 2^k* estimates m.
Repeating R times and taking the median sharpens the failure probability.

Runs in full-duplex CD so that every station observes every slot.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.actions import Listen, SendListen
from repro.sim.feedback import NOISE, SILENCE, is_message
from repro.sim.node import NodeCtx
from repro.util import ceil_log2, median

__all__ = ["approximate_count_cd_protocol"]


def approximate_count_cd_protocol(
    repetitions: int = 7, max_n: Optional[int] = None
):
    """Factory: every station returns its estimate of m = #stations."""

    def protocol(ctx: NodeCtx):
        cap = max_n if max_n is not None else ctx.n
        max_k = ceil_log2(max(2, cap)) + 3
        estimates = []
        for rep in range(repetitions):
            lo, hi = 0, None
            k = 1
            # Doubling until silent, then binary search on the threshold.
            for _ in range(3 * (max_k + 2)):
                transmit = ctx.rng.random() < 2.0**-k
                if transmit:
                    feedback = yield SendListen(("c", rep))
                    # Hearing anything (or noise) means >= 2 transmitters.
                    busy = True
                else:
                    feedback = yield Listen()
                    busy = feedback is NOISE or is_message(feedback)
                if busy:
                    lo = max(lo, k)
                    if hi is None:
                        k = min(2 * k, max_k)
                        if k == lo:
                            break
                    else:
                        k = (lo + hi) // 2
                else:
                    hi = k if hi is None or k < hi else hi
                    if hi <= lo:
                        lo = max(0, hi - 1)
                    k = (lo + hi) // 2 if hi - lo > 1 else max(1, lo)
                if hi is not None and hi - lo <= 1:
                    break
            estimates.append(2 ** max(lo, 1))
        return median(estimates)

    return protocol
