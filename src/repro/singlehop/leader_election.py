"""Single-hop leader election (the paper's substrate literature).

* :func:`uniform_le_cd_protocol` — the uniform leader-election algorithm
  in the style of Nakano-Olariu [30], used by Lemma 8's generic
  transformation: all stations observe the channel (full-duplex CD); the
  per-slot transmission probability 2^-k follows a shared controller
  (doubling, then binary search, then steady alternation), so k depends
  only on the channel history — exactly the uniformity Lemma 8 needs.
  Time O(log log n') + exponential tail.
* :func:`deterministic_le_cd_protocol` — deterministic CD leader election
  by electing the minimum ID via the Lemma 24 bit-by-bit binary search;
  Theta(log N) energy, the optimum cited from [7, 20].

Outcome convention: every station returns the elected leader's tag, so a
run is correct when all outputs agree and name an actual participant.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.sr_comm import Role, sr_det_cd
from repro.sim.actions import Idle, Listen, SendListen
from repro.sim.feedback import NOISE, SILENCE, is_message
from repro.sim.node import NodeCtx
from repro.util import ceil_log2

__all__ = [
    "uniform_le_cd_protocol",
    "deterministic_le_cd_protocol",
]


class _SharedController:
    """Channel-outcome-driven probability controller.

    Outcomes are reduced so that every station (transmitting or not)
    computes the same next exponent: a transmitter that hears a message
    knows there were >= 2 transmitters (same knowledge as a listener's
    NOISE); a transmitter that hears silence knows it is alone and wins.
    """

    def __init__(self, max_k: int) -> None:
        self.max_k = max_k
        self.lo = 0
        self.hi: Optional[int] = None
        self._doubling = 1
        self._flip = False

    def next_k(self) -> int:
        if self.hi is None:
            return min(self._doubling, self.max_k)
        if self.hi - self.lo > 1:
            return (self.hi + self.lo) // 2
        self._flip = not self._flip
        return min(max(self.hi if self._flip else max(self.lo, 1), 1), self.max_k)

    def observe(self, k: int, outcome: str) -> None:
        if outcome == "noise":
            self.lo = max(self.lo, k)
            if self.hi is None:
                if k >= self.max_k:
                    self.hi = self.max_k
                else:
                    self._doubling = min(self._doubling * 2, self.max_k)
        elif outcome == "silence":
            if self.hi is None or k < self.hi:
                self.hi = k
            if self.hi <= self.lo:
                self.lo = max(0, self.hi - 1)


def uniform_le_cd_protocol(max_slots: Optional[int] = None):
    """Factory for uniform leader election in full-duplex CD (clique).

    Every station participates.  In each slot every station transmits its
    random tag with probability 2^-k (k from the shared controller) and
    observes the channel.  A station that transmitted and heard silence is
    the unique transmitter: it wins and announces itself in one final
    confirmation slot.  Returns the leader's tag (or None on timeout).
    """

    def protocol(ctx: NodeCtx):
        budget = max_slots if max_slots is not None else 40 + 12 * ceil_log2(
            max(2, ctx.n)
        )
        my_tag = ctx.rng.getrandbits(60)
        controller = _SharedController(max_k=ceil_log2(max(2, ctx.n)) + 2)
        for _ in range(budget):
            k = controller.next_k()
            transmit = ctx.rng.random() < 2.0**-k
            if transmit:
                feedback = yield SendListen(("cand", my_tag))
                if feedback is SILENCE:
                    # Unique transmitter: claim leadership.
                    yield SendListen(("leader", my_tag))
                    return my_tag
                outcome = "noise"  # >= 2 transmitters (incl. me)
            else:
                feedback = yield Listen()
                if is_message(feedback):
                    if feedback[0] == "leader":
                        return feedback[1]
                    # Unique transmitter exists; it will claim next slot.
                    confirm = yield Listen()
                    if is_message(confirm) and confirm[0] == "leader":
                        return confirm[1]
                    # Claim lost (cannot happen in a clique); resync below.
                    outcome = "noise"
                elif feedback is NOISE:
                    outcome = "noise"
                else:
                    outcome = "silence"
            controller.observe(k, outcome)
            if not transmit and is_message(feedback):
                continue
            # Mirror the winner's confirmation slot to stay synchronized:
            # non-transmitting silence/noise slots do not have one.
        return None

    return protocol


def deterministic_le_cd_protocol(id_space: Optional[int] = None):
    """Factory for deterministic CD leader election: elect the minimum ID
    via the Lemma 24 prefix search (everyone is both sender and receiver).

    Returns the winning ID; energy O(log N) per station, time O(N).
    """

    def protocol(ctx: NodeCtx):
        space = id_space if id_space is not None else (ctx.id_space or ctx.n)
        learned = yield from sr_det_cd(ctx, Role.BOTH, ctx.uid - 1, space)
        return (learned + 1) if learned is not None else ctx.uid

    return protocol
