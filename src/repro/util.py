"""Small numeric helpers shared across the library."""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Sequence, TypeVar

__all__ = [
    "ceil_log2",
    "floor_log2",
    "ceil_div",
    "geometric",
    "median",
    "mean",
    "max_or",
]

T = TypeVar("T")


def ceil_log2(x: int) -> int:
    """Smallest k with 2**k >= x (x >= 1).  ceil_log2(1) == 0."""
    if x < 1:
        raise ValueError(f"ceil_log2 needs x >= 1, got {x}")
    return (x - 1).bit_length()


def floor_log2(x: int) -> int:
    """Largest k with 2**k <= x (x >= 1)."""
    if x < 1:
        raise ValueError(f"floor_log2 needs x >= 1, got {x}")
    return x.bit_length() - 1


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def geometric(rng: random.Random, p: float = 0.5) -> int:
    """Number of Bernoulli(p) trials up to and including the first success
    (support 1, 2, ...)."""
    if not 0 < p <= 1:
        raise ValueError(f"geometric needs p in (0, 1], got {p}")
    # Inversion method keeps this exact and O(1).
    u = rng.random()
    if p == 1.0:
        return 1
    return int(math.floor(math.log(1.0 - u) / math.log(1.0 - p))) + 1


def median(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def mean(values: Iterable[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def max_or(values: Iterable[int], default: int = 0) -> int:
    return max(values, default=default)
