"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figure1 [--n N] [--seed S]`` — render the Figure 1 timeline.
* ``table1 [ROW ...] [--seeds N] [--sizes-scale F]`` — run Table 1 row
  experiments serially (default: all rows).
* ``ablations`` — run the three ablations.
* ``demo`` — the quickstart comparison on a 128-hop chain.
* ``campaign run CONFIG [--workers N] [--retries K] [--heartbeat S]
  [--jobs N] [--out DIR] [--timeout S]`` — execute a declarative sweep
  campaign with results cached in an append-only store (re-runs compute
  only the delta).  ``--workers`` engages the fault-tolerant fabric:
  persistent worker processes, per-worker result shards, retry with
  backoff, poison-block quarantine, and a live events ledger.
  ``--jobs`` keeps the legacy pool path; plain serial stays the
  differential oracle.
* ``campaign status CONFIG [--out DIR] [--watch] [--interval S]`` —
  per-row completion accounting; ``--watch`` adds the live fabric view
  (throughput, ETA, per-worker state) replayed from the events ledger.
* ``campaign report CONFIG [--out DIR] [--events] [--degradation]`` —
  render Table-1-style tables from the store; ``--events`` appends the
  fabric events summary (per-worker tallies, retries, quarantines);
  ``--degradation`` renders the clean-vs-faulted comparison table for
  rows carrying churn/jam/burst_loss options instead.
* ``campaign run-all TARGET [--out-root DIR]`` — run every config named
  by a manifest (or directory of configs) through the fabric, one store
  per campaign.
* ``store compact PATH`` / ``store merge DEST SRC ...`` — rewrite a
  store to one line per cell / fold other stores (or leftover worker
  shards) into it.
* ``bench [--out PATH] [--quick] [--min-legacy-speedup X]
  [--min-ref-speedup X]`` — run the engine microbenchmarks, write
  ``BENCH_engine.json``, and optionally fail if the engine is not fast
  enough (the CI perf-smoke tripwire).

The ``figure1``, ``table1``, ``ablations``, ``campaign``, and ``bench``
subcommands share one execution-options group (``--resolution``,
``--stepping``, ``--lockstep``/``--no-lockstep``,
``--contention-hist``/``--no-contention-hist``), generated from the
:class:`repro.sim.config.ExecutionConfig` field schema.  Precedence is
CLI > cell options > defaults; on campaigns the flags become part of
each cell's content-hash identity (pass the same flags to
``status``/``report``), except that explicit default values normalize
away and alias the flag-free cells.
"""

from __future__ import annotations

import argparse
import inspect
import os
import sys
from typing import List, Optional

from repro.sim.config import (
    ExecutionConfigError,
    add_execution_args,
    add_runner_args,
    config_from_args,
    execution_overrides,
    normalize_execution_options,
    runner_overrides,
)

__all__ = ["main"]

_TABLE1_ROWS = {
    "local": "t1_local_clustering",
    "nocd": "t1_nocd_clustering",
    "dtime": "t1_nocd_dtime",
    "bounded": "t1_nocd_bounded_degree",
    "cd": "t1_cd_clustering",
    "cd-optimal": "t1_cd_optimal",
    "det-local": "t1_det_local",
    "det-cd": "t1_det_cd",
    "path": "t8_path_algorithm",
    "decay": "baseline_decay",
    "lb-path": "t1_lb_local_path",
    "lb-reduction": "t1_lb_reduction",
}


def _cmd_figure1(args) -> int:
    from repro.experiments import figure1

    # Every flag the subcommand exposes is honorable (unusable ones are
    # excluded from its parser), so runtime errors keep their tracebacks.
    print(figure1(
        n=args.n, seed=args.seed, exec_config=config_from_args(args)
    ))
    return 0


def _row_overrides(
    fn,
    seeds: Optional[int],
    sizes_scale: Optional[float],
    exec_options: Optional[dict] = None,
    min_size: int = 2,
):
    """kwargs rescaling a Table 1 runner's default workload.

    ``--seeds N`` replaces the seed tuple with ``range(N)``;
    ``--sizes-scale F`` multiplies the row's default sizes (the lower
    bound rows call them ``ks``) by F, clamped to >= ``min_size`` — the
    row's graph family's real minimum (a cycle needs n >= 3, so a blind
    min-2 clamp would crash cycle rows at small scales);
    ``exec_options`` (the shared execution flags — ``--resolution``,
    ``--stepping``, ``--lockstep``, ``--contention-hist``) ride into
    the row's ``options`` dict for rows that accept options (the
    registry-backed sweeps).
    """
    parameters = inspect.signature(fn).parameters
    kwargs = {}
    if seeds is not None and "seeds" in parameters:
        kwargs["seeds"] = tuple(range(seeds))
    if exec_options and "options" in parameters:
        kwargs["options"] = dict(exec_options)
    if sizes_scale is not None:
        for name in ("sizes", "ks"):
            default = getattr(parameters.get(name), "default", None)
            if default is not None:
                scaled = [
                    max(min_size, int(round(size * sizes_scale)))
                    for size in default
                ]
                # The min-clamp can collapse small sizes onto each other;
                # drop duplicates but keep the sweep order.
                kwargs[name] = tuple(dict.fromkeys(scaled))
                break
    return kwargs


def _cmd_table1(args) -> int:
    import repro.experiments as experiments

    rows = args.rows or list(_TABLE1_ROWS)
    unknown = [row for row in rows if row not in _TABLE1_ROWS]
    if unknown:
        print(f"unknown rows: {unknown}; available: {sorted(_TABLE1_ROWS)}")
        return 2
    if args.seeds is not None and args.seeds < 1:
        print("--seeds must be >= 1")
        return 2
    if args.sizes_scale is not None and args.sizes_scale <= 0:
        print("--sizes-scale must be > 0")
        return 2
    exec_options = execution_overrides(args)
    if exec_options:
        # Pre-flight: reject a flag some selected row cannot honor
        # before ANY row runs (the bespoke lower-bound runners publish
        # a cheap validator; registry rows honor the full option set).
        for row in rows:
            fn = getattr(experiments, _TABLE1_ROWS[row])
            validator = getattr(fn, "validate_exec_options", None)
            if validator is None:
                continue
            try:
                validator(exec_options)
            except ExecutionConfigError as exc:
                print(f"row {row!r}: {exc}")
                return 2
    from repro.campaign.registry import ROW_REGISTRY, row_min_size

    for row in rows:
        fn = getattr(experiments, _TABLE1_ROWS[row])
        min_size = row_min_size(row) if row in ROW_REGISTRY else 2
        try:
            _, table = fn(**_row_overrides(
                fn, args.seeds, args.sizes_scale, exec_options, min_size
            ))
        except ExecutionConfigError as exc:
            # e.g. --contention-hist on a bespoke lower-bound row: the
            # layer that cannot honor the option refuses loudly.  Only
            # *configuration* errors get the one-line treatment; genuine
            # runtime ValueErrors keep their tracebacks.
            print(f"row {row!r}: {exc}")
            return 2
        print(table)
        print()
    return 0


class _ConfigError(Exception):
    pass


def _campaign_store(args):
    import json

    from repro.campaign import CampaignSpec, CampaignStore

    try:
        spec = CampaignSpec.from_json_file(args.config)
        overrides = execution_overrides(args)
        if overrides:
            # CLI beats cell options beats defaults.  Execution options
            # are part of a cell's content-hash identity, so pass the
            # same flags to status/report when inspecting a campaign
            # that ran with them; normalization keeps explicit defaults
            # aliased to the flag-free identity.
            for plan in spec.rows:
                plan.options = normalize_execution_options(
                    {**plan.options, **overrides}
                )
        spec.validate()
    except FileNotFoundError:
        raise _ConfigError(f"config not found: {args.config}")
    except json.JSONDecodeError as exc:
        raise _ConfigError(f"config is not valid JSON: {args.config}: {exc}")
    except ValueError as exc:
        raise _ConfigError(f"bad campaign config {args.config}: {exc}")
    out = args.out or os.path.join("campaigns", spec.name)
    return spec, CampaignStore(os.path.join(out, "results.jsonl"))


def _campaign_command(fn):
    def wrapped(args) -> int:
        try:
            return fn(args)
        except _ConfigError as exc:
            print(exc)
            return 2

    return wrapped


def _events_path(store) -> str:
    """The fabric events ledger lives beside the campaign store."""
    return os.path.join(
        os.path.dirname(store.path) or ".", "events.jsonl"
    )


@_campaign_command
def _cmd_campaign_run(args) -> int:
    from repro.campaign import render_report, run_campaign, run_campaign_fabric

    spec, store = _campaign_store(args)
    fabric = runner_overrides(args)
    if fabric:
        # Any fabric flag engages the fault-tolerant runner; the plain
        # serial path below stays the differential oracle it is tested
        # against (tests/test_fabric.py).
        report = run_campaign_fabric(
            spec, store, timeout=args.timeout, progress=print,
            events_path=_events_path(store), **fabric,
        )
    else:
        report = run_campaign(
            spec, store, jobs=args.jobs, timeout=args.timeout, progress=print
        )
    print(report.summary())
    print()
    print(render_report(spec, store))
    return 0 if report.all_ok else 1


@_campaign_command
def _cmd_campaign_status(args) -> int:
    from repro.campaign import render_status
    from repro.campaign.fabric import watch_campaign

    spec, store = _campaign_store(args)
    if args.watch:
        watch_campaign(
            spec, store, _events_path(store), interval=args.interval
        )
    else:
        print(render_status(spec, store))
    return 0


@_campaign_command
def _cmd_campaign_report(args) -> int:
    from repro.campaign import render_report

    spec, store = _campaign_store(args)
    if args.degradation:
        from repro.campaign import render_degradation

        print(render_degradation(spec, store))
    else:
        print(render_report(spec, store))
    if args.events:
        from repro.campaign.fabric import (
            read_events,
            render_events_summary,
            summarize_events,
        )

        print()
        print(render_events_summary(
            summarize_events(read_events(_events_path(store)))
        ))
    return 0


def _cmd_campaign_run_all(args) -> int:
    from repro.campaign import CampaignSpec, CampaignStore, run_campaign_fabric
    from repro.campaign.fabric import resolve_run_all

    try:
        name, configs = resolve_run_all(args.target)
    except ValueError as exc:
        print(exc)
        return 2
    fabric = runner_overrides(args)
    print(f"run-all {name!r}: {len(configs)} campaign(s)")
    failures = []
    for path in configs:
        try:
            spec = CampaignSpec.from_json_file(path)
            spec.validate()
        except (OSError, ValueError) as exc:
            print(f"  {path}: bad config: {exc}")
            failures.append(path)
            continue
        out = os.path.join(args.out_root, spec.name)
        store = CampaignStore(os.path.join(out, "results.jsonl"))
        print(f"== {spec.name} ({path}) -> {out}")
        report = run_campaign_fabric(
            spec, store, timeout=args.timeout, progress=print,
            events_path=_events_path(store), **fabric,
        )
        print(report.summary())
        if not report.all_ok:
            failures.append(path)
    status = "all ok" if not failures else f"{len(failures)} failed"
    print(f"run-all {name!r}: {len(configs)} campaign(s), {status}")
    return 1 if failures else 0


def _store_path(target: str) -> str:
    """Accept a store file or its campaign directory."""
    if os.path.isdir(target):
        return os.path.join(target, "results.jsonl")
    return target


def _cmd_store_compact(args) -> int:
    from repro.campaign import CampaignStore

    store = CampaignStore(_store_path(args.store))
    if not os.path.exists(store.path):
        print(f"store not found: {store.path}")
        return 2
    stats = store.compact()
    print(
        f"compacted {store.path}: {stats['before']} -> "
        f"{stats['after']} line(s)"
    )
    return 0


def _cmd_store_merge(args) -> int:
    from repro.campaign import CampaignStore

    dest = CampaignStore(_store_path(args.dest))
    sources = [_store_path(src) for src in args.sources]
    missing = [src for src in sources if not os.path.exists(src)]
    if missing:
        print(f"source store(s) not found: {missing}")
        return 2
    merged = dest.load()
    before = len(merged)
    for src in sources:
        for key, record in CampaignStore(src).load().items():
            # Same rule as the fabric shard merge: never let an error
            # record shadow an ok one; otherwise later sources win.
            current = merged.get(key)
            keep_current = (
                current is not None
                and current.get("status") == "ok"
                and record.get("status") != "ok"
            )
            if not keep_current:
                merged[key] = record
    dest.rewrite(list(merged.values()))
    print(
        f"merged {len(sources)} store(s) into {dest.path}: "
        f"{before} -> {len(merged)} cell(s)"
    )
    return 0


def _cmd_bench(args) -> int:
    from repro.experiments.bench import (
        check_thresholds,
        format_report,
        run_engine_benchmarks,
        validate_bench_config,
        write_results,
    )

    exec_config = config_from_args(args)
    try:
        # Validate flags up front: a bad config fails in milliseconds
        # with a clean message, and runtime errors from the (long)
        # benchmark itself keep their tracebacks.
        validate_bench_config(exec_config)
    except ExecutionConfigError as exc:
        print(exc)
        return 2
    report = run_engine_benchmarks(
        quick=args.quick, exec_config=exec_config,
        lockstep_seeds=args.seeds,
    )
    write_results(report, args.out)
    print(format_report(report))
    print(f"wrote {args.out}")
    violations = check_thresholds(
        report,
        min_legacy_speedup=args.min_legacy_speedup,
        min_ref_speedup=args.min_ref_speedup,
        min_numpy_speedup=args.min_numpy_speedup,
        min_phase_speedup=args.min_phase_speedup,
        min_lockstep_speedup=args.min_lockstep_speedup,
        min_lossy_soa_speedup=args.min_lossy_soa_speedup,
    )
    for violation in violations:
        print(f"FAIL: {violation}")
    return 1 if violations else 0


def _cmd_ablations(args) -> int:
    from repro.experiments import ablate_beta, ablate_probe, ablate_ps

    # Unusable flags are excluded from this subcommand's parser, so
    # whatever arrives here is honorable by every ablation.
    exec_config = config_from_args(args)
    for fn in (ablate_probe, ablate_ps, ablate_beta):
        _, table = fn(exec_config=exec_config)
        print(table)
        print()
    return 0


def _cmd_demo(args) -> int:
    del args
    from repro.broadcast import decay_broadcast_protocol, run_broadcast
    from repro.broadcast.path import path_broadcast_protocol
    from repro.graphs import path_graph
    from repro.sim import LOCAL, NO_CD, Knowledge

    n = 128
    graph = path_graph(n)
    knowledge = Knowledge(n=n, max_degree=2, diameter=n - 1)
    decay = run_broadcast(
        graph, NO_CD, decay_broadcast_protocol(failure=0.02),
        knowledge=knowledge, seed=1,
    )
    path = run_broadcast(
        graph, LOCAL, path_broadcast_protocol(oriented=True),
        knowledge=knowledge, seed=1,
    )
    print(f"{n}-hop chain broadcast:")
    print(
        f"  decay baseline: delivered={decay.delivered} "
        f"slots={decay.duration} worst-energy={decay.max_energy}"
    )
    print(
        f"  Algorithm 1:    delivered={path.delivered} "
        f"slots={path.duration} worst-energy={path.max_energy}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The Energy Complexity of Broadcast' (PODC 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Single-run subcommands get only the flags they can honor:
    # contention_hist needs the cells layer's extras channel, and the
    # beta ablation runs on a bare (serial) Simulator.
    p_fig = sub.add_parser("figure1", help="render the Figure 1 timeline")
    p_fig.add_argument("--n", type=int, default=32)
    p_fig.add_argument("--seed", type=int, default=0)
    add_execution_args(p_fig, exclude=("contention_hist",))
    p_fig.set_defaults(func=_cmd_figure1)

    p_tab = sub.add_parser("table1", help="run Table 1 row experiments")
    p_tab.add_argument(
        "rows", nargs="*", help=f"rows to run ({', '.join(sorted(_TABLE1_ROWS))})"
    )
    p_tab.add_argument(
        "--seeds", type=int, default=None,
        help="run each cell with seeds 0..N-1 instead of the row default",
    )
    p_tab.add_argument(
        "--sizes-scale", type=float, default=None,
        help="multiply each row's default sizes by this factor (min 2)",
    )
    add_execution_args(p_tab)
    p_tab.set_defaults(func=_cmd_table1)

    p_abl = sub.add_parser("ablations", help="run the ablations")
    add_execution_args(p_abl, exclude=("contention_hist", "lockstep"))
    p_abl.set_defaults(func=_cmd_ablations)

    p_bench = sub.add_parser(
        "bench", help="engine microbenchmarks -> BENCH_engine.json"
    )
    p_bench.add_argument(
        "--out", default="BENCH_engine.json",
        help="output JSON path (default: BENCH_engine.json)",
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="small workloads for CI smoke runs",
    )
    p_bench.add_argument(
        "--min-legacy-speedup", type=float, default=None,
        help="fail unless every workload beats the frozen pre-refactor "
             "engine by this factor",
    )
    p_bench.add_argument(
        "--min-ref-speedup", type=float, default=None,
        help="fail unless every workload beats the reference simulator "
             "by this factor",
    )
    p_bench.add_argument(
        "--min-numpy-speedup", type=float, default=None,
        help="fail unless the numpy resolution backend beats the "
             "bitmask backend by this factor on the backend-gated "
             "workloads (requires numpy)",
    )
    p_bench.add_argument(
        "--min-phase-speedup", type=float, default=None,
        help="fail unless phase-compiled stepping beats the per-slot "
             "path end-to-end by this factor on the phase-gated "
             "workloads",
    )
    p_bench.add_argument(
        "--min-lockstep-speedup", type=float, default=None,
        help="fail unless the SoA lock-step engine beats the serial "
             "per-slot path by this factor on the many-seed "
             "lockstep_trials workload (requires the SoA path to be "
             "active, i.e. numpy)",
    )
    p_bench.add_argument(
        "--min-lossy-soa-speedup", type=float, default=None,
        help="fail unless the vectorized lossy-channel SoA path beats "
             "the serial oracle by this factor on the per-seed "
             "LossyModel workload (lossy_sr_frame_n256; requires the "
             "SoA dispatch verdict to be 'ok', i.e. numpy)",
    )
    p_bench.add_argument(
        "--seeds", type=int, default=64,
        help="trial count for the many-seed lockstep_trials section "
             "(default: 64)",
    )
    # The shared flags re-center the bench matrix: the primary "engine"
    # runner uses this base config and the comparison runners derive
    # from it.  Batch-only fields are excluded (run_engine_benchmarks
    # also rejects them when set programmatically).
    add_execution_args(p_bench, exclude=("contention_hist", "lockstep"))
    p_bench.set_defaults(func=_cmd_bench)

    p_demo = sub.add_parser("demo", help="decay vs Algorithm 1 on a chain")
    p_demo.set_defaults(func=_cmd_demo)

    p_camp = sub.add_parser(
        "campaign", help="config-driven, sharded, resumable sweeps"
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    def add_campaign_common(sub_parser):
        sub_parser.add_argument("config", help="campaign JSON config path")
        sub_parser.add_argument(
            "--out", default=None,
            help="results directory (default: campaigns/<name>)",
        )
        # Execution flags are injected into every row's options (CLI >
        # cell options > defaults).  They are part of each cell's
        # content-hash identity, so use the same flags for
        # status/report as for run.
        add_execution_args(sub_parser)

    p_run = camp_sub.add_parser("run", help="execute pending campaign cells")
    add_campaign_common(p_run)
    p_run.add_argument(
        "--jobs", type=int, default=1,
        help="legacy pool worker processes (1 = in-process serial); "
             "prefer --workers for the fault-tolerant fabric",
    )
    p_run.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock budget in seconds",
    )
    # --workers/--retries/--heartbeat: any of them engages the fabric
    # runner (persistent workers, shards, retry, quarantine, events).
    add_runner_args(p_run)
    p_run.set_defaults(func=_cmd_campaign_run)

    p_status = camp_sub.add_parser("status", help="per-row cell accounting")
    add_campaign_common(p_status)
    p_status.add_argument(
        "--watch", action="store_true",
        help="live fabric view (throughput, ETA, per-worker state); "
             "refreshes until the run completes",
    )
    p_status.add_argument(
        "--interval", type=float, default=2.0,
        help="--watch refresh interval in seconds (default: 2)",
    )
    p_status.set_defaults(func=_cmd_campaign_status)

    p_report = camp_sub.add_parser("report", help="render tables from the store")
    add_campaign_common(p_report)
    p_report.add_argument(
        "--events", action="store_true",
        help="append the fabric events summary (workers, retries, "
             "quarantines) from the run's events ledger",
    )
    p_report.add_argument(
        "--degradation", action="store_true",
        help="render the fault-degradation table instead: energy/time/"
             "success-rate of faulted rows (churn/jam/burst_loss "
             "options) against their clean twins",
    )
    p_report.set_defaults(func=_cmd_campaign_report)

    p_all = camp_sub.add_parser(
        "run-all",
        help="run every campaign named by a manifest or config directory",
    )
    p_all.add_argument(
        "target",
        help="manifest file, directory of configs (uses run_all.json "
             "when present), or a single campaign config",
    )
    p_all.add_argument(
        "--out-root", default="campaigns",
        help="parent results directory; each campaign gets "
             "<out-root>/<name>/ (default: campaigns)",
    )
    p_all.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock budget in seconds",
    )
    add_runner_args(p_all)
    p_all.set_defaults(func=_cmd_campaign_run_all)

    p_store = sub.add_parser(
        "store", help="maintain campaign result stores"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    p_compact = store_sub.add_parser(
        "compact", help="rewrite a store to one line per cell"
    )
    p_compact.add_argument(
        "store", help="store file or campaign directory"
    )
    p_compact.set_defaults(func=_cmd_store_compact)

    p_merge = store_sub.add_parser(
        "merge", help="fold source stores into a destination store"
    )
    p_merge.add_argument("dest", help="destination store file or directory")
    p_merge.add_argument(
        "sources", nargs="+", help="source store files or directories"
    )
    p_merge.set_defaults(func=_cmd_store_merge)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
