"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figure1 [--n N] [--seed S]`` — render the Figure 1 timeline.
* ``table1 [ROW ...]`` — run Table 1 row experiments (default: all).
* ``ablations`` — run the three ablations.
* ``demo`` — the quickstart comparison on a 128-hop chain.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main"]

_TABLE1_ROWS = {
    "local": "t1_local_clustering",
    "nocd": "t1_nocd_clustering",
    "dtime": "t1_nocd_dtime",
    "bounded": "t1_nocd_bounded_degree",
    "cd": "t1_cd_clustering",
    "cd-optimal": "t1_cd_optimal",
    "det-local": "t1_det_local",
    "det-cd": "t1_det_cd",
    "path": "t8_path_algorithm",
    "decay": "baseline_decay",
    "lb-path": "t1_lb_local_path",
    "lb-reduction": "t1_lb_reduction",
}


def _cmd_figure1(args) -> int:
    from repro.experiments import figure1

    print(figure1(n=args.n, seed=args.seed))
    return 0


def _cmd_table1(args) -> int:
    import repro.experiments as experiments

    rows = args.rows or list(_TABLE1_ROWS)
    unknown = [row for row in rows if row not in _TABLE1_ROWS]
    if unknown:
        print(f"unknown rows: {unknown}; available: {sorted(_TABLE1_ROWS)}")
        return 2
    for row in rows:
        fn = getattr(experiments, _TABLE1_ROWS[row])
        _, table = fn()
        print(table)
        print()
    return 0


def _cmd_ablations(args) -> int:
    del args
    from repro.experiments import ablate_beta, ablate_probe, ablate_ps

    for fn in (ablate_probe, ablate_ps, ablate_beta):
        _, table = fn()
        print(table)
        print()
    return 0


def _cmd_demo(args) -> int:
    del args
    from repro.broadcast import decay_broadcast_protocol, run_broadcast
    from repro.broadcast.path import path_broadcast_protocol
    from repro.graphs import path_graph
    from repro.sim import LOCAL, NO_CD, Knowledge

    n = 128
    graph = path_graph(n)
    knowledge = Knowledge(n=n, max_degree=2, diameter=n - 1)
    decay = run_broadcast(
        graph, NO_CD, decay_broadcast_protocol(failure=0.02),
        knowledge=knowledge, seed=1,
    )
    path = run_broadcast(
        graph, LOCAL, path_broadcast_protocol(oriented=True),
        knowledge=knowledge, seed=1,
    )
    print(f"{n}-hop chain broadcast:")
    print(
        f"  decay baseline: delivered={decay.delivered} "
        f"slots={decay.duration} worst-energy={decay.max_energy}"
    )
    print(
        f"  Algorithm 1:    delivered={path.delivered} "
        f"slots={path.duration} worst-energy={path.max_energy}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The Energy Complexity of Broadcast' (PODC 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figure1", help="render the Figure 1 timeline")
    p_fig.add_argument("--n", type=int, default=32)
    p_fig.add_argument("--seed", type=int, default=0)
    p_fig.set_defaults(func=_cmd_figure1)

    p_tab = sub.add_parser("table1", help="run Table 1 row experiments")
    p_tab.add_argument(
        "rows", nargs="*", help=f"rows to run ({', '.join(sorted(_TABLE1_ROWS))})"
    )
    p_tab.set_defaults(func=_cmd_table1)

    p_abl = sub.add_parser("ablations", help="run the ablations")
    p_abl.set_defaults(func=_cmd_ablations)

    p_demo = sub.add_parser("demo", help="decay vs Algorithm 1 on a chain")
    p_demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
