import os
import re

from setuptools import find_packages, setup


def _version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    init = os.path.join(here, "src", "repro", "__init__.py")
    with open(init, encoding="utf-8") as handle:
        match = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.M)
    if not match:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


def _long_description() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    paper = os.path.join(here, "PAPER.md")
    if os.path.exists(paper):
        with open(paper, encoding="utf-8") as handle:
            return handle.read()
    return ""


setup(
    name="repro-energy-broadcast",
    version=_version(),
    description=(
        "Reproduction of 'The Energy Complexity of Broadcast' (PODC 2018): "
        "a slot-synchronous radio-network simulator with per-device energy "
        "accounting, the paper's algorithms, and campaign-driven sweeps"
    ),
    long_description=_long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[],
    extras_require={
        "test": ["pytest", "hypothesis"],
        "bench": ["pytest-benchmark"],
        # Optional acceleration: the vectorized resolution="numpy"
        # backend.  Everything degrades gracefully without it.
        "fast": ["numpy"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
    ],
)
