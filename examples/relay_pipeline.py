#!/usr/bin/env python3
"""Relay-pipeline scenario: Algorithm 1 on a long chain of repeaters.

A linear chain of relay stations (a road tunnel, a pipeline, a border
fence) must forward an alert from one end to the other.  The Section 8
algorithm is provably optimal here: <= 2n slots end-to-end and O(log n)
expected transceiver wakeups per relay.  This example runs it, prints the
Figure 1 traffic timeline for a small chain, and the energy/time scaling
for longer ones.

Run:  python examples/relay_pipeline.py
"""

import math
import statistics

from repro.broadcast import run_broadcast
from repro.broadcast.path import path_broadcast_protocol
from repro.experiments import render_path_timeline
from repro.graphs import path_graph
from repro.sim import LOCAL, ExecutionConfig, Knowledge


def main() -> None:
    # Small chain with a rendered timeline.  Execution knobs (tracing,
    # resolution backend, stepping mode, ...) travel in one validated
    # ExecutionConfig instead of per-call kwargs.
    n = 24
    graph = path_graph(n)
    knowledge = Knowledge(n=n, max_degree=2, diameter=n - 1)
    outcome = run_broadcast(
        graph, LOCAL, path_broadcast_protocol(oriented=True),
        knowledge=knowledge, seed=5,
        exec_config=ExecutionConfig(record_trace=True),
    )
    print(
        f"chain of {n} relays: delivered={outcome.delivered} in "
        f"{outcome.duration} slots (bound 2n = {2*n}), "
        f"max wakeups {outcome.max_energy}\n"
    )
    print(render_path_timeline(outcome, n))

    # Scaling table.
    print("\nscaling (medians over 5 seeds):")
    print(f"{'n':>6} {'slots':>7} {'2n':>7} {'meanE':>7} {'ln(2n)':>7}")
    for size in (64, 256, 1024, 4096):
        g = path_graph(size)
        k = Knowledge(n=size, max_degree=2, diameter=size - 1)
        durations, means = [], []
        for seed in range(5):
            out = run_broadcast(
                g, LOCAL, path_broadcast_protocol(oriented=True),
                knowledge=k, seed=seed,
            )
            durations.append(out.duration)
            means.append(out.mean_energy)
        print(
            f"{size:>6} {statistics.median(durations):>7.0f} {2*size:>7} "
            f"{statistics.median(means):>7.1f} {math.log(2*size):>7.1f}"
        )
    print(
        "\nslots stay below 2n and mean wakeups track ln(2n) — "
        "Theorem 21's optimal tradeoff."
    )


if __name__ == "__main__":
    main()
