#!/usr/bin/env python3
"""Robustness under channel erasures.

Real radios fade.  The paper's algorithms budget a per-frame failure
probability f; this example stresses that budget by wrapping the channel
in an erasure model (each transmission independently lost with rate p)
and measuring delivery and energy of the decay baseline and the
Theorem 11 clustering broadcast as the loss rate grows.

Run:  python examples/lossy_channels.py
"""

from repro.broadcast import (
    cluster_broadcast_protocol,
    decay_broadcast_protocol,
    run_broadcast,
    theorem11_params,
)
from repro.graphs import diameter, grid_graph
from repro.sim import NO_CD, Knowledge
from repro.sim.models import LossyModel


def main() -> None:
    graph = grid_graph(3, 4)
    knowledge = Knowledge(
        n=graph.n, max_degree=graph.max_degree, diameter=diameter(graph)
    )
    print(
        f"network: 3x4 grid, n={graph.n}, Delta={graph.max_degree}, "
        f"D={knowledge.diameter}\n"
    )
    print(f"{'loss rate':>9}  {'algorithm':28s} {'informed':>8} {'worstE':>7}")
    print("-" * 60)
    for rate in (0.0, 0.1, 0.25, 0.4):
        for name, protocol in (
            ("decay baseline", decay_broadcast_protocol(failure=0.005)),
            (
                "Theorem 11 clustering",
                cluster_broadcast_protocol(
                    theorem11_params(graph.n, "No-CD", failure=0.005)
                ),
            ),
        ):
            model = LossyModel(NO_CD, rate, seed=17)
            outcome = run_broadcast(
                graph, model, protocol, knowledge=knowledge, seed=3
            )
            print(
                f"{rate:>9.2f}  {name:28s} {outcome.informed:>5}/{graph.n:<2} "
                f"{outcome.max_energy:>7}"
            )
    print(
        "\nBoth algorithms ride out mild erasure inside their failure "
        "budget f;\nheavy loss first shows up as partial delivery, not "
        "crashes — the per-frame\nrepetitions are doing their job."
    )


if __name__ == "__main__":
    main()
