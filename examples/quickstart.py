#!/usr/bin/env python3
"""Quickstart: where energy-aware broadcast pays off.

The paper's thesis: classic time-centric broadcast (decay) forces every
uninformed device to listen continuously, so its per-device energy grows
with the network diameter D; the paper's algorithms sleep almost always
and pay only polylog(n).  On a 128-hop chain the gap is already an order
of magnitude — this script measures it.

Run:  python examples/quickstart.py
"""

from repro.broadcast import decay_broadcast_protocol, run_broadcast
from repro.broadcast.local_sim import local_sim_broadcast_protocol
from repro.broadcast.path import path_broadcast_protocol
from repro.graphs import path_graph
from repro.sim import LOCAL, NO_CD, Knowledge


def main() -> None:
    n = 128
    graph = path_graph(n)
    knowledge = Knowledge(n=n, max_degree=2, diameter=n - 1)
    print(f"network: {n}-vertex path (Delta=2, D={n - 1})\n")

    decay = run_broadcast(
        graph, NO_CD, decay_broadcast_protocol(failure=0.02),
        knowledge=knowledge, seed=1,
    )
    cor13 = run_broadcast(
        graph, NO_CD, local_sim_broadcast_protocol(failure=0.02),
        knowledge=knowledge, seed=1,
    )
    path = run_broadcast(
        graph, LOCAL, path_broadcast_protocol(oriented=True),
        knowledge=knowledge, seed=1,
    )

    rows = [
        ("decay baseline [4] (No-CD)", decay),
        ("Corollary 13: LOCAL-simulation (No-CD)", cor13),
        ("Algorithm 1: path-optimal (LOCAL)", path),
    ]
    print(f"{'algorithm':40s} {'ok':>3} {'slots':>8} {'worstE':>7} {'meanE':>8}")
    print("-" * 72)
    for name, outcome in rows:
        print(
            f"{name:40s} {str(outcome.delivered):>3} {outcome.duration:>8} "
            f"{outcome.max_energy:>7} {outcome.mean_energy:>8.1f}"
        )

    print(
        f"\ndecay spends {decay.max_energy / max(1, cor13.max_energy):.1f}x "
        "the energy of the Theorem 3 simulation, and "
        f"{decay.max_energy / max(1, path.max_energy):.0f}x the energy of "
        "the specialized path algorithm —\nenergy complexity is about "
        "sleeping through almost every slot."
    )


if __name__ == "__main__":
    main()
