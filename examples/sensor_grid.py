#!/usr/bin/env python3
"""Sensor-grid scenario: battery-lifetime comparison across algorithms.

A corridor deployment — a long, thin grid of battery-powered sensors
(tunnel / pipeline monitoring, the kind of field the paper's
introduction motivates).  A gateway at a corner broadcasts a
configuration update.  Diameter is large relative to n, which is exactly
the regime where decay's always-listening behaviour drains batteries and
the paper's clustering algorithms win.  We report the metric that
decides field lifetime: worst-vertex energy (the first battery to die)
plus the full drain histogram.

Run:  python examples/sensor_grid.py
"""

from collections import Counter

from repro.broadcast import (
    cluster_broadcast_protocol,
    decay_broadcast_protocol,
    run_broadcast,
    theorem11_params,
)
from repro.broadcast.local_sim import local_sim_broadcast_protocol
from repro.graphs import diameter, grid_graph
from repro.sim import CD, NO_CD, Knowledge


def histogram(outcome, buckets=(10, 30, 100, 300, 1000, 3000)) -> str:
    counts = Counter()
    for report in outcome.sim.energy:
        for b in buckets:
            if report.total <= b:
                counts[b] += 1
                break
        else:
            counts["more"] += 1
    parts = [f"<={b}: {counts[b]}" for b in buckets if counts[b]]
    if counts["more"]:
        parts.append(f">{buckets[-1]}: {counts['more']}")
    return ", ".join(parts)


def main() -> None:
    rows, cols = 2, 40
    graph = grid_graph(rows, cols)
    knowledge = Knowledge(
        n=graph.n, max_degree=graph.max_degree, diameter=diameter(graph)
    )
    print(
        f"sensor grid {rows}x{cols}: n={graph.n}, Delta={graph.max_degree}, "
        f"D={knowledge.diameter}\n"
    )

    strategies = [
        (
            "decay baseline (No-CD)",
            NO_CD,
            decay_broadcast_protocol(failure=0.02),
        ),
        (
            "Theorem 11 clustering (No-CD)",
            NO_CD,
            cluster_broadcast_protocol(
                theorem11_params(graph.n, "No-CD", failure=0.02)
            ),
        ),
        (
            "Theorem 11 clustering (CD + Remark 9 probes)",
            CD,
            cluster_broadcast_protocol(
                theorem11_params(graph.n, "CD", failure=0.02)
            ),
        ),
        (
            "Corollary 13 LOCAL-simulation (No-CD, Delta=4)",
            NO_CD,
            local_sim_broadcast_protocol(failure=0.02),
        ),
    ]

    print(f"{'strategy':50s} {'ok':>3} {'slots':>8} {'worstE':>7} {'meanE':>7}")
    print("-" * 80)
    details = []
    for name, model, protocol in strategies:
        outcome = run_broadcast(
            graph, model, protocol, knowledge=knowledge, seed=11
        )
        print(
            f"{name:50s} {str(outcome.delivered):>3} {outcome.duration:>8} "
            f"{outcome.max_energy:>7} {outcome.mean_energy:>7.1f}"
        )
        details.append((name, outcome))

    print("\nenergy histograms (sensors per battery-drain bucket):")
    for name, outcome in details:
        print(f"  {name}:\n    {histogram(outcome)}")


if __name__ == "__main__":
    main()
