#!/usr/bin/env python3
"""Time/energy tradeoff explorer across the paper's CD algorithms.

The paper's central tension: Energy and Time are in conflict (Section 1).
This example fixes one network and walks the frontier:

* decay baseline       — fastest, most energy-hungry;
* Theorem 11 (p=1/2,s=1)  — the balanced clustering point;
* Theorem 12 (eps sweep)  — trade refinement count against cast weight;
* Theorem 20           — the energy-optimal extreme, super-linear time.

Run:  python examples/tradeoff_explorer.py
"""

import random

from repro.broadcast import (
    cluster_broadcast_protocol,
    decay_broadcast_protocol,
    run_broadcast,
    theorem11_params,
    theorem12_params,
)
from repro.broadcast.cd_optimal import CDOptimalParams, cd_optimal_broadcast_protocol
from repro.graphs import diameter, random_gnp
from repro.sim import CD, NO_CD, Knowledge


def main() -> None:
    n = 12
    graph = random_gnp(n, 0.3, random.Random(n))
    knowledge = Knowledge(
        n=n, max_degree=graph.max_degree, diameter=diameter(graph)
    )
    print(
        f"network: n={n}, Delta={graph.max_degree}, D={knowledge.diameter}\n"
    )

    runs = [
        ("decay baseline (No-CD)", NO_CD, decay_broadcast_protocol(failure=0.02)),
        (
            "Theorem 11 (CD)",
            CD,
            cluster_broadcast_protocol(theorem11_params(n, "CD", failure=0.02)),
        ),
    ]
    for eps in (0.3, 0.6, 0.9):
        runs.append((
            f"Theorem 12 (CD, eps={eps})",
            CD,
            cluster_broadcast_protocol(
                theorem12_params(n, epsilon=eps, failure=0.02)
            ),
        ))
    runs.append((
        "Theorem 20 (CD, energy-optimal)",
        CD,
        cd_optimal_broadcast_protocol(
            CDOptimalParams.for_graph(n, graph.max_degree, iterations=3, rounds_s=2)
        ),
    ))

    print(f"{'algorithm':34s} {'ok':>3} {'time (slots)':>12} {'worstE':>7}")
    print("-" * 60)
    frontier = []
    for name, model, protocol in runs:
        outcome = run_broadcast(graph, model, protocol, knowledge=knowledge, seed=2)
        print(
            f"{name:34s} {str(outcome.delivered):>3} "
            f"{outcome.duration:>12} {outcome.max_energy:>7}"
        )
        frontier.append((name, outcome.duration, outcome.max_energy))

    fastest = min(frontier, key=lambda r: r[1])
    leanest = min(frontier, key=lambda r: r[2])
    print(f"\nfastest:        {fastest[0]} ({fastest[1]} slots)")
    print(f"most frugal:    {leanest[0]} ({leanest[2]} energy)")
    print(
        "\nNo point dominates everywhere — exactly the open question the "
        "paper closes with (can both be optimal simultaneously?)."
    )


if __name__ == "__main__":
    main()
