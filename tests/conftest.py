"""Shared pytest fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.graphs import diameter
from repro.sim import Knowledge


def knowledge_for(graph, with_diameter: bool = True, id_space: int | None = None):
    """Build the shared-knowledge object the paper assumes devices have."""
    return Knowledge(
        n=graph.n,
        max_degree=max(graph.max_degree, 1),
        diameter=diameter(graph) if with_diameter else None,
        id_space=id_space,
    )


@pytest.fixture
def seeds():
    """Default seed set for statistical assertions."""
    return list(range(5))
