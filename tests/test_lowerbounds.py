"""Tests for the lower-bound harnesses (Section 2)."""

from __future__ import annotations

import math

import pytest

from repro.broadcast import (
    cluster_broadcast_protocol,
    decay_broadcast_protocol,
    run_broadcast,
    theorem11_params,
)
from repro.broadcast.path import path_broadcast_protocol
from repro.graphs import k2k_gadget, path_graph
from repro.lowerbounds import derive_leader_election, energy_before_reception
from repro.sim import CD, LOCAL, NO_CD, ExecutionConfig, Knowledge

from tests.conftest import knowledge_for


def _k2k_run(k, model, protocol, seed):
    g, s, t = k2k_gadget(k)
    knowledge = Knowledge(n=g.n, max_degree=g.max_degree, diameter=2)
    out = run_broadcast(
        g, model, protocol, source=s, knowledge=knowledge, seed=seed,
        exec_config=ExecutionConfig(record_trace=True),
    )
    return out, s, t


class TestTheorem2Reduction:
    def test_reduction_requires_trace(self):
        g, s, t = k2k_gadget(3)
        out = run_broadcast(
            g, NO_CD, decay_broadcast_protocol(failure=0.05), source=s,
            knowledge=Knowledge(n=g.n, max_degree=g.max_degree, diameter=2),
            seed=0,
        )
        with pytest.raises(ValueError):
            derive_leader_election(out, s, t)

    def test_derived_le_elects_a_middle_vertex(self):
        out, s, t = _k2k_run(6, NO_CD, decay_broadcast_protocol(failure=0.01), 1)
        report = derive_leader_election(out, s, t)
        assert report.elected
        assert report.winner not in (s, t)
        assert 2 <= report.winner <= 7

    def test_accounting_inequality_holds(self):
        # T_LE <= 2E across algorithms, models, gadget widths, seeds.
        for k in (2, 5, 9):
            for seed in (0, 3):
                out, s, t = _k2k_run(
                    k, NO_CD, decay_broadcast_protocol(failure=0.01), seed
                )
                report = derive_leader_election(out, s, t)
                assert report.bound_holds
                assert report.le_time <= report.st_energy

    def test_reduction_on_clustering_algorithm_cd(self):
        g, s, t = k2k_gadget(6)
        params = theorem11_params(g.n, "CD", failure=0.01)
        out, s, t = _k2k_run(6, CD, cluster_broadcast_protocol(params), 2)
        report = derive_leader_election(out, s, t)
        assert report.elected
        assert report.bound_holds

    def test_le_time_grows_with_k_for_decay(self):
        # More contention -> the derived LE needs more meaningful slots
        # (this is the engine of the Omega(log Delta log n) bound).
        import statistics

        times = {}
        for k in (2, 16):
            values = []
            for seed in range(5):
                out, s, t = _k2k_run(
                    k, NO_CD, decay_broadcast_protocol(failure=0.01), seed
                )
                values.append(derive_leader_election(out, s, t).le_time)
            times[k] = statistics.median(values)
        assert times[16] >= times[2]


class TestTheorem1PathQuantity:
    def _worst(self, n, seed):
        g = path_graph(n)
        out = run_broadcast(
            g, LOCAL, path_broadcast_protocol(), seed=seed,
            knowledge=Knowledge(n=n, max_degree=2, diameter=n - 1),
            exec_config=ExecutionConfig(record_trace=True),
        )
        assert out.delivered
        return energy_before_reception(out).worst

    def test_exceeds_one_fifth_log(self):
        # Theorem 1: some vertex spends >= (1/5) log2 n before reception
        # (with probability 1/2; our optimal algorithm satisfies it on
        # every observed seed at these sizes).
        for n in (64, 256):
            hits = sum(
                self._worst(n, seed) >= math.log2(n) / 5 for seed in range(5)
            )
            assert hits >= 3

    def test_grows_with_n(self):
        import statistics

        small = statistics.median([self._worst(32, s) for s in range(5)])
        large = statistics.median([self._worst(1024, s) for s in range(5)])
        assert large > small

    def test_per_vertex_shape(self):
        g = path_graph(32)
        out = run_broadcast(
            g, LOCAL, path_broadcast_protocol(), seed=1,
            knowledge=Knowledge(n=32, max_degree=2, diameter=31),
            exec_config=ExecutionConfig(record_trace=True),
        )
        report = energy_before_reception(out)
        assert len(report.per_vertex) == 32
        assert report.per_vertex[report.worst_vertex] == report.worst
        # The source spends nothing before "receiving" (it starts with m).
        assert report.per_vertex[0] == 0
