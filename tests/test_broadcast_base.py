"""Tests for the broadcast runner/outcome layer and cross-model integration."""

from __future__ import annotations

import pytest

from repro.broadcast import (
    BroadcastOutcome,
    local_flood_protocol,
    run_broadcast,
    source_inputs,
)
from repro.graphs import grid_graph, path_graph
from repro.sim import LOCAL, ExecutionConfig, Knowledge

from tests.conftest import knowledge_for


class TestRunBroadcast:
    def test_source_inputs_shape(self):
        assert source_inputs(3, "m") == {3: {"source": True, "payload": "m"}}

    def test_outcome_metrics(self):
        g = path_graph(5)
        out = run_broadcast(
            g, LOCAL, local_flood_protocol(), knowledge=knowledge_for(g), seed=0
        )
        assert isinstance(out, BroadcastOutcome)
        assert out.delivered
        assert out.informed == 5
        assert out.max_energy >= out.mean_energy
        assert out.duration >= 1

    def test_partial_delivery_counted(self):
        # A protocol that never relays: only the source's neighbors learn.
        from repro.sim.actions import Idle, Listen, Send

        def lazy(ctx):
            if ctx.inputs.get("source"):
                yield Send(ctx.inputs["payload"])
                return ctx.inputs["payload"]
            fb = yield Listen()
            return fb[0] if fb else None

        g = path_graph(4)
        out = run_broadcast(
            g, LOCAL, lazy, knowledge=knowledge_for(g), seed=0
        )
        assert not out.delivered
        assert out.informed == 2  # source + its single neighbor

    def test_custom_payload_objects(self):
        payload = ("config", {"rate": 7}, [1, 2, 3])
        g = path_graph(3)
        out = run_broadcast(
            g, LOCAL, local_flood_protocol(), payload=payload,
            knowledge=knowledge_for(g), seed=0,
        )
        assert out.delivered
        assert out.payload == payload

    def test_uids_forwarded(self):
        from repro.sim.actions import Idle

        def proto(ctx):
            yield Idle(1)
            return ctx.inputs.get("payload") if ctx.inputs.get("source") else ctx.uid

        g = path_graph(3)
        out = run_broadcast(
            g, LOCAL, proto, knowledge=knowledge_for(g), uids=[9, 8, 7], seed=0
        )
        assert out.sim.outputs[1:] == [8, 7]

    def test_trace_flag(self):
        g = path_graph(3)
        with_trace = run_broadcast(
            g, LOCAL, local_flood_protocol(), knowledge=knowledge_for(g),
            seed=0, exec_config=ExecutionConfig(record_trace=True),
        )
        without = run_broadcast(
            g, LOCAL, local_flood_protocol(), knowledge=knowledge_for(g), seed=0
        )
        assert with_trace.sim.trace is not None
        assert without.sim.trace is None


class TestCrossModelOrdering:
    def test_energy_ordering_local_cd_nocd(self):
        """Table 1's vertical story at one size: LOCAL <= CD <= No-CD
        worst-vertex energy for the same clustering algorithm."""
        from repro.broadcast import cluster_broadcast_protocol, theorem11_params
        from repro.sim import CD, NO_CD

        g = grid_graph(3, 4)
        k = knowledge_for(g)
        energies = {}
        for model, name in ((LOCAL, "LOCAL"), (CD, "CD"), (NO_CD, "No-CD")):
            out = run_broadcast(
                g, model,
                cluster_broadcast_protocol(
                    theorem11_params(g.n, name, failure=0.02)
                ),
                knowledge=k, seed=5,
            )
            assert out.delivered
            energies[name] = out.max_energy
        assert energies["LOCAL"] <= energies["CD"] <= energies["No-CD"]
