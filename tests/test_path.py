"""Tests for the path algorithm (Section 8, Algorithm 1, Theorem 21)."""

from __future__ import annotations

import math
import random
import statistics

import pytest

from repro.broadcast import run_broadcast
from repro.broadcast.path import path_broadcast_protocol, sample_blocking_time
from repro.graphs import path_graph
from repro.sim import LOCAL, ExecutionConfig, Knowledge


def _knowledge(n):
    return Knowledge(n=n, max_degree=2, diameter=n - 1)


class TestBlockingTime:
    def test_support_is_powers_of_two_capped_at_n(self):
        rng = random.Random(0)
        for _ in range(500):
            b = sample_blocking_time(rng, 64)
            assert b in {2, 4, 8, 16, 32, 64}

    def test_distribution_shape(self):
        rng = random.Random(1)
        samples = [sample_blocking_time(rng, 1024) for _ in range(20000)]
        frac2 = sum(1 for s in samples if s == 2) / len(samples)
        frac4 = sum(1 for s in samples if s == 4) / len(samples)
        assert 0.45 < frac2 < 0.55  # Pr[B=2] = 1/2
        assert 0.20 < frac4 < 0.30  # Pr[B=4] = 1/4


class TestOriented:
    @pytest.mark.parametrize("n", [2, 3, 8, 17, 64])
    def test_delivers_on_all_sizes(self, n):
        g = path_graph(n)
        for seed in range(4):
            out = run_broadcast(
                g, LOCAL, path_broadcast_protocol(oriented=True),
                knowledge=_knowledge(n), seed=seed,
            )
            assert out.delivered, f"n={n} seed={seed}"

    @pytest.mark.parametrize("n", [8, 32, 128])
    def test_worst_case_time_at_most_2n(self, n):
        g = path_graph(n)
        n_pow2 = 2 ** math.ceil(math.log2(n))
        for seed in range(6):
            out = run_broadcast(
                g, LOCAL, path_broadcast_protocol(oriented=True),
                knowledge=_knowledge(n), seed=seed,
            )
            assert out.duration <= 2 * n_pow2

    def test_expected_energy_logarithmic(self):
        # Theorem 21: expected per-vertex energy O(log n).  Check both an
        # absolute bound ~ (4e/(e-2)) ln(2n) and sublinear growth.
        means = {}
        for n in (16, 256):
            g = path_graph(n)
            runs = [
                run_broadcast(
                    g, LOCAL, path_broadcast_protocol(oriented=True),
                    knowledge=_knowledge(n), seed=s,
                ).mean_energy
                for s in range(5)
            ]
            means[n] = statistics.mean(runs)
        bound_const = 4 * math.e / (math.e - 2)  # Lemma 23's constant
        assert means[256] <= bound_const * math.log(2 * 256) + 4
        # 16x more vertices should cost far less than 16x energy.
        assert means[256] / means[16] < 5

    def test_source_must_be_zero_in_oriented_mode(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            run_broadcast(
                g, LOCAL, path_broadcast_protocol(oriented=True),
                knowledge=_knowledge(4), source=2, seed=0,
            )

    def test_source_quits_after_one_slot(self):
        g = path_graph(8)
        out = run_broadcast(
            g, LOCAL, path_broadcast_protocol(oriented=True),
            knowledge=_knowledge(8), seed=0,
        )
        assert out.sim.energy[0].total == 1


class TestUnoriented:
    @pytest.mark.parametrize("source", [0, 3, 7])
    def test_delivers_from_any_source(self, source):
        n = 8
        g = path_graph(n)
        for seed in range(3):
            out = run_broadcast(
                g, LOCAL, path_broadcast_protocol(oriented=False),
                knowledge=_knowledge(n), source=source, seed=seed,
            )
            assert out.delivered, f"source={source} seed={seed}"

    def test_energy_roughly_doubles_oriented(self):
        n = 64
        g = path_graph(n)
        oriented = statistics.mean(
            run_broadcast(
                g, LOCAL, path_broadcast_protocol(oriented=True),
                knowledge=_knowledge(n), seed=s,
            ).mean_energy
            for s in range(4)
        )
        unoriented = statistics.mean(
            run_broadcast(
                g, LOCAL, path_broadcast_protocol(oriented=False),
                knowledge=_knowledge(n), seed=s,
            ).mean_energy
            for s in range(4)
        )
        assert unoriented <= 3.0 * oriented

    def test_two_vertex_path(self):
        g = path_graph(2)
        out = run_broadcast(
            g, LOCAL, path_broadcast_protocol(oriented=False),
            knowledge=_knowledge(2), source=1, seed=0,
        )
        assert out.delivered


class TestTraceStructure:
    def test_payload_advances_one_hop_per_slot_after_blocking(self):
        # Every reception of the payload happens at strictly increasing
        # times along the path (the message never teleports or stalls
        # beyond blocking).
        n = 16
        g = path_graph(n)
        out = run_broadcast(
            g, LOCAL, path_broadcast_protocol(oriented=True),
            knowledge=_knowledge(n), seed=2,
            exec_config=ExecutionConfig(record_trace=True),
        )
        assert out.delivered
        arrival = {}
        for event in out.sim.trace.receptions():
            for msg in (event.feedback if isinstance(event.feedback, tuple) else ()):
                if isinstance(msg, tuple) and msg[0] == "path":
                    for to, part in msg[2]:
                        if part[0] == "payload" and to == event.node:
                            arrival.setdefault(event.node, event.slot)
        order = [arrival[v] for v in sorted(arrival)]
        assert order == sorted(order)
