"""Tests for Down-cast / All-cast / Up-cast over good labelings (Lemma 10)."""

from __future__ import annotations

import pytest

from repro.core.casts import all_cast, down_cast, up_cast
from repro.core.labeling import is_good_labeling
from repro.core.schemes import SRScheme
from repro.graphs import Graph, path_graph
from repro.sim import LOCAL, NO_CD, Simulator


def _scheme(model_name, delta, failure=0.01):
    return SRScheme(model_name, delta, failure=failure)


def _run_cast(graph, model, model_name, labels, values, cast, seed=0, **kwargs):
    scheme = _scheme(model_name, max(graph.max_degree, 1))
    max_layers = graph.n

    def proto(ctx):
        if cast is all_cast:
            out = yield from all_cast(ctx, scheme, values.get(ctx.index), **kwargs)
        else:
            out = yield from cast(
                ctx, scheme, labels[ctx.index], values.get(ctx.index),
                max_layers, **kwargs,
            )
        return out

    return Simulator(graph, model, seed=seed).run(proto)


class TestDownCast:
    def test_value_washes_down_all_layers_local(self):
        # Path labeled 0,1,2,3,4: one down-cast must inform everyone.
        g = path_graph(5)
        labels = [0, 1, 2, 3, 4]
        result = _run_cast(g, LOCAL, "LOCAL", labels, {0: "m"}, down_cast)
        assert result.outputs == ["m"] * 5

    def test_value_washes_down_nocd(self):
        g = path_graph(4)
        labels = [0, 1, 2, 3]
        result = _run_cast(g, NO_CD, "No-CD", labels, {0: "m"}, down_cast)
        assert result.outputs == ["m"] * 4

    def test_transform_applied_per_hop(self):
        g = path_graph(4)
        labels = [0, 1, 2, 3]
        result = _run_cast(
            g, LOCAL, "LOCAL", labels, {0: 0}, down_cast,
            transform=lambda m: m + 1,
        )
        assert result.outputs == [0, 1, 2, 3]

    def test_holders_keep_their_value(self):
        g = path_graph(3)
        labels = [0, 1, 2]
        result = _run_cast(g, LOCAL, "LOCAL", labels, {0: "a", 1: "b"}, down_cast)
        assert result.outputs[1] == "b"

    def test_no_upward_leak(self):
        # A value held only at layer 2 must not reach layer 0 via down-cast.
        g = path_graph(3)
        labels = [0, 1, 2]
        result = _run_cast(g, LOCAL, "LOCAL", labels, {2: "m"}, down_cast)
        assert result.outputs[0] is None
        assert result.outputs[1] is None

    def test_energy_constant_frames_per_node(self):
        # Every vertex participates in <= 2 frames regardless of n.
        g = path_graph(12)
        labels = list(range(12))
        scheme = _scheme("LOCAL", 2)
        result = _run_cast(g, LOCAL, "LOCAL", labels, {0: "m"}, down_cast)
        assert all(e.total <= 2 for e in result.energy)


class TestUpCast:
    def test_value_washes_up_local(self):
        g = path_graph(5)
        labels = [0, 1, 2, 3, 4]
        result = _run_cast(g, LOCAL, "LOCAL", labels, {4: "m"}, up_cast)
        assert result.outputs == ["m"] * 5

    def test_value_washes_up_nocd(self):
        g = path_graph(4)
        labels = [0, 1, 2, 3]
        result = _run_cast(g, NO_CD, "No-CD", labels, {3: "m"}, up_cast)
        assert result.outputs == ["m"] * 4

    def test_layer0_never_sends_in_upcast(self):
        g = path_graph(2)
        labels = [0, 1]
        result = _run_cast(g, LOCAL, "LOCAL", labels, {0: "m"}, up_cast)
        assert result.outputs[1] is None

    def test_midpath_injection_reaches_root_only(self):
        g = path_graph(4)
        labels = [0, 1, 2, 3]
        result = _run_cast(g, LOCAL, "LOCAL", labels, {2: "m"}, up_cast)
        assert result.outputs[0] == "m"
        assert result.outputs[1] == "m"
        assert result.outputs[3] is None


class TestAllCast:
    def test_single_frame_exchange(self):
        g = path_graph(3)
        result = _run_cast(g, LOCAL, "LOCAL", None, {1: "m"}, all_cast)
        assert result.outputs == ["m", "m", "m"]

    def test_non_adjacent_not_informed(self):
        g = path_graph(3)
        result = _run_cast(g, LOCAL, "LOCAL", None, {0: "m"}, all_cast)
        assert result.outputs[2] is None


class TestBranchingLabelings:
    def test_down_cast_on_tree_labeling(self):
        #     0
        #    / \
        #   1   2     labels = BFS depth; all leaves must learn.
        g = Graph(5, [(0, 1), (0, 2), (1, 3), (2, 4)])
        labels = [0, 1, 1, 2, 2]
        assert is_good_labeling(g, labels)
        result = _run_cast(g, LOCAL, "LOCAL", labels, {0: "m"}, down_cast)
        assert result.outputs == ["m"] * 5

    def test_up_cast_collects_some_leaf_value(self):
        g = Graph(5, [(0, 1), (0, 2), (1, 3), (2, 4)])
        labels = [0, 1, 1, 2, 2]
        result = _run_cast(g, LOCAL, "LOCAL", labels, {3: "x", 4: "y"}, up_cast)
        assert result.outputs[0] in ("x", "y")
