"""Tests for the experiment harness, Table 1 runners, and Figure 1."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablate_beta,
    figure1,
    format_table,
    geometric_sizes,
    render_path_timeline,
    sweep,
    t1_lb_local_path,
    t1_lb_reduction,
    t1_local_clustering,
)
from repro.experiments.harness import SweepPoint
from repro.graphs import path_graph
from repro.sim import LOCAL, ExecutionConfig


class TestHarness:
    def test_sweep_aggregates_medians(self):
        from repro.broadcast import local_flood_protocol

        points = sweep(
            "flood", path_graph, (4, 8),
            lambda g: local_flood_protocol(),
            LOCAL, seeds=(0, 1, 2),
        )
        assert [p.n for p in points] == [4, 8]
        for point in points:
            assert point.delivered == 3
            assert point.time_median >= point.diameter
            assert point.max_energy_median >= 1

    def test_geometric_sizes(self):
        assert geometric_sizes(4, 2, 3) == [4, 8, 16]

    def test_format_table_contains_ratios(self):
        point = SweepPoint(
            label="x", n=16, max_degree=4, diameter=5, seeds=2, delivered=2,
            time_median=100.0, max_energy_median=40.0, mean_energy_median=20.0,
        )
        text = format_table(
            "title", [point], bounds={"logn": lambda p: 4.0}
        )
        assert "title" in text
        assert "logn ratio" in text
        assert "10.00" in text  # 40 / 4

    def test_sweep_point_ratio_helpers(self):
        point = SweepPoint(
            label="x", n=16, max_degree=4, diameter=5, seeds=1, delivered=1,
            time_median=100.0, max_energy_median=50.0, mean_energy_median=25.0,
        )
        assert point.ratio(25.0) == 2.0
        assert point.time_ratio(50.0) == 2.0


class TestTable1Runners:
    def test_local_clustering_row(self):
        points, table = t1_local_clustering(sizes=(8,), seeds=(0,))
        assert points[0].delivered == 1
        assert "Theorem 11" in table

    def test_lb_local_path_row(self):
        rows, table = t1_lb_local_path(sizes=(32,), seeds=(0, 1))
        assert rows[0]["satisfied"]
        assert "Theorem 1" in table

    def test_lb_reduction_row(self):
        rows, table = t1_lb_reduction(ks=(2, 4), seeds=(0,))
        assert all(row["inequality_holds"] for row in rows)
        assert "K_{2,k}" in table

    def test_ablate_beta_rows(self):
        rows, table = ablate_beta(n=20, betas=(0.2, 0.5), seeds=(0,))
        assert rows[0]["beta"] == 0.2
        assert "Partition" in table


class TestFigure1:
    def test_figure1_renders(self):
        text = figure1(n=12, seed=0)
        assert "Figure 1 reproduction" in text
        assert "delivered" in text
        assert "P" in text
        assert "legend" in text

    def test_timeline_requires_trace(self):
        from repro.broadcast import local_flood_protocol, run_broadcast
        from repro.sim import Knowledge

        g = path_graph(3)
        out = run_broadcast(
            g, LOCAL, local_flood_protocol(),
            knowledge=Knowledge(n=3, max_degree=2, diameter=2), seed=0,
        )
        with pytest.raises(ValueError):
            render_path_timeline(out, 3)

    def test_timeline_rows_sorted_and_bounded(self):
        from repro.broadcast import run_broadcast
        from repro.broadcast.path import path_broadcast_protocol
        from repro.sim import Knowledge

        n = 8
        g = path_graph(n)
        out = run_broadcast(
            g, LOCAL, path_broadcast_protocol(), seed=1,
            knowledge=Knowledge(n=n, max_degree=2, diameter=n - 1),
            exec_config=ExecutionConfig(record_trace=True),
        )
        text = render_path_timeline(out, n, max_rows=5)
        slot_lines = [
            line for line in text.splitlines() if line.strip().split(" ")[0].isdigit()
        ]
        slots = [int(line.split("|")[0]) for line in slot_lines]
        assert slots == sorted(slots)
        assert all(s < 5 for s in slots)


class TestCLI:
    def test_figure1_command(self, capsys):
        from repro.cli import main

        assert main(["figure1", "--n", "8", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1 reproduction" in out

    def test_table1_unknown_row(self, capsys):
        from repro.cli import main

        assert main(["table1", "bogus"]) == 2
        assert "unknown rows" in capsys.readouterr().out

    def test_table1_single_row(self, capsys):
        from repro.cli import main

        assert main(["table1", "lb-reduction"]) == 0
        assert "K_{2,k}" in capsys.readouterr().out

    def test_demo_command(self, capsys):
        from repro.cli import main

        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "decay baseline" in out
        assert "Algorithm 1" in out
