"""Tests for the engine microbenchmark harness (repro bench)."""

from __future__ import annotations

import json

from repro.experiments.bench import (
    BenchWorkload,
    check_thresholds,
    default_workloads,
    format_report,
    run_engine_benchmarks,
    write_results,
)
from repro.graphs import clique
from repro.sim import NO_CD, Knowledge, Listen, Send


def _tiny_workload() -> BenchWorkload:
    def protocol(ctx):
        for step in range(3):
            if (ctx.index + step) % 3 == 0:
                yield Send(("m", ctx.index, step))
            else:
                yield Listen()
        return ctx.index

    def build():
        graph = clique(5)
        knowledge = Knowledge(n=5, max_degree=4, diameter=1)
        return graph, NO_CD, protocol, knowledge, {}

    return BenchWorkload("tiny", "clique n=5 smoke workload", build, reps=1)


class TestBenchHarness:
    def test_report_shape_and_equivalence(self):
        report = run_engine_benchmarks(
            workloads=[_tiny_workload()], lockstep_seeds=8
        )
        entry = report["workloads"]["tiny"]
        assert entry["equivalent"] is True
        assert entry["n"] == 5
        assert entry["slots"] == 3
        expected_runners = {
            "engine", "engine_slot", "engine_list_path", "legacy_engine",
            "reference",
        }
        from repro.sim.resolution import numpy_available

        if numpy_available():
            expected_runners.add("engine_numpy")
        assert set(entry["seconds"]) == expected_runners
        for value in entry["seconds"].values():
            assert value >= 0
        assert "speedup_vs_legacy" in entry
        assert "speedup_phase_vs_slot" in entry
        # The tiny per-slot workload enters its generator once per slot
        # per node (+ the init and final entries) on every tracked runner.
        assert entry["entries_per_slot"]["engine"] > 0
        assert (
            entry["entries_per_slot"]["engine"]
            == entry["entries_per_slot"]["reference"]
        )
        assert "min_speedup_vs_reference" in report["summary"]

    def test_backend_replay_and_numpy_gate(self):
        from repro.sim.resolution import numpy_available

        workload = _tiny_workload()
        workload.backend_bench = True
        report = run_engine_benchmarks(workloads=[workload], lockstep_seeds=8)
        backends = report["workloads"]["tiny"]["resolution_backends"]
        assert backends["equivalent"] is True
        assert backends["slots_replayed"] == 3
        assert "bitmask" in backends["seconds"]
        assert "list" in backends["seconds"]
        if numpy_available():
            assert "speedup_numpy_vs_bitmask" in backends
            # An absurd bar is flagged against the backend ratio.
            violations = check_thresholds(report, min_numpy_speedup=1e9)
            assert any("numpy-vs-bitmask" in v for v in violations)
        else:
            violations = check_thresholds(report, min_numpy_speedup=1.0)
            assert any("not installed" in v for v in violations)
        assert "lockstep_trials" in report
        assert report["lockstep_trials"]["equivalent"] is True
        assert "lossy_lockstep_trials" in report
        assert report["lossy_lockstep_trials"]["equivalent"] is True

    def test_backend_replay_with_no_active_slots(self):
        from repro.sim import Idle

        def protocol(ctx):
            yield Idle(3)
            return ctx.index

        def build():
            graph = clique(4)
            knowledge = Knowledge(n=4, max_degree=3, diameter=1)
            return graph, NO_CD, protocol, knowledge, {}

        workload = BenchWorkload(
            "idle-only", "no active slots", build, reps=1, backend_bench=True
        )
        report = run_engine_benchmarks(workloads=[workload], lockstep_seeds=8)
        backends = report["workloads"]["idle-only"]["resolution_backends"]
        assert backends == {
            "slots_replayed": 0, "seconds": {}, "equivalent": True,
        }

    def test_thresholds(self):
        report = run_engine_benchmarks(
            workloads=[_tiny_workload()], lockstep_seeds=8
        )
        # Impossible bars must be flagged...
        violations = check_thresholds(
            report, min_legacy_speedup=1e9, min_ref_speedup=1e9
        )
        assert len(violations) == 2
        # ...no bars, no violations.
        assert check_thresholds(report) == []
        # legacy_gate=False exempts a workload from the legacy bar only.
        report["workloads"]["tiny"]["legacy_gate"] = False
        assert check_thresholds(report, min_legacy_speedup=1e9) == []
        assert len(check_thresholds(report, min_ref_speedup=1e9)) == 1
        # The phase bar applies only to phase_gate workloads.
        assert check_thresholds(report, min_phase_speedup=1e9) == []
        report["workloads"]["tiny"]["phase_gate"] = True
        violations = check_thresholds(report, min_phase_speedup=1e9)
        assert len(violations) == 1 and "phase_vs_slot" in violations[0]

    def test_lossy_soa_section_and_gate(self):
        from repro.sim.resolution import numpy_available

        report = run_engine_benchmarks(
            workloads=[_tiny_workload()], lockstep_seeds=8
        )
        lossy = report["lossy_lockstep_trials"]
        assert lossy["workload"] == "lossy_sr_frame_n256"
        assert lossy["equivalent"] is True
        # The dispatch verdict is surfaced per variant: the serial
        # oracle never routes through the lock-step dispatcher (None)
        # and the bitmask lock-step variant falls back on resolution.
        assert lossy["soa_reason"]["serial_slot"] is None
        assert lossy["soa_reason"]["lockstep_slot"] == "resolution"
        if numpy_available():
            assert lossy["soa_active"] is True
            assert lossy["soa_reason"]["lockstep_phase"] == "ok"
            violations = check_thresholds(report, min_lossy_soa_speedup=1e9)
            assert any("speedup_lossy_soa_vs_serial" in v for v in violations)
        else:
            assert lossy["soa_active"] is False
            violations = check_thresholds(report, min_lossy_soa_speedup=0.0)
            assert any("inactive" in v for v in violations)
        # A fast-but-wrong lossy engine fails before any ratio counts.
        report["lossy_lockstep_trials"]["equivalent"] = False
        violations = check_thresholds(report)
        assert any("diverge" in v for v in violations)
        # Requesting the gate without the section is itself a violation.
        del report["lossy_lockstep_trials"]
        violations = check_thresholds(report, min_lossy_soa_speedup=1.0)
        assert any("missing" in v for v in violations)

    def test_equivalence_failure_is_a_violation(self):
        report = run_engine_benchmarks(
            workloads=[_tiny_workload()], lockstep_seeds=8
        )
        report["workloads"]["tiny"]["equivalent"] = False
        violations = check_thresholds(report)
        assert violations and "disagree" in violations[0]

    def test_write_results_round_trips(self, tmp_path):
        report = run_engine_benchmarks(
            workloads=[_tiny_workload()], lockstep_seeds=8
        )
        path = tmp_path / "BENCH_engine.json"
        write_results(report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["workloads"]["tiny"]["slots"] == 3
        assert "tiny" in format_report(loaded)

    def test_default_workloads_cover_acceptance_set(self):
        for quick in (False, True):
            names = {w.name for w in default_workloads(quick=quick)}
            assert {"dense_single_hop_n512", "table1_clustering_row"} <= names
            gates = {
                w.name: w.legacy_gate for w in default_workloads(quick=quick)
            }
            assert gates["dense_single_hop_n512"]
            assert gates["table1_clustering_row"]


class TestBenchCli:
    def test_cli_quick_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["bench", "--quick", "--out", "x.json", "--min-ref-speedup", "1.2"]
        )
        assert args.quick and args.out == "x.json"
        assert args.min_ref_speedup == 1.2
        assert args.min_legacy_speedup is None
        assert args.min_lossy_soa_speedup is None

    def test_cli_lossy_soa_gate_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["bench", "--quick", "--min-lossy-soa-speedup", "2.0"]
        )
        assert args.min_lossy_soa_speedup == 2.0
