"""Integration tests for Section 5: refinement + Theorem 11/12 broadcast."""

from __future__ import annotations

import pytest

from repro.broadcast import (
    cluster_broadcast_protocol,
    run_broadcast,
    theorem11_params,
    theorem12_params,
)
from repro.core.clustering import refine_labeling
from repro.core.labeling import is_good_labeling, layer_zero
from repro.core.schemes import SRScheme
from repro.graphs import cycle_graph, grid_graph, path_graph, random_gnp, star_graph
from repro.sim import CD, LOCAL, NO_CD, Simulator

from tests.conftest import knowledge_for


class TestRefinement:
    def _refine_n_times(self, graph, model, model_name, rounds, seed=0, p=0.5, s=1):
        scheme = SRScheme(model_name, max(graph.max_degree, 1), failure=0.01)

        def proto(ctx):
            label = 0
            for _ in range(rounds):
                label = yield from refine_labeling(
                    ctx, scheme, label, survive_p=p, spread_s=s,
                    max_layers=ctx.n,
                )
            return label

        return Simulator(graph, model, seed=seed).run(proto).outputs

    def test_single_refinement_keeps_goodness(self):
        g = grid_graph(3, 3)
        labels = self._refine_n_times(g, LOCAL, "LOCAL", 1, seed=2)
        assert is_good_labeling(g, labels)

    def test_roots_thin_out(self):
        g = cycle_graph(16)
        one = self._refine_n_times(g, LOCAL, "LOCAL", 1, seed=1)
        many = self._refine_n_times(g, LOCAL, "LOCAL", 6, seed=1)
        assert len(layer_zero(many)) <= len(layer_zero(one))
        assert len(layer_zero(many)) >= 1

    def test_converges_to_single_root_local(self):
        g = grid_graph(4, 4)
        labels = self._refine_n_times(g, LOCAL, "LOCAL", 30, seed=3)
        assert is_good_labeling(g, labels)
        assert len(layer_zero(labels)) == 1

    def test_converges_in_nocd(self):
        g = path_graph(8)
        labels = self._refine_n_times(g, NO_CD, "No-CD", 20, seed=4)
        assert is_good_labeling(g, labels)
        assert len(layer_zero(labels)) == 1

    def test_always_at_least_one_root(self):
        g = star_graph(6)
        for seed in range(4):
            labels = self._refine_n_times(g, LOCAL, "LOCAL", 12, seed=seed)
            assert len(layer_zero(labels)) >= 1

    def test_spread_s_increases_absorption(self):
        # With s = n the whole graph is absorbed by any surviving root in
        # one refinement (cycle diameter < casts reach).
        g = cycle_graph(10)
        labels = self._refine_n_times(g, LOCAL, "LOCAL", 1, seed=5, p=0.3, s=10)
        assert is_good_labeling(g, labels)
        assert len(layer_zero(labels)) <= 4


class TestTheorem11:
    @pytest.mark.parametrize(
        "model,name",
        [(LOCAL, "LOCAL"), (CD, "CD"), (NO_CD, "No-CD")],
    )
    def test_broadcast_delivers(self, model, name):
        g = grid_graph(3, 4)
        params = theorem11_params(g.n, name, failure=0.01)
        out = run_broadcast(
            g, model, cluster_broadcast_protocol(params),
            knowledge=knowledge_for(g), seed=7,
        )
        assert out.delivered

    def test_broadcast_from_nonzero_source(self):
        g = path_graph(9)
        params = theorem11_params(g.n, "LOCAL", failure=0.01)
        out = run_broadcast(
            g, LOCAL, cluster_broadcast_protocol(params),
            knowledge=knowledge_for(g), source=4, seed=1,
        )
        assert out.delivered

    def test_final_labels_good_and_single_root(self):
        g = grid_graph(3, 3)
        params = theorem11_params(g.n, "LOCAL", failure=0.005)
        proto = cluster_broadcast_protocol(params, return_labels=True)
        sim = Simulator(g, LOCAL, seed=11)
        result = sim.run(proto, inputs={0: {"source": True, "payload": "m"}})
        payloads = [out[0] for out in result.outputs]
        labels = [out[1] for out in result.outputs]
        assert payloads == ["m"] * g.n
        assert is_good_labeling(g, labels)
        assert len(layer_zero(labels)) == 1

    def test_energy_beats_decay_baseline_on_wide_graph(self):
        from repro.broadcast import decay_broadcast_protocol

        g = grid_graph(4, 5)
        k = knowledge_for(g)
        params = theorem11_params(g.n, "LOCAL", failure=0.01)
        ours = run_broadcast(
            g, LOCAL, cluster_broadcast_protocol(params), knowledge=k, seed=2
        )
        baseline = run_broadcast(
            g, NO_CD, decay_broadcast_protocol(failure=0.01), knowledge=k, seed=2
        )
        assert ours.delivered and baseline.delivered
        assert ours.max_energy < baseline.max_energy

    def test_multiple_seeds_statistical(self, seeds):
        g = random_gnp(12, 0.25)
        k = knowledge_for(g)
        params = theorem11_params(g.n, "LOCAL", failure=0.01)
        delivered = sum(
            run_broadcast(
                g, LOCAL, cluster_broadcast_protocol(params), knowledge=k, seed=s
            ).delivered
            for s in seeds
        )
        assert delivered == len(seeds)


class TestTheorem12:
    def test_cd_tradeoff_delivers(self):
        g = random_gnp(12, 0.3)
        params = theorem12_params(g.n, epsilon=0.5, failure=0.01)
        out = run_broadcast(
            g, CD, cluster_broadcast_protocol(params),
            knowledge=knowledge_for(g), seed=9,
        )
        assert out.delivered

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            theorem12_params(64, epsilon=0.0)
        with pytest.raises(ValueError):
            theorem12_params(64, epsilon=1.5)

    def test_fewer_iterations_than_theorem11(self):
        p11 = theorem11_params(256, "CD")
        p12 = theorem12_params(256, epsilon=0.9)
        assert p12.iterations < p11.iterations
        assert p12.spread_s > p11.spread_s


class TestSchemeValidation:
    def test_bad_model_name(self):
        with pytest.raises(ValueError):
            SRScheme("bogus", 4)

    def test_probe_only_for_cd(self):
        with pytest.raises(ValueError):
            SRScheme("No-CD", 4, probe=True)

    def test_frame_lengths_positive(self):
        for name in ("LOCAL", "CD", "No-CD"):
            assert SRScheme(name, 8, failure=0.05).frame_length >= 1
