"""Fault-injection and differential tests for the campaign fabric.

The contract under test: whatever the fabric is subjected to — SIGKILL
mid-block, a wedged (SIGSTOPped) worker, cells that raise, cells that
sleep past their budget — the canonical store ends up with aggregates
byte-identical to the serial oracle's, and a resume computes only the
true delta.  Plus the subsystems the fabric rides on: crash-safe store
appends, prefer-ok shard merging, the O(aggregates) streaming reducer,
the events ledger, live status, run-all resolution, and the CLI/config
surface.
"""

from __future__ import annotations

import gc
import json
import os
import signal
import time
import weakref

import pytest

import repro.campaign.fabric.workers as workers_mod
from repro.campaign import (
    ROW_REGISTRY,
    CampaignSpec,
    CampaignStore,
    RowDefinition,
    aggregate_campaign,
    aggregate_campaign_streaming,
    register_row,
    run_campaign,
    run_campaign_fabric,
    stream_points,
)
from repro.campaign.fabric import (
    CRASH_ENV,
    EventLog,
    live_progress,
    merge_shards,
    read_events,
    render_events_summary,
    render_live_status,
    resolve_run_all,
    shard_dir_for,
    shard_path,
    summarize_events,
    watch_campaign,
)
from repro.campaign.fabric.reduce import StreamingCampaignAggregator
from repro.campaign.registry import (
    GRAPH_FAMILIES,
    GRAPH_FAMILY_MIN_SIZES,
    row_min_size,
)
from repro.campaign.runner import execute_job, plan_pending
from repro.campaign.store import STATUS_QUARANTINED, make_record
from repro.cli import _row_overrides, main
from repro.sim import ExecutionConfig, Simulator
from repro.sim.config import ExecutionConfigError
from repro.sim.models import LOCAL


def _store(tmp_path, name="results.jsonl"):
    return CampaignStore(os.path.join(str(tmp_path), name))


def _spec(rows):
    return CampaignSpec.from_dict({"name": "fabtest", "rows": rows})


def _points_blob(points):
    return json.dumps(
        {k: [vars(p) for p in v] for k, v in points.items()},
        sort_keys=True, default=str,
    )


def _fabric(spec, store, **kwargs):
    kwargs.setdefault("backoff", 0.05)
    kwargs.setdefault("heartbeat", 0.2)
    kwargs.setdefault(
        "events_path",
        os.path.join(os.path.dirname(store.path), "events.jsonl"),
    )
    return run_campaign_fabric(spec, store, **kwargs)


@pytest.fixture
def flaky_row(tmp_path):
    """Fails (ValueError) for seed 1 on the first fabric attempt.

    ``execute_job`` retries a raising block per-seed before recording an
    error, so the cell must fail twice (block pass + per-seed fallback)
    for the *fabric* retry path to engage; the third call succeeds.
    """
    marker = str(tmp_path / "flaky.attempts")

    def cell(row, size, seed, options):
        from repro.campaign.registry import execute_cell

        if seed == 1:
            attempts = (
                os.path.getsize(marker) if os.path.exists(marker) else 0
            )
            if attempts < 2:
                with open(marker, "ab") as handle:
                    handle.write(b"x")
                raise ValueError("flaky boom")
        return execute_cell("path", size, seed, options)

    name = "_test-flaky"
    register_row(RowDefinition(
        name=name, title="flaky", model="LOCAL", graph_family="path",
        builder=lambda g, o: None, default_sizes=(8,), default_seeds=(0, 1),
        custom_cell=cell,
    ))
    yield name
    ROW_REGISTRY.pop(name, None)


@pytest.fixture
def sleepy_row():
    def cell(row, size, seed, options):
        time.sleep(30)

    name = "_test-sleepy"
    register_row(RowDefinition(
        name=name, title="sleepy", model="LOCAL", graph_family="path",
        builder=lambda g, o: None, default_sizes=(4,), default_seeds=(0,),
        custom_cell=cell,
    ))
    yield name
    ROW_REGISTRY.pop(name, None)


class TestStoreCrashSafety:
    def test_append_many_batch_roundtrip(self, tmp_path):
        store = _store(tmp_path)
        records = [
            make_record(f"k{i}", {"row": "r", "seed": i}, "ok", result={})
            for i in range(5)
        ]
        store.append_many(records)
        assert store.line_count() == 5
        assert set(store.load()) == {f"k{i}" for i in range(5)}

    def test_torn_trailing_line_warns_and_skips(self, tmp_path):
        store = _store(tmp_path)
        store.append(make_record("good", {}, "ok", result={}))
        with open(store.path, "a", encoding="utf-8") as handle:
            # A killed writer's torn tail: no trailing newline.
            handle.write('{"key": "torn", "status": "ok"')
        with pytest.warns(RuntimeWarning, match="skipped 1 corrupt"):
            records = store.load()
        assert set(records) == {"good"}

    def test_torn_but_parseable_tail_is_distrusted(self, tmp_path):
        store = _store(tmp_path)
        store.append(make_record("good", {}, "ok", result={}))
        with open(store.path, "a", encoding="utf-8") as handle:
            # Decodes as JSON, but the missing newline means the write
            # never completed — the 'elapsed' number may be clipped.
            handle.write('{"key": "tail", "status": "ok", "elapsed": 1}')
        with pytest.warns(RuntimeWarning):
            assert set(store.load()) == {"good"}

    def test_corrupt_middle_line_does_not_poison_rest(self, tmp_path):
        store = _store(tmp_path)
        store.append(make_record("a", {}, "ok", result={}))
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write("{{{ not json\n")
        store.append(make_record("b", {}, "ok", result={}))
        with pytest.warns(RuntimeWarning):
            assert set(store.load()) == {"a", "b"}

    def test_compact_dedupes_in_place(self, tmp_path):
        store = _store(tmp_path)
        store.append(make_record("a", {}, "error", error="x"))
        store.append(make_record("a", {}, "ok", result={}))
        store.append(make_record("b", {}, "ok", result={}))
        stats = store.compact()
        assert stats == {"before": 3, "after": 2}
        assert store.line_count() == 2
        assert store.load()["a"]["status"] == "ok"

    def test_rewrite_removes_temp_on_failure(self, tmp_path):
        store = _store(tmp_path)
        store.append(make_record("a", {}, "ok", result={}))

        class Boom:
            def __iter__(self):
                raise RuntimeError("mid-rewrite")

        with pytest.raises(RuntimeError):
            store.rewrite(Boom())
        assert store.load()["a"]["status"] == "ok"  # old ledger intact
        leftovers = [
            name for name in os.listdir(tmp_path) if name.startswith(".store-")
        ]
        assert leftovers == []


class TestShardMerge:
    def test_ok_beats_later_error(self, tmp_path):
        store = _store(tmp_path)
        shard_dir = shard_dir_for(store)
        os.makedirs(shard_dir)
        ok = make_record("cell", {"seed": 0}, "ok", result={"n": 1})
        CampaignStore(shard_path(shard_dir, 0)).append(ok)
        time.sleep(0.01)
        CampaignStore(shard_path(shard_dir, 1)).append(
            make_record("cell", {"seed": 0}, "error", error="late crash")
        )
        stats = merge_shards(store, shard_dir)
        assert stats == {"shards": 2, "records": 1}
        assert store.load()["cell"]["status"] == "ok"
        assert not os.path.isdir(shard_dir)  # pruned after merge

    def test_latest_ts_wins_among_equals(self, tmp_path):
        store = _store(tmp_path)
        shard_dir = shard_dir_for(store)
        os.makedirs(shard_dir)
        old = make_record("cell", {}, "error", error="first")
        new = make_record("cell", {}, "error", error="second")
        new["ts"] = old["ts"] + 10
        CampaignStore(shard_path(shard_dir, 0)).append(new)
        CampaignStore(shard_path(shard_dir, 1)).append(old)
        merge_shards(store, shard_dir)
        assert store.load()["cell"]["error"] == "second"

    def test_empty_dir_is_noop(self, tmp_path):
        store = _store(tmp_path)
        assert merge_shards(store, shard_dir_for(store)) == {
            "shards": 0, "records": 0,
        }


class TestStreamingReducer:
    def test_matches_batch_aggregation(self, tmp_path):
        spec = _spec([
            {"row": "figure1", "sizes": [8, 12], "seeds": [0, 1]},
            {"row": "bounded", "sizes": [8], "seeds": [0, 1]},
        ])
        store = _store(tmp_path)
        run_campaign(spec, store, progress=None)
        assert _points_blob(aggregate_campaign(spec, store, extended=True)) \
            == _points_blob(aggregate_campaign_streaming(spec, store))

    def test_matches_batch_on_partial_store(self, tmp_path):
        spec = _spec([{"row": "bounded", "sizes": [8, 12], "seeds": [0, 1]}])
        store = _store(tmp_path)
        run_campaign(spec, store, progress=None)
        partial = _store(tmp_path, "partial.jsonl")
        partial.append_many(list(store.iter_records())[:-1])
        assert _points_blob(aggregate_campaign(spec, partial, extended=True)) \
            == _points_blob(aggregate_campaign_streaming(spec, partial))

    def test_failure_never_displaces_success(self, tmp_path):
        spec = _spec([{"row": "path", "sizes": [8], "seeds": [0]}])
        store = _store(tmp_path)
        run_campaign(spec, store, progress=None)
        (ok,) = store.ok_records()
        failure = make_record(ok["key"], ok["job"], "error", error="late")
        points = stream_points(spec, [ok, failure])
        assert _points_blob(points) == _points_blob(stream_points(spec, [ok]))

    def test_ignores_out_of_matrix_records(self):
        spec = _spec([{"row": "path", "sizes": [8], "seeds": [0]}])
        aggregator = StreamingCampaignAggregator(spec)
        foreign = execute_job(
            {"job": {"row": "path", "size": 16, "seed": 3}, "timeout": None}
        )[0]
        assert aggregator.add(foreign) is False
        assert aggregator.completed_cells() == 0

    def test_memory_stays_o_aggregates_on_10k_cells(self):
        """≥10k synthetic cells: the reducer retains at most one open
        bucket of CellResults and never the record dicts themselves."""
        sizes = list(range(4, 104))   # 100 sizes
        seeds = list(range(100))      # x 100 seeds = 10,000 cells
        spec = _spec([{"row": "path", "sizes": sizes, "seeds": seeds}])
        aggregator = StreamingCampaignAggregator(spec)

        class Record(dict):
            """Weakref-able record (plain dicts are not)."""

        refs = []
        max_open = 0
        for size in sizes:
            for seed in seeds:
                record = Record(
                    key=f"{size}-{seed}",
                    job={"row": "path", "size": size, "seed": seed,
                         "options": {}},
                    status="ok",
                    result={
                        "label": "path", "size": size, "n": size,
                        "max_degree": 2, "diameter": size - 1, "seed": seed,
                        "delivered": True, "duration": float(seed % 7 + size),
                        "max_energy": 3.0, "mean_energy": 1.5, "extras": {},
                    },
                )
                if seed == 0:
                    refs.append(weakref.ref(record))
                assert aggregator.add(record)
                max_open = max(max_open, aggregator.open_cells())
                del record
        assert aggregator.completed_cells() == 10_000
        assert aggregator.open_cells() == 0
        # One bucket (100 seeds) is the most ever buffered: O(aggregates),
        # not O(cells).
        assert max_open <= len(seeds)
        gc.collect()
        assert all(ref() is None for ref in refs)  # no record retained
        points = aggregator.points()
        assert len(points["path"]) == len(sizes)


class TestFabricDifferential:
    def test_matches_serial_oracle(self, tmp_path):
        spec = _spec([
            {"row": "figure1", "sizes": [8, 12], "seeds": [0, 1]},
            {"row": "bounded", "sizes": [8], "seeds": [0, 1]},
        ])
        serial = _store(tmp_path / "serial")
        run_campaign(spec, serial, progress=None)
        fabric = _store(tmp_path / "fabric")
        report = _fabric(spec, fabric, workers=2)
        assert report.all_ok and report.ok == 6
        assert _points_blob(aggregate_campaign(spec, serial, extended=True)) \
            == _points_blob(aggregate_campaign(spec, fabric, extended=True)) \
            == _points_blob(aggregate_campaign_streaming(spec, fabric))

    def test_lossy_row_matches_serial_oracle(self, tmp_path):
        """The PR acceptance shape: a lossy many-seed row through
        ``--workers 2`` stores the same results as the serial runner,
        and (with numpy) the events ledger shows every block SoA-engaged.
        """
        from repro.sim.resolution import numpy_available

        options = {"loss_rate": 0.3}
        if numpy_available():
            options.update({
                "lockstep": True, "resolution": "numpy", "stepping": "slot",
            })
        spec = _spec([{
            "row": "bounded", "sizes": [8, 12], "seeds": [0, 1],
            "options": options,
        }])
        serial = _store(tmp_path / "serial")
        run_campaign(spec, serial, progress=None)
        fabric = _store(tmp_path / "fabric")
        events_path = os.path.join(str(tmp_path), "events.jsonl")
        report = _fabric(spec, fabric, workers=2, events_path=events_path)
        assert report.all_ok and report.ok == 4

        def results(store):
            return [
                record["result"] for record in sorted(
                    store.load().values(),
                    key=lambda r: (r["job"]["size"], r["job"]["seed"]),
                )
            ]

        assert results(serial) == results(fabric)
        if numpy_available():
            done = [
                e for e in read_events(events_path)
                if e["ev"] == "block_completed"
            ]
            assert done and all(e.get("soa", 0) > 0 for e in done)
            assert sum(e["soa"] for e in done) == 4

    def test_resume_computes_only_delta(self, tmp_path):
        spec = _spec([{"row": "path", "sizes": [8, 12], "seeds": [0, 1]}])
        store = _store(tmp_path)
        assert _fabric(spec, store, workers=2).ok == 4
        again = _fabric(spec, store, workers=2)
        assert again.ran == 0 and again.skipped == 4
        grown = _spec([{"row": "path", "sizes": [8, 12, 16], "seeds": [0, 1]}])
        delta = _fabric(grown, store, workers=2)
        assert delta.ok == 2 and delta.skipped == 4

    def test_sigkill_crash_is_absorbed(self, tmp_path, monkeypatch):
        spec = _spec([{"row": "figure1", "sizes": [8, 12, 16], "seeds": [0, 1]}])
        serial = _store(tmp_path / "serial")
        run_campaign(spec, serial, progress=None)
        marker = str(tmp_path / "crash.marker")
        monkeypatch.setenv(CRASH_ENV, marker)
        fabric = _store(tmp_path / "fabric")
        report = _fabric(spec, fabric, workers=2)
        assert os.path.exists(marker)  # exactly one worker took the hit
        assert report.workers_died >= 1 and report.retries >= 1
        assert report.all_ok and report.ok == 6
        assert _points_blob(aggregate_campaign(spec, serial, extended=True)) \
            == _points_blob(aggregate_campaign(spec, fabric, extended=True))

    def test_wedged_worker_is_replaced(self, tmp_path, monkeypatch):
        """A SIGSTOPped worker stops heartbeating, is declared hung,
        killed, and its block retried elsewhere."""
        marker = str(tmp_path / "wedge.marker")
        real = execute_job

        def wedge_once(payload):
            if payload["job"]["row"] == "figure1":
                try:
                    fd = os.open(
                        marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                    )
                    os.close(fd)
                    os.kill(os.getpid(), signal.SIGSTOP)
                except FileExistsError:
                    pass
            return real(payload)

        monkeypatch.setattr(workers_mod, "execute_block_payload", wedge_once)
        spec = _spec([
            {"row": "figure1", "sizes": [8], "seeds": [0]},
            {"row": "path", "sizes": [8], "seeds": [0]},
        ])
        store = _store(tmp_path)
        report = _fabric(spec, store, workers=2, heartbeat=0.1)
        assert report.all_ok and report.ok == 2
        assert report.workers_died >= 1
        reasons = [
            e["reason"] for e in read_events(
                os.path.join(str(tmp_path), "events.jsonl")
            ) if e["ev"] == "worker_died"
        ]
        assert any("heartbeat" in reason for reason in reasons)

    def test_timeout_cells_recorded_and_isolated(self, tmp_path, sleepy_row):
        spec = _spec([
            {"row": sleepy_row, "sizes": [4], "seeds": [0]},
            {"row": "path", "sizes": [8], "seeds": [0]},
        ])
        store = _store(tmp_path)
        report = _fabric(spec, store, workers=2, timeout=1, retries=0)
        assert report.timeouts == 1 and report.ok == 1
        assert not report.all_ok
        statuses = {r["status"] for r in store.load().values()}
        assert statuses == {"ok", "timeout"}

    def test_failed_seeds_retry_without_rerunning_ok(
        self, tmp_path, flaky_row
    ):
        spec = _spec([{"row": flaky_row, "sizes": [8], "seeds": [0, 1]}])
        store = _store(tmp_path)
        report = _fabric(spec, store, workers=1, retries=2)
        assert report.all_ok and report.ok == 2 and report.retries == 1
        # Seed 0 ran once, seed 1 twice (fail then retry): 3 records.
        assert store.line_count() == 3

    def test_poison_block_quarantined_sweep_continues(
        self, tmp_path, monkeypatch
    ):
        real = execute_job

        def die_on_figure1(payload):
            if payload["job"]["row"] == "figure1":
                os.kill(os.getpid(), signal.SIGKILL)
            return real(payload)

        monkeypatch.setattr(
            workers_mod, "execute_block_payload", die_on_figure1
        )
        spec = _spec([
            {"row": "figure1", "sizes": [8], "seeds": [0, 1]},
            {"row": "path", "sizes": [8], "seeds": [0]},
        ])
        store = _store(tmp_path)
        report = _fabric(spec, store, workers=2, retries=1)
        assert report.ok == 1  # the healthy block still completed
        assert report.quarantined == 2 and not report.all_ok
        assert report.workers_died >= 2  # initial try + retry
        quarantined = [
            r for r in store.load().values()
            if r["status"] == STATUS_QUARANTINED
        ]
        assert len(quarantined) == 2
        assert all("quarantined after 2" in r["error"] for r in quarantined)
        # Quarantined cells stay pending: the next run retries exactly them.
        _, pending = plan_pending(spec, store.completed_keys())
        assert sum(len(b.seeds) for b in pending) == 2
        monkeypatch.setattr(workers_mod, "execute_block_payload", real)
        healed = _fabric(spec, store, workers=2)
        assert healed.all_ok and healed.ok == 2 and healed.skipped == 1

    def test_adopts_leftover_shards_from_aborted_run(self, tmp_path):
        spec = _spec([{"row": "path", "sizes": [8, 12], "seeds": [0]}])
        store = _store(tmp_path)
        # Simulate a run that died after one worker wrote its shard but
        # before the parent merged it.
        shard_dir = shard_dir_for(store)
        os.makedirs(shard_dir)
        records = execute_job(
            {"job": {"row": "path", "size": 8, "seed": 0}, "timeout": None}
        )
        CampaignStore(shard_path(shard_dir, 0)).append_many(records)
        report = _fabric(spec, store, workers=1)
        assert report.skipped == 1 and report.ok == 1  # adopted, not rerun


class TestEventsLedger:
    def test_ledger_counts_and_summary(self, tmp_path):
        spec = _spec([{"row": "path", "sizes": [8, 12], "seeds": [0, 1]}])
        store = _store(tmp_path)
        events_path = os.path.join(str(tmp_path), "events.jsonl")
        _fabric(spec, store, workers=2, events_path=events_path)
        summary = summarize_events(read_events(events_path))
        assert summary["counts"]["run_started"] == 1
        assert summary["counts"]["run_completed"] == 1
        assert summary["counts"]["block_completed"] == 2
        run = summary["last_run"]
        assert run["completed"] and run["cells_ok"] == 4
        text = render_events_summary(summary)
        assert "last run (fabtest): completed" in text
        assert "cells/s" in text

    def test_soa_engagement_summary_and_rendering(self, tmp_path):
        from repro.sim.resolution import numpy_available

        if not numpy_available():
            pytest.skip("the SoA lossy path needs numpy")
        spec = _spec([{
            "row": "bounded", "sizes": [8], "seeds": [0, 1],
            "options": {
                "loss_rate": 0.3, "lockstep": True,
                "resolution": "numpy", "stepping": "slot",
            },
        }])
        store = _store(tmp_path)
        events_path = os.path.join(str(tmp_path), "events.jsonl")
        _fabric(spec, store, workers=2, events_path=events_path)
        summary = summarize_events(read_events(events_path))
        run = summary["last_run"]
        assert run["soa_seen"] is True
        assert run["soa_cells"] == 2
        assert run["soa_blocks"] == run["blocks"] > 0
        text = render_events_summary(summary)
        assert "SoA engagement" in text
        assert "2 cell(s) on the trial-SoA engine" in text

    def test_pre_soa_ledger_renders_without_engagement_line(self):
        # Ledgers written before the soa field existed (or by runs that
        # never engaged lock-step) must summarize and render unchanged.
        summary = summarize_events([
            {"ev": "run_started", "campaign": "x", "pending": 1},
            {"ev": "block_completed", "worker": 0, "ok": 1, "failed": 0},
            {"ev": "run_completed", "elapsed": 1.0},
        ])
        run = summary["last_run"]
        assert run["soa_seen"] is False and run["blocks"] == 1
        assert "SoA engagement" not in render_events_summary(summary)

    def test_no_ledger_renders_placeholder(self):
        assert "no events recorded" in render_events_summary(
            summarize_events([])
        )

    def test_torn_event_lines_skipped(self, tmp_path):
        path = os.path.join(str(tmp_path), "events.jsonl")
        with EventLog(path) as log:
            log.emit("run_started", campaign="x", pending=1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"ev": "block_comp')
        events = list(read_events(path))
        assert [e["ev"] for e in events] == ["run_started"]

    def test_none_path_is_noop(self):
        log = EventLog(None)
        log.emit("run_started")  # must not raise or create anything
        log.close()


class TestLiveStatus:
    def test_live_view_after_finished_run(self, tmp_path):
        spec = _spec([{"row": "path", "sizes": [8], "seeds": [0, 1]}])
        store = _store(tmp_path)
        events_path = os.path.join(str(tmp_path), "events.jsonl")
        _fabric(spec, store, workers=1, events_path=events_path)
        text = render_live_status(spec, store, events_path)
        assert "fabric finished: 2/2 cells this run" in text
        assert "2/2 cells complete" in text  # store accounting line

    def test_live_view_mid_run_shows_workers_and_eta(self, tmp_path):
        spec = _spec([{"row": "path", "sizes": [8], "seeds": [0, 1, 2]}])
        store = _store(tmp_path)
        events_path = os.path.join(str(tmp_path), "events.jsonl")
        now = time.time()
        with EventLog(events_path) as log:
            log.emit("run_started", campaign="fabtest", total=3, cached=0,
                     pending=3, workers=2)
            log.emit("worker_born", worker=0, pid=1)
            log.emit("worker_born", worker=1, pid=2)
            log.emit("block_dispatched", block=0, worker=0, row="path",
                     size=8, seeds=2, attempt=0)
            log.emit("block_completed", block=0, worker=0, ok=2, failed=0,
                     elapsed=0.1)
            log.emit("block_dispatched", block=1, worker=1, row="path",
                     size=8, seeds=1, attempt=0)
        text = render_live_status(spec, store, events_path, now=now + 4.0)
        assert "fabric running: 2/3 cells" in text
        assert "ETA" in text
        assert "w0 IDLE" in text and "w1 RUN path/n=8" in text

    def test_no_ledger_renders_single_line(self, tmp_path):
        spec = _spec([{"row": "path", "sizes": [8], "seeds": [0]}])
        store = _store(tmp_path)
        text = render_live_status(
            spec, store, os.path.join(str(tmp_path), "missing.jsonl")
        )
        assert "no fabric events ledger" in text

    def test_watch_exits_when_run_complete(self, tmp_path):
        spec = _spec([{"row": "path", "sizes": [8], "seeds": [0]}])
        store = _store(tmp_path)
        events_path = os.path.join(str(tmp_path), "events.jsonl")
        _fabric(spec, store, workers=1, events_path=events_path)
        renders = []
        watch_campaign(
            spec, store, events_path, interval=0.01, out=renders.append
        )
        assert len(renders) == 1  # finished run: one render, no loop

    def test_progress_replay_tracks_dead_workers(self, tmp_path):
        events_path = os.path.join(str(tmp_path), "events.jsonl")
        with EventLog(events_path) as log:
            log.emit("run_started", campaign="x", pending=2, workers=2)
            log.emit("worker_born", worker=0, pid=1)
            log.emit("block_dispatched", block=0, worker=0, row="r", size=4,
                     seeds=1, attempt=0)
            log.emit("worker_died", worker=0, reason="no heartbeat", block=0)
            log.emit("block_retried", block=0, attempt=1, reason="x",
                     backoff=0.1)
        progress = live_progress(events_path)
        assert progress["workers"][0]["state"] == "dead"
        assert progress["retries"] == 1


class TestRunAll:
    def _write(self, path, data):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)

    def test_directory_with_manifest(self, tmp_path):
        self._write(tmp_path / "a.json", {"name": "a", "rows": []})
        self._write(tmp_path / "b.json", {"name": "b", "rows": []})
        self._write(
            tmp_path / "run_all.json",
            {"name": "everything", "configs": ["b.json", "a.json"]},
        )
        name, configs = resolve_run_all(str(tmp_path))
        assert name == "everything"
        assert [os.path.basename(c) for c in configs] == ["b.json", "a.json"]

    def test_directory_without_manifest_sorts_configs(self, tmp_path):
        self._write(tmp_path / "b.json", {})
        self._write(tmp_path / "a.json", {})
        _, configs = resolve_run_all(str(tmp_path))
        assert [os.path.basename(c) for c in configs] == ["a.json", "b.json"]

    def test_single_config_is_one_entry_run(self, tmp_path):
        path = tmp_path / "solo.json"
        self._write(path, {"name": "solo", "rows": []})
        name, configs = resolve_run_all(str(path))
        assert name == "solo" and configs == [str(path)]

    def test_missing_target_and_configs_raise(self, tmp_path):
        with pytest.raises(ValueError, match="not found"):
            resolve_run_all(str(tmp_path / "nope.json"))
        self._write(
            tmp_path / "run_all.json", {"configs": ["ghost.json"]}
        )
        with pytest.raises(ValueError, match="missing config"):
            resolve_run_all(str(tmp_path))

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no campaign configs"):
            resolve_run_all(str(tmp_path))

    def test_shipped_manifest_resolves(self):
        name, configs = resolve_run_all("configs")
        assert name == "run-all"
        assert [os.path.basename(c) for c in configs] == [
            "figure1.json", "table1.json", "ablations.json", "faults.json",
        ]


class TestFabricCLI:
    def _config(self, tmp_path, rows=None):
        path = tmp_path / "campaign.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({
                "name": "clifab",
                "rows": rows or [{"row": "path", "sizes": [8], "seeds": [0, 1]}],
            }, handle)
        return str(path)

    def test_run_workers_flag_uses_fabric(self, tmp_path, capsys):
        config = self._config(tmp_path)
        out = str(tmp_path / "out")
        assert main([
            "campaign", "run", config, "--out", out, "--workers", "2",
        ]) == 0
        stdout = capsys.readouterr().out
        assert "worker(s)" in stdout and "quarantined" in stdout
        assert os.path.exists(os.path.join(out, "events.jsonl"))

    def test_status_watch_and_report_events(self, tmp_path, capsys):
        config = self._config(tmp_path)
        out = str(tmp_path / "out")
        main(["campaign", "run", config, "--out", out, "--workers", "2"])
        capsys.readouterr()
        assert main([
            "campaign", "status", config, "--out", out, "--watch",
        ]) == 0
        assert "fabric finished" in capsys.readouterr().out
        assert main([
            "campaign", "report", config, "--out", out, "--events",
        ]) == 0
        assert "fabric events:" in capsys.readouterr().out

    def test_run_all_cli(self, tmp_path, capsys):
        self._config(tmp_path)
        os.rename(tmp_path / "campaign.json", tmp_path / "one.json")
        out_root = str(tmp_path / "campaigns")
        assert main([
            "campaign", "run-all", str(tmp_path / "one.json"),
            "--out-root", out_root, "--workers", "2",
        ]) == 0
        stdout = capsys.readouterr().out
        assert "run-all" in stdout and "all ok" in stdout
        assert os.path.exists(
            os.path.join(out_root, "clifab", "results.jsonl")
        )

    def test_store_compact_cli(self, tmp_path, capsys):
        store = _store(tmp_path)
        store.append(make_record("a", {}, "error", error="x"))
        store.append(make_record("a", {}, "ok", result={}))
        assert main(["store", "compact", str(tmp_path)]) == 0
        assert "2 -> 1" in capsys.readouterr().out

    def test_store_merge_cli_prefers_ok(self, tmp_path, capsys):
        dest = _store(tmp_path / "dest")
        dest.append(make_record("a", {}, "error", error="x"))
        src = _store(tmp_path / "src")
        src.append(make_record("a", {}, "ok", result={}))
        src.append(make_record("b", {}, "error", error="y"))
        assert main([
            "store", "merge", str(tmp_path / "dest"), str(tmp_path / "src"),
        ]) == 0
        assert "2 cell(s)" in capsys.readouterr().out
        merged = dest.load()
        assert merged["a"]["status"] == "ok"
        assert merged["b"]["status"] == "error"

    def test_store_compact_missing_store(self, tmp_path, capsys):
        assert main(["store", "compact", str(tmp_path / "ghost.jsonl")]) == 2
        assert "not found" in capsys.readouterr().out


class TestRunnerConfigSurface:
    def test_runner_fields_validate(self):
        ExecutionConfig(workers=4, retries=0, heartbeat=0.0)  # all legal
        with pytest.raises(ExecutionConfigError, match="workers"):
            ExecutionConfig(workers=0)
        with pytest.raises(ExecutionConfigError, match="retries"):
            ExecutionConfig(retries=-1)
        with pytest.raises(ExecutionConfigError, match="heartbeat"):
            ExecutionConfig(heartbeat=-0.5)
        with pytest.raises(ExecutionConfigError, match="heartbeat"):
            ExecutionConfig(heartbeat=True)

    def test_runner_fields_are_not_cell_options(self):
        from repro.sim.config import validate_execution_options

        with pytest.raises(ExecutionConfigError, match="workers"):
            validate_execution_options({"workers": 2})
        with pytest.raises(ExecutionConfigError, match="heartbeat"):
            validate_execution_options({"heartbeat": 0.1})

    def test_engine_rejects_runner_fields(self):
        from repro.graphs import path_graph
        from repro.sim import Knowledge

        config = ExecutionConfig(workers=2)
        with pytest.raises(ExecutionConfigError, match="campaign fabric"):
            Simulator(
                path_graph(4), LOCAL,
                knowledge=Knowledge(n=4, max_degree=2, diameter=3),
                exec_config=config,
            )

    def test_bench_rejects_runner_fields(self):
        from repro.experiments.bench import validate_bench_config

        with pytest.raises(ExecutionConfigError, match="fabric"):
            validate_bench_config(ExecutionConfig(workers=2))

    def test_fabric_rejects_zero_workers(self, tmp_path):
        spec = _spec([{"row": "path", "sizes": [8], "seeds": [0]}])
        with pytest.raises(ValueError, match="workers"):
            run_campaign_fabric(spec, _store(tmp_path), workers=0)

    def test_cli_flags_route_to_fabric_defaults(self):
        from repro.sim.config import runner_overrides

        parser_args = type("A", (), {
            "workers": 3, "retries": None, "heartbeat": 0.5,
        })()
        assert runner_overrides(parser_args) == {
            "workers": 3, "heartbeat": 0.5,
        }


class TestSizesScaleClamp:
    def test_family_minimums_cover_all_families(self):
        assert set(GRAPH_FAMILY_MIN_SIZES) == set(GRAPH_FAMILIES)
        assert GRAPH_FAMILY_MIN_SIZES["cycle"] == 3

    def test_row_min_size_for_cycle_rows(self):
        for row in ("dtime", "det-local", "det-cd"):
            assert row_min_size(row) == 3
        assert row_min_size("path") == 2

    def test_scale_clamps_to_family_minimum(self):
        def fake_row(sizes=(32, 64, 128), seeds=(0,)):
            return None

        kwargs = _row_overrides(fake_row, None, 0.01, min_size=3)
        assert kwargs["sizes"] == (3,)  # min-2 would have crashed a cycle
        kwargs = _row_overrides(fake_row, None, 0.01, min_size=2)
        assert kwargs["sizes"] == (2,)

    def test_cycle_family_rejects_n2(self):
        from repro.graphs import cycle_graph

        with pytest.raises(ValueError):
            cycle_graph(2)
        cycle_graph(3)  # the clamped minimum really is buildable
