"""Tests for the batched-trial execution layer (repro.sim.batch)."""

from __future__ import annotations

import random

from repro.broadcast import run_broadcast, run_broadcast_trials
from repro.broadcast.flooding import decay_broadcast_protocol
from repro.graphs import path_graph, random_gnp
from repro.sim import (
    NO_CD,
    ExecutionConfig,
    Idle,
    Knowledge,
    Listen,
    Send,
    Simulator,
    run_trials,
)
from repro.sim.models import LossyModel


def _chatter(ctx):
    for _ in range(6):
        if ctx.rng.random() < 0.4:
            yield Send(("m", ctx.index))
        elif ctx.rng.random() < 0.5:
            yield Listen()
        else:
            yield Idle(2)
    return ctx.rng.random()


class TestRunTrials:
    def test_matches_per_seed_simulators(self):
        graph = random_gnp(8, 0.4, random.Random(1))
        seeds = [0, 3, 7, 11]
        batched = run_trials(graph, NO_CD, _chatter, seeds)
        assert [r.seed for r in batched] == seeds
        for seed, result in zip(seeds, batched):
            solo = Simulator(graph, NO_CD, seed=seed).run(_chatter)
            assert result.outputs == solo.outputs
            assert result.duration == solo.duration
            assert [e.total for e in result.energy] == [
                e.total for e in solo.energy
            ]
            assert result.finish_slot == solo.finish_slot

    def test_empty_seed_list(self):
        assert run_trials(path_graph(2), NO_CD, _chatter, []) == []

    def test_model_factory_gives_fresh_channel_state_per_trial(self):
        graph = path_graph(5)
        factory = lambda seed: LossyModel(NO_CD, 0.4, seed=seed)
        batched = run_trials(
            graph, NO_CD, _chatter, [2, 5],
            exec_config=ExecutionConfig(model_factory=factory),
        )
        for seed, result in zip([2, 5], batched):
            solo = Simulator(graph, factory(seed), seed=seed).run(_chatter)
            assert result.outputs == solo.outputs

    def test_trials_are_independent_of_batch_order(self):
        graph = path_graph(6)
        a = run_trials(graph, NO_CD, _chatter, [4, 9])
        b = run_trials(graph, NO_CD, _chatter, [9, 4])
        assert a[0].outputs == b[1].outputs
        assert a[1].outputs == b[0].outputs


class TestRunBroadcastTrials:
    def test_matches_run_broadcast(self):
        graph = path_graph(8)
        knowledge = Knowledge(n=8, max_degree=2, diameter=7)
        protocol = decay_broadcast_protocol(failure=0.02)
        seeds = (0, 1, 2)
        batch = run_broadcast_trials(
            graph, NO_CD, protocol, seeds, knowledge=knowledge
        )
        assert len(batch) == len(seeds)
        for seed, outcome in zip(seeds, batch):
            solo = run_broadcast(
                graph, NO_CD, protocol, seed=seed, knowledge=knowledge
            )
            assert outcome.delivered == solo.delivered
            assert outcome.duration == solo.duration
            assert outcome.max_energy == solo.max_energy
            assert outcome.informed == solo.informed

    def test_sweep_and_sharded_cells_agree(self):
        """The serial sweep (multi-seed batch) and the campaign path
        (single-seed batches) reduce to identical CellResults."""
        from repro.campaign.cells import knowledge_for, run_cell, run_cells

        graph = path_graph(8)
        protocol = decay_broadcast_protocol(failure=0.02)
        knowledge = knowledge_for(graph)
        seeds = (0, 1, 2)
        batched = run_cells(
            graph, NO_CD, protocol,
            label="row", size=8, seeds=seeds, knowledge=knowledge,
        )
        for seed, cell in zip(seeds, batched):
            solo = run_cell(
                graph, NO_CD, protocol,
                label="row", size=8, seed=seed, knowledge=knowledge,
            )
            assert cell == solo
