"""Tests for the initialization (dense renaming) substrate [29]."""

from __future__ import annotations

import pytest

from repro.graphs import clique
from repro.sim import CD_FD, Simulator
from repro.singlehop import initialization_protocol


class TestInitialization:
    @pytest.mark.parametrize("n", [2, 4, 16, 48])
    def test_ids_distinct(self, n):
        for seed in range(3):
            result = Simulator(clique(n), CD_FD, seed=seed).run(
                initialization_protocol()
            )
            ids = result.outputs
            assert None not in ids, f"n={n} seed={seed}: unclaimed station"
            assert len(set(ids)) == n

    def test_ids_dense(self):
        # Renaming space is O(n): max claimed ID bounded by
        # rounds * slots_factor * estimate = O(n log n) worst case, and in
        # practice a small multiple of n.
        n = 32
        result = Simulator(clique(n), CD_FD, seed=1).run(
            initialization_protocol()
        )
        assert max(result.outputs) <= 40 * n

    def test_energy_grows_slowly(self):
        energies = {}
        for n in (4, 64):
            result = Simulator(clique(n), CD_FD, seed=2).run(
                initialization_protocol()
            )
            energies[n] = max(e.total for e in result.energy)
        # 16x more stations must cost far less than 16x energy.
        assert energies[64] <= 4 * energies[4]

    def test_round_budget_respected(self):
        result = Simulator(clique(8), CD_FD, seed=0).run(
            initialization_protocol(rounds=5)
        )
        # With few rounds some station may fail; those that claimed are
        # still distinct.
        claimed = [i for i in result.outputs if i is not None]
        assert len(set(claimed)) == len(claimed)
