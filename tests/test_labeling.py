"""Tests for good-labeling utilities (Section 5 data model)."""

from __future__ import annotations

import pytest

from repro.core.labeling import (
    clusters_from_labeling,
    gl_diameter,
    gl_graph_edges,
    is_good_labeling,
    layer_zero,
)
from repro.graphs import Graph, cycle_graph, path_graph


def test_trivial_all_zero_is_good():
    g = path_graph(4)
    assert is_good_labeling(g, [0, 0, 0, 0])


def test_bfs_labels_are_good():
    g = path_graph(4)
    assert is_good_labeling(g, [0, 1, 2, 3])


def test_gap_is_not_good():
    g = path_graph(3)
    assert not is_good_labeling(g, [0, 2, 1])


def test_negative_or_wrong_length_rejected():
    g = path_graph(3)
    assert not is_good_labeling(g, [0, -1, 0])
    assert not is_good_labeling(g, [0, 1])


def test_layer_zero():
    assert layer_zero([0, 1, 0, 2]) == [0, 2]


def test_gl_edges_two_clusters_on_path():
    # 0 1 | 1 0 : two roots (0 and 3) whose layer-1 vertices are adjacent.
    g = path_graph(4)
    labels = [0, 1, 1, 0]
    edges = gl_graph_edges(g, labels)
    assert edges == {(0, 3)}


def test_gl_edges_adjacent_roots():
    g = path_graph(2)
    labels = [0, 0]
    assert gl_graph_edges(g, labels) == {(0, 1)}


def test_gl_diameter_single_root_is_zero():
    g = path_graph(5)
    assert gl_diameter(g, [0, 1, 2, 3, 4]) == 0


def test_gl_diameter_chain_of_roots():
    # Roots at 0, 2, 4 on a path 0..4 with labels 0,1,0,1,0.
    g = path_graph(5)
    labels = [0, 1, 0, 1, 0]
    assert gl_diameter(g, labels) == 2


def test_clusters_from_labeling_partition():
    g = path_graph(6)
    labels = [0, 1, 2, 2, 1, 0]
    assignment = clusters_from_labeling(g, labels)
    assert assignment[0] == 0 and assignment[5] == 5
    assert assignment[1] == 0 and assignment[4] == 5
    assert set(assignment) <= {0, 5}


def test_clusters_rejects_bad_labeling():
    g = path_graph(3)
    with pytest.raises(ValueError):
        clusters_from_labeling(g, [0, 2, 1])


def test_cycle_labeling_good():
    g = cycle_graph(6)
    labels = [0, 1, 2, 3, 2, 1]
    assert is_good_labeling(g, labels)
    assert gl_diameter(g, labels) == 0
