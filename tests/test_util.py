"""Tests for numeric helpers."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import ceil_div, ceil_log2, floor_log2, geometric, max_or, mean, median


@given(st.integers(min_value=1, max_value=10**9))
def test_ceil_log2_definition(x):
    k = ceil_log2(x)
    assert 2**k >= x
    assert k == 0 or 2 ** (k - 1) < x


@given(st.integers(min_value=1, max_value=10**9))
def test_floor_log2_definition(x):
    k = floor_log2(x)
    assert 2**k <= x < 2 ** (k + 1)


def test_log_helpers_reject_nonpositive():
    with pytest.raises(ValueError):
        ceil_log2(0)
    with pytest.raises(ValueError):
        floor_log2(0)


@given(st.integers(min_value=0, max_value=1000), st.integers(min_value=1, max_value=50))
def test_ceil_div(a, b):
    assert ceil_div(a, b) == -(-a // b)
    assert ceil_div(a, b) * b >= a


def test_geometric_support_and_mean():
    rng = random.Random(7)
    samples = [geometric(rng, 0.5) for _ in range(4000)]
    assert min(samples) >= 1
    assert 1.8 < sum(samples) / len(samples) < 2.2


def test_geometric_p_one():
    rng = random.Random(0)
    assert all(geometric(rng, 1.0) == 1 for _ in range(10))


def test_geometric_rejects_bad_p():
    with pytest.raises(ValueError):
        geometric(random.Random(0), 0.0)
    with pytest.raises(ValueError):
        geometric(random.Random(0), 1.5)


def test_median_mean_max_or():
    assert median([3, 1, 2]) == 2
    assert median([4, 1, 2, 3]) == 2.5
    assert mean([1, 2, 3]) == 2
    assert max_or([], default=-1) == -1
    assert max_or([3, 5]) == 5
    with pytest.raises(ValueError):
        median([])
    with pytest.raises(ValueError):
        mean([])
