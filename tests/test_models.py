"""Unit tests for channel models, including the lossy wrapper."""

from __future__ import annotations

import pickle

import pytest

from repro.sim.feedback import BEEP, NOISE, SILENCE, is_message
from repro.sim.models import (
    BEEPING,
    CD,
    CD_FD,
    CD_STAR,
    LOCAL,
    MODELS,
    NEEDS_MESSAGES,
    NO_CD,
    NO_CD_FD,
    LossyModel,
)


class TestResolutionRules:
    def test_cd_cases(self):
        assert CD.resolve([]) is SILENCE
        assert CD.resolve(["m"]) == "m"
        assert CD.resolve(["a", "b"]) is NOISE

    def test_nocd_cases(self):
        assert NO_CD.resolve([]) is SILENCE
        assert NO_CD.resolve(["m"]) == "m"
        assert NO_CD.resolve(["a", "b"]) is SILENCE

    def test_cd_star_cases(self):
        assert CD_STAR.resolve([]) is SILENCE
        assert CD_STAR.resolve(["a", "b", "c"]) == "a"

    def test_local_cases(self):
        assert LOCAL.resolve([]) == ()
        assert LOCAL.resolve(["a", "b"]) == ("a", "b")

    def test_beeping_cases(self):
        assert BEEPING.resolve([]) is SILENCE
        assert BEEPING.resolve(["anything"]) is BEEP

    def test_full_duplex_flags(self):
        assert LOCAL.full_duplex
        assert CD_FD.full_duplex
        assert NO_CD_FD.full_duplex
        assert not CD.full_duplex
        assert not NO_CD.full_duplex

    def test_registry(self):
        assert MODELS["CD"] is CD
        assert MODELS["No-CD"] is NO_CD
        assert len(MODELS) == 7


class TestResolveCountFastPath:
    """resolve_count(k, first) must agree with resolve(list) everywhere:
    the engine's bitmask path depends on it."""

    def test_capability_flags(self):
        for model in (LOCAL, CD, NO_CD, CD_STAR, BEEPING, CD_FD, NO_CD_FD):
            assert model.supports_count
        assert not LossyModel(CD, 0.1).supports_count

    @pytest.mark.parametrize(
        "model", [LOCAL, CD, NO_CD, CD_STAR, BEEPING], ids=lambda m: m.name
    )
    def test_agrees_with_resolve(self, model):
        for k in range(5):
            transmissions = [f"m{i}" for i in range(k)]
            first = transmissions[0] if transmissions else None
            fast = model.resolve_count(k, first)
            if fast is NEEDS_MESSAGES:
                fast = model.resolve(transmissions)
            assert fast == model.resolve(transmissions)

    def test_local_needs_full_list_on_contention(self):
        assert LOCAL.resolve_count(0, None) == ()
        assert LOCAL.resolve_count(1, "m") == ("m",)
        assert LOCAL.resolve_count(2, "m") is NEEDS_MESSAGES

    def test_count_decides_without_messages(self):
        assert CD.resolve_count(2, None) is NOISE
        assert NO_CD.resolve_count(3, None) is SILENCE
        assert BEEPING.resolve_count(7, None) is BEEP
        assert CD_STAR.resolve_count(2, "lowest") == "lowest"


class TestFeedbackSentinels:
    def test_reprs(self):
        assert repr(SILENCE) == "SILENCE"
        assert repr(NOISE) == "NOISE"
        assert repr(BEEP) == "BEEP"

    def test_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(SILENCE)) is SILENCE
        assert pickle.loads(pickle.dumps(NOISE)) is NOISE

    def test_is_message(self):
        assert is_message("m")
        assert is_message(("tuple", 1))
        assert not is_message(SILENCE)
        assert not is_message(NOISE)
        assert not is_message(BEEP)
        assert not is_message(None)
        assert not is_message(())  # empty LOCAL reception


class TestLossyModel:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            LossyModel(CD, 1.1)
        with pytest.raises(ValueError):
            LossyModel(CD, -0.1)
        # The bounds are inclusive: 0 and 1 are both legal rates.
        LossyModel(CD, 0.0)
        LossyModel(CD, 1.0)

    def test_seed_and_rng_are_exclusive(self):
        import random as _random

        with pytest.raises(ValueError, match="not both"):
            LossyModel(CD, 0.5, seed=1, rng=_random.Random(1))

    def test_zero_loss_matches_inner(self):
        lossy = LossyModel(CD, 0.0, seed=1)
        assert lossy.resolve(["m"]) == "m"
        assert lossy.resolve(["a", "b"]) is NOISE

    def test_drops_at_expected_rate(self):
        lossy = LossyModel(NO_CD, 0.5, seed=3)
        delivered = sum(
            1 for _ in range(2000) if lossy.resolve(["m"]) == "m"
        )
        assert 850 < delivered < 1150

    def test_collision_can_become_message_under_loss(self):
        # The harsh mode: a two-party collision may deliver one message.
        lossy = LossyModel(CD, 0.5, seed=5)
        outcomes = {
            str(lossy.resolve(["a", "b"])) for _ in range(200)
        }
        assert "a" in outcomes or "b" in outcomes
        assert "NOISE" in outcomes

    def test_inherits_duplex_flag(self):
        assert LossyModel(LOCAL, 0.1).full_duplex
        assert not LossyModel(CD, 0.1).full_duplex


class TestLossyEndToEnd:
    def test_decay_broadcast_survives_mild_loss(self):
        from repro.broadcast import decay_broadcast_protocol, run_broadcast
        from repro.graphs import path_graph
        from repro.sim import Knowledge

        n = 10
        graph = path_graph(n)
        model = LossyModel(NO_CD, 0.1, seed=7)
        out = run_broadcast(
            graph, model, decay_broadcast_protocol(failure=0.005),
            knowledge=Knowledge(n=n, max_degree=2, diameter=n - 1), seed=2,
        )
        assert out.delivered

    def test_clustering_broadcast_survives_mild_loss(self):
        from repro.broadcast import (
            cluster_broadcast_protocol,
            run_broadcast,
            theorem11_params,
        )
        from repro.graphs import grid_graph
        from repro.graphs.properties import diameter
        from repro.sim import Knowledge

        graph = grid_graph(3, 3)
        model = LossyModel(LOCAL, 0.05, seed=11)
        params = theorem11_params(graph.n, "LOCAL", failure=0.01)
        # LOCAL loses its collision-freeness guarantee under erasure, but
        # the cast schedule has enough redundancy for mild rates.
        out = run_broadcast(
            graph, model, cluster_broadcast_protocol(params),
            knowledge=Knowledge(
                n=graph.n, max_degree=graph.max_degree, diameter=diameter(graph)
            ),
            seed=4,
        )
        assert out.informed >= graph.n - 1
