"""Tests for growth-rate analysis + an integration check on real sweeps."""

from __future__ import annotations

import math

import pytest

from repro.experiments.analysis import crossover_size, fit_log_power, fit_power_law
from repro.experiments.harness import SweepPoint


def _point(n, energy, time=0.0):
    return SweepPoint(
        label="x", n=n, max_degree=4, diameter=n // 2, seeds=1, delivered=1,
        time_median=time, max_energy_median=energy, mean_energy_median=energy,
    )


class TestFits:
    def test_linear_growth_has_exponent_one(self):
        points = [_point(n, 3.0 * n) for n in (8, 16, 32, 64)]
        assert fit_power_law(points) == pytest.approx(1.0, abs=0.01)

    def test_quadratic_growth(self):
        points = [_point(n, n * n) for n in (8, 16, 32)]
        assert fit_power_law(points) == pytest.approx(2.0, abs=0.01)

    def test_logarithmic_growth_has_small_exponent(self):
        points = [_point(n, 5 * math.log(n)) for n in (16, 64, 256, 1024)]
        assert fit_power_law(points) < 0.35

    def test_log_power_fit(self):
        points = [_point(n, math.log(n) ** 3) for n in (16, 64, 256, 1024)]
        assert fit_log_power(points) == pytest.approx(3.0, abs=0.2)

    def test_time_metric_selector(self):
        points = [_point(n, 1.0, time=n) for n in (8, 16, 32)]
        assert fit_power_law(
            points, metric=lambda p: p.time_median
        ) == pytest.approx(1.0, abs=0.01)

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([_point(8, 10)])

    def test_degenerate_x_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([_point(8, 10), _point(8, 20)])


class TestCrossover:
    def test_finds_first_win(self):
        ours = [_point(n, 10 * math.log(n)) for n in (8, 16, 32, 64)]
        theirs = [_point(n, n) for n in (8, 16, 32, 64)]
        # 10 ln(n) dips below n between 32 and 64.
        assert crossover_size(ours, theirs) == 64

    def test_none_when_never_wins(self):
        ours = [_point(n, n * 2) for n in (8, 16)]
        theirs = [_point(n, n) for n in (8, 16)]
        assert crossover_size(ours, theirs) is None

    def test_ignores_uncommon_sizes(self):
        ours = [_point(8, 1), _point(99, 1)]
        theirs = [_point(8, 2)]
        assert crossover_size(ours, theirs) == 8


class TestIntegrationWithRealSweeps:
    def test_path_algorithm_energy_sublinear(self):
        from repro.broadcast.path import path_broadcast_protocol
        from repro.experiments.harness import sweep
        from repro.graphs import path_graph
        from repro.sim import LOCAL

        points = sweep(
            "path", path_graph, (32, 128, 512),
            lambda g: path_broadcast_protocol(oriented=True),
            LOCAL, seeds=(0, 1, 2),
        )
        exponent = fit_power_law(points, metric=lambda p: p.mean_energy_median)
        assert exponent < 0.45  # O(log n), not polynomial

    def test_path_algorithm_time_linear(self):
        from repro.broadcast.path import path_broadcast_protocol
        from repro.experiments.harness import sweep
        from repro.graphs import path_graph
        from repro.sim import LOCAL

        points = sweep(
            "path", path_graph, (32, 128, 512),
            lambda g: path_broadcast_protocol(oriented=True),
            LOCAL, seeds=(0, 1),
        )
        exponent = fit_power_law(points, metric=lambda p: p.time_median)
        assert 0.8 <= exponent <= 1.2  # Theta(n)

    def test_decay_energy_tracks_diameter(self):
        from repro.broadcast import decay_broadcast_protocol
        from repro.experiments.harness import sweep
        from repro.graphs import path_graph
        from repro.sim import NO_CD

        points = sweep(
            "decay", path_graph, (16, 64, 256),
            lambda g: decay_broadcast_protocol(failure=0.02),
            NO_CD, seeds=(0,),
        )
        exponent = fit_power_law(points)
        assert exponent > 0.6  # near-linear in D = n-1
