"""Tests for the D^{1+eps} broadcast (Section 6, Theorem 16)."""

from __future__ import annotations

import pytest

from repro.broadcast import run_broadcast
from repro.broadcast.dtime import DTimeParams, dtime_broadcast_protocol
from repro.core.labeling import is_good_labeling
from repro.graphs import cycle_graph, grid_graph, path_graph
from repro.sim import NO_CD, Simulator

from tests.conftest import knowledge_for


def _fast_params(iterations):
    return lambda n, d: DTimeParams.for_graph(
        n, d, beta=0.4, iterations=iterations, contention=2, reps=4, failure=0.05
    )


class TestDTimeParams:
    def test_defaults_derive_from_epsilon(self):
        small = DTimeParams.for_graph(256, 32, epsilon=0.5)
        assert 0 < small.beta <= 0.3
        assert small.iterations >= 1
        assert small.reps >= small.contention

    def test_more_iterations_shrink_final_diameter_budget(self):
        few = DTimeParams.for_graph(256, 64, beta=0.25, iterations=1)
        many = DTimeParams.for_graph(256, 64, beta=0.25, iterations=6)
        assert many.gl_diameter_bound <= few.gl_diameter_bound

    def test_epoch_count(self):
        params = DTimeParams.for_graph(64, 8, beta=0.5)
        assert params.epochs(64) == 2 * 6 // 0.5 // 1  # 2*log2(64)/beta = 24


class TestDTimeBroadcast:
    @pytest.mark.parametrize("maker", [
        lambda: cycle_graph(10),
        lambda: grid_graph(3, 4),
        lambda: path_graph(9),
    ])
    def test_delivers_one_iteration(self, maker):
        g = maker()
        out = run_broadcast(
            g, NO_CD, dtime_broadcast_protocol(_fast_params(1)),
            knowledge=knowledge_for(g), seed=3,
        )
        assert out.delivered

    def test_delivers_two_iterations(self):
        g = grid_graph(4, 4)
        out = run_broadcast(
            g, NO_CD, dtime_broadcast_protocol(_fast_params(2)),
            knowledge=knowledge_for(g), seed=7,
        )
        assert out.delivered

    def test_statistical_delivery(self):
        g = cycle_graph(12)
        k = knowledge_for(g)
        good = sum(
            run_broadcast(
                g, NO_CD, dtime_broadcast_protocol(_fast_params(2)),
                knowledge=k, seed=s,
            ).delivered
            for s in range(5)
        )
        assert good >= 4

    def test_final_labels_form_good_labeling(self):
        g = cycle_graph(10)
        proto = dtime_broadcast_protocol(_fast_params(2), return_labels=True)
        sim = Simulator(g, NO_CD, seed=5)
        result = sim.run(proto, inputs={0: {"source": True, "payload": "m"}})
        labels = [out[2] for out in result.outputs]
        assert is_good_labeling(g, labels)

    def test_clusters_coarsen_with_iterations(self):
        g = cycle_graph(12)

        def count_clusters(iterations, seed):
            proto = dtime_broadcast_protocol(
                _fast_params(iterations), return_labels=True
            )
            result = Simulator(g, NO_CD, seed=seed).run(
                proto, inputs={0: {"source": True, "payload": "m"}}
            )
            return len({out[1] for out in result.outputs})

        zero_like = count_clusters(1, 4)
        more = count_clusters(2, 4)
        assert more <= zero_like
