"""Tests for simulator auxiliaries: meters, traces, results, knowledge."""

from __future__ import annotations

import pytest

from repro.graphs import path_graph, star_graph
from repro.sim import (
    LOCAL,
    NO_CD,
    EnergyMeter,
    Idle,
    Knowledge,
    Listen,
    Send,
    Simulator,
    Trace,
    TraceEvent,
)


class TestEnergyMeter:
    def test_counters_and_total(self):
        meter = EnergyMeter()
        meter.charge_send(3)
        meter.charge_listen(5)
        meter.charge_duplex(9)
        assert meter.total == 3
        assert meter.last_active_slot == 9
        snapshot = meter.snapshot()
        assert snapshot.sends == 1
        assert snapshot.listens == 1
        assert snapshot.duplex == 1
        assert snapshot.total == 3
        assert snapshot.last_active_slot == 9

    def test_snapshot_is_immutable_copy(self):
        meter = EnergyMeter()
        meter.charge_send(0)
        snapshot = meter.snapshot()
        meter.charge_send(1)
        assert snapshot.sends == 1
        with pytest.raises(Exception):
            snapshot.sends = 99  # frozen dataclass


class TestTrace:
    def test_query_helpers(self):
        trace = Trace()
        trace.record(TraceEvent(0, 1, "send", "m"))
        trace.record(TraceEvent(1, 2, "listen", None, "m"))
        trace.record(TraceEvent(2, 2, "listen", None, None))
        assert len(trace) == 3
        assert [e.slot for e in trace.events_for(2)] == [1, 2]
        assert len(trace.sends()) == 1
        assert len(trace.receptions()) == 1
        assert trace.last_slot() == 2

    def test_empty_trace(self):
        trace = Trace()
        assert trace.last_slot() == -1
        assert trace.sends() == []


class TestSimResultMetrics:
    def test_energy_aggregates(self):
        def proto(ctx):
            if ctx.index == 0:
                yield Send("a")
                yield Send("b")
            else:
                yield Listen()
            return None

        result = Simulator(star_graph(3), NO_CD, seed=0).run(proto)
        assert result.max_energy == 2
        assert result.total_energy == 4
        assert result.mean_energy == pytest.approx(4 / 3)


class TestKnowledge:
    def test_ctx_exposes_knowledge(self):
        knowledge = Knowledge(n=5, max_degree=3, diameter=2, id_space=9)

        def proto(ctx):
            yield Idle(1)
            return (ctx.n, ctx.max_degree, ctx.diameter, ctx.id_space)

        result = Simulator(
            path_graph(5), NO_CD, seed=0, knowledge=knowledge
        ).run(proto)
        assert result.outputs[0] == (5, 3, 2, 9)

    def test_default_knowledge_from_graph(self):
        def proto(ctx):
            yield Idle(1)
            return (ctx.n, ctx.max_degree, ctx.diameter)

        result = Simulator(star_graph(4), NO_CD, seed=0).run(proto)
        assert result.outputs[0] == (4, 3, None)

    def test_ctx_time_tracks_schedule(self):
        def proto(ctx):
            times = [ctx.time]
            yield Send("x")
            times.append(ctx.time)
            yield Idle(10)
            times.append(ctx.time)
            yield Listen()
            times.append(ctx.time)
            return times

        result = Simulator(path_graph(2), LOCAL, seed=0).run(proto)
        assert result.outputs[0] == [0, 1, 11, 12]
