"""Tests for Partition(beta) (Section 6, Lemmas 14-15)."""

from __future__ import annotations

import statistics

import pytest

from repro.core.labeling import is_good_labeling
from repro.core.partition import (
    PartitionParams,
    partition_once,
    partition_result_clusters,
)
from repro.core.schemes import SRScheme
from repro.graphs import cycle_graph, grid_graph, path_graph
from repro.sim import NO_CD, Simulator


def _run_partition(graph, beta, seed, failure=0.02):
    params = PartitionParams(beta=beta, n=graph.n, failure=failure)
    scheme = SRScheme("No-CD", max(graph.max_degree, 1), failure=failure)

    def proto(ctx):
        out = yield from partition_once(ctx, scheme, params)
        return out

    return Simulator(graph, NO_CD, seed=seed).run(proto).outputs


class TestPartitionBasics:
    def test_every_vertex_clustered(self):
        outputs = _run_partition(cycle_graph(16), 0.3, seed=1)
        assert all(cluster is not None for cluster, _, _ in outputs)

    def test_centers_have_layer_zero_and_unique_tags(self):
        outputs = _run_partition(grid_graph(4, 4), 0.3, seed=2)
        members, layers = partition_result_clusters(outputs)
        for v, (cluster, layer, is_center) in enumerate(outputs):
            if is_center:
                assert layer == 0
        # Tags of distinct clusters differ (64-bit random tags).
        assert len(members) == len(set(members))

    def test_layers_form_good_labeling_within_clusters(self):
        graph = grid_graph(4, 4)
        outputs = _run_partition(graph, 0.4, seed=3)
        # Every non-center vertex has a same-cluster neighbor one layer
        # closer to the center.
        for v, (cluster, layer, is_center) in enumerate(outputs):
            if layer > 0:
                assert any(
                    outputs[u][0] == cluster and outputs[u][1] == layer - 1
                    for u in graph.neighbors(v)
                ), f"vertex {v} has no in-cluster parent"

    def test_params_validation(self):
        with pytest.raises(ValueError):
            PartitionParams(beta=0.0, n=8)
        with pytest.raises(ValueError):
            PartitionParams(beta=1.5, n=8)

    def test_epoch_count_scales_inverse_beta(self):
        fast = PartitionParams(beta=0.5, n=64)
        slow = PartitionParams(beta=0.1, n=64)
        assert slow.epochs > fast.epochs


class TestLemma14EdgeCutProbability:
    def test_cut_probability_scales_with_beta(self):
        # Lemma 14(1): Pr[edge cut] <= ~2 beta.  Check monotonicity and a
        # generous absolute bound on the cycle.
        graph = cycle_graph(32)
        rates = {}
        for beta in (0.15, 0.5):
            cut = 0
            total = 0
            for seed in range(6):
                outputs = _run_partition(graph, beta, seed=seed)
                clusters = [c for c, _, _ in outputs]
                for u, v in graph.edges:
                    total += 1
                    if clusters[u] != clusters[v]:
                        cut += 1
            rates[beta] = cut / total
        assert rates[0.15] < rates[0.5]
        assert rates[0.15] <= 2.5 * 0.15 + 0.1


class TestLemma15DiameterShrink:
    def test_cluster_count_grows_with_beta(self):
        graph = cycle_graph(40)
        counts = {}
        for beta in (0.1, 0.6):
            sizes = []
            for seed in range(4):
                outputs = _run_partition(graph, beta, seed=seed)
                members, _ = partition_result_clusters(outputs)
                sizes.append(len(members))
            counts[beta] = statistics.mean(sizes)
        assert counts[0.1] < counts[0.6]

    def test_cluster_graph_diameter_shrinks(self):
        # Contracting clusters of a path must shrink hop distance markedly.
        graph = path_graph(48)
        beta = 0.25
        for seed in range(3):
            outputs = _run_partition(graph, beta, seed=seed)
            clusters = [c for c, _, _ in outputs]
            # Path cluster graph diameter = #distinct consecutive runs - 1.
            runs = 1
            for i in range(1, graph.n):
                if clusters[i] != clusters[i - 1]:
                    runs += 1
            assert runs - 1 <= max(4, 3 * beta * (graph.n - 1))
