"""Lock-step batched trials must be byte-identical to serial trials.

Also covers the batch-layer satellites: the per-seed observer factory,
the shared-stateful-model warning, and the ContentionHistogramObserver
analytics ride-along.
"""

from __future__ import annotations

import random

import pytest

import repro.sim.batch as batch_module
from repro.graphs import clique, path_graph, random_gnp, star_graph
from repro.sim import (
    ExecutionConfig,
    BEEPING,
    CD,
    CD_STAR,
    LOCAL,
    NO_CD,
    ContentionHistogramObserver,
    Idle,
    Listen,
    Send,
    numpy_available,
    run_trials,
)
from repro.sim.models import LossyModel

FIVE_MODELS = {
    "LOCAL": LOCAL,
    "CD": CD,
    "No-CD": NO_CD,
    "CD*": CD_STAR,
    "BEEP": BEEPING,
}

RESOLUTIONS = ("bitmask", "list") + (("numpy",) if numpy_available() else ())


def _random_protocol(steps: int):
    def protocol(ctx):
        heard = 0
        for step in range(steps):
            roll = ctx.rng.random()
            if roll < 0.3:
                yield Send(("m", ctx.index, step, heard))
            elif roll < 0.65:
                feedback = yield Listen()
                if feedback not in (None, ()) and not isinstance(feedback, str):
                    heard += 1
            else:
                yield Idle(1 + ctx.rng.randrange(4))
        return (ctx.index, heard)

    return protocol


def _assert_same_results(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.seed == y.seed
        assert x.outputs == y.outputs
        assert x.finish_slot == y.finish_slot
        assert x.duration == y.duration
        assert [e.total for e in x.energy] == [e.total for e in y.energy]
        assert [e.sends for e in x.energy] == [e.sends for e in y.energy]


class TestLockstepEquivalence:
    SEEDS = (0, 1, 2, 7, 11)

    @pytest.mark.parametrize("model_name", sorted(FIVE_MODELS))
    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    def test_models_by_resolution(self, model_name, resolution):
        model = FIVE_MODELS[model_name]
        graph = random_gnp(9, 0.5, random.Random(21))
        protocol = _random_protocol(14)
        serial = run_trials(graph, model, protocol, self.SEEDS)
        lockstep = run_trials(
            graph, model, protocol, self.SEEDS,
            exec_config=ExecutionConfig(lockstep=True, resolution=resolution),
        )
        _assert_same_results(serial, lockstep)

    def test_dense_contention(self):
        graph = clique(8)
        protocol = _random_protocol(12)
        for resolution in RESOLUTIONS:
            _assert_same_results(
                run_trials(graph, CD, protocol, self.SEEDS),
                run_trials(
                    graph, CD, protocol, self.SEEDS,
                    exec_config=ExecutionConfig(
                        lockstep=True, resolution=resolution
                    ),
                ),
            )

    def test_trials_finish_at_different_times(self):
        def protocol(ctx):
            # Runtime depends on the trial rng: trials leave the
            # lock-step band at different steps.
            for _ in range(2 + ctx.rng.randrange(12)):
                if ctx.rng.random() < 0.5:
                    yield Send("x")
                else:
                    yield Listen()
            return ctx.index

        graph = star_graph(5)
        serial = run_trials(graph, NO_CD, protocol, self.SEEDS)
        lockstep = run_trials(
            graph, NO_CD, protocol, self.SEEDS,
            exec_config=ExecutionConfig(lockstep=True),
        )
        _assert_same_results(serial, lockstep)

    def test_lossy_model_factory(self):
        graph = random_gnp(8, 0.5, random.Random(5))
        protocol = _random_protocol(12)
        factory = lambda seed: LossyModel(NO_CD, 0.4, seed=seed)
        serial = run_trials(
            graph, NO_CD, protocol, self.SEEDS,
            exec_config=ExecutionConfig(model_factory=factory),
        )
        for resolution in RESOLUTIONS:
            lockstep = run_trials(
                graph, NO_CD, protocol, self.SEEDS,
                exec_config=ExecutionConfig(
                    model_factory=factory, lockstep=True,
                    resolution=resolution,
                ),
            )
            _assert_same_results(serial, lockstep)

    def test_trace_recording_matches(self):
        graph = path_graph(6)
        protocol = _random_protocol(10)
        serial = run_trials(
            graph, NO_CD, protocol, (0, 3),
            exec_config=ExecutionConfig(record_trace=True),
        )
        lockstep = run_trials(
            graph, NO_CD, protocol, (0, 3),
            exec_config=ExecutionConfig(record_trace=True, lockstep=True),
        )
        for a, b in zip(serial, lockstep):
            assert list(a.trace) == list(b.trace)

    def test_empty_and_single_seed(self):
        graph = path_graph(3)
        protocol = _random_protocol(4)
        assert run_trials(
            graph, NO_CD, protocol, [],
            exec_config=ExecutionConfig(lockstep=True),
        ) == []
        _assert_same_results(
            run_trials(graph, NO_CD, protocol, [5]),
            run_trials(
                graph, NO_CD, protocol, [5],
                exec_config=ExecutionConfig(lockstep=True),
            ),
        )

    def test_broadcast_cell_lockstep(self):
        from repro.broadcast import run_broadcast_trials
        from repro.broadcast.flooding import decay_broadcast_protocol
        from repro.sim import Knowledge

        graph = path_graph(8)
        knowledge = Knowledge(n=8, max_degree=2, diameter=7)
        protocol = decay_broadcast_protocol(failure=0.02)
        seeds = (0, 1, 2)
        serial = run_broadcast_trials(
            graph, NO_CD, protocol, seeds, knowledge=knowledge
        )
        for resolution in RESOLUTIONS:
            lockstep = run_broadcast_trials(
                graph, NO_CD, protocol, seeds, knowledge=knowledge,
                exec_config=ExecutionConfig(
                    lockstep=True, resolution=resolution
                ),
            )
            for a, b in zip(serial, lockstep):
                assert a.delivered == b.delivered
                assert a.duration == b.duration
                assert a.max_energy == b.max_energy

    def test_shared_observers_rejected(self):
        from repro.sim import SlotObserver

        with pytest.raises(ValueError, match="observer_factory"):
            run_trials(
                path_graph(3), NO_CD, _random_protocol(3), (0, 1),
                observers=(SlotObserver(),),
                exec_config=ExecutionConfig(lockstep=True),
            )

    def test_shared_stateful_model_rejected(self):
        """A shared stateful channel cannot match the serial path under
        lock-step (rng consumption order changes), so it is refused
        instead of silently diverging."""
        model = LossyModel(NO_CD, 0.4, seed=7)
        with pytest.raises(ValueError, match="model_factory"):
            run_trials(
                clique(6), model, _random_protocol(6), (0, 1, 2),
                exec_config=ExecutionConfig(lockstep=True),
            )
        # A single seed has no interleaving: allowed and serial-identical.
        _assert_same_results(
            run_trials(clique(6), LossyModel(NO_CD, 0.4, seed=7),
                       _random_protocol(6), (0,)),
            run_trials(
                clique(6), LossyModel(NO_CD, 0.4, seed=7),
                _random_protocol(6), (0,),
                exec_config=ExecutionConfig(lockstep=True),
            ),
        )


class TestObserverFactory:
    def test_per_seed_observers_in_both_modes(self):
        graph = random_gnp(8, 0.5, random.Random(2))
        protocol = _random_protocol(10)
        seeds = (0, 1, 2)

        def collect(lockstep):
            observers = {}

            def factory(seed):
                observer = ContentionHistogramObserver(graph)
                observers[seed] = observer
                return (observer,)

            run_trials(
                graph, NO_CD, protocol, seeds,
                exec_config=ExecutionConfig(
                    observer_factory=factory, lockstep=lockstep
                ),
            )
            return {
                seed: observer.summary()
                for seed, observer in observers.items()
            }

        serial = collect(lockstep=False)
        lockstep = collect(lockstep=True)
        assert serial == lockstep
        assert set(serial) == set(seeds)
        assert all(s["active_slots"] > 0 for s in serial.values())


class TestStatefulReuseWarning:
    def test_warns_once_for_shared_stateful_model(self, monkeypatch):
        monkeypatch.setattr(batch_module, "_warned_stateful_reuse", False)
        graph = path_graph(4)
        protocol = _random_protocol(4)
        model = LossyModel(NO_CD, 0.3, seed=1)
        with pytest.warns(RuntimeWarning, match="stateful channel model"):
            run_trials(graph, model, protocol, (0, 1))
        # Second occurrence is silent (once per process).
        with _no_warning():
            run_trials(graph, model, protocol, (0, 1))

    def test_no_warning_with_model_factory_or_single_seed(self, monkeypatch):
        monkeypatch.setattr(batch_module, "_warned_stateful_reuse", False)
        graph = path_graph(4)
        protocol = _random_protocol(4)
        with _no_warning():
            run_trials(
                graph, NO_CD, protocol, (0, 1, 2),
                exec_config=ExecutionConfig(
                    model_factory=lambda seed: LossyModel(
                        NO_CD, 0.3, seed=seed
                    )
                ),
            )
        with _no_warning():
            run_trials(graph, LossyModel(NO_CD, 0.3, seed=1), protocol, (0,))
        with _no_warning():
            run_trials(graph, NO_CD, protocol, (0, 1, 2))


class _no_warning:
    """Assert no stateful-reuse warning is emitted inside the block."""

    def __enter__(self):
        import warnings

        self._catcher = warnings.catch_warnings(record=True)
        self._log = self._catcher.__enter__()
        warnings.simplefilter("always")
        return self._log

    def __exit__(self, *exc):
        self._catcher.__exit__(*exc)
        stateful = [
            w for w in self._log
            if "stateful channel model" in str(w.message)
        ]
        assert not stateful, stateful
        return False


class TestContentionHistogramObserver:
    def test_counts_on_crafted_slots(self):
        # Star with hub 0 and leaves 1..4: transmitters {1, 2} -> hub
        # sees k=2 (collision), an idle leaf sees k=0... exercised via a
        # deterministic protocol.
        graph = star_graph(5)

        def protocol(ctx):
            if ctx.index in (1, 2):
                yield Send("m")
            else:
                yield Listen()  # hub hears k=2; leaves 3,4 hear k=0
            if ctx.index == 3:
                yield Send("solo")
            elif ctx.index == 0:
                yield Listen()  # hub hears k=1
            return None

        observer = ContentionHistogramObserver(graph)
        run_trials(
            graph, NO_CD, protocol, (0,),
            exec_config=ExecutionConfig(
                observer_factory=lambda s: (observer,)
            ),
        )
        assert observer.active_slots == 2
        assert observer.load_histogram == {2: 1, 1: 1}
        assert observer.collisions == 1  # hub in slot 0
        assert observer.clean_receptions == 1  # hub in slot 1
        assert observer.silent_receptions == 2  # leaves 3, 4 in slot 0
        summary = observer.summary()
        assert summary["mean_load"] == 1.5
        assert summary["max_load"] == 2.0
        assert summary["collision_rate"] == 0.25

    def test_cell_extras_via_contention_hist(self):
        from repro.campaign.cells import run_cells
        from repro.broadcast.flooding import decay_broadcast_protocol

        graph = path_graph(8)
        cells = run_cells(
            graph, NO_CD, decay_broadcast_protocol(failure=0.02),
            label="row", size=8, seeds=(0, 1),
            exec_config=ExecutionConfig(contention_hist=True),
        )
        for cell in cells:
            assert cell.extras["ch_active_slots"] > 0
            assert 0.0 <= cell.extras["ch_collision_rate"] <= 1.0
        # The analytics ride-along must not perturb the measurement.
        plain = run_cells(
            graph, NO_CD, decay_broadcast_protocol(failure=0.02),
            label="row", size=8, seeds=(0, 1),
        )
        for cell, base in zip(cells, plain):
            assert cell.duration == base.duration
            assert cell.max_energy == base.max_energy
