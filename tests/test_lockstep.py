"""Lock-step batched trials must be byte-identical to serial trials.

Also covers the batch-layer satellites: the per-seed observer factory,
the shared-stateful-model warning, and the ContentionHistogramObserver
analytics ride-along.
"""

from __future__ import annotations

import random

import pytest

import repro.sim.batch as batch_module
import repro.sim.lockstep as lockstep_module
from repro.graphs import clique, path_graph, random_gnp, star_graph
from repro.sim import (
    ExecutionConfig,
    BEEPING,
    CD,
    CD_FD,
    CD_STAR,
    LOCAL,
    NO_CD,
    NO_CD_FD,
    ContentionHistogramObserver,
    Idle,
    Listen,
    ListenUntil,
    Repeat,
    Send,
    SendListen,
    SendProb,
    SimulationTimeout,
    Steps,
    numpy_available,
    run_trials,
)
from repro.sim.models import LossyModel
from repro.sim.observers import SlotObserver
from repro.sim.reference import ReferenceSimulator
from repro.sim.trialsoa import soa_engaged

FIVE_MODELS = {
    "LOCAL": LOCAL,
    "CD": CD,
    "No-CD": NO_CD,
    "CD*": CD_STAR,
    "BEEP": BEEPING,
}

RESOLUTIONS = ("bitmask", "list") + (("numpy",) if numpy_available() else ())


def _random_protocol(steps: int):
    def protocol(ctx):
        heard = 0
        for step in range(steps):
            roll = ctx.rng.random()
            if roll < 0.3:
                yield Send(("m", ctx.index, step, heard))
            elif roll < 0.65:
                feedback = yield Listen()
                if feedback not in (None, ()) and not isinstance(feedback, str):
                    heard += 1
            else:
                yield Idle(1 + ctx.rng.randrange(4))
        return (ctx.index, heard)

    return protocol


def _assert_same_results(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.seed == y.seed
        assert x.outputs == y.outputs
        assert x.finish_slot == y.finish_slot
        assert x.duration == y.duration
        assert [e.total for e in x.energy] == [e.total for e in y.energy]
        assert [e.sends for e in x.energy] == [e.sends for e in y.energy]


class TestLockstepEquivalence:
    SEEDS = (0, 1, 2, 7, 11)

    @pytest.mark.parametrize("model_name", sorted(FIVE_MODELS))
    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    def test_models_by_resolution(self, model_name, resolution):
        model = FIVE_MODELS[model_name]
        graph = random_gnp(9, 0.5, random.Random(21))
        protocol = _random_protocol(14)
        serial = run_trials(graph, model, protocol, self.SEEDS)
        lockstep = run_trials(
            graph, model, protocol, self.SEEDS,
            exec_config=ExecutionConfig(lockstep=True, resolution=resolution),
        )
        _assert_same_results(serial, lockstep)

    def test_dense_contention(self):
        graph = clique(8)
        protocol = _random_protocol(12)
        for resolution in RESOLUTIONS:
            _assert_same_results(
                run_trials(graph, CD, protocol, self.SEEDS),
                run_trials(
                    graph, CD, protocol, self.SEEDS,
                    exec_config=ExecutionConfig(
                        lockstep=True, resolution=resolution
                    ),
                ),
            )

    def test_trials_finish_at_different_times(self):
        def protocol(ctx):
            # Runtime depends on the trial rng: trials leave the
            # lock-step band at different steps.
            for _ in range(2 + ctx.rng.randrange(12)):
                if ctx.rng.random() < 0.5:
                    yield Send("x")
                else:
                    yield Listen()
            return ctx.index

        graph = star_graph(5)
        serial = run_trials(graph, NO_CD, protocol, self.SEEDS)
        lockstep = run_trials(
            graph, NO_CD, protocol, self.SEEDS,
            exec_config=ExecutionConfig(lockstep=True),
        )
        _assert_same_results(serial, lockstep)

    def test_lossy_model_factory(self):
        graph = random_gnp(8, 0.5, random.Random(5))
        protocol = _random_protocol(12)
        factory = lambda seed: LossyModel(NO_CD, 0.4, seed=seed)
        serial = run_trials(
            graph, NO_CD, protocol, self.SEEDS,
            exec_config=ExecutionConfig(model_factory=factory),
        )
        for resolution in RESOLUTIONS:
            lockstep = run_trials(
                graph, NO_CD, protocol, self.SEEDS,
                exec_config=ExecutionConfig(
                    model_factory=factory, lockstep=True,
                    resolution=resolution,
                ),
            )
            _assert_same_results(serial, lockstep)

    def test_trace_recording_matches(self):
        graph = path_graph(6)
        protocol = _random_protocol(10)
        serial = run_trials(
            graph, NO_CD, protocol, (0, 3),
            exec_config=ExecutionConfig(record_trace=True),
        )
        lockstep = run_trials(
            graph, NO_CD, protocol, (0, 3),
            exec_config=ExecutionConfig(record_trace=True, lockstep=True),
        )
        for a, b in zip(serial, lockstep):
            assert list(a.trace) == list(b.trace)

    def test_empty_and_single_seed(self):
        graph = path_graph(3)
        protocol = _random_protocol(4)
        assert run_trials(
            graph, NO_CD, protocol, [],
            exec_config=ExecutionConfig(lockstep=True),
        ) == []
        _assert_same_results(
            run_trials(graph, NO_CD, protocol, [5]),
            run_trials(
                graph, NO_CD, protocol, [5],
                exec_config=ExecutionConfig(lockstep=True),
            ),
        )

    def test_broadcast_cell_lockstep(self):
        from repro.broadcast import run_broadcast_trials
        from repro.broadcast.flooding import decay_broadcast_protocol
        from repro.sim import Knowledge

        graph = path_graph(8)
        knowledge = Knowledge(n=8, max_degree=2, diameter=7)
        protocol = decay_broadcast_protocol(failure=0.02)
        seeds = (0, 1, 2)
        serial = run_broadcast_trials(
            graph, NO_CD, protocol, seeds, knowledge=knowledge
        )
        for resolution in RESOLUTIONS:
            lockstep = run_broadcast_trials(
                graph, NO_CD, protocol, seeds, knowledge=knowledge,
                exec_config=ExecutionConfig(
                    lockstep=True, resolution=resolution
                ),
            )
            for a, b in zip(serial, lockstep):
                assert a.delivered == b.delivered
                assert a.duration == b.duration
                assert a.max_energy == b.max_energy

    def test_shared_observers_rejected(self):
        from repro.sim import SlotObserver

        with pytest.raises(ValueError, match="observer_factory"):
            run_trials(
                path_graph(3), NO_CD, _random_protocol(3), (0, 1),
                observers=(SlotObserver(),),
                exec_config=ExecutionConfig(lockstep=True),
            )

    def test_shared_stateful_model_rejected(self):
        """A shared stateful channel cannot match the serial path under
        lock-step (rng consumption order changes), so it is refused
        instead of silently diverging."""
        model = LossyModel(NO_CD, 0.4, seed=7)
        with pytest.raises(ValueError, match="model_factory"):
            run_trials(
                clique(6), model, _random_protocol(6), (0, 1, 2),
                exec_config=ExecutionConfig(lockstep=True),
            )
        # A single seed has no interleaving: allowed and serial-identical.
        _assert_same_results(
            run_trials(clique(6), LossyModel(NO_CD, 0.4, seed=7),
                       _random_protocol(6), (0,)),
            run_trials(
                clique(6), LossyModel(NO_CD, 0.4, seed=7),
                _random_protocol(6), (0,),
                exec_config=ExecutionConfig(lockstep=True),
            ),
        )


class TestObserverFactory:
    def test_per_seed_observers_in_both_modes(self):
        graph = random_gnp(8, 0.5, random.Random(2))
        protocol = _random_protocol(10)
        seeds = (0, 1, 2)

        def collect(lockstep):
            observers = {}

            def factory(seed):
                observer = ContentionHistogramObserver(graph)
                observers[seed] = observer
                return (observer,)

            run_trials(
                graph, NO_CD, protocol, seeds,
                exec_config=ExecutionConfig(
                    observer_factory=factory, lockstep=lockstep
                ),
            )
            return {
                seed: observer.summary()
                for seed, observer in observers.items()
            }

        serial = collect(lockstep=False)
        lockstep = collect(lockstep=True)
        assert serial == lockstep
        assert set(serial) == set(seeds)
        assert all(s["active_slots"] > 0 for s in serial.values())

    @pytest.mark.parametrize("lossy", (False, True), ids=("clean", "lossy"))
    def test_batch_observer_matches_per_slot(self, lossy):
        """ContentionHistogramObserver tallies identically through
        ``observe_matrix`` (SoA engine, numpy) and ``on_slot`` (per-trial
        driver, bitmask) — including under erasure, where the histogram
        must count *pre-drop* on-the-air transmissions."""
        graph = random_gnp(8, 0.5, random.Random(2))
        protocol = _random_protocol(10)
        seeds = (0, 1, 2)
        model_factory = (
            (lambda seed: LossyModel(NO_CD, 0.3, seed=seed))
            if lossy else None
        )

        def collect(resolution):
            observers = {}

            def factory(seed):
                observer = ContentionHistogramObserver(graph)
                observers[seed] = observer
                return (observer,)

            run_trials(
                graph, NO_CD, protocol, seeds,
                exec_config=ExecutionConfig(
                    observer_factory=factory, model_factory=model_factory,
                    lockstep=True, resolution=resolution,
                ),
            )
            return {
                seed: (observer.summary(), observer.load_histogram)
                for seed, observer in observers.items()
            }

        per_slot = collect("bitmask")
        if not numpy_available():
            return
        batched = collect("numpy")
        assert per_slot == batched


class TestStatefulReuseWarning:
    def test_warns_once_for_shared_stateful_model(self, monkeypatch):
        monkeypatch.setattr(batch_module, "_warned_stateful_reuse", False)
        graph = path_graph(4)
        protocol = _random_protocol(4)
        model = LossyModel(NO_CD, 0.3, seed=1)
        with pytest.warns(RuntimeWarning, match="stateful channel model"):
            run_trials(graph, model, protocol, (0, 1))
        # Second occurrence is silent (once per process).
        with _no_warning():
            run_trials(graph, model, protocol, (0, 1))

    def test_no_warning_with_model_factory_or_single_seed(self, monkeypatch):
        monkeypatch.setattr(batch_module, "_warned_stateful_reuse", False)
        graph = path_graph(4)
        protocol = _random_protocol(4)
        with _no_warning():
            run_trials(
                graph, NO_CD, protocol, (0, 1, 2),
                exec_config=ExecutionConfig(
                    model_factory=lambda seed: LossyModel(
                        NO_CD, 0.3, seed=seed
                    )
                ),
            )
        with _no_warning():
            run_trials(graph, LossyModel(NO_CD, 0.3, seed=1), protocol, (0,))
        with _no_warning():
            run_trials(graph, NO_CD, protocol, (0, 1, 2))


class _no_warning:
    """Assert no stateful-reuse warning is emitted inside the block."""

    def __enter__(self):
        import warnings

        self._catcher = warnings.catch_warnings(record=True)
        self._log = self._catcher.__enter__()
        warnings.simplefilter("always")
        return self._log

    def __exit__(self, *exc):
        self._catcher.__exit__(*exc)
        stateful = [
            w for w in self._log
            if "stateful channel model" in str(w.message)
        ]
        assert not stateful, stateful
        return False


class TestContentionHistogramObserver:
    def test_counts_on_crafted_slots(self):
        # Star with hub 0 and leaves 1..4: transmitters {1, 2} -> hub
        # sees k=2 (collision), an idle leaf sees k=0... exercised via a
        # deterministic protocol.
        graph = star_graph(5)

        def protocol(ctx):
            if ctx.index in (1, 2):
                yield Send("m")
            else:
                yield Listen()  # hub hears k=2; leaves 3,4 hear k=0
            if ctx.index == 3:
                yield Send("solo")
            elif ctx.index == 0:
                yield Listen()  # hub hears k=1
            return None

        observer = ContentionHistogramObserver(graph)
        run_trials(
            graph, NO_CD, protocol, (0,),
            exec_config=ExecutionConfig(
                observer_factory=lambda s: (observer,)
            ),
        )
        assert observer.active_slots == 2
        assert observer.load_histogram == {2: 1, 1: 1}
        assert observer.collisions == 1  # hub in slot 0
        assert observer.clean_receptions == 1  # hub in slot 1
        assert observer.silent_receptions == 2  # leaves 3, 4 in slot 0
        summary = observer.summary()
        assert summary["mean_load"] == 1.5
        assert summary["max_load"] == 2.0
        assert summary["collision_rate"] == 0.25

    def test_cell_extras_via_contention_hist(self):
        from repro.campaign.cells import run_cells
        from repro.broadcast.flooding import decay_broadcast_protocol

        graph = path_graph(8)
        cells = run_cells(
            graph, NO_CD, decay_broadcast_protocol(failure=0.02),
            label="row", size=8, seeds=(0, 1),
            exec_config=ExecutionConfig(contention_hist=True),
        )
        for cell in cells:
            assert cell.extras["ch_active_slots"] > 0
            assert 0.0 <= cell.extras["ch_collision_rate"] <= 1.0
        # The analytics ride-along must not perturb the measurement.
        plain = run_cells(
            graph, NO_CD, decay_broadcast_protocol(failure=0.02),
            label="row", size=8, seeds=(0, 1),
        )
        for cell, base in zip(cells, plain):
            assert cell.duration == base.duration
            assert cell.max_energy == base.max_energy


# ---------------------------------------------------------------------------
# Trial-SoA engine (repro.sim.trialsoa)
# ---------------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


def _plan_rich_protocol(ctx):
    """Every vectorizable plan primitive, then an adaptive generator tail."""
    yield Idle(1 + ctx.index % 3)
    yield Repeat(Send(("r", ctx.index)), 1 + ctx.index % 2)
    yield SendProb(("p", ctx.index), 0.5, 3)
    match = yield ListenUntil(
        5,
        accept=lambda m: (
            isinstance(m, tuple) and len(m) >= 2
            and isinstance(m[1], int) and m[1] % 2 == 0
        ),
        pad=True,
    )
    feedbacks = yield Steps((Send(("s", ctx.index)), Idle(2), Listen()))
    heard = 0
    for _ in range(2 + ctx.rng.randrange(3)):
        if ctx.rng.random() < 0.5:
            fb = yield Listen()
            if fb not in (None, ()):
                heard += 1
        else:
            yield Send(("t", ctx.index, heard))
    return (ctx.index, repr(match), repr(feedbacks), heard)


def _mixed_fallback_protocol(ctx):
    """Some nodes never vectorize; others drop out of plans mid-run."""
    if ctx.index % 3 == 0:
        # Pure adaptive generator: stays on the per-cell fallback path
        # for its whole life even inside the SoA engine.
        for step in range(4 + ctx.rng.randrange(4)):
            if ctx.rng.random() < 0.4:
                yield Send(("a", ctx.index, step))
            else:
                yield Listen()
        return ("gen", ctx.index)
    # Plan prologue (vectorized), then back to the generator.
    yield Repeat(Send(("b", ctx.index)), 2)
    got = yield ListenUntil(3)
    if got is not None:
        yield Send(("echo", ctx.index))
    yield Idle(1 + ctx.rng.randrange(3))
    return ("plan", ctx.index, repr(got))


def _rng_heavy_protocol(steps: int):
    """Plans whose shape and parameters come from the node rng, ending
    with a raw draw that pins the exact stream position."""

    def protocol(ctx):
        total = 0
        for _ in range(steps):
            yield SendProb(("h", ctx.index), ctx.rng.random(), 1 + ctx.rng.randrange(3))
            fb = yield ListenUntil(1 + ctx.rng.randrange(2))
            if fb is not None:
                total += 1
        return (ctx.index, total, ctx.rng.random())

    return protocol


@pytest.mark.skipif(not numpy_available(), reason="SoA engine requires numpy")
class TestTrialSoADispatch:
    """run_trials_lockstep hands eligible batches to the SoA engine and
    keeps ineligible ones on the per-trial driver."""

    def _spy(self, monkeypatch):
        calls = []
        real = lockstep_module.run_trials_soa

        def spy(*args, **kwargs):
            calls.append(True)
            return real(*args, **kwargs)

        monkeypatch.setattr(lockstep_module, "run_trials_soa", spy)
        return calls

    def test_engages_on_numpy_resolution(self, monkeypatch):
        calls = self._spy(monkeypatch)
        run_trials(
            clique(6), NO_CD, _plan_rich_protocol, (0, 1),
            exec_config=ExecutionConfig(lockstep=True, resolution="numpy"),
        )
        assert calls

    def test_stays_off_for_fallback_configs(self, monkeypatch):
        calls = self._spy(monkeypatch)
        graph = clique(6)
        run_trials(
            graph, NO_CD, _plan_rich_protocol, (0, 1),
            exec_config=ExecutionConfig(lockstep=True, resolution="bitmask"),
        )
        run_trials(
            graph, NO_CD, _plan_rich_protocol, (0, 1),
            exec_config=ExecutionConfig(
                lockstep=True, resolution="numpy", record_trace=True
            ),
        )
        # A lossy factory over *mixed* inners cannot share one spec.
        run_trials(
            graph, NO_CD, _plan_rich_protocol, (0, 1),
            exec_config=ExecutionConfig(
                lockstep=True, resolution="numpy",
                model_factory=lambda seed: LossyModel(
                    NO_CD if seed % 2 else CD, 0.3, seed=seed
                ),
            ),
        )
        # Observers without the batch ABI need per-slot dict views.
        run_trials(
            graph, NO_CD, _plan_rich_protocol, (0, 1),
            exec_config=ExecutionConfig(
                lockstep=True, resolution="numpy",
                observer_factory=lambda seed: (SlotObserver(),),
            ),
        )
        assert not calls

    def test_engages_on_lossy_factory(self, monkeypatch):
        calls = self._spy(monkeypatch)
        results = run_trials(
            clique(6), NO_CD, _plan_rich_protocol, (0, 1),
            exec_config=ExecutionConfig(
                lockstep=True, resolution="numpy",
                model_factory=lambda seed: LossyModel(NO_CD, 0.3, seed=seed),
            ),
        )
        assert calls
        assert all(r.soa_reason == "ok" for r in results)

    def test_engages_with_batch_observers(self, monkeypatch):
        calls = self._spy(monkeypatch)
        graph = clique(6)
        results = run_trials(
            graph, NO_CD, _plan_rich_protocol, (0, 1),
            exec_config=ExecutionConfig(
                lockstep=True, resolution="numpy",
                observer_factory=lambda seed: (
                    ContentionHistogramObserver(graph),
                ),
            ),
        )
        assert calls
        assert all(r.soa_reason == "ok" for r in results)

    def test_soa_reason_surfaced(self):
        graph = clique(6)

        def reason(**kwargs):
            results = run_trials(
                graph, NO_CD, _plan_rich_protocol, (0, 1),
                exec_config=ExecutionConfig(lockstep=True, **kwargs),
            )
            reasons = {r.soa_reason for r in results}
            assert len(reasons) == 1
            return reasons.pop()

        assert reason(resolution="numpy") == "ok"
        assert reason(resolution="bitmask") == "resolution"
        assert reason(resolution="numpy", record_trace=True) == "record_trace"
        assert reason(
            resolution="numpy",
            observer_factory=lambda seed: (SlotObserver(),),
        ) == "observers"
        assert reason(
            resolution="numpy",
            model_factory=lambda seed: LossyModel(
                NO_CD if seed % 2 else CD, 0.3, seed=seed
            ),
        ) == "model_factory"
        # Non-lockstep paths leave the diagnostic unset.
        serial = run_trials(graph, NO_CD, _plan_rich_protocol, (0, 1))
        assert all(r.soa_reason is None for r in serial)

    def test_soa_engaged_predicate(self):
        assert soa_engaged(
            NO_CD, ExecutionConfig(lockstep=True, resolution="numpy")
        )
        assert not soa_engaged(
            NO_CD, ExecutionConfig(lockstep=True, resolution="bitmask")
        )
        assert not soa_engaged(
            NO_CD,
            ExecutionConfig(
                lockstep=True, resolution="numpy", record_trace=True
            ),
        )
        assert not soa_engaged(
            LossyModel(NO_CD, 0.3, seed=1),
            ExecutionConfig(lockstep=True, resolution="numpy"),
        )


class TestTrialSoAEquivalence:
    """Differential matrix for the SoA path.  Without numpy the same
    configs land on the per-trial driver, so the matrix stays valid on
    the no-numpy CI leg (it just pins a different engine pair)."""

    SEEDS = (0, 1, 2, 5, 9)

    @pytest.mark.parametrize("stepping", ("slot", "phase"))
    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    @pytest.mark.parametrize("model_name", sorted(FIVE_MODELS))
    def test_plan_matrix_vs_serial(self, model_name, resolution, stepping):
        model = FIVE_MODELS[model_name]
        graph = random_gnp(9, 0.5, random.Random(33))
        serial = run_trials(graph, model, _plan_rich_protocol, self.SEEDS)
        lockstep = run_trials(
            graph, model, _plan_rich_protocol, self.SEEDS,
            exec_config=ExecutionConfig(
                lockstep=True, resolution=resolution, stepping=stepping
            ),
        )
        _assert_same_results(serial, lockstep)

    @pytest.mark.parametrize("model_name", sorted(FIVE_MODELS))
    def test_plan_matrix_vs_reference(self, model_name):
        model = FIVE_MODELS[model_name]
        graph = random_gnp(9, 0.5, random.Random(33))
        lockstep = run_trials(
            graph, model, _plan_rich_protocol, self.SEEDS[:2],
            exec_config=ExecutionConfig(lockstep=True, resolution="numpy"),
        )
        for result in lockstep:
            ref = ReferenceSimulator(graph, model, seed=result.seed).run(
                _plan_rich_protocol
            )
            assert ref.outputs == result.outputs
            assert ref.duration == result.duration
            assert [e.total for e in ref.energy] == [
                e.total for e in result.energy
            ]

    @pytest.mark.parametrize("stepping", ("slot", "phase"))
    @pytest.mark.parametrize("resolution", RESOLUTIONS)
    @pytest.mark.parametrize("model_name", sorted(FIVE_MODELS))
    def test_lossy_matrix_vs_serial(self, model_name, resolution, stepping):
        # Under "numpy" this pins the vectorized drop-mask path against
        # the serial oracle for every inner model; under "bitmask"/"list"
        # it pins the per-trial fallback driver (and the whole matrix
        # stays valid on the no-numpy CI leg).
        inner = FIVE_MODELS[model_name]
        graph = random_gnp(8, 0.6, random.Random(12))
        factory = lambda seed: LossyModel(inner, 0.35, seed=seed)
        serial = run_trials(
            graph, inner, _plan_rich_protocol, self.SEEDS,
            exec_config=ExecutionConfig(model_factory=factory),
        )
        lockstep = run_trials(
            graph, inner, _plan_rich_protocol, self.SEEDS,
            exec_config=ExecutionConfig(
                model_factory=factory, lockstep=True,
                resolution=resolution, stepping=stepping,
            ),
        )
        _assert_same_results(serial, lockstep)

    @pytest.mark.parametrize("stepping", ("slot", "phase"))
    def test_mixed_generator_fallback(self, stepping):
        graph = star_graph(7)
        # Same stepping on both sides: gen_entries is a stepping-cost
        # metric, so it only matches within one stepping mode.
        serial = run_trials(
            graph, CD, _mixed_fallback_protocol, self.SEEDS,
            exec_config=ExecutionConfig(stepping=stepping),
        )
        lockstep = run_trials(
            graph, CD, _mixed_fallback_protocol, self.SEEDS,
            exec_config=ExecutionConfig(
                lockstep=True, resolution="numpy", stepping=stepping
            ),
        )
        _assert_same_results(serial, lockstep)
        for a, b in zip(serial, lockstep):
            assert a.gen_entries == b.gen_entries

    @pytest.mark.parametrize("model", (CD_FD, NO_CD_FD), ids=("CD_FD", "NO_CD_FD"))
    def test_full_duplex_send_listen(self, model):
        def protocol(ctx):
            fb = yield SendListen(("d", ctx.index))
            yield Repeat(SendListen(("rep", ctx.index)), 2)
            if ctx.index % 2:
                yield Listen()
            return (ctx.index, repr(fb))

        graph = clique(6)
        serial = run_trials(graph, model, protocol, self.SEEDS)
        lockstep = run_trials(
            graph, model, protocol, self.SEEDS,
            exec_config=ExecutionConfig(
                lockstep=True, resolution="numpy", stepping="phase"
            ),
        )
        _assert_same_results(serial, lockstep)

    @pytest.mark.parametrize("model_name", sorted(FIVE_MODELS))
    def test_send_none_payload(self, model_name):
        model = FIVE_MODELS[model_name]

        def protocol(ctx):
            if ctx.index == 0:
                yield Repeat(Send(None), 3)
                return "sender"
            got = yield ListenUntil(3, accept=lambda m: m is not None, pad=True)
            return (ctx.index, repr(got))

        graph = star_graph(5)
        serial = run_trials(graph, model, protocol, self.SEEDS[:3])
        lockstep = run_trials(
            graph, model, protocol, self.SEEDS[:3],
            exec_config=ExecutionConfig(lockstep=True, resolution="numpy"),
        )
        _assert_same_results(serial, lockstep)

    def test_meter_energy_off(self):
        graph = clique(6)
        serial = run_trials(
            graph, NO_CD, _plan_rich_protocol, self.SEEDS, meter_energy=False
        )
        lockstep = run_trials(
            graph, NO_CD, _plan_rich_protocol, self.SEEDS, meter_energy=False,
            exec_config=ExecutionConfig(lockstep=True, resolution="numpy"),
        )
        _assert_same_results(serial, lockstep)
        assert all(e.total == 0 for r in lockstep for e in r.energy)

    def test_timeout_message_parity(self):
        def forever(ctx):
            while True:
                yield Send(("f", ctx.index))

        graph = clique(4)

        def run(resolution):
            with pytest.raises(SimulationTimeout) as exc:
                run_trials(
                    graph, NO_CD, forever, (0, 1), time_limit=16,
                    exec_config=ExecutionConfig(
                        lockstep=True, resolution=resolution
                    ),
                )
            return str(exc.value)

        messages = {run(resolution) for resolution in RESOLUTIONS}
        assert len(messages) == 1  # SoA and per-trial drivers agree
        assert "seed" in messages.pop()


class TestTrialSoAProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=2, max_value=9),
        steps=st.integers(min_value=1, max_value=5),
        stepping=st.sampled_from(("slot", "phase")),
        loss_rate=st.sampled_from((0.0, 0.2, 0.6)),
    )
    def test_lossy_drop_mask_draw_order(
        self, seed, n, steps, stepping, loss_rate
    ):
        """The vectorized drop masks must consume each trial's channel
        rng in the serial order (receivers ascending, senders ascending,
        one draw per on-the-air transmission), and leave the rng at the
        serial position: the trailing draw after the run pins the exact
        number and order of draws on both engines."""
        graph = clique(n)
        protocol = _rng_heavy_protocol(steps)
        seeds = (seed, seed + 1)

        def run(lockstep):
            models = {
                s: LossyModel(NO_CD, loss_rate, seed=s) for s in seeds
            }
            results = run_trials(
                graph, NO_CD, protocol, seeds,
                exec_config=ExecutionConfig(
                    model_factory=models.__getitem__,
                    lockstep=lockstep, resolution="numpy",
                    stepping=stepping,
                ),
            )
            trailing = {s: models[s]._rng.random() for s in seeds}
            return results, trailing

        serial, serial_trailing = run(lockstep=False)
        lockstep, soa_trailing = run(lockstep=True)
        _assert_same_results(serial, lockstep)
        assert serial_trailing == soa_trailing
        for a, b in zip(serial, lockstep):
            assert a.gen_entries == b.gen_entries

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=2, max_value=9),
        steps=st.integers(min_value=1, max_value=5),
        stepping=st.sampled_from(("slot", "phase")),
    )
    def test_rng_draw_order_identity(self, seed, n, steps, stepping):
        """A final rng draw in the protocol return value pins the exact
        position of every node's random stream: any divergence in draw
        order between the engines shows up as a different output."""
        graph = clique(n)
        protocol = _rng_heavy_protocol(steps)
        seeds = (seed, seed + 1)
        serial = run_trials(
            graph, NO_CD, protocol, seeds,
            exec_config=ExecutionConfig(stepping=stepping),
        )
        lockstep = run_trials(
            graph, NO_CD, protocol, seeds,
            exec_config=ExecutionConfig(
                lockstep=True, resolution="numpy", stepping=stepping
            ),
        )
        _assert_same_results(serial, lockstep)
        for a, b in zip(serial, lockstep):
            assert a.gen_entries == b.gen_entries
