"""Tests for Section 3: Learn-degree, Two-Hop-Coloring, LOCAL simulation."""

from __future__ import annotations

import pytest

from repro.broadcast import run_broadcast
from repro.broadcast.local_sim import local_sim_broadcast_protocol
from repro.core.coloring import (
    ColoringParams,
    coloring_preprocess,
    learn_degree,
    simulate_local,
    two_hop_coloring,
)
from repro.graphs import bfs_distances, cycle_graph, grid_graph, path_graph
from repro.sim import NO_CD, Knowledge, Simulator
from repro.sim.actions import Idle, Listen, Send

from tests.conftest import knowledge_for


def _two_hop_conflicts(graph, colors):
    """Count pairs within distance <= 2 sharing a color."""
    conflicts = 0
    for v in range(graph.n):
        near = set()
        for u in graph.neighbors(v):
            near.add(u)
            near.update(graph.neighbors(u))
        near.discard(v)
        conflicts += sum(1 for u in near if colors[u] == colors[v])
    return conflicts // 2


class TestLearnDegree:
    def test_all_neighbors_learned_on_cycle(self):
        g = cycle_graph(10)
        params = ColoringParams(max_degree=2, n=g.n)

        def proto(ctx):
            my_id = 1000 + ctx.index
            heard = yield from learn_degree(ctx, params, my_id)
            return heard

        result = Simulator(g, NO_CD, seed=1).run(proto)
        for v in range(g.n):
            expected = {1000 + u for u in g.neighbors(v)}
            assert result.outputs[v] == expected

    def test_degree_matches(self):
        g = grid_graph(3, 3)
        params = ColoringParams(max_degree=4, n=g.n)

        def proto(ctx):
            heard = yield from learn_degree(ctx, params, ctx.index)
            return len(heard)

        result = Simulator(g, NO_CD, seed=2).run(proto)
        assert result.outputs == [g.degree(v) for v in range(g.n)]


class TestTwoHopColoring:
    @pytest.mark.parametrize("maker,seed", [(lambda: cycle_graph(12), 3),
                                            (lambda: grid_graph(3, 4), 5),
                                            (lambda: path_graph(9), 7)])
    def test_produces_proper_two_hop_coloring(self, maker, seed):
        g = maker()
        params = ColoringParams(max_degree=g.max_degree, n=g.n)

        def proto(ctx):
            color, neighbor_colors = yield from coloring_preprocess(ctx, params)
            return color

        colors = Simulator(g, NO_CD, seed=seed).run(proto).outputs
        assert _two_hop_conflicts(g, colors) == 0
        assert all(0 <= c < params.num_colors for c in colors)

    def test_neighbor_color_maps_are_consistent(self):
        g = cycle_graph(8)
        params = ColoringParams(max_degree=2, n=g.n)

        def proto(ctx):
            out = yield from coloring_preprocess(ctx, params)
            return out

        result = Simulator(g, NO_CD, seed=4).run(proto)
        colors = [out[0] for out in result.outputs]
        for v in range(g.n):
            _, neighbor_colors = result.outputs[v]
            assert sorted(neighbor_colors.values()) == sorted(
                colors[u] for u in g.neighbors(v)
            )


class TestSimulateLocal:
    def test_tdma_flood_matches_local_flood(self):
        # Simulate a trivial LOCAL flooding protocol through the TDMA layer
        # and check every vertex learns the message at the right round.
        g = cycle_graph(9)
        params = ColoringParams(max_degree=2, n=g.n)

        def inner_flood(ctx):
            payload = "m" if ctx.inputs.get("source") else None
            for _ in range(g.n):
                if payload is not None:
                    yield Send(payload)
                    break
                feedback = yield Listen()
                if feedback:
                    payload = feedback[0]
            return payload

        def proto(ctx):
            color, neighbor_colors = yield from coloring_preprocess(ctx, params)
            result = yield from simulate_local(
                ctx, inner_flood(ctx), params.num_colors, color, neighbor_colors
            )
            return result

        result = Simulator(g, NO_CD, seed=6).run(
            proto, inputs={0: {"source": True}}
        )
        assert result.outputs == ["m"] * g.n

    def test_idle_actions_cost_nothing_in_simulation(self):
        g = path_graph(3)
        params = ColoringParams(max_degree=2, n=g.n)

        def inner(ctx):
            yield Idle(5)
            return "ok"

        def proto(ctx):
            color, neighbor_colors = yield from coloring_preprocess(ctx, params)
            pre_energy = ctx.time  # slots so far are all preprocessing
            out = yield from simulate_local(
                ctx, inner(ctx), params.num_colors, color, neighbor_colors
            )
            return (out, pre_energy)

        result = Simulator(g, NO_CD, seed=1).run(proto)
        assert all(out[0] == "ok" for out in result.outputs)


class TestCorollary13:
    def test_broadcast_on_path(self):
        g = path_graph(10)
        out = run_broadcast(
            g, NO_CD, local_sim_broadcast_protocol(failure=0.01),
            knowledge=knowledge_for(g), seed=4,
        )
        assert out.delivered

    def test_broadcast_on_cycle(self):
        g = cycle_graph(11)
        out = run_broadcast(
            g, NO_CD, local_sim_broadcast_protocol(failure=0.01),
            knowledge=knowledge_for(g), seed=8,
        )
        assert out.delivered

    def test_energy_beats_direct_nocd_clustering(self):
        # Corollary 13's point: on bounded-degree graphs, simulating the
        # LOCAL algorithm is more energy-frugal than running the No-CD
        # clustering algorithm natively.
        from repro.broadcast import cluster_broadcast_protocol, theorem11_params

        g = path_graph(12)
        k = knowledge_for(g)
        sim_out = run_broadcast(
            g, NO_CD, local_sim_broadcast_protocol(failure=0.01),
            knowledge=k, seed=3,
        )
        native = run_broadcast(
            g, NO_CD,
            cluster_broadcast_protocol(theorem11_params(g.n, "No-CD", failure=0.01)),
            knowledge=k, seed=3,
        )
        assert sim_out.delivered and native.delivered
        assert sim_out.max_energy < native.max_energy
