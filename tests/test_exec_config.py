"""ExecutionConfig: the one validated, serializable execution API.

Four contracts are pinned here:

* **Validation** — invalid modes/types fail at construction with the
  allowed values, at every entry door (constructor, ``from_dict``,
  campaign JSON, CLI) — never mid-run inside an engine loop.
* **Round-trips** — ``to_dict``/``from_dict`` are inverses, campaign
  cell options and CLI args are views of the same schema, and
  ``EXECUTION_OPTION_KEYS`` / the CLI flag group are *derived* from the
  field definitions (no second hand-maintained list).
* **Key stability** — an execution option explicitly set to its default
  normalizes away, so it hashes (and resumes) identically to an omitted
  one.
* **Deprecation shims** — every legacy per-knob kwarg on the six
  execution signatures still works byte-identically, with a
  ``DeprecationWarning`` attributed to the caller.
"""

from __future__ import annotations

import argparse
import json

import pytest

from repro.broadcast.base import run_broadcast, run_broadcast_trials
from repro.campaign.cells import EXECUTION_OPTION_KEYS, run_cell, run_cells
from repro.campaign.spec import CampaignSpec, RowPlan
from repro.experiments.harness import sweep
from repro.graphs import clique
from repro.sim import (
    NO_CD,
    ExecutionConfig,
    Knowledge,
    Listen,
    Send,
    Simulator,
    add_execution_args,
    config_from_args,
    execution_overrides,
    normalize_execution_options,
    run_trials,
)
from repro.sim.feedback import is_message
from repro.sim.lockstep import run_trials_lockstep
from repro.sim.observers import SlotObserver


# --- shared workload: small, seed-sensitive, collision-bearing -------------

GRAPH = clique(3)
KNOWLEDGE = Knowledge(n=3, max_degree=2, diameter=1)
INPUTS = {0: {"source": True, "payload": "m"}}


def bcast_proto(ctx):
    """A tiny randomized relay: rng-dependent, so byte-identity is a
    real check, and every node returns the payload it learned (the
    broadcast protocol convention)."""
    if ctx.inputs.get("source"):
        payload = ctx.inputs["payload"]
        for _ in range(3):
            yield Send(payload)
        return payload
    got = None
    for _ in range(8):
        feedback = yield Listen()
        if is_message(feedback):
            got = feedback
            break
    if got is not None and ctx.rng.random() < 0.5:
        yield Send(got)
    return got


def snap(results):
    return [
        (r.outputs, r.duration, [e.total for e in r.energy], r.seed)
        for r in results
    ]


# --- construction validation ----------------------------------------------


class TestValidation:
    def test_defaults(self):
        config = ExecutionConfig()
        assert config.resolution == "bitmask"
        assert config.stepping == "phase"
        assert not config.lockstep
        assert config.time_limit is None
        assert config.meter_energy

    @pytest.mark.parametrize("field,value,expect", [
        ("resolution", "quantum", "bitmask"),
        ("stepping", "phse", "phase"),
    ])
    def test_bad_mode_lists_allowed_values(self, field, value, expect):
        with pytest.raises(ValueError, match=expect) as exc:
            ExecutionConfig(**{field: value})
        assert field in str(exc.value)
        assert repr(value) in str(exc.value)

    @pytest.mark.parametrize("field,value", [
        ("lockstep", "yes"),
        ("record_trace", 2),
        ("meter_energy", "on"),
        ("contention_hist", 1.0),
    ])
    def test_bool_fields_are_strict(self, field, value):
        with pytest.raises(ValueError, match=field):
            ExecutionConfig(**{field: value})

    @pytest.mark.parametrize("value", [0, -5, 2.5, True, "100"])
    def test_time_limit_must_be_positive_int(self, value):
        with pytest.raises(ValueError, match="time_limit"):
            ExecutionConfig(time_limit=value)

    @pytest.mark.parametrize("field", ["observer_factory", "model_factory"])
    def test_hooks_must_be_callable(self, field):
        with pytest.raises(ValueError, match=field):
            ExecutionConfig(**{field: "not-a-callable"})
        ExecutionConfig(**{field: lambda seed: None})  # fine

    def test_replace_revalidates(self):
        config = ExecutionConfig()
        with pytest.raises(ValueError, match="stepping"):
            config.replace(stepping="warp")
        assert config.replace(stepping="slot").stepping == "slot"
        assert config.stepping == "phase"  # frozen: original untouched

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="vectorize"):
            ExecutionConfig.from_dict({"vectorize": True})

    def test_exec_config_must_be_a_config(self):
        with pytest.raises(ValueError, match="ExecutionConfig"):
            Simulator(GRAPH, NO_CD, exec_config={"resolution": "list"})

    def test_simulator_rejects_batch_level_fields(self):
        with pytest.raises(ValueError, match="lockstep"):
            Simulator(GRAPH, NO_CD, exec_config=ExecutionConfig(lockstep=True))
        with pytest.raises(ValueError, match="contention_hist"):
            Simulator(
                GRAPH, NO_CD,
                exec_config=ExecutionConfig(contention_hist=True),
            )
        with pytest.raises(ValueError, match="observer_factory"):
            Simulator(
                GRAPH, NO_CD,
                exec_config=ExecutionConfig(observer_factory=lambda s: ()),
            )

    def test_run_trials_rejects_contention_hist(self):
        with pytest.raises(ValueError, match="contention_hist"):
            run_trials(
                GRAPH, NO_CD, bcast_proto, (0,), inputs=INPUTS,
                exec_config=ExecutionConfig(contention_hist=True),
            )


# --- schema derivation -----------------------------------------------------


class TestSchema:
    def test_option_keys_drive_campaign_schema(self):
        assert EXECUTION_OPTION_KEYS == ExecutionConfig.option_keys()
        assert set(EXECUTION_OPTION_KEYS) == {
            "resolution", "stepping", "lockstep", "contention_hist",
            "churn", "jam", "burst_loss",
        }

    def test_cli_flags_derive_from_schema(self):
        parser = argparse.ArgumentParser()
        add_execution_args(parser)
        text = parser.format_help()
        for spec in ExecutionConfig.field_specs():
            flag = "--" + spec.name.replace("_", "-")
            assert (flag in text) == bool(spec.metadata["cli"])

    def test_excluded_flags_are_absent(self):
        parser = argparse.ArgumentParser()
        add_execution_args(parser, exclude=("contention_hist", "lockstep"))
        text = parser.format_help()
        assert "--resolution" in text and "--stepping" in text
        assert "--contention-hist" not in text
        assert "--lockstep" not in text
        # Absent flags read as "not given" to the overrides layer.
        assert execution_overrides(parser.parse_args([])) == {}

    def test_single_run_subcommands_reject_unusable_flags_at_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        for argv in (
            ["figure1", "--contention-hist"],
            ["ablations", "--lockstep"],
            ["bench", "--contention-hist"],
        ):
            with pytest.raises(SystemExit):
                parser.parse_args(argv)

    def test_describe_names_every_field(self):
        text = ExecutionConfig.describe()
        for spec in ExecutionConfig.field_specs():
            assert spec.name in text


# --- serialization round-trips --------------------------------------------


class TestRoundTrip:
    def test_to_dict_is_minimal_by_default(self):
        assert ExecutionConfig().to_dict() == {}
        config = ExecutionConfig(resolution="list", lockstep=True)
        assert config.to_dict() == {"resolution": "list", "lockstep": True}

    def test_to_dict_include_defaults_covers_serializable_fields(self):
        data = ExecutionConfig().to_dict(include_defaults=True)
        assert set(data) == {
            "resolution", "stepping", "lockstep", "time_limit",
            "record_trace", "meter_energy", "contention_hist",
            "workers", "retries", "heartbeat",
            "churn", "jam", "burst_loss",
        }

    @pytest.mark.parametrize("include_defaults", [False, True])
    def test_from_dict_inverts_to_dict(self, include_defaults):
        config = ExecutionConfig(
            resolution="list", stepping="slot", time_limit=123,
        )
        data = config.to_dict(include_defaults=include_defaults)
        json.loads(json.dumps(data))  # JSON-safe
        assert ExecutionConfig.from_dict(data) == config

    def test_hooks_never_serialize(self):
        config = ExecutionConfig(
            observer_factory=lambda s: (), model_factory=lambda s: NO_CD,
        )
        assert config.to_dict(include_defaults=True).keys() == (
            ExecutionConfig().to_dict(include_defaults=True).keys()
        )

    def test_from_options_ignores_protocol_knobs(self):
        config = ExecutionConfig.from_options(
            {"failure": 0.1, "stepping": "slot", "epsilon": 0.5}
        )
        assert config == ExecutionConfig(stepping="slot")

    def test_campaign_json_round_trip(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({
            "name": "c",
            "rows": [{"row": "path", "sizes": [8], "seeds": [0],
                      "options": {"stepping": "slot", "lockstep": True}}],
        }))
        spec = CampaignSpec.from_json_file(str(path))
        (job,) = list(spec.jobs())
        assert job.options_dict == {"stepping": "slot", "lockstep": True}
        config = ExecutionConfig.from_options(job.options_dict)
        assert config.stepping == "slot" and config.lockstep

    def test_cli_args_round_trip(self):
        parser = argparse.ArgumentParser()
        add_execution_args(parser)
        args = parser.parse_args(
            ["--resolution", "list", "--lockstep", "--stepping", "slot"]
        )
        assert execution_overrides(args) == {
            "resolution": "list", "stepping": "slot", "lockstep": True,
        }
        config = config_from_args(args)
        assert config == ExecutionConfig(
            resolution="list", stepping="slot", lockstep=True
        )
        # Nothing given -> nothing overridden.
        empty = parser.parse_args([])
        assert execution_overrides(empty) == {}
        assert config_from_args(empty) == ExecutionConfig()
        # --no-lockstep is an explicit False (distinct from "not given")
        # so the CLI can override a cell option downward.
        off = parser.parse_args(["--no-lockstep"])
        assert execution_overrides(off) == {"lockstep": False}


# --- fail-fast campaign validation ----------------------------------------


class TestCampaignValidation:
    def _spec(self, options):
        return {
            "name": "bad",
            "rows": [{"row": "path", "sizes": [8], "seeds": [0],
                      "options": options}],
        }

    def test_bad_mode_rejected_at_load_with_allowed_values(self):
        with pytest.raises(ValueError, match="phase") as exc:
            CampaignSpec.from_dict(self._spec({"stepping": "phse"}))
        assert "'path'" in str(exc.value)

    def test_bad_bool_rejected_at_load(self):
        with pytest.raises(ValueError, match="lockstep"):
            CampaignSpec.from_dict(self._spec({"lockstep": "yes"}))

    @pytest.mark.parametrize("reserved", [
        "record_trace", "time_limit", "meter_energy", "observer_factory",
    ])
    def test_reserved_non_option_fields_rejected_at_load(self, reserved):
        # Execution fields that are not cell options must fail loudly,
        # not ride the content hash as silently ignored protocol knobs.
        with pytest.raises(ValueError, match=reserved):
            CampaignSpec.from_dict(self._spec({reserved: True}))

    def test_protocol_knobs_pass_through(self):
        spec = CampaignSpec.from_dict(self._spec({"failure": 0.1}))
        (job,) = list(spec.jobs())
        assert job.options_dict == {"failure": 0.1}

    def test_custom_cell_rows_honor_or_reject_execution_options(self):
        from repro.campaign.registry import execute_cell

        # The bare-Simulator ablation honors engine-level options...
        base = execute_cell("abl-beta", 12, 0, {"beta": 0.3})
        slot = execute_cell(
            "abl-beta", 12, 0, {"beta": 0.3, "stepping": "slot"}
        )
        assert (slot.duration, slot.max_energy, slot.extras) == (
            base.duration, base.max_energy, base.extras
        )
        # ...and fails loudly on batch-level ones it cannot deliver —
        # they are part of the cell's identity, so silently storing
        # default-execution results under that key would be a lie.
        for bad in ({"contention_hist": True}, {"lockstep": True}):
            with pytest.raises(ValueError):
                execute_cell("abl-beta", 12, 0, {"beta": 0.3, **bad})

    def test_custom_cell_unsupported_options_rejected_at_spec_validate(
        self, tmp_path, capsys
    ):
        # A campaign naming abl-beta with an option it cannot honor must
        # refuse before ANY cell runs — not fail every abl-beta cell
        # mid-run under an unsatisfiable identity.
        spec = CampaignSpec.from_dict({
            "name": "c",
            "rows": [{"row": "abl-beta", "sizes": [12], "seeds": [0],
                      "options": {"lockstep": True}}],
        })
        with pytest.raises(ValueError, match="lockstep"):
            spec.validate()
        # An option explicitly set to its default aliases an omitted
        # one (normalization), so it demands nothing of the row.
        CampaignSpec(
            name="c",
            rows=[RowPlan(row="abl-beta", sizes=(12,), seeds=(0,),
                          options={"lockstep": False})],
        ).validate()
        # Same via CLI flag injection: exit 2, nothing executed.
        from repro.cli import main

        config = tmp_path / "c.json"
        config.write_text(json.dumps({
            "name": "c",
            "rows": [{"row": "abl-beta", "sizes": [12], "seeds": [0]}],
        }))
        out = str(tmp_path / "out")
        assert main([
            "campaign", "run", str(config), "--out", out, "--lockstep",
        ]) == 2
        assert "abl-beta" in capsys.readouterr().out

    def test_validate_checks_programmatic_specs(self):
        spec = CampaignSpec(
            name="bad",
            rows=[RowPlan(row="path", sizes=(8,), seeds=(0,),
                          options={"resolution": "quantum"})],
        )
        with pytest.raises(ValueError, match="bitmask"):
            spec.validate()

    def test_cli_reports_bad_config_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text(json.dumps(self._spec({"stepping": "phse"})))
        assert main(["campaign", "status", str(path)]) == 2
        out = capsys.readouterr().out
        assert "phase" in out and "phse" in out


# --- content-hash key stability -------------------------------------------


class TestKeyStability:
    def test_normalize_drops_explicit_defaults_only(self):
        assert normalize_execution_options({
            "resolution": "bitmask",   # default: dropped
            "lockstep": False,         # default: dropped
            "stepping": "slot",        # non-default: kept
            "failure": 0.02,           # protocol knob: untouched
        }) == {"stepping": "slot", "failure": 0.02}

    def test_normalize_validates(self):
        with pytest.raises(ValueError, match="stepping"):
            normalize_execution_options({"stepping": "phse"})

    def test_default_valued_options_hash_like_omitted_ones(self):
        bare = CampaignSpec.from_dict({
            "name": "c", "rows": [{"row": "path", "sizes": [8], "seeds": [0]}],
        })
        explicit = CampaignSpec.from_dict({
            "name": "c",
            "rows": [{"row": "path", "sizes": [8], "seeds": [0],
                      "options": {"resolution": "bitmask",
                                  "lockstep": False,
                                  "contention_hist": False}}],
        })
        bare_keys = [job.key() for job in bare.jobs()]
        explicit_keys = [job.key() for job in explicit.jobs()]
        assert bare_keys == explicit_keys

    def test_programmatic_specs_normalize_at_the_identity_layer(self):
        # Not just the from_dict door: a spec built in code with an
        # explicit-default option hashes like the option-free spec.
        bare = CampaignSpec(
            name="c", rows=[RowPlan(row="path", sizes=(8,), seeds=(0,))],
        )
        explicit = CampaignSpec(
            name="c",
            rows=[RowPlan(row="path", sizes=(8,), seeds=(0,),
                          options={"resolution": "bitmask"})],
        )
        assert [j.key() for j in bare.jobs()] == [
            j.key() for j in explicit.jobs()
        ]

    def test_non_default_options_change_identity(self):
        bare = CampaignSpec.from_dict({
            "name": "c", "rows": [{"row": "path", "sizes": [8], "seeds": [0]}],
        })
        tuned = CampaignSpec.from_dict({
            "name": "c",
            "rows": [{"row": "path", "sizes": [8], "seeds": [0],
                      "options": {"resolution": "list"}}],
        })
        assert [j.key() for j in bare.jobs()] != [j.key() for j in tuned.jobs()]

    def test_cell_options_view_is_minimal(self):
        config = ExecutionConfig(stepping="slot", time_limit=99)
        assert config.cell_options() == {"stepping": "slot"}
        assert set(config.cell_options(include_defaults=True)) == set(
            EXECUTION_OPTION_KEYS
        )

    def test_execution_options_alias_validates_and_normalizes(self):
        from repro.campaign.cells import execution_options

        assert execution_options(None) == {}
        assert execution_options({
            "stepping": "slot", "resolution": "bitmask", "failure": 0.1,
        }) == {"stepping": "slot"}
        with pytest.raises(ValueError, match="stepping"):
            execution_options({"stepping": "phse"})


# --- deprecation shims: byte-identical, warn, per kwarg --------------------


def _run_simulator(exec_config=None, **legacy):
    sim = Simulator(
        GRAPH, NO_CD, seed=2, knowledge=KNOWLEDGE,
        exec_config=exec_config, **legacy,
    )
    return snap([sim.run(bcast_proto, inputs=INPUTS)])


def _run_trials(exec_config=None, **legacy):
    return snap(run_trials(
        GRAPH, NO_CD, bcast_proto, (0, 1, 2), inputs=INPUTS,
        knowledge=KNOWLEDGE, exec_config=exec_config, **legacy,
    ))


def _run_lockstep(exec_config=None, **legacy):
    return snap(run_trials_lockstep(
        GRAPH, NO_CD, bcast_proto, (0, 1, 2), inputs=INPUTS,
        knowledge=KNOWLEDGE, exec_config=exec_config, **legacy,
    ))


def _run_broadcast_trials(exec_config=None, **legacy):
    outcomes = run_broadcast_trials(
        GRAPH, NO_CD, bcast_proto, (0, 1), knowledge=KNOWLEDGE,
        exec_config=exec_config, **legacy,
    )
    return [(o.delivered, o.informed, snap([o.sim])) for o in outcomes]


def _run_broadcast(exec_config=None, **legacy):
    outcome = run_broadcast(
        GRAPH, NO_CD, bcast_proto, seed=3, knowledge=KNOWLEDGE,
        exec_config=exec_config, **legacy,
    )
    return (outcome.delivered, outcome.informed, snap([outcome.sim]))


def _run_sweep(exec_config=None, **legacy):
    return sweep(
        "cell", clique, (3,), lambda g: bcast_proto, NO_CD,
        seeds=(0, 1), exec_config=exec_config, **legacy,
    )


def _run_cells(exec_config=None, **legacy):
    return run_cells(
        GRAPH, NO_CD, bcast_proto, label="cell", size=3, seeds=(0, 1),
        knowledge=KNOWLEDGE, exec_config=exec_config, **legacy,
    )


def _run_cell(exec_config=None, **legacy):
    return run_cell(
        GRAPH, NO_CD, bcast_proto, label="cell", size=3, seed=1,
        knowledge=KNOWLEDGE, exec_config=exec_config, **legacy,
    )


_SHIM_CASES = [
    ("Simulator", _run_simulator, "time_limit", 5_000),
    ("Simulator", _run_simulator, "record_trace", True),
    ("Simulator", _run_simulator, "resolution", "list"),
    ("Simulator", _run_simulator, "stepping", "slot"),
    ("Simulator", _run_simulator, "meter_energy", False),
    ("run_trials", _run_trials, "time_limit", 5_000),
    ("run_trials", _run_trials, "record_trace", True),
    ("run_trials", _run_trials, "resolution", "list"),
    ("run_trials", _run_trials, "stepping", "slot"),
    ("run_trials", _run_trials, "meter_energy", False),
    ("run_trials", _run_trials, "lockstep", True),
    ("run_trials", _run_trials, "observer_factory", lambda s: (SlotObserver(),)),
    ("run_trials", _run_trials, "model_factory", lambda s: NO_CD),
    ("run_trials_lockstep", _run_lockstep, "resolution", "list"),
    ("run_trials_lockstep", _run_lockstep, "stepping", "slot"),
    ("run_trials_lockstep", _run_lockstep, "time_limit", 5_000),
    ("run_trials_lockstep", _run_lockstep, "record_trace", True),
    ("run_trials_lockstep", _run_lockstep, "meter_energy", False),
    ("run_trials_lockstep", _run_lockstep, "observer_factory",
     lambda s: (SlotObserver(),)),
    ("run_trials_lockstep", _run_lockstep, "model_factory", lambda s: NO_CD),
    ("run_broadcast_trials", _run_broadcast_trials, "time_limit", 5_000),
    ("run_broadcast_trials", _run_broadcast_trials, "record_trace", True),
    ("run_broadcast_trials", _run_broadcast_trials, "resolution", "list"),
    ("run_broadcast_trials", _run_broadcast_trials, "stepping", "slot"),
    ("run_broadcast_trials", _run_broadcast_trials, "lockstep", True),
    ("run_broadcast_trials", _run_broadcast_trials, "observer_factory",
     lambda s: (SlotObserver(),)),
    ("run_broadcast", _run_broadcast, "time_limit", 5_000),
    ("run_broadcast", _run_broadcast, "record_trace", True),
    ("sweep", _run_sweep, "record_trace", True),
    ("sweep", _run_sweep, "resolution", "list"),
    ("sweep", _run_sweep, "lockstep", True),
    ("sweep", _run_sweep, "contention_hist", True),
    ("run_cells", _run_cells, "record_trace", True),
    ("run_cells", _run_cells, "resolution", "list"),
    ("run_cells", _run_cells, "stepping", "slot"),
    ("run_cells", _run_cells, "lockstep", True),
    ("run_cells", _run_cells, "contention_hist", True),
    ("run_cell", _run_cell, "resolution", "list"),
    ("run_cell", _run_cell, "contention_hist", True),
]


class TestDeprecationShims:
    @pytest.mark.parametrize(
        "entry,runner,kwarg,value",
        _SHIM_CASES,
        ids=[f"{entry}-{kwarg}" for entry, _, kwarg, _ in _SHIM_CASES],
    )
    def test_legacy_kwarg_warns_and_is_byte_identical(
        self, entry, runner, kwarg, value
    ):
        with pytest.warns(DeprecationWarning, match=kwarg):
            legacy = runner(**{kwarg: value})
        fresh = runner(exec_config=ExecutionConfig(**{kwarg: value}))
        assert legacy == fresh

    def test_exec_config_path_does_not_warn(self, recwarn):
        _run_trials(exec_config=ExecutionConfig(resolution="list"))
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]

    def test_legacy_kwarg_overrides_exec_config(self):
        with pytest.warns(DeprecationWarning):
            result = _run_trials(
                exec_config=ExecutionConfig(stepping="slot"),
                resolution="list",
            )
        assert result == _run_trials(
            exec_config=ExecutionConfig(stepping="slot", resolution="list")
        )


# --- the exposure gaps the redesign closes --------------------------------


class TestSweepFullControl:
    def test_sweep_stepping_and_lockstep_are_byte_identical(self):
        base = _run_sweep()
        for config in (
            ExecutionConfig(stepping="slot"),
            ExecutionConfig(lockstep=True),
            ExecutionConfig(stepping="slot", lockstep=True),
        ):
            assert _run_sweep(exec_config=config) == base

    def test_sweep_per_seed_observers(self):
        seen = []

        class Counter(SlotObserver):
            def __init__(self, seed):
                self.seed = seed
                self.slots = 0

            def on_slot(self, *args):
                self.slots += 1

        def factory(seed):
            observer = Counter(seed)
            seen.append(observer)
            return (observer,)

        points = _run_sweep(
            exec_config=ExecutionConfig(observer_factory=factory)
        )
        assert points == _run_sweep()
        assert sorted(o.seed for o in seen) == [0, 1]
        assert all(o.slots > 0 for o in seen)

    def test_sweep_contention_hist_stacks_on_user_observers(self):
        seen = []
        config = ExecutionConfig(
            contention_hist=True,
            observer_factory=lambda seed: seen.append(seed) or (),
        )
        points = _run_sweep(exec_config=config)
        assert sorted(seen) == [0, 1]
        assert any(key.startswith("ch_") for key in points[0].extras)

    def test_table1_cli_accepts_execution_flags(self, capsys):
        from repro.cli import main

        assert main([
            "table1", "path", "--seeds", "1", "--sizes-scale", "0.05",
            "--resolution", "list", "--stepping", "slot", "--lockstep",
        ]) == 0
        assert "delivered" in capsys.readouterr().out

    def test_table1_lb_rows_honor_execution_flags(self, capsys):
        from repro.cli import main

        # The bespoke lower-bound runners take the same options, so the
        # shared flags reach every row rather than being dropped.
        assert main([
            "table1", "lb-reduction", "--seeds", "1", "--sizes-scale",
            "0.5", "--resolution", "list",
        ]) == 0
        assert "T_LE" in capsys.readouterr().out
        # ...and an option no layer can honor fails loudly, not silently.
        assert main([
            "table1", "lb-path", "--seeds", "1", "--sizes-scale", "0.05",
            "--contention-hist",
        ]) == 2
        assert "contention_hist" in capsys.readouterr().out

    def test_campaign_cli_accepts_execution_flags(self, tmp_path, capsys):
        from repro.cli import main

        config = tmp_path / "c.json"
        config.write_text(json.dumps({
            "name": "c",
            "rows": [{"row": "path", "sizes": [8], "seeds": [0]}],
        }))
        out = str(tmp_path / "out")
        assert main([
            "campaign", "run", str(config), "--out", out,
            "--stepping", "slot", "--resolution", "list",
        ]) == 0
        first = capsys.readouterr().out
        assert "1 cells" in first
        # Same flags -> same identity -> full cache hit.
        assert main([
            "campaign", "run", str(config), "--out", out,
            "--stepping", "slot", "--resolution", "list",
        ]) == 0
        assert "1 cached, 0 computed" in capsys.readouterr().out
