"""Tests for the shared-seed cluster casts (Lemma 17 machinery)."""

from __future__ import annotations

import pytest

from repro.core.cluster_casts import (
    cluster_all_cast,
    cluster_coin,
    cluster_down_cast,
    cluster_sr,
    cluster_up_cast,
)
from repro.core.schemes import SRScheme
from repro.core.sr_comm import Role
from repro.graphs import Graph, path_graph
from repro.sim import NO_CD, Simulator


class TestClusterCoin:
    def test_deterministic_given_inputs(self):
        a = cluster_coin(123, ("tag", 1), 0, 0.5)
        b = cluster_coin(123, ("tag", 1), 0, 0.5)
        assert a == b

    def test_varies_across_reps(self):
        outcomes = {cluster_coin(7, "t", rep, 0.5) for rep in range(64)}
        assert outcomes == {True, False}

    def test_probability_respected(self):
        hits = sum(cluster_coin(s, "x", 0, 0.25) for s in range(4000))
        assert 800 < hits < 1200


class TestClusterSR:
    def test_filtered_reception(self):
        # Sender of cluster A and receiver expecting cluster B: messages
        # rejected; receiver expecting A: accepted.
        g = path_graph(3)
        scheme = SRScheme("No-CD", 2, failure=0.02)

        def proto(ctx):
            if ctx.index == 1:
                out = yield from cluster_sr(
                    ctx, scheme, Role.SENDER, ("A", "payload"), 99, "t", 2, 6,
                    lambda m: True,
                )
            elif ctx.index == 0:
                out = yield from cluster_sr(
                    ctx, scheme, Role.RECEIVER, None, 1, "t", 2, 6,
                    lambda m: m[0] == "A",
                )
            else:
                out = yield from cluster_sr(
                    ctx, scheme, Role.RECEIVER, None, 2, "t", 2, 6,
                    lambda m: m[0] == "B",
                )
            return out

        result = Simulator(g, NO_CD, seed=1).run(proto)
        assert result.outputs[0] == ("A", "payload")
        assert result.outputs[2] is None

    def test_idle_role_costs_nothing(self):
        g = path_graph(2)
        scheme = SRScheme("No-CD", 2, failure=0.05)

        def proto(ctx):
            role = Role.IDLE
            out = yield from cluster_sr(
                ctx, scheme, role, None, 5, "t", 2, 4, lambda m: True
            )
            return out

        result = Simulator(g, NO_CD, seed=0).run(proto)
        assert all(e.total == 0 for e in result.energy)


class TestClusterLayeredCasts:
    def test_down_cast_stays_inside_cluster(self):
        # Path 0-1-2-3: cluster A = {0,1} labels 0,1; cluster B = {2,3}
        # labels 0,1.  A's root value must reach 1 but never 3.
        g = path_graph(4)
        scheme = SRScheme("No-CD", 2, failure=0.01)
        layers = [0, 1, 1, 0]
        cids = ["A", "A", "B", "B"]
        seeds = {"A": 11, "B": 22}

        def proto(ctx):
            value = "m" if ctx.index == 0 else None
            out = yield from cluster_down_cast(
                ctx, scheme, layers[ctx.index], cids[ctx.index],
                seeds[cids[ctx.index]], value, 2, 2, 8, "t",
                transform=lambda m: m,
            )
            return out

        result = Simulator(g, NO_CD, seed=2).run(proto)
        assert result.outputs[1] == "m"
        assert result.outputs[2] is None
        assert result.outputs[3] is None

    def test_up_cast_reaches_root(self):
        g = path_graph(3)
        scheme = SRScheme("No-CD", 2, failure=0.01)
        layers = [0, 1, 2]

        def proto(ctx):
            value = "leafmsg" if ctx.index == 2 else None
            out = yield from cluster_up_cast(
                ctx, scheme, layers[ctx.index], "C", 7, value, 3, 2, 8, "t",
                transform=lambda m: m,
            )
            return out

        result = Simulator(g, NO_CD, seed=3).run(proto)
        assert result.outputs[0] == "leafmsg"

    def test_all_cast_crosses_boundaries(self):
        g = path_graph(2)
        scheme = SRScheme("No-CD", 2, failure=0.01)

        def proto(ctx):
            if ctx.index == 0:
                out = yield from cluster_all_cast(
                    ctx, scheme, Role.SENDER, ("offer", 1), 5, 2, 8, "t",
                    lambda m: True,
                )
            else:
                out = yield from cluster_all_cast(
                    ctx, scheme, Role.RECEIVER, None, 6, 2, 8, "t",
                    lambda m: m[0] == "offer",
                )
            return out

        result = Simulator(g, NO_CD, seed=4).run(proto)
        assert result.outputs[1] == ("offer", 1)

    def test_frame_alignment_across_roles(self):
        g = path_graph(3)
        scheme = SRScheme("No-CD", 2, failure=0.05)
        layers = [0, 1, 2]

        def proto(ctx):
            yield from cluster_down_cast(
                ctx, scheme, layers[ctx.index], "C", 9,
                "m" if ctx.index == 0 else None, 3, 2, 4, "t",
                transform=lambda m: m,
            )
            return ctx.time

        result = Simulator(g, NO_CD, seed=0).run(proto)
        assert len(set(result.outputs)) == 1
